(* Lamport's audit problem (Section 4.3.3), end to end.

   A bank runs transfer and deposit traffic while auditors snapshot
   every account.  We run the same workload against six protocols and
   print how audits and updates fare under each:

   - strict read/write two-phase locking (classical baseline);
   - commutativity locking (Bernstein/Korth/Schwarz-Spector);
   - the escrow account (data-dependent dynamic atomicity);
   - Reed's multi-version timestamps (static atomicity);
   - the hybrid protocol with commutativity-locked updates;
   - the paper's full hybrid design: escrow updates + timestamped
     audits (Hybrid_account).

     dune exec examples/banking.exe
*)

open Core

let accounts = 6

let protocols =
  [ "rw-2pl"; "commutativity"; "escrow"; "multiversion"; "hybrid";
    "hybrid-escrow" ]

let build name =
  let policy =
    match name with
    | "multiversion" -> `Static
    | "hybrid" | "hybrid-escrow" -> `Hybrid
    | _ -> `None_
  in
  let sys = System.create ~policy () in
  let log = System.log sys in
  List.iter
    (fun id ->
      let obj =
        match name with
        | "rw-2pl" -> Op_locking.rw log id (module Bank_account)
        | "commutativity" -> Op_locking.commutativity log id (module Bank_account)
        | "escrow" -> Escrow_account.make log id
        | "multiversion" -> Multiversion.make log id Bank_account.spec
        | "hybrid" -> Hybrid.of_adt log id (module Bank_account)
        | "hybrid-escrow" -> Hybrid_account.make log id
        | _ -> assert false
      in
      System.add_object sys obj)
    (Workload.account_ids accounts);
  sys

let () =
  let config =
    {
      Driver.default_config with
      clients = 12;
      duration = 4000;
      seed = 2026;
      max_restarts = 8;
    }
  in
  Fmt.pr
    "Lamport's audit problem: %d accounts, %d clients, %d ticks, 20%% audits@.@."
    accounts config.Driver.clients config.Driver.duration;
  Fmt.pr "%-14s %9s %7s %9s %9s %11s %11s@." "protocol" "committed" "audits"
    "aborts" "waits" "audit-lat" "update-lat";
  List.iter
    (fun name ->
      let sys = build name in
      let w = Workload.banking ~accounts ~audit_fraction:0.2 () in
      let o = Driver.run ~config sys w in
      Fmt.pr "%-14s %9d %7d %9d %9d %11.1f %11.1f@." name o.Driver.committed
        o.Driver.committed_read_only
        (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
        o.Driver.waits
        (Weihl_obs.Metrics.Histogram.mean o.Driver.read_only_latencies)
        (Weihl_obs.Metrics.Histogram.mean o.Driver.update_latencies))
    protocols;
  Fmt.pr
    "@.Expected shape (Section 4.3.3): under locking, audits block and get@.\
     blocked; under pure timestamps, updates abort under skew; under the@.\
     hybrid protocol audits never wait and never disturb updates.@."
