(* Fuzzy checkpoints: capture/encode/decode, marker-gated officialness,
   loud fallbacks on damage, bounded tail replay, and the equivalence
   property checkpoint + tail ≡ full-log replay. *)

open Core
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest
let granted = Test_op_locking.granted
let protocols = Shard_harness.protocols

(* --- fixtures ------------------------------------------------------- *)

(* One seeded burst of sharded traffic over a checkpointing group;
   [archive] keeps the truncated WAL prefixes so tests can reconstruct
   the full log. *)
let run_traffic ?(seed = 7) ?(duration = 300) ?(every = 25) proto =
  let group =
    Shard_group.create ~policy:proto.Fault_harness.policy ~seed ~shards:3
      ~checkpoint:{ Shard_group.default_checkpoint with every; archive = true }
      ()
  in
  let w = proto.Fault_harness.workload () in
  List.iter
    (fun id -> Shard_group.add_object group id proto.Fault_harness.make_object)
    w.Workload.objects;
  let config =
    {
      Sharded_driver.default_config with
      clients = 4;
      duration;
      seed = (seed * 17) + 1;
    }
  in
  ignore (Sharded_driver.run ~config group w);
  (group, w)

let fresh_sys proto w =
  let sys = System.create ~policy:proto.Fault_harness.policy () in
  List.iter
    (fun id ->
      System.add_object sys (proto.Fault_harness.make_object (System.log sys) id))
    w.Workload.objects;
  sys

let order_of proto =
  match proto.Fault_harness.policy with
  | `None_ -> Recovery.Commit_order
  | _ -> Recovery.Timestamp_order

(* Every account's balance as one read-only probe per object, so two
   recovered systems can be compared for state equality. *)
let balances sys w =
  List.map
    (fun x ->
      let t = System.begin_txn sys (Activity.update "probe") in
      let v =
        Value.to_string (granted (System.invoke sys t x Bank_account.balance))
      in
      System.abort sys t;
      (Fmt.str "%a" Object_id.pp x, v))
    w.Workload.objects

let rw = List.nth protocols 0
let hybrid = List.nth protocols 5

let decode_records text =
  match Wal.decode_records text with
  | Ok (rs, _) -> rs
  | Error e -> Alcotest.fail (Fmt.str "wal decode: %a" Wal.pp_error e)

(* --- capture / encode / decode -------------------------------------- *)

let test_roundtrip () =
  let group, _w = run_traffic rw in
  let covered = Shard_group.checkpoint_shard group 0 in
  let file = List.hd (Shard_group.checkpoint_files group 0) in
  match Checkpoint.decode file with
  | Error e -> Alcotest.fail ("decode: " ^ e)
  | Ok c ->
    check_int "covered survives the roundtrip" covered (Checkpoint.covered c);
    check_bool "some transactions captured" true (Checkpoint.txn_count c > 0);
    Alcotest.(check (option string))
      "label mirrors the WAL header" (Some "shard-0") (Checkpoint.label c);
    check_int "as many names as transactions" (Checkpoint.txn_count c)
      (List.length (Checkpoint.activity_names c));
    let marker =
      List.find_map
        (function
          | Wal.Control (Wal.Checkpointed { seq; digest })
            when seq = covered ->
            Some digest
          | _ -> None)
        (decode_records (Shard_group.durable_shard group 0))
    in
    Alcotest.(check (option int))
      "the durable marker carries the file's digest"
      (Some (Checkpoint.digest file))
      marker

let test_truncation_bounds_replay () =
  let group, _w = run_traffic rw in
  (* Two explicit checkpoints fill the retention window (retain = 2),
     which is when truncation first runs. *)
  ignore (Shard_group.checkpoint_shard group 0);
  let covered = Shard_group.checkpoint_shard group 0 in
  let base = Shard_group.wal_base group 0 in
  check_bool "the WAL head was truncated" true (base > 0);
  let text = Shard_group.crash_shard group 0 in
  check_int "the durable header advertises the base" base (Wal.base text);
  match Shard_group.recover_shard group 0 text with
  | Error f -> Alcotest.fail (Fmt.str "recovery: %a" Recovery.pp_failure f)
  | Ok r ->
    (match r.Recovery.source with
    | Recovery.From_checkpoint { covered = c } ->
      check_int "recovered from the newest checkpoint" covered c
    | Recovery.Full_replay -> Alcotest.fail "expected checkpoint recovery");
    Alcotest.(check (list string)) "no fallbacks" [] r.Recovery.fallbacks;
    check_int "replay consumed exactly the tail"
      (r.Recovery.wal_records - (covered - base))
      r.Recovery.replayed_records

(* --- damage --------------------------------------------------------- *)

let recover_damaged group ~f =
  ignore (Shard_group.checkpoint_shard group 0);
  let covered_old = Shard_group.checkpoint_shard group 0 in
  ignore (Shard_group.checkpoint_shard group 0);
  check_bool "a checkpoint existed to damage" true
    (Shard_group.corrupt_checkpoint group 0 ~f);
  let text = Shard_group.crash_shard group 0 in
  match Shard_group.recover_shard group 0 text with
  | Error f -> Alcotest.fail (Fmt.str "recovery: %a" Recovery.pp_failure f)
  | Ok r ->
    check_bool "fell back loudly" true (r.Recovery.fallbacks <> []);
    (match r.Recovery.source with
    | Recovery.From_checkpoint { covered } ->
      check_int "used the older retained checkpoint" covered_old covered
    | Recovery.Full_replay ->
      Alcotest.fail "older checkpoint should have been usable")

let test_torn_checkpoint_falls_back () =
  let group, _w = run_traffic rw in
  recover_damaged group ~f:(fun s -> String.sub s 0 (String.length s - 40))

let test_digest_mismatch_falls_back () =
  let group, _w = run_traffic rw in
  recover_damaged group ~f:(fun s ->
      let b = Bytes.of_string s in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
      Bytes.to_string b)

let test_marker_race_ignores_file () =
  (* [every] too large for auto checkpoints: the only checkpoint is the
     one whose marker never became durable, so it must not count. *)
  let group, _w = run_traffic ~every:100_000 rw in
  ignore (Shard_group.checkpoint_shard ~lose_marker:true group 0);
  check_int "file reached disk" 1
    (List.length (Shard_group.checkpoint_files group 0));
  let text = Shard_group.crash_shard group 0 in
  match Shard_group.recover_shard group 0 text with
  | Error f -> Alcotest.fail (Fmt.str "recovery: %a" Recovery.pp_failure f)
  | Ok r ->
    (match r.Recovery.source with
    | Recovery.Full_replay -> ()
    | Recovery.From_checkpoint _ ->
      Alcotest.fail "an unmarked checkpoint file was consulted");
    check_int "the whole log was replayed" r.Recovery.wal_records
      r.Recovery.replayed_records

let test_truncated_log_without_checkpoint_fails () =
  let group, _w = run_traffic rw in
  ignore (Shard_group.checkpoint_shard group 0);
  ignore (Shard_group.checkpoint_shard group 0);
  check_bool "truncated" true (Shard_group.wal_base group 0 > 0);
  let text = Shard_group.crash_shard group 0 in
  let sys = System.create () in
  match Recovery.restore_checkpointed ~checkpoints:[] Recovery.Commit_order sys text with
  | Error (Recovery.Checkpoint_invalid _) -> ()
  | Error f ->
    Alcotest.fail (Fmt.str "wrong failure: %a" Recovery.pp_failure f)
  | Ok _ ->
    Alcotest.fail "a truncated log recovered without any checkpoint"

(* --- the equivalence property --------------------------------------- *)

(* checkpoint + tail must reach exactly the state a full-log replay
   reaches, for every protocol and both serialization orders.  The full
   log is reconstructed from the archived truncation prefixes. *)
let prop_ckpt_tail_equals_full =
  QCheck.Test.make ~count:12 ~name:"checkpoint + tail ≡ full-log replay"
    QCheck.(pair (int_bound 1_000) (int_bound 5))
    (fun (seed, pidx) ->
      let proto = List.nth protocols (pidx mod List.length protocols) in
      let group, w = run_traffic ~seed:(seed + 1) ~duration:150 proto in
      let victim = seed mod 3 in
      let segments = Shard_group.archived_segments group victim in
      let files = Shard_group.checkpoint_files group victim in
      let text = Shard_group.crash_shard group victim in
      let full =
        List.concat_map decode_records segments @ decode_records text
      in
      let full_text = Wal.encode_records ~label:"full" full in
      let order = order_of proto in
      let a = fresh_sys proto w and b = fresh_sys proto w in
      match
        ( Recovery.restore_shard order a full_text,
          Recovery.restore_checkpointed ~checkpoints:files order b text )
      with
      | Error f, _ ->
        QCheck.Test.fail_reportf "full replay failed: %a" Recovery.pp_failure f
      | _, Error f ->
        QCheck.Test.fail_reportf "checkpointed replay failed: %a"
          Recovery.pp_failure f
      | Ok fr, Ok cr ->
        let full_n = fr.Recovery.base.Recovery.replayed in
        let ckpt_n = cr.Recovery.shard.Recovery.base.Recovery.replayed in
        if full_n <> ckpt_n then
          QCheck.Test.fail_reportf
            "replayed %d transactions from the checkpoint path, %d from the \
             full log"
            ckpt_n full_n
        else if balances a w <> balances b w then
          QCheck.Test.fail_reportf "recovered states differ"
        else begin
          (match cr.Recovery.source with
          | Recovery.From_checkpoint { covered } ->
            let bound =
              cr.Recovery.wal_records - (covered - Wal.base text)
            in
            if cr.Recovery.replayed_records > bound then
              QCheck.Test.fail_reportf "replayed %d records, tail bound %d"
                cr.Recovery.replayed_records bound
          | Recovery.Full_replay -> ());
          true
        end)

(* --- hybrid: checkpoint recovery keeps agreed timestamps ------------- *)

let test_hybrid_checkpoint_recovery () =
  let group, _w = run_traffic ~seed:11 hybrid in
  ignore (Shard_group.checkpoint_shard group 1);
  ignore (Shard_group.checkpoint_shard group 1);
  let text = Shard_group.crash_shard group 1 in
  match Shard_group.recover_shard group 1 text with
  | Error f -> Alcotest.fail (Fmt.str "recovery: %a" Recovery.pp_failure f)
  | Ok r ->
    (match r.Recovery.source with
    | Recovery.From_checkpoint _ -> ()
    | Recovery.Full_replay -> Alcotest.fail "expected checkpoint recovery");
    ignore (Shard_group.resolve_in_doubt group);
    check_int "nothing stuck in-doubt" 0 (Shard_group.in_doubt_count group)

let suite =
  [
    Alcotest.test_case "capture/encode/decode roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "truncation bounds the replay" `Quick
      test_truncation_bounds_replay;
    Alcotest.test_case "torn checkpoint falls back loudly" `Quick
      test_torn_checkpoint_falls_back;
    Alcotest.test_case "digest mismatch falls back loudly" `Quick
      test_digest_mismatch_falls_back;
    Alcotest.test_case "marker race: unmarked file never counts" `Quick
      test_marker_race_ignores_file;
    Alcotest.test_case "truncated log with no checkpoint fails loudly" `Quick
      test_truncated_log_without_checkpoint_fails;
    Alcotest.test_case "hybrid recovery from a checkpoint" `Quick
      test_hybrid_checkpoint_recovery;
    to_alcotest prop_ckpt_tail_equals_full;
  ]
