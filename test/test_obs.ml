(* The observability layer: metrics, JSON, Chrome-trace round-trips,
   contention aggregation, and end-to-end instrumentation of a
   simulator run. *)

open Core
module Json = Obs.Json
module Metrics = Obs.Metrics
module Probe = Obs.Probe
module Trace = Obs.Trace

let check_f = Alcotest.(check (float 1e-9))
let check_i = Alcotest.(check int)
let to_alcotest = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  check_i "counter" 5 (Metrics.Counter.value c);
  let g = Metrics.Gauge.create () in
  Metrics.Gauge.set g 3.;
  Metrics.Gauge.add g 2.;
  Metrics.Gauge.set g 1.;
  check_f "gauge value" 1. (Metrics.Gauge.value g);
  check_f "gauge max" 5. (Metrics.Gauge.max_value g)

let test_histogram_empty () =
  let h = Metrics.Histogram.create () in
  check_i "count" 0 (Metrics.Histogram.count h);
  check_f "mean" 0. (Metrics.Histogram.mean h);
  check_f "min" 0. (Metrics.Histogram.min_value h);
  check_f "max" 0. (Metrics.Histogram.max_value h);
  check_f "p50" 0. (Metrics.Histogram.percentile h 50.)

let test_histogram_singleton () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.observe h 7.;
  check_i "count" 1 (Metrics.Histogram.count h);
  check_f "mean" 7. (Metrics.Histogram.mean h);
  (* Any percentile of one observation is that observation: the bucket
     estimate is clamped to the exact extremes. *)
  check_f "p0" 7. (Metrics.Histogram.percentile h 0.);
  check_f "p50" 7. (Metrics.Histogram.percentile h 50.);
  check_f "p100" 7. (Metrics.Histogram.percentile h 100.)

let test_histogram_exact_and_bounds () =
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.observe h) [ 1.; 2.; 3.; 4.; 5. ];
  check_i "count" 5 (Metrics.Histogram.count h);
  check_f "sum" 15. (Metrics.Histogram.sum h);
  check_f "mean" 3. (Metrics.Histogram.mean h);
  check_f "min" 1. (Metrics.Histogram.min_value h);
  check_f "max" 5. (Metrics.Histogram.max_value h);
  check_f "p0 clamps to min" 1. (Metrics.Histogram.percentile h 0.);
  check_f "p100 clamps to max" 5. (Metrics.Histogram.percentile h 100.);
  let p50 = Metrics.Histogram.percentile h 50. in
  Alcotest.(check bool) "p50 within range" true (p50 >= 1. && p50 <= 5.);
  (* The total of the bucket counts is the observation count. *)
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Metrics.Histogram.buckets h)
  in
  check_i "buckets cover everything" 5 total;
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Histogram.create: bounds must be strictly increasing")
    (fun () ->
      ignore (Metrics.Histogram.create ~buckets:[| 1.; 1. |] ()))

let test_registry () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Registry.counter reg "a.count" in
  Metrics.Counter.incr c;
  (* Same name yields the same instrument. *)
  Metrics.Counter.incr (Metrics.Registry.counter reg "a.count");
  check_i "shared counter" 2
    (Metrics.Counter.value (Metrics.Registry.counter reg "a.count"));
  Metrics.Gauge.set (Metrics.Registry.gauge reg "b.gauge") 2.5;
  Metrics.Histogram.observe (Metrics.Registry.histogram reg "c.hist") 3.;
  (* Asking for a registered name as a different kind is an error. *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "a.count is registered as a different instrument")
    (fun () -> ignore (Metrics.Registry.gauge reg "a.count"));
  let text = Metrics.Registry.render_text reg in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (needle ^ " rendered") true
        (contains text needle))
    [ "a.count"; "b.gauge"; "c.hist" ];
  (* The JSON snapshot parses back and carries the counter value. *)
  match Json.of_string (Metrics.Registry.render_json reg) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match Json.member "a.count" j with
    | Some v -> check_f "json counter" 2. (Option.get (Json.to_float v))
    | None -> Alcotest.fail "a.count missing from JSON")

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\nline\twith \\ and \x07 control");
        ("n", Json.Num 1.5);
        ("i", Json.Num 42.);
        ("neg", Json.Num (-0.125));
        ("b", Json.Bool true);
        ("null", Json.Null);
        ("l", Json.List [ Json.Num 1.; Json.Bool false; Json.Str "" ]);
        ("empty_obj", Json.Obj []);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.fail e
  | Ok v' -> Alcotest.(check bool) "round-trip" true (Json.equal v v')

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Trace assembly and round-trip                                       *)
(* ------------------------------------------------------------------ *)

(* A hand-scripted event sequence: t0 begins, is granted an op, t1
   begins, waits for t0, t0 commits, t1 is granted and commits. *)
let scripted_trace () =
  let tr = Trace.create () in
  let sink = Trace.sink tr in
  let emit time ev = sink.Probe.emit ~time ev in
  emit 0. (Probe.Txn_begin { txn = 0; name = "u0"; read_only = false });
  emit 0.
    (Probe.Op_invoke { txn = 0; obj = "x"; op = "withdraw"; depth = 0 });
  emit 1. (Probe.Op_grant { txn = 0; obj = "x"; op = "withdraw" });
  emit 1. (Probe.Txn_begin { txn = 1; name = "u1"; read_only = false });
  emit 1.
    (Probe.Op_invoke { txn = 1; obj = "x"; op = "withdraw"; depth = 1 });
  emit 1.
    (Probe.Op_wait { txn = 1; obj = "x"; op = "withdraw"; blockers = [ 0 ] });
  emit 2. (Probe.Txn_commit { txn = 0 });
  emit 3. (Probe.Op_grant { txn = 1; obj = "x"; op = "withdraw" });
  emit 4. (Probe.Txn_commit { txn = 1 });
  tr

let test_trace_assembly () =
  let tr = scripted_trace () in
  let evs = Trace.events tr in
  let count ph = List.length (List.filter (fun e -> e.Trace.ph = ph) evs) in
  check_i "two txn begins" 2 (count Trace.B);
  check_i "two txn ends" 2 (count Trace.E);
  (* Three X spans: two granted ops and one wait interval. *)
  check_i "complete spans" 3 (count Trace.X);
  let waits = List.filter (fun e -> e.Trace.cat = "wait") evs in
  check_i "one wait interval" 1 (List.length waits);
  let w = List.hd waits in
  check_f "wait starts at block" 1. w.Trace.ts;
  check_f "wait lasts until grant" 2. (Option.get w.Trace.dur);
  (* The granted op's span runs first-invoke to grant. *)
  let op1 =
    List.find
      (fun e -> e.Trace.ph = Trace.X && e.Trace.cat = "op" && e.Trace.tid = 1)
      evs
  in
  check_f "op span start" 1. op1.Trace.ts;
  check_f "op span duration" 2. (Option.get op1.Trace.dur)

let test_trace_roundtrip () =
  let tr = scripted_trace () in
  let exported = Trace.export tr in
  match Trace.parse exported with
  | Error e -> Alcotest.fail e
  | Ok evs ->
    let originals = Trace.events tr in
    check_i "same event count" (List.length originals) (List.length evs);
    List.iter2
      (fun a b ->
        Alcotest.(check string) "name" a.Trace.name b.Trace.name;
        Alcotest.(check bool) "phase" true (a.Trace.ph = b.Trace.ph);
        check_f "ts" a.Trace.ts b.Trace.ts;
        check_i "pid" a.Trace.pid b.Trace.pid;
        check_i "tid" a.Trace.tid b.Trace.tid;
        Alcotest.(check (option (float 1e-9))) "dur" a.Trace.dur b.Trace.dur)
      originals evs

let test_trace_parse_rejects () =
  (* Not an array, and an event missing required fields. *)
  (match Trace.parse "{}" with
  | Ok _ -> Alcotest.fail "accepted an object"
  | Error _ -> ());
  match Trace.parse "[{\"name\":\"x\",\"ph\":\"B\"}]" with
  | Ok _ -> Alcotest.fail "accepted an event without ts/pid/tid"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Contention aggregation                                              *)
(* ------------------------------------------------------------------ *)

let test_contention () =
  let ct = Obs.Contention.create () in
  let sink = Obs.Contention.sink ct in
  let emit time ev = sink.Probe.emit ~time ev in
  emit 0. (Probe.Txn_begin { txn = 0; name = "u0"; read_only = false });
  emit 0. (Probe.Op_invoke { txn = 0; obj = "x"; op = "w"; depth = 0 });
  emit 0. (Probe.Op_grant { txn = 0; obj = "x"; op = "w" });
  emit 1. (Probe.Txn_begin { txn = 1; name = "u1"; read_only = false });
  emit 1. (Probe.Op_invoke { txn = 1; obj = "x"; op = "w"; depth = 1 });
  emit 1. (Probe.Op_wait { txn = 1; obj = "x"; op = "w"; blockers = [ 0 ] });
  emit 4. (Probe.Txn_commit { txn = 0 });
  emit 4. (Probe.Op_grant { txn = 1; obj = "x"; op = "w" });
  emit 5. (Probe.Deadlock_victim { victim = 1; cycle = [ 1 ] });
  check_i "waits on x" 1 (Obs.Contention.wait_count ct "x");
  check_i "deadlocks" 1 (Obs.Contention.deadlocks ct);
  (match Obs.Contention.per_object ct with
  | [ (name, s) ] ->
    Alcotest.(check string) "object" "x" name;
    check_i "invokes" 2 s.Obs.Contention.invokes;
    check_i "grants" 2 s.Obs.Contention.grants;
    check_i "waits" 1 s.Obs.Contention.waits;
    check_i "max depth" 1 s.Obs.Contention.max_depth;
    (* t1 blocked from 1 to 4. *)
    check_f "wait time" 3.
      (Metrics.Histogram.mean s.Obs.Contention.wait_time);
    (* t0 held x from 0 to 4. *)
    check_f "hold time" 4.
      (Metrics.Histogram.mean s.Obs.Contention.hold_time)
  | l -> Alcotest.failf "expected one object, got %d" (List.length l));
  let report = Obs.Contention.report ct in
  Alcotest.(check bool)
    "report mentions x" true
    (contains report "x")

(* ------------------------------------------------------------------ *)
(* End to end: an instrumented simulator run                           *)
(* ------------------------------------------------------------------ *)

let test_instrumented_sim () =
  (* The acceptance scenario: escrow protocol, hot-spot workload. *)
  let sys = System.create () in
  let w = Workload.hot_withdrawals () in
  List.iter
    (fun id -> System.add_object sys (Escrow_account.make (System.log sys) id))
    w.Workload.objects;
  let config =
    { Driver.default_config with clients = 8; duration = 500; seed = 11 }
  in
  let r = Obs.Recorder.create () in
  let o = Driver.run ~config ~probe:(Obs.Recorder.sink r) sys w in
  Alcotest.(check bool) "some commits" true (o.Driver.committed > 0);
  Alcotest.(check bool) "some waits" true (o.Driver.waits > 0);
  (* The probe is removed when the run ends. *)
  Alcotest.(check bool)
    "probe cleared" false
    (System.probe_installed sys);
  (* Registry counters agree with the driver's own accounting. *)
  let cval name =
    Metrics.Counter.value (Metrics.Registry.counter r.Obs.Recorder.registry name)
  in
  check_i "txn.commit" o.Driver.committed (cval "txn.commit");
  check_i "txn.abort"
    (o.Driver.aborted_deadlock + o.Driver.aborted_refused)
    (cval "txn.abort");
  check_i "op.wait" o.Driver.waits (cval "op.wait");
  check_i "deadlock victims" o.Driver.aborted_deadlock
    (cval "deadlock.victims");
  (* Per-object wait counts show up in the contention report. *)
  check_i "hot-spot waits" o.Driver.waits
    (Obs.Contention.wait_count r.Obs.Recorder.contention "hot");
  (* Latencies land in the histograms that the outcome now carries. *)
  check_i "latency histogram count" o.Driver.committed
    (Metrics.Histogram.count o.Driver.update_latencies
    + Metrics.Histogram.count o.Driver.read_only_latencies);
  (* The exported trace is a valid Chrome-trace array: every event
     carries name/ph/ts/pid/tid, and it contains begin/commit spans
     and wait intervals. *)
  match Trace.parse (Obs.Recorder.export_trace r) with
  | Error e -> Alcotest.fail e
  | Ok evs ->
    let count p = List.length (List.filter p evs) in
    Alcotest.(check bool)
      "txn begin spans" true
      (count (fun e -> e.Trace.ph = Trace.B && e.Trace.cat = "txn") > 0);
    Alcotest.(check bool)
      "txn end spans" true
      (count (fun e -> e.Trace.ph = Trace.E && e.Trace.cat = "txn") > 0);
    Alcotest.(check bool)
      "wait intervals" true
      (count (fun e -> e.Trace.ph = Trace.X && e.Trace.cat = "wait") > 0);
    Alcotest.(check bool)
      "gauge counters" true
      (count (fun e -> e.Trace.ph = Trace.C) > 0)

(* With no probe installed, a run leaves no residue and produces the
   same outcome as before instrumentation existed. *)
let test_uninstrumented_run_is_deterministic () =
  let run () =
    let sys = System.create () in
    let w = Workload.hot_withdrawals () in
    List.iter
      (fun id ->
        System.add_object sys (Escrow_account.make (System.log sys) id))
      w.Workload.objects;
    Driver.run
      ~config:{ Driver.default_config with clients = 4; duration = 300 }
      sys w
  in
  let a = run () and b = run () in
  check_i "same commits" a.Driver.committed b.Driver.committed;
  check_i "same waits" a.Driver.waits b.Driver.waits

(* ------------------------------------------------------------------ *)
(* Two-phase commit metrics                                            *)
(* ------------------------------------------------------------------ *)

let test_tpc_metrics () =
  let reg = Metrics.Registry.create () in
  let o = Tpc.run ~metrics:reg Tpc.default_config in
  Alcotest.(check bool) "all committed" true
    (List.for_all
       (function Tpc.Committed _ -> true | _ -> false)
       o.Tpc.statuses);
  let cval name = Metrics.Counter.value (Metrics.Registry.counter reg name) in
  check_i "coordinator decided commit" 1 (cval "tpc.coord.decide.commit");
  for i = 0 to 2 do
    check_i
      (Fmt.str "site %d prepared" i)
      1
      (cval (Fmt.str "tpc.site%d.prepared" i));
    check_i
      (Fmt.str "site %d voted yes" i)
      1
      (cval (Fmt.str "tpc.site%d.vote.yes" i));
    check_i
      (Fmt.str "site %d committed" i)
      1
      (cval (Fmt.str "tpc.site%d.committed" i))
  done

(* ------------------------------------------------------------------ *)
(* Histogram merge                                                     *)
(* ------------------------------------------------------------------ *)

let test_histogram_merge_unit () =
  let h1 = Metrics.Histogram.create () and h2 = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.observe h1) [ 1.; 50.; 300. ];
  List.iter (Metrics.Histogram.observe h2) [ 2.; 7000. ];
  let m = Metrics.Histogram.merge h1 h2 in
  let u = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.observe u) [ 1.; 50.; 300.; 2.; 7000. ];
  check_i "count" (Metrics.Histogram.count u) (Metrics.Histogram.count m);
  check_f "sum" (Metrics.Histogram.sum u) (Metrics.Histogram.sum m);
  check_f "min" (Metrics.Histogram.min_value u) (Metrics.Histogram.min_value m);
  check_f "max" (Metrics.Histogram.max_value u) (Metrics.Histogram.max_value m);
  List.iter2
    (fun (ub, uc) (mb, mc) ->
      check_f "bucket bound" ub mb;
      check_i "bucket count" uc mc)
    (Metrics.Histogram.buckets u)
    (Metrics.Histogram.buckets m);
  (* Merging histograms over different bucket bounds is refused: the
     counts would not be comparable. *)
  Alcotest.check_raises "mismatched bounds"
    (Invalid_argument "Histogram.merge: bucket bounds differ") (fun () ->
      ignore
        (Metrics.Histogram.merge h1
           (Metrics.Histogram.create ~buckets:[| 1.; 2. |] ())))

(* Lossless aggregation: merging any split of the observations is the
   same histogram as observing them all in one. *)
let prop_histogram_merge_is_union =
  QCheck2.Test.make ~name:"histogram merge = observing the union" ~count:100
    QCheck2.Gen.(
      pair
        (small_list (float_bound_inclusive 10_000.))
        (small_list (float_bound_inclusive 10_000.)))
    (fun (xs, ys) ->
      let observe vs =
        let h = Metrics.Histogram.create () in
        List.iter (Metrics.Histogram.observe h) vs;
        h
      in
      let m = Metrics.Histogram.merge (observe xs) (observe ys) in
      let u = observe (xs @ ys) in
      let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs b) in
      if Metrics.Histogram.count m <> Metrics.Histogram.count u then
        QCheck2.Test.fail_report "counts differ"
      else if not (close (Metrics.Histogram.sum m) (Metrics.Histogram.sum u))
      then QCheck2.Test.fail_report "sums differ"
      else if
        not
          (close (Metrics.Histogram.min_value m) (Metrics.Histogram.min_value u)
          && close (Metrics.Histogram.max_value m)
               (Metrics.Histogram.max_value u))
      then QCheck2.Test.fail_report "extremes differ"
      else if
        not
          (List.for_all2
             (fun (_, a) (_, b) -> a = b)
             (Metrics.Histogram.buckets m)
             (Metrics.Histogram.buckets u))
      then QCheck2.Test.fail_report "bucket counts differ"
      else true)

(* ------------------------------------------------------------------ *)
(* Merged cross-shard traces: flow events through the importer         *)
(* ------------------------------------------------------------------ *)

(* A generator for merged cross-shard event lists: spans and instants
   scattered over several pids, plus s/f flow pairs stitching pid 0 to
   a shard timeline — the shape [Shard_trace.export] produces. *)
let gen_merged_trace =
  let open QCheck2.Gen in
  let ts = map float_of_int (int_range 0 10_000) in
  let name = oneofl [ "u1"; "u2"; "prepare"; "decide" ] in
  let plain =
    let* n = name and* pid = int_range 0 4 and* tid = int_range 0 9 in
    let* t = ts in
    let* shape = oneofl [ `B; `E; `X; `I ] in
    let ph, cat, dur, args =
      match shape with
      | `B -> (Trace.B, "txn", None, [ ("gid", Json.Num 7.) ])
      | `E -> (Trace.E, "txn", None, [ ("outcome", Json.Str "commit") ])
      | `X -> (Trace.X, "tpc.phase", Some 3., [ ("gid", Json.Num 7.) ])
      | `I -> (Trace.I, "commit", None, [])
    in
    return
      [ { Trace.name = n; cat; ph; ts = t; dur; pid; tid; id = None; args } ]
  in
  let flow =
    let* n = name and* id = int_range 0 999 and* dst = int_range 1 4 in
    let* t = ts in
    return
      [
        {
          Trace.name = n;
          cat = "msg";
          ph = Trace.S;
          ts = t;
          dur = None;
          pid = 0;
          tid = 0;
          id = Some id;
          args = [];
        };
        {
          Trace.name = n;
          cat = "msg";
          ph = Trace.F;
          ts = t +. 2.;
          dur = None;
          pid = dst;
          tid = 0;
          id = Some id;
          args = [];
        };
      ]
  in
  map List.concat (small_list (oneof [ plain; flow ]))

let prop_merged_trace_roundtrip =
  QCheck2.Test.make ~name:"merged cross-shard trace round-trips" ~count:100
    gen_merged_trace (fun evs ->
      match Trace.parse (Trace.export_events evs) with
      | Error e -> QCheck2.Test.fail_report e
      | Ok evs' ->
        if List.length evs <> List.length evs' then
          QCheck2.Test.fail_report "event count changed"
        else if
          not
            (List.for_all2
               (fun a b ->
                 a.Trace.name = b.Trace.name
                 && a.Trace.cat = b.Trace.cat
                 && a.Trace.ph = b.Trace.ph
                 && a.Trace.ts = b.Trace.ts
                 && a.Trace.dur = b.Trace.dur
                 && a.Trace.pid = b.Trace.pid
                 && a.Trace.tid = b.Trace.tid
                 && a.Trace.id = b.Trace.id
                 && Json.equal (Json.Obj a.Trace.args) (Json.Obj b.Trace.args))
               evs evs')
        then QCheck2.Test.fail_report "an event changed in transit"
        else true)

(* ------------------------------------------------------------------ *)
(* Critical-path analysis                                              *)
(* ------------------------------------------------------------------ *)

(* A hand-scripted merged trace: one cross-shard transaction, gid 7,
   spanning ticks 0-20 on the coordinator with a leg on shard 1.  The
   leg waits over [2,6), a message is in flight over [4,10), and the
   2PC round covers the whole interval.  Under the wait > wal > flight
   > 2pc > exec priority, that attributes wait 4, flight 4 (the part
   not already counted as wait), 2pc 12, exec 0. *)
let test_trace_analysis_breakdown () =
  let ev ?dur ?id ?(args = []) ~pid ~tid name cat ph ts =
    { Trace.name; cat; ph; ts; dur; pid; tid; id; args }
  in
  let gid = [ ("gid", Json.Num 7.) ] in
  let evs =
    [
      ev ~pid:0 ~tid:7 ~args:gid "u1" "txn" Trace.B 0.;
      ev ~pid:1 ~tid:3 ~args:gid "u1" "txn" Trace.B 0.;
      ev ~pid:1 ~tid:3 ~dur:4. "blocked" "wait" Trace.X 2.;
      ev ~pid:0 ~tid:7 ~dur:6. ~args:gid "prepare->1" "flight" Trace.X 4.;
      ev ~pid:0 ~tid:7 ~dur:20. ~args:gid "2pc" "tpc" Trace.X 0.;
      ev ~pid:1 ~tid:3 ~args:[ ("outcome", Json.Str "commit") ] "u1" "txn"
        Trace.E 18.;
      ev ~pid:0 ~tid:7 ~args:[ ("outcome", Json.Str "commit") ] "u1" "txn"
        Trace.E 20.;
    ]
  in
  let r = Obs.Trace_analysis.analyze evs in
  Alcotest.(check bool) "cross-shard" true r.Obs.Trace_analysis.cross_shard;
  check_i "one committed txn" 1 r.Obs.Trace_analysis.committed;
  match r.Obs.Trace_analysis.txns with
  | [ t ] ->
    check_f "total" 20. t.Obs.Trace_analysis.total;
    check_i "fanout" 1 t.Obs.Trace_analysis.fanout;
    let p = t.Obs.Trace_analysis.phases in
    check_f "wait" 4. p.Obs.Trace_analysis.wait;
    check_f "wal" 0. p.Obs.Trace_analysis.wal;
    check_f "flight" 4. p.Obs.Trace_analysis.flight;
    check_f "2pc" 12. p.Obs.Trace_analysis.tpc;
    check_f "exec" 0. p.Obs.Trace_analysis.exec;
    (* The phases partition the transaction's interval exactly. *)
    check_f "phases sum to the total" t.Obs.Trace_analysis.total
      (Obs.Trace_analysis.breakdown_total p);
    let rendered = Obs.Trace_analysis.render r in
    Alcotest.(check bool)
      "render mentions the phase table" true (contains rendered "p99")
  | l -> Alcotest.failf "expected one transaction, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: singleton" `Quick test_histogram_singleton;
    Alcotest.test_case "histogram: exact stats and bounds" `Quick
      test_histogram_exact_and_bounds;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "trace assembly" `Quick test_trace_assembly;
    Alcotest.test_case "trace round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace parse rejects" `Quick test_trace_parse_rejects;
    Alcotest.test_case "contention aggregation" `Quick test_contention;
    Alcotest.test_case "instrumented simulator run" `Quick
      test_instrumented_sim;
    Alcotest.test_case "uninstrumented run deterministic" `Quick
      test_uninstrumented_run_is_deterministic;
    Alcotest.test_case "tpc metrics" `Quick test_tpc_metrics;
    Alcotest.test_case "histogram merge: union of observations" `Quick
      test_histogram_merge_unit;
    to_alcotest prop_histogram_merge_is_union;
    to_alcotest prop_merged_trace_roundtrip;
    Alcotest.test_case "trace analysis: critical-path breakdown" `Quick
      test_trace_analysis_breakdown;
  ]
