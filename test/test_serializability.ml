(* Serializability: fixed-order and existential (Section 3). *)

open Core
open Helpers

let test_in_order () =
  let p = History.perm sec3_atomic in
  check_bool "serializable in b-a" true
    (Serializability.in_order set_env p [ b; a ]);
  check_bool "not serializable in a-b" false
    (Serializability.in_order set_env p [ a; b ]);
  check_bool "order missing an activity" false
    (Serializability.in_order set_env p [ b ])

let test_serializable_witness () =
  match Serializability.serializable set_env (History.perm sec3_atomic) with
  | Some order ->
    Alcotest.(check (list string))
      "witness is b-a" [ "b"; "a" ]
      (List.map Activity.name order)
  | None -> Alcotest.fail "expected a witness"

let test_not_serializable () =
  check_bool "member true on empty set" true
    (Option.is_none
       (Serializability.serializable set_env (History.perm sec3_not_atomic)))

let test_every_order_consistent () =
  (* sec41_dynamic: serializable in all three orders consistent with
     {(b,c)}. *)
  let h = sec41_dynamic in
  check_bool "all consistent orders" true
    (Serializability.in_every_order_consistent_with set_env (History.perm h)
       (History.precedes h));
  let h' = sec41_not_dynamic in
  check_bool "fails for the non-dynamic example" false
    (Serializability.in_every_order_consistent_with set_env (History.perm h')
       (History.precedes h'))

let test_empty_history () =
  check_bool "empty history serializable" true
    (Option.is_some (Serializability.serializable set_env History.empty));
  check_bool "empty in empty order" true
    (Serializability.in_order set_env History.empty [])

let test_queue_example_orders () =
  (* Section 5.1: the queue interleaving is serializable in both a-b-c
     and b-a-c but in no order placing c first. *)
  let p = History.perm sec51_queue in
  check_bool "a-b-c" true (Serializability.in_order queue_env p [ a; b; c ]);
  check_bool "b-a-c" true (Serializability.in_order queue_env p [ b; a; c ]);
  check_bool "c first fails" false
    (Serializability.in_order queue_env p [ c; a; b ]);
  check_bool "c in the middle fails" false
    (Serializability.in_order queue_env p [ a; c; b ])

let test_bank_example_orders () =
  let p = History.perm sec51_withdrawals in
  check_bool "a-b-c" true (Serializability.in_order account_env p [ a; b; c ]);
  check_bool "a-c-b" true (Serializability.in_order account_env p [ a; c; b ]);
  check_bool "b-a-c fails (withdraw before deposit)" false
    (Serializability.in_order account_env p [ b; a; c ])

(* Grow a history event by event and require the caching checker to
   agree with a fresh one-shot check at every prefix. *)
let check_growth ?inc events =
  let inc =
    match inc with
    | Some inc -> inc
    | None -> Serializability.Incremental.create set_env
  in
  let h = ref History.empty in
  List.iteri
    (fun i e ->
      h := History.append !h e;
      let p = History.perm !h in
      let one_shot = Serializability.serializable set_env p in
      let cached = Serializability.Incremental.check inc p in
      check_bool
        (Fmt.str "prefix %d: incremental agrees with one-shot" i)
        (Option.is_some one_shot) (Option.is_some cached))
    events;
  (inc, !h)

let index_of name order =
  let rec go i = function
    | [] -> Alcotest.fail (name ^ " missing from witness")
    | o :: rest -> if String.equal (Activity.name o) name then i else go (i + 1) rest
  in
  go 0 order

let test_incremental_growth () =
  (* b observes member 9 = false but commits last, so the cheap
     candidate "previous witness + new activities" eventually fails and
     the checker must fall back and reorder b before c. *)
  let events =
    [
      Event.invoke a x (Intset.insert 1);
      Event.respond a x Value.ok;
      Event.invoke b x (Intset.member 9);
      Event.respond b x (Value.Bool false);
      Event.invoke c x (Intset.insert 9);
      Event.respond c x Value.ok;
      Event.commit c x;
      Event.commit a x;
      Event.commit b x;
    ]
  in
  let inc, h = check_growth events in
  match Serializability.Incremental.check inc (History.perm h) with
  | Some order ->
    check_bool "witness places b before c" true
      (index_of "b" order < index_of "c" order)
  | None -> Alcotest.fail "expected a witness"

let test_incremental_abort_boundary () =
  (* b reads a's uncommitted insert and commits; when a then aborts,
     perm(h) keeps b's member 1 = true with no insert in sight, so
     serializability is lost — and regained when c re-inserts 1.  The
     incremental checker must track both transitions. *)
  let events =
    [
      Event.invoke a x (Intset.insert 1);
      Event.respond a x Value.ok;
      Event.invoke b x (Intset.member 1);
      Event.respond b x (Value.Bool true);
      Event.commit b x;
      Event.abort a x;
      Event.invoke c x (Intset.insert 1);
      Event.respond c x Value.ok;
      Event.commit c x;
    ]
  in
  let inc, h = check_growth events in
  match Serializability.Incremental.check inc (History.perm h) with
  | Some order ->
    check_bool "witness places c before b" true
      (index_of "c" order < index_of "b" order)
  | None -> Alcotest.fail "expected a witness after c's insert"

let suite =
  [
    Alcotest.test_case "fixed order" `Quick test_in_order;
    Alcotest.test_case "existential witness" `Quick test_serializable_witness;
    Alcotest.test_case "unserializable" `Quick test_not_serializable;
    Alcotest.test_case "every consistent order" `Quick
      test_every_order_consistent;
    Alcotest.test_case "empty history" `Quick test_empty_history;
    Alcotest.test_case "queue orders (5.1)" `Quick test_queue_example_orders;
    Alcotest.test_case "bank orders (5.1)" `Quick test_bank_example_orders;
    Alcotest.test_case "incremental growth" `Quick test_incremental_growth;
    Alcotest.test_case "incremental abort boundary" `Quick
      test_incremental_abort_boundary;
  ]
