(* The lint certifier end to end: the mutation self-test must flag
   every seeded corruption (the certifier's own acceptance test), the
   real catalogue must certify clean, and — as a qcheck property — the
   registry hand tables must agree with the derived relation. *)

open Core

let to_alcotest = QCheck_alcotest.to_alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- mutation self-test ------------------------------------------- *)

let outcomes = lazy (Lint_mutation.self_test ~depth:2)

let test_mutations_all_detected () =
  let outcomes = Lazy.force outcomes in
  Alcotest.(check int) "twelve seeded corruptions" 12 (List.length outcomes);
  Alcotest.(check bool) "all detected" true
    (Lint_mutation.all_detected outcomes);
  List.iter
    (fun (o : Lint_mutation.outcome) ->
      Alcotest.(check bool) (o.name ^ " detected") true o.detected;
      Alcotest.(check bool)
        (o.name ^ " carries evidence")
        true (o.evidence <> ""))
    outcomes

(* The PR 3 multiversion bug — the unstable grant guard — is only
   visible to the three-transaction probe: reintroducing it must be
   flagged as a static-atomicity violation. *)
let test_pr3_bug_detected () =
  match
    List.find_opt
      (fun (o : Lint_mutation.outcome) ->
        o.name = "multiversion-unstable-grant")
      (Lazy.force outcomes)
  with
  | None -> Alcotest.fail "multiversion-unstable-grant mutation missing"
  | Some o ->
    Alcotest.(check string) "protocol-level corruption" "protocol" o.kind;
    Alcotest.(check bool) "detected" true o.detected;
    Alcotest.(check bool) "triple-probe evidence" true
      (contains o.evidence "not static atomic")

(* The hybrid contended-commit mutation drops a committed version from
   the archive when other intentions are outstanding — invisible to
   every pair probe (no pair schedule puts a reader after a contended
   commit), caught only by the hybrid triple probe's later reader. *)
let test_hybrid_forget_detected () =
  match
    List.find_opt
      (fun (o : Lint_mutation.outcome) ->
        o.name = "hybrid-forgets-contended-commit")
      (Lazy.force outcomes)
  with
  | None -> Alcotest.fail "hybrid-forgets-contended-commit mutation missing"
  | Some o ->
    Alcotest.(check string) "protocol-level corruption" "protocol" o.kind;
    Alcotest.(check bool) "detected" true o.detected;
    Alcotest.(check bool) "triple-probe evidence" true
      (contains o.evidence "not hybrid atomic")

(* The semiqueue deq/deq flip is only visible to the non-deterministic
   engine: both transactions may be granted the same item, and the two
   grants then compose in neither order. *)
let test_semiqueue_flip_detected () =
  match
    List.find_opt
      (fun (o : Lint_mutation.outcome) ->
        o.name = "table-semiqueue-deqs-commute")
      (Lazy.force outcomes)
  with
  | None -> Alcotest.fail "semiqueue mutation missing"
  | Some o ->
    Alcotest.(check bool) "detected" true o.detected;
    Alcotest.(check bool) "neither-order evidence" true
      (contains o.evidence "neither order")

(* --- the real catalogue certifies clean --------------------------- *)

let report2 = lazy (Lint.run ~depth:2 ())

let test_catalogue_clean () =
  let report = Lazy.force report2 in
  Alcotest.(check int) "no unsound findings" 0 (Lint.unsound_total report);
  Alcotest.(check int) "eleven table certificates" 11
    (List.length report.Lint.tables);
  Alcotest.(check int)
    "twenty-five protocol certificates (fourteen hand-written + eleven \
     synthesized)"
    25
    (List.length report.Lint.protocols);
  List.iter
    (fun (t : Table_cert.t) ->
      let name = t.Table_cert.adt in
      Alcotest.(check int) (name ^ ": unsound table entries") 0
        (List.length (Table_cert.unsound t));
      Alcotest.(check int) (name ^ ": loose table entries") 0
        (List.length (Table_cert.loose t));
      Alcotest.(check int) (name ^ ": undecided table entries") 0
        (List.length (Table_cert.unknown t)))
    report.Lint.tables;
  List.iter
    (fun (c : Lint.protocol_cert) ->
      Alcotest.(check (list string)) (c.protocol ^ ": unsound pairs") []
        c.unsound;
      Alcotest.(check bool)
        (c.protocol ^ ": looseness within [0,1]")
        true
        (c.looseness >= 0. && c.looseness <= 1.);
      Alcotest.(check bool)
        (c.protocol ^ ": cross-shard probes ran")
        true
        (c.cross.Lint_xprobe.probed > 0))
    report.Lint.protocols

(* The paper's gradient: on the same account alphabet, escrow (its
   data-dependent protocol) loses strictly less concurrency than
   commutativity locking, which loses strictly less than read/write
   locking. *)
let test_looseness_gradient () =
  let report = Lazy.force report2 in
  let looseness name =
    match
      List.find_opt
        (fun (c : Lint.protocol_cert) -> c.protocol = name)
        report.Lint.protocols
    with
    | Some c -> c.looseness
    | None -> Alcotest.failf "protocol %s missing from report" name
  in
  Alcotest.(check bool) "escrow tighter than commutativity" true
    (looseness "escrow" < looseness "commutativity");
  Alcotest.(check bool) "commutativity tighter than rw" true
    (looseness "commutativity" < looseness "rw");
  Alcotest.(check (float 0.0)) "da_generic_set is optimal" 0.0
    (looseness "da_generic_set");
  Alcotest.(check (float 0.0)) "da_semiqueue is optimal" 0.0
    (looseness "da_semiqueue")

let test_single_protocol_and_errors () =
  let report = Lint.run ~protocol:"escrow" ~depth:2 () in
  Alcotest.(check int) "one table" 1 (List.length report.Lint.tables);
  Alcotest.(check int) "one protocol" 1 (List.length report.Lint.protocols);
  (match report.Lint.tables with
  | [ t ] -> Alcotest.(check string) "its adt" "account" t.Table_cert.adt
  | _ -> assert false);
  let bare = Lint.run ~protocol:"semiqueue" ~depth:2 () in
  Alcotest.(check int) "bare adt: one table" 1 (List.length bare.Lint.tables);
  Alcotest.(check int) "bare adt: no protocols" 0
    (List.length bare.Lint.protocols);
  Alcotest.check_raises "unknown name"
    (Invalid_argument "lint: unknown protocol or ADT nonesuch") (fun () ->
      ignore (Lint.run ~protocol:"nonesuch" ~depth:2 ()))

let test_json_rendering () =
  let report = Lint.run ~protocol:"escrow" ~depth:2 () in
  let s = Obs.Json.to_string (Lint.to_json report) in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("json mentions " ^ key) true (contains s key))
    [ "unsound_total"; "looseness"; "exploration"; "escrow"; "account" ]

(* --- qcheck: hand tables agree with the derived relation ---------- *)

let domain_pair_gen =
  QCheck2.Gen.(
    oneofl Lint_domain.all >>= fun (d : Lint_domain.t) ->
    let n = List.length d.alphabet in
    pair (int_bound (n - 1)) (int_bound (n - 1)) >>= fun (i, j) ->
    return (d, List.nth d.alphabet i, List.nth d.alphabet j))

let print_domain_pair (d, p, q) =
  Fmt.str "%s: %a / %a" d.Lint_domain.name Operation.pp p Operation.pp q

let tables_agree =
  QCheck2.Test.make
    ~name:"registry hand tables agree with the derived relation (depth 3)"
    ~count:80 ~print:print_domain_pair domain_pair_gen
    (fun ((d : Lint_domain.t), p, q) ->
      let verdict =
        Commutativity_check.commute_on_reachable d.spec ~gen_ops:d.alphabet
          ~state_depth:3 p q
      in
      match verdict with
      | Commutativity_check.Commute -> d.commutes p q
      | Commutativity_check.Conflict _ -> not (d.commutes p q)
      | Commutativity_check.Unknown reason ->
        QCheck2.Test.fail_reportf "undecided at depth 3: %s" reason)

let suite =
  [
    Alcotest.test_case "mutation self-test flags all twelve corruptions" `Quick
      test_mutations_all_detected;
    Alcotest.test_case "PR 3 multiversion bug caught by triple probe" `Quick
      test_pr3_bug_detected;
    Alcotest.test_case "hybrid contended-commit forgetter caught" `Quick
      test_hybrid_forget_detected;
    Alcotest.test_case "semiqueue deq/deq flip caught" `Quick
      test_semiqueue_flip_detected;
    Alcotest.test_case "catalogue certifies with zero unsound entries" `Quick
      test_catalogue_clean;
    Alcotest.test_case "looseness follows the paper's gradient" `Quick
      test_looseness_gradient;
    Alcotest.test_case "single-protocol runs and unknown names" `Quick
      test_single_protocol_and_errors;
    Alcotest.test_case "json report carries the certificate" `Quick
      test_json_rendering;
    to_alcotest tables_agree;
  ]
