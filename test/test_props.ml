(* Property-based tests (qcheck): the paper's lemmas on random
   histories, model-vs-spec agreement for the ADTs, and protocol
   guarantees under random schedules. *)

open Core
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- History generation ------------------------------------------- *)

(* Random protocol-generated histories over two objects: a
   dynamic-atomic set and an escrow account, driven by random scripts
   under a random schedule.  These are well-formed by construction and
   exercise invokes, waits, commits, aborts and deadlock victims. *)
let random_da_history seed =
  let rng = Rng.create (seed * 7919) in
  let sys = System.create () in
  let log = System.log sys in
  System.add_object sys (Da_set.make log x);
  System.add_object sys (Escrow_account.make log y);
  let random_step () =
    match Rng.int rng 6 with
    | 0 -> (x, Intset.insert (Rng.int rng 3))
    | 1 -> (x, Intset.delete (Rng.int rng 3))
    | 2 -> (x, Intset.member (Rng.int rng 3))
    | 3 -> (y, Bank_account.deposit (1 + Rng.int rng 5))
    | 4 -> (y, Bank_account.withdraw (1 + Rng.int rng 5))
    | _ -> (y, Bank_account.balance)
  in
  let scripts =
    List.init
      (2 + Rng.int rng 3)
      (fun _ -> (`Update, List.init (1 + Rng.int rng 2) (fun _ -> random_step ())))
  in
  run_scripts ~seed sys scripts

let two_object_env =
  Spec_env.of_list [ (x, Intset.spec); (y, Bank_account.spec) ]

let history_gen = QCheck2.Gen.map random_da_history QCheck2.Gen.small_nat

(* --- Lemma 2: precedes(h|x) ⊆ precedes(h) -------------------------- *)

let lemma2 =
  QCheck2.Test.make ~name:"lemma 2: precedes(h|x) subset of precedes(h)"
    ~count:60 history_gen (fun h ->
      List.for_all
        (fun obj ->
          let hx = History.project_object obj h in
          List.for_all
            (fun (p, q) -> History.precedes_mem h p q)
            (History.precedes hx))
        (History.objects h))

(* --- Lemma 3: serializable in T iff every projection is ------------ *)

let lemma3 =
  QCheck2.Test.make
    ~name:"lemma 3: in_order(h,T) iff in_order(h|x,T) for every x" ~count:40
    QCheck2.Gen.(pair small_nat small_nat)
    (fun (seed, perm_seed) ->
      let h = History.perm (random_da_history seed) in
      let acts = History.activities h in
      let order = Rng.shuffle (Rng.create (perm_seed + 1)) acts in
      let whole = Serializability.in_order two_object_env h order in
      let parts =
        List.for_all
          (fun obj ->
            Serializability.in_order two_object_env
              (History.project_object obj h)
              order)
          (History.objects h)
      in
      whole = parts)

(* --- perm properties ----------------------------------------------- *)

let perm_props =
  QCheck2.Test.make ~name:"perm: idempotent, committed-only, subsequence"
    ~count:60 history_gen (fun h ->
      let p = History.perm h in
      History.equal p (History.perm p)
      && List.for_all
           (fun e ->
             Activity.Set.mem (Event.activity e) (History.committed h))
           (History.to_list p)
      && History.length p <= History.length h)

(* --- Well-formedness of generated histories ------------------------ *)

let generated_well_formed =
  QCheck2.Test.make ~name:"protocol histories are well-formed" ~count:60
    history_gen (fun h -> Wellformed.is_well_formed Wellformed.Base h)

(* --- Theorem 1 end-to-end: the data-dependent objects are dynamic
       atomic, hence atomic ----------------------------------------- *)

let small_enough h = Activity.Set.cardinal (History.committed h) <= 6

let dynamic_atomic_protocols =
  QCheck2.Test.make
    ~name:"da objects: histories dynamic atomic (and thus atomic)" ~count:40
    history_gen (fun h ->
      QCheck2.assume (small_enough h);
      Atomicity.dynamic_atomic two_object_env h
      && Atomicity.atomic two_object_env h)

(* --- Static protocol property -------------------------------------- *)

let random_static_history seed =
  let rng = Rng.create (seed * 104729) in
  let sys = System.create ~policy:`Static () in
  System.add_object sys (Multiversion.make (System.log sys) x Intset.spec);
  let random_step () =
    match Rng.int rng 3 with
    | 0 -> (x, Intset.insert (Rng.int rng 3))
    | 1 -> (x, Intset.delete (Rng.int rng 3))
    | _ -> (x, Intset.member (Rng.int rng 3))
  in
  let scripts =
    List.init
      (2 + Rng.int rng 3)
      (fun _ -> (`Update, List.init (1 + Rng.int rng 2) (fun _ -> random_step ())))
  in
  run_scripts ~seed sys scripts

let static_atomic_protocol =
  QCheck2.Test.make ~name:"multiversion: histories static atomic" ~count:40
    QCheck2.Gen.small_nat (fun seed ->
      let h = random_static_history seed in
      QCheck2.assume (small_enough h);
      Wellformed.is_well_formed Wellformed.Static h
      && Atomicity.static_atomic set_env h
      && Atomicity.atomic set_env h)

(* --- Hybrid protocol property --------------------------------------- *)

let random_hybrid_history seed =
  let rng = Rng.create (seed * 1299709) in
  let sys = System.create ~policy:`Hybrid () in
  System.add_object sys
    (Hybrid.of_adt (System.log sys) y (module Bank_account));
  let scripts =
    List.init
      (2 + Rng.int rng 3)
      (fun _ ->
        if Rng.int rng 4 = 0 then (`Read_only, [ (y, Bank_account.balance) ])
        else
          ( `Update,
            List.init
              (1 + Rng.int rng 2)
              (fun _ ->
                match Rng.int rng 3 with
                | 0 -> (y, Bank_account.deposit (1 + Rng.int rng 5))
                | 1 -> (y, Bank_account.withdraw (1 + Rng.int rng 5))
                | _ -> (y, Bank_account.balance)) ))
  in
  run_scripts ~seed sys scripts

let hybrid_atomic_protocol =
  QCheck2.Test.make ~name:"hybrid: histories hybrid atomic" ~count:40
    QCheck2.Gen.small_nat (fun seed ->
      let h = random_hybrid_history seed in
      QCheck2.assume (small_enough h);
      Wellformed.is_well_formed Wellformed.Hybrid h
      && Atomicity.hybrid_atomic account_env h
      && Atomicity.atomic account_env h)

(* --- Pruned vs naive serializability ------------------------------- *)

let serializable_agrees =
  QCheck2.Test.make
    ~name:"pruned serializability search agrees with permutation spec"
    ~count:60 history_gen (fun h ->
      let p = History.perm h in
      QCheck2.assume (List.length (History.activities p) <= 6);
      Option.is_some (Serializability.serializable two_object_env p)
      = Option.is_some (Serializability.serializable_naive two_object_env p))

(* --- Indexed queries vs the naive reference ------------------------ *)

let pair_equal (a, b) (a', b') = Activity.equal a a' && Activity.equal b b'

(* Every indexed query answers exactly like the retained list-scan
   reference ([History.Reference]). *)
let queries_agree h =
  let module R = History.Reference in
  List.for_all
    (fun x ->
      History.equal (History.project_object x h) (R.project_object x h))
    (History.objects h)
  && List.for_all
       (fun a ->
         History.equal (History.project_activity a h) (R.project_activity a h))
       (History.activities h)
  && List.equal Activity.equal (History.activities h) (R.activities h)
  && List.equal Object_id.equal (History.objects h) (R.objects h)
  && Activity.Set.equal (History.committed h) (R.committed h)
  && Activity.Set.equal (History.aborted h) (R.aborted h)
  && Activity.Set.equal (History.active h) (R.active h)
  && History.equal (History.perm h) (R.perm h)
  && List.equal pair_equal (History.precedes h) (R.precedes h)
  && List.for_all
       (fun a ->
         List.for_all
           (fun b ->
             History.precedes_mem h a b = R.precedes_mem h a b)
           (History.activities h))
       (History.activities h)
  && List.for_all
       (fun a ->
         Option.equal Timestamp.equal (History.timestamp_of h a)
           (R.timestamp_of h a))
       (History.activities h)

let indexed_agrees_reference =
  QCheck2.Test.make ~name:"indexed history queries agree with Reference"
    ~count:60 history_gen queries_agree

let indexed_agrees_reference_timestamped =
  (* Static-protocol histories carry initiation timestamps, covering
     the [timestamp_of] index. *)
  QCheck2.Test.make
    ~name:"indexed queries agree with Reference (timestamped histories)"
    ~count:40 QCheck2.Gen.small_nat (fun seed ->
      queries_agree (random_static_history seed))

let indexed_extension_agrees =
  (* The append-time index extension path: build a prefix, force its
     indexes by querying, then append the remaining events one by one —
     the extended indexes must agree with the reference on the whole
     history. *)
  QCheck2.Test.make ~name:"index extended by append agrees with Reference"
    ~count:40
    QCheck2.Gen.(pair small_nat small_nat)
    (fun (seed, cut) ->
      let events = History.to_list (random_da_history seed) in
      let n = List.length events in
      let k = if n = 0 then 0 else cut mod (n + 1) in
      let prefix = List.filteri (fun i _ -> i < k) events in
      let rest = List.filteri (fun i _ -> i >= k) events in
      let h0 = History.of_list prefix in
      ignore (History.activities h0);
      ignore (History.precedes h0);
      ignore (History.perm h0);
      let h = List.fold_left History.append h0 rest in
      queries_agree h)

(* --- Incremental serializability vs one-shot ------------------------ *)

let incremental_serializability_agrees =
  (* Growing a history event by event — across abort and commit
     boundaries, which the da histories contain — and re-checking with
     the caching checker must agree with a fresh one-shot check at
     every prefix. *)
  QCheck2.Test.make
    ~name:"incremental serializability agrees with one-shot per prefix"
    ~count:30 history_gen (fun h ->
      QCheck2.assume (List.length (History.activities h) <= 6);
      let inc = Serializability.Incremental.create two_object_env in
      let cur = ref History.empty in
      List.for_all
        (fun e ->
          cur := History.append !cur e;
          let p = History.perm !cur in
          Option.is_some (Serializability.Incremental.check inc p)
          = Option.is_some (Serializability.serializable two_object_env p))
        (History.to_list h))

(* --- Notation round trip ------------------------------------------- *)

let notation_round_trip =
  QCheck2.Test.make ~name:"notation round-trips protocol histories" ~count:60
    history_gen (fun h ->
      match Notation.history_of_string (Notation.history_to_string h) with
      | Ok h' -> History.equal h h'
      | Error _ -> false)

(* --- Two-phase commit under random adversity ------------------------ *)

let tpc_always_atomic =
  QCheck2.Test.make ~name:"2PC atomic commitment under random adversity"
    ~count:80
    QCheck2.Gen.(
      tup4 (int_range 2 5) (int_bound 4) (int_bound 5) small_nat)
    (fun (participants, crash_kind, no_voter, seed) ->
      let coordinator_crash =
        match crash_kind with
        | 0 -> Tpc.No_crash
        | 1 -> Tpc.Before_prepare
        | 2 -> Tpc.After_prepare
        | 3 -> Tpc.Mid_decision 1
        | _ -> Tpc.Mid_decision (participants - 1)
      in
      let votes =
        List.init participants (fun i ->
            if i = no_voter then Tpc.No else Tpc.Yes)
      in
      let cfg =
        {
          Tpc.default_config with
          participants;
          site_clocks = List.init participants (fun i -> (i * 7) mod 11);
          votes;
          coordinator_crash;
          seed = seed + 1;
        }
      in
      let o = Tpc.run cfg in
      Tpc.atomic_commitment o
      &&
      match o.Tpc.commit_ts with
      | Some ts ->
        List.for_all (fun c -> ts > c) cfg.Tpc.site_clocks
      | None -> true)

(* --- ADT specs against model implementations ----------------------- *)

module IntSet = Set.Make (Int)

let intset_matches_model =
  QCheck2.Test.make ~name:"intset spec matches Set.Make(Int)" ~count:100
    QCheck2.Gen.(list_size (int_bound 20) (pair (int_bound 3) (int_bound 5)))
    (fun ops ->
      let rec go frontier model = function
        | [] -> true
        | (kind, k) :: rest -> (
          let op, expected =
            match kind with
            | 0 -> (Intset.insert k, Value.ok)
            | 1 -> (Intset.delete k, Value.ok)
            | 2 -> (Intset.member k, Value.Bool (IntSet.mem k model))
            | _ -> (Intset.size, Value.Int (IntSet.cardinal model))
          in
          let model' =
            match kind with
            | 0 -> IntSet.add k model
            | 1 -> IntSet.remove k model
            | _ -> model
          in
          match Seq_spec.outcomes frontier op with
          | [ (res, f) ] ->
            Value.equal res expected && go f model' rest
          | _ -> false)
      in
      go (Seq_spec.start Intset.spec) IntSet.empty ops)

let account_never_negative =
  QCheck2.Test.make ~name:"account balance never goes negative" ~count:100
    QCheck2.Gen.(list_size (int_bound 20) (pair bool (int_bound 30)))
    (fun ops ->
      let rec go frontier balance = function
        | [] -> true
        | (is_deposit, n) :: rest -> (
          let op =
            if is_deposit then Bank_account.deposit n
            else Bank_account.withdraw n
          in
          match Seq_spec.outcomes frontier op with
          | [ (res, f) ] ->
            let balance' =
              if is_deposit then balance + n
              else if Value.equal res Value.ok then balance - n
              else balance
            in
            balance' >= 0
            && (Value.equal res Value.ok
               || Value.equal res Value.insufficient_funds)
            && go f balance' rest
          | _ -> false)
      in
      go (Seq_spec.start Bank_account.spec) 0 ops)

let commutativity_tables_sound =
  (* If the table says two operations commute, executing them in either
     order from a random reachable state gives the same results and the
     same final state (checked via a third probe operation). *)
  QCheck2.Test.make ~name:"intset commutativity table is sound" ~count:200
    QCheck2.Gen.(
      triple
        (list_size (int_bound 6) (pair (int_bound 2) (int_bound 3)))
        (pair (int_bound 3) (int_bound 3))
        (pair (int_bound 2) (int_bound 2)))
    (fun (prefix, (k1, k2), (op1k, op2k)) ->
      let mk kind k =
        match kind with
        | 0 -> Intset.insert k
        | 1 -> Intset.delete k
        | _ -> Intset.member k
      in
      let p = mk op1k k1 and q = mk op2k k2 in
      if not (Intset.commutes p q) then true
      else begin
        (* Build a reachable start state. *)
        let start =
          List.fold_left
            (fun f (kind, k) ->
              match Seq_spec.outcomes f (mk kind k) with
              | (_, f') :: _ -> f'
              | [] -> f)
            (Seq_spec.start Intset.spec)
            prefix
        in
        let run ops =
          List.fold_left
            (fun acc op ->
              match acc with
              | None -> None
              | Some (f, results) -> (
                match Seq_spec.outcomes f op with
                | [ (res, f') ] -> Some (f', res :: results)
                | _ -> None))
            (Some (start, []))
            ops
        in
        let probes f =
          List.map
            (fun op ->
              match Seq_spec.outcomes f op with
              | (res, _) :: _ -> res
              | [] -> Value.Sym "stuck")
            [ Intset.size; Intset.member k1; Intset.member k2 ]
        in
        match (run [ p; q ], run [ q; p ]) with
        | Some (f1, [ rq1; rp1 ]), Some (f2, [ rp2; rq2 ]) ->
          Value.equal rp1 rp2 && Value.equal rq1 rq2
          && List.equal Value.equal (probes f1) (probes f2)
        | _ -> false
      end)

let suite =
  List.map to_alcotest
    [
      lemma2;
      lemma3;
      perm_props;
      generated_well_formed;
      dynamic_atomic_protocols;
      static_atomic_protocol;
      hybrid_atomic_protocol;
      serializable_agrees;
      indexed_agrees_reference;
      indexed_agrees_reference_timestamped;
      indexed_extension_agrees;
      incremental_serializability_agrees;
      notation_round_trip;
      tpc_always_atomic;
      intset_matches_model;
      account_never_negative;
      commutativity_tables_sound;
    ]
