(* The ADT-inference heuristic used by `weihl check` and `weihl
   recover`: every built-in type is recognizable from a representative
   operation list, and ambiguous names resolve deterministically. *)

open Core
open Weihl_event

let infer_name ops =
  match Adt_registry.infer_spec ops with
  | Some spec -> Seq_spec.type_name spec
  | None -> "<none>"

let check_infer msg expected ops =
  Alcotest.(check string) msg expected (infer_name ops)

let op name = Operation.make name []

let test_each_adt () =
  check_infer "account" "bank_account"
    [ op "deposit"; op "withdraw"; op "balance" ];
  check_infer "fifo queue" "fifo_queue" [ op "enqueue"; op "dequeue" ];
  check_infer "stack" "stack" [ op "push"; op "pop" ];
  check_infer "kv map" "kv_map" [ op "put"; op "get" ];
  check_infer "priority queue" "priority_queue"
    [ op "add"; op "extract_min" ];
  check_infer "counter" "counter" [ op "increment" ];
  check_infer "blind counter" "blind_counter" [ op "bump" ];
  check_infer "append log" "append_log" [ op "append" ];
  check_infer "semiqueue" "semiqueue" [ op "enq"; op "deq" ];
  check_infer "register" "register" [ op "write" ];
  check_infer "intset" "intset" [ op "insert"; op "member" ]

let test_ambiguity_is_deterministic () =
  (* "add" alone could plausibly mean a set; the heuristic always
     chooses the priority queue. *)
  check_infer "bare add" "priority_queue" [ op "add" ];
  (* "remove" belongs to the kv map even next to set-ish ops; the
     map test runs first. *)
  check_infer "remove + insert" "kv_map" [ op "insert"; op "remove" ];
  (* A read-only history on an account is still an account. *)
  check_infer "balance only" "bank_account" [ op "balance" ];
  (* "size" alone falls through to the intset. *)
  check_infer "size only" "intset" [ op "size" ]

let test_unknown () =
  check_infer "no match" "<none>" [ op "frobnicate" ];
  check_infer "empty" "<none>" []

let test_registry_catalogue () =
  (* Every catalogued name resolves, and find agrees with the list. *)
  List.iter
    (fun (name, spec) ->
      match Adt_registry.find name with
      | None -> Alcotest.failf "%s not found" name
      | Some s ->
        Alcotest.(check string)
          name (Seq_spec.type_name spec) (Seq_spec.type_name s))
    Adt_registry.all;
  Alcotest.(check bool) "unknown name" true (Adt_registry.find "nope" = None)

let suite =
  [
    Alcotest.test_case "each ADT inferred" `Quick test_each_adt;
    Alcotest.test_case "ambiguous names deterministic" `Quick
      test_ambiguity_is_deterministic;
    Alcotest.test_case "unknown operations" `Quick test_unknown;
    Alcotest.test_case "registry catalogue" `Quick test_registry_catalogue;
  ]
