(* The robustness layer: WAL framing, corrupted-log recovery, fault
   plans, the crash-recovery harness, message faults, and the abort
   counters of the multicore runtime. *)

open Core
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- WAL framing ---------------------------------------------------- *)

let test_wal_round_trip () =
  match Wal.decode (Wal.encode sec3_atomic) with
  | Ok (h, Wal.Intact) -> Alcotest.check history "same history" sec3_atomic h
  | Ok (_, Wal.Torn _) -> Alcotest.fail "unexpected torn tail"
  | Error e -> Alcotest.fail (Fmt.str "decode failed: %a" Wal.pp_error e)

let test_wal_empty () =
  match Wal.decode (Wal.encode History.empty) with
  | Ok (h, Wal.Intact) -> check_int "no events" 0 (History.length h)
  | _ -> Alcotest.fail "empty log must decode intact"

let test_wal_torn_tail () =
  let text = Wal.encode sec3_atomic in
  (* Cut into the last record: the tail is dropped, the prefix
     survives. *)
  let damaged = String.sub text 0 (String.length text - 5) in
  match Wal.decode damaged with
  | Ok (h, Wal.Torn 1) ->
    check_int "one record lost" (History.length sec3_atomic - 1)
      (History.length h)
  | Ok (_, s) -> Alcotest.fail (Fmt.str "expected Torn 1, got %a" Wal.pp_status s)
  | Error e -> Alcotest.fail (Fmt.str "decode failed: %a" Wal.pp_error e)

let split_lines text = String.split_on_char '\n' text

let corrupt_line k text =
  let lines = split_lines text in
  String.concat "\n"
    (List.mapi
       (fun i line ->
         if i = k && String.length line > 0 then
           let b = Bytes.of_string line in
           let last = Bytes.length b - 1 in
           Bytes.set b last (if Bytes.get b last = 'x' then 'y' else 'x');
           Bytes.to_string b
         else line)
       lines)

let test_wal_mid_log_is_loud () =
  let text = Wal.encode sec3_atomic in
  (* Damage the second record (line 2: header is line 0): well-framed
     records follow, so decode must refuse. *)
  match Wal.decode (corrupt_line 2 text) with
  | Error { Wal.record = 1; _ } -> ()
  | Error e ->
    Alcotest.fail (Fmt.str "wrong record blamed: %a" Wal.pp_error e)
  | Ok _ -> Alcotest.fail "mid-log corruption must not decode"

let test_wal_header_is_loud () =
  let text = Wal.encode sec3_atomic in
  let damaged = "X" ^ String.sub text 1 (String.length text - 1) in
  match Wal.decode damaged with
  | Error { Wal.record = -1; _ } -> ()
  | Error e -> Alcotest.fail (Fmt.str "expected header blame: %a" Wal.pp_error e)
  | Ok _ -> Alcotest.fail "damaged header must not decode"

(* --- Recovery from a damaged WAL ------------------------------------ *)

let fresh_set_system () =
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  System.add_object sys (Escrow_account.make (System.log sys) y);
  sys

let test_restore_rejects_illegal_log () =
  (* sec3_not_atomic commits member(2) = true on an empty set: the log
     claims a result the specification rules out, and recovery must say
     so rather than install it. *)
  let sys = fresh_set_system () in
  match
    Recovery.restore_durable Recovery.Commit_order sys
      (Wal.encode sec3_not_atomic)
  with
  | Error (Recovery.Divergent _) -> ()
  | Error f -> Alcotest.fail (Fmt.str "wrong failure: %a" Recovery.pp_failure f)
  | Ok _ -> Alcotest.fail "an impossible log must not replay"

(* --- Random histories for the corruption property ------------------- *)

let random_history seed =
  let rng = Rng.create ((seed * 31) + 11) in
  let sys = fresh_set_system () in
  let random_step () =
    match Rng.int rng 6 with
    | 0 -> (x, Intset.insert (Rng.int rng 3))
    | 1 -> (x, Intset.delete (Rng.int rng 3))
    | 2 -> (x, Intset.member (Rng.int rng 3))
    | 3 -> (y, Bank_account.deposit (1 + Rng.int rng 5))
    | 4 -> (y, Bank_account.withdraw (1 + Rng.int rng 5))
    | _ -> (y, Bank_account.balance)
  in
  let scripts =
    List.init
      (2 + Rng.int rng 4)
      (fun _ -> (`Update, List.init (1 + Rng.int rng 3) (fun _ -> random_step ())))
  in
  run_scripts ~seed sys scripts

let wal_encodes_round_trip =
  QCheck2.Test.make ~name:"wal round-trips protocol histories" ~count:60
    QCheck2.Gen.small_nat (fun seed ->
      let h = random_history seed in
      match Wal.decode (Wal.encode h) with
      | Ok (h', Wal.Intact) -> History.equal h h'
      | _ -> false)

let is_event_prefix short long =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | e :: es, f :: fs -> Event.equal e f && go (es, fs)
  in
  go (short, long)

(* The headline corruption property: damage a durable log anywhere —
   truncation at a random offset, a flipped bit, a torn tail — and
   recovery either lands on a committed prefix of the original history
   or fails loudly.  It never silently installs anything else. *)
let wal_corruption_never_silent =
  QCheck2.Test.make
    ~name:"wal corruption: recover a committed prefix or fail loudly"
    ~count:150
    QCheck2.Gen.(triple small_nat (int_bound 2) (int_bound 1_000_000))
    (fun (seed, kind, at) ->
      let h = random_history seed in
      let text = Wal.encode h in
      let len = String.length text in
      let damaged =
        match kind with
        | 0 -> String.sub text 0 (at mod (len + 1))
        | 1 ->
          let pos = at mod len and bit = (at lsr 13) land 7 in
          let b = Bytes.of_string text in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          Bytes.to_string b
        | _ -> String.sub text 0 (len - (1 + (at mod min len 40)))
      in
      match Wal.decode damaged with
      | Error _ -> true (* loud is fine *)
      | Ok (h', _) ->
        (* Whatever survives must be a prefix of what was written... *)
        is_event_prefix (History.to_list h') (History.to_list h)
        (* ...and recovery must replay exactly its committed
           projection. *)
        &&
        let sys = fresh_set_system () in
        (match Recovery.restore_durable Recovery.Commit_order sys damaged with
        | Ok r ->
          r.Recovery.replayed
          = List.length (Recovery.committed_in_order Recovery.Commit_order h')
        | Error _ -> false))

(* --- Fault plans ----------------------------------------------------- *)

let test_plan_deterministic () =
  let p1 = Fault_plan.generate ~seed:97 and p2 = Fault_plan.generate ~seed:97 in
  check_bool "same plan" true (p1 = p2);
  let p3 = Fault_plan.generate ~seed:98 in
  check_bool "different seed differs" false (p1 = p3)

let test_corrupt_shapes () =
  let text = "weihl-wal 1\nabcdef01 0 <commit,x,a>\n" in
  let tear k =
    Fault_plan.corrupt
      { (Fault_plan.generate ~seed:1) with Fault_plan.log_fault = k }
      text
  in
  check_bool "pristine unchanged" true (tear Fault_plan.Pristine = text);
  check_bool "torn tail shortens" true
    (String.length (tear (Fault_plan.Torn_tail 4)) < String.length text);
  check_int "truncate keeps offset" 7
    (String.length (tear (Fault_plan.Truncate_at 7)));
  let flipped = tear (Fault_plan.Bit_flip 3) in
  check_int "bit flip preserves length" (String.length text)
    (String.length flipped);
  check_bool "bit flip changes text" false (flipped = text)

(* --- The crash-recovery harness -------------------------------------- *)

(* The acceptance bar: 200+ distinct seeded fault schedules across the
   whole protocol catalog — and so across all three timestamp policies —
   each crashing, recovering from a (possibly damaged) durable log,
   resuming traffic, and re-checking atomicity and distributed
   commitment.  No schedule may diverge. *)
let test_fault_schedules_converge () =
  let summary =
    Fault_harness.run_many ~seeds:(List.init 204 (fun i -> i + 1)) ()
  in
  check_int "204 schedules" 204 summary.Fault_harness.schedules;
  check_bool "some schedules converge" true (summary.Fault_harness.converged > 0);
  check_bool "some corruption is detected" true
    (summary.Fault_harness.corruption_detected > 0);
  (match Fault_harness.divergences summary with
  | [] -> ()
  | r :: _ ->
    Alcotest.fail (Fmt.str "divergence: %a" Fault_harness.pp_result r));
  check_int "no divergences" 0 summary.Fault_harness.diverged

let test_single_schedule_fields () =
  let proto =
    match Fault_harness.find_protocol "escrow" with
    | Some p -> p
    | None -> Alcotest.fail "escrow missing from catalog"
  in
  let r =
    Fault_harness.run_schedule ~quick:true (Fault_plan.generate ~seed:3) proto
  in
  check_bool "did not diverge" true
    (match r.Fault_harness.verdict with
    | Fault_harness.Diverged _ -> false
    | _ -> true);
  check_bool "protocol recorded" true (r.Fault_harness.protocol = "escrow")

let test_catalog_covers_policies () =
  let has p =
    List.exists (fun e -> e.Fault_harness.policy = p) Fault_harness.catalog
  in
  check_bool "dynamic protocols" true (has `None_);
  check_bool "static protocols" true (has `Static);
  check_bool "hybrid protocols" true (has `Hybrid)

(* --- Satellite: Msim drop/duplicate counting ------------------------- *)

let test_msim_drop_counting () =
  let reg = Obs.Metrics.Registry.create () in
  let delivered = ref 0 in
  let sim =
    Msim.create
      ~faults:{ Msim.drop = 1.0; duplicate = 0.; reorder = 0. }
      ~metrics:reg ~seed:5 ~nodes:2
      ~handler:(fun _ ~node:_ _ -> incr delivered)
      ()
  in
  for _ = 1 to 7 do
    Msim.send sim ~src:0 ~dst:1 "m"
  done;
  Msim.run sim;
  check_int "nothing delivered" 0 !delivered;
  check_int "drops counted" 7 (Msim.messages_dropped sim);
  check_int "drops visible in the registry" 7
    (Obs.Metrics.Counter.value
       (Obs.Metrics.Registry.counter reg "msim.dropped.fault"))

let test_msim_duplicate_and_timer_exempt () =
  let delivered = ref 0 in
  let sim =
    Msim.create
      ~faults:{ Msim.drop = 0.; duplicate = 1.0; reorder = 0. }
      ~seed:5 ~nodes:2
      ~handler:(fun _ ~node:_ _ -> incr delivered)
      ()
  in
  for _ = 1 to 5 do
    Msim.send sim ~src:0 ~dst:1 "m"
  done;
  Msim.run sim;
  check_int "every message arrives twice" 10 !delivered;
  check_int "duplicates counted" 5 (Msim.messages_duplicated sim);
  (* Timers are local alarms: even a fully lossy network delivers
     them. *)
  let fired = ref 0 in
  let sim2 =
    Msim.create
      ~faults:{ Msim.drop = 1.0; duplicate = 0.; reorder = 0. }
      ~seed:6 ~nodes:1
      ~handler:(fun _ ~node:_ _ -> incr fired)
      ()
  in
  Msim.set_timer sim2 ~node:0 ~after:3 "tick";
  Msim.run sim2;
  check_int "timer fired" 1 !fired

(* --- Satellite: per-cause abort counters in the runtime -------------- *)

let test_concurrent_abort_counters () =
  let reg = Obs.Metrics.Registry.create () in
  let sys = Concurrent.create ~metrics:reg () in
  let acct = Object_id.v "acct" in
  Concurrent.add_object sys (Escrow_account.make (Concurrent.log sys) acct);
  (match
     Concurrent.atomically sys (Activity.update "a") (fun _ invoke ->
         invoke acct (Bank_account.deposit 10))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match
     Concurrent.atomically sys (Activity.update "b") (fun _ invoke ->
         invoke acct (Operation.make "mystery" []))
   with
  | Ok _ -> Alcotest.fail "expected refusal"
  | Error _ -> ());
  let value name =
    Obs.Metrics.Counter.value (Obs.Metrics.Registry.counter reg name)
  in
  check_int "committed counted" 1 (value "txn.committed");
  check_int "refusal counted" 1 (value "txn.abort.refused");
  check_int "no deadlock yet" 0 (value "txn.abort.deadlock");
  (* Now force a deadlock between two domains: exactly one victim. *)
  let log = Concurrent.log sys in
  let ox = Object_id.v "ox" and oy = Object_id.v "oy" in
  Concurrent.add_object sys (Op_locking.rw log ox (module Register));
  Concurrent.add_object sys (Op_locking.rw log oy (module Register));
  let barrier = Atomic.make 0 in
  let worker name first second =
    Domain.spawn (fun () ->
        Concurrent.atomically sys (Activity.update name) (fun _ invoke ->
            ignore (invoke first (Register.write 1));
            Atomic.incr barrier;
            while Atomic.get barrier < 2 do
              Domain.cpu_relax ()
            done;
            invoke second (Register.write 2)))
  in
  let d1 = worker "w1" ox oy in
  let d2 = worker "w2" oy ox in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  let ok r = match r with Ok _ -> true | Error _ -> false in
  check_bool "one victim" true (ok r1 <> ok r2);
  check_int "deadlock counted" 1 (value "txn.abort.deadlock");
  check_int "survivor counted" 2 (value "txn.committed")

(* --- Satellite: participant crashes across coordinator crash points -- *)

let test_tpc_crash_matrix () =
  let participants = 3 in
  let coordinator_crashes =
    [ Tpc.No_crash; Tpc.Before_prepare; Tpc.After_prepare;
      Tpc.Mid_decision 0; Tpc.Mid_decision 1; Tpc.Mid_decision 2 ]
  in
  let participant_crashes =
    None
    :: List.concat_map
         (fun i -> [ Some (i, `Before_vote); Some (i, `After_vote) ])
         (List.init participants Fun.id)
  in
  List.iter
    (fun coordinator_crash ->
      List.iter
        (fun participant_crash ->
          for seed = 1 to 3 do
            let cfg =
              {
                Tpc.default_config with
                participants;
                site_clocks = [ 2; 9; 4 ];
                votes = [ Tpc.Yes; Tpc.Yes; Tpc.Yes ];
                coordinator_crash;
                participant_crash;
                seed;
              }
            in
            let o = Tpc.run cfg in
            let label =
              Fmt.str "coord %s / participant %s / seed %d"
                (match coordinator_crash with
                | Tpc.No_crash -> "alive"
                | Tpc.Before_prepare -> "before-prepare"
                | Tpc.After_prepare -> "after-prepare"
                | Tpc.Mid_decision k -> Fmt.str "mid:%d" k)
                (match participant_crash with
                | None -> "none"
                | Some (i, `Before_vote) -> Fmt.str "%d before-vote" i
                | Some (i, `After_vote) -> Fmt.str "%d after-vote" i)
                seed
            in
            check_bool (label ^ ": atomic commitment") true
              (Tpc.atomic_commitment o);
            let committed =
              List.exists
                (function Tpc.Committed _ -> true | _ -> false)
                o.Tpc.statuses
            and aborted = List.mem Tpc.Aborted o.Tpc.statuses
            and blocked = List.mem Tpc.Blocked o.Tpc.statuses in
            check_bool (label ^ ": no commit beside an abort") false
              (committed && aborted);
            (* A site may stay blocked only in the genuine 2PC blocking
               window: the coordinator crashed with the decision
               undeliverable, so no live site can know it — nobody
               committed, nobody aborted. *)
            if blocked then begin
              check_bool (label ^ ": blocked excludes any outcome") false
                (committed || aborted);
              (* ... which requires the coordinator dead before the
                 decision reached any site that is still alive. *)
              let site_dead i =
                match participant_crash with
                | Some (j, _) -> i = j
                | None -> false
              in
              check_bool (label ^ ": blocked needs an unreachable decision")
                true
                (match coordinator_crash with
                | Tpc.After_prepare -> true
                | Tpc.Mid_decision k ->
                  List.for_all site_dead (List.init k Fun.id)
                | Tpc.No_crash | Tpc.Before_prepare -> false)
            end
          done)
        participant_crashes)
    coordinator_crashes

let suite =
  [
    Alcotest.test_case "wal round trip" `Quick test_wal_round_trip;
    Alcotest.test_case "wal empty history" `Quick test_wal_empty;
    Alcotest.test_case "wal torn tail truncates" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal mid-log corruption is loud" `Quick
      test_wal_mid_log_is_loud;
    Alcotest.test_case "wal damaged header is loud" `Quick
      test_wal_header_is_loud;
    Alcotest.test_case "recovery rejects an impossible log" `Quick
      test_restore_rejects_illegal_log;
    Alcotest.test_case "fault plans are deterministic" `Quick
      test_plan_deterministic;
    Alcotest.test_case "log corruption shapes" `Quick test_corrupt_shapes;
    Alcotest.test_case "204 fault schedules, no divergence" `Quick
      test_fault_schedules_converge;
    Alcotest.test_case "single schedule result" `Quick
      test_single_schedule_fields;
    Alcotest.test_case "catalog spans all policies" `Quick
      test_catalog_covers_policies;
    Alcotest.test_case "msim counts injected drops" `Quick
      test_msim_drop_counting;
    Alcotest.test_case "msim duplicates; timers exempt" `Quick
      test_msim_duplicate_and_timer_exempt;
    Alcotest.test_case "runtime abort counters by cause" `Quick
      test_concurrent_abort_counters;
    Alcotest.test_case "participant x coordinator crash matrix" `Quick
      test_tpc_crash_matrix;
    to_alcotest wal_encodes_round_trip;
    to_alcotest wal_corruption_never_silent;
  ]
