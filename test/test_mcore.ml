(* The multicore runtime: mailbox/executor plumbing, the group-commit
   writer's synced-before-acknowledged contract, crash-before-sync
   fault injection, domain-count independence of results (the
   determinism boundary), and the 4-domain banking stress test. *)

open Core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let accounts = Workload.account_ids 8

let rw_group ?metrics ?(seed = 1) ?(shards = 2) ?domains ?group_commit
    ?sync_cost () =
  let g =
    Shard_group.create ?metrics ~seed ?domains ?group_commit ?sync_cost
      ~shards ()
  in
  List.iter
    (fun x ->
      Shard_group.add_object g x (fun log id ->
          Op_locking.rw log id (module Bank_account)))
    accounts;
  g

let granted = function
  | Shard_group.Granted v -> v
  | Shard_group.Wait _ -> Alcotest.fail "unexpected wait"
  | Shard_group.Refused why -> Alcotest.fail ("refused: " ^ why)

(* --- mailbox and executor ------------------------------------------- *)

let test_mailbox_fifo_and_close () =
  let mb = Shard_mailbox.create ~capacity:8 () in
  List.iter (Shard_mailbox.push mb) [ 1; 2; 3; 4; 5 ];
  check_int "depth" 5 (Shard_mailbox.depth mb);
  check_int "high-water mark" 5 (Shard_mailbox.max_depth mb);
  check_bool "fifo" true (Shard_mailbox.pop mb = Some 1);
  check_bool "fifo" true (Shard_mailbox.pop mb = Some 2);
  Shard_mailbox.close mb;
  Shard_mailbox.close mb;
  (* closing drains what remains before returning None *)
  check_bool "drains" true (Shard_mailbox.pop mb = Some 3);
  check_bool "drains" true (Shard_mailbox.pop mb = Some 4);
  check_bool "drains" true (Shard_mailbox.pop mb = Some 5);
  check_bool "end of stream" true (Shard_mailbox.pop mb = None);
  check_bool "push after close raises" true
    (match Shard_mailbox.push mb 6 with
    | () -> false
    | exception Shard_mailbox.Closed -> true)

let test_exec_per_shard_order () =
  let shards = 4 in
  let exec = Shard_exec.create ~domains:4 ~shards () in
  check_int "one domain per shard" 4 (Shard_exec.domain_count exec);
  (* Each list is only ever touched by its shard's owner domain; the
     await joins give the main domain a consistent view. *)
  let seen = Array.init shards (fun _ -> ref []) in
  let promises =
    List.concat_map
      (fun i ->
        List.init shards (fun s ->
            Shard_exec.submit exec ~shard:s (fun () ->
                seen.(s) := i :: !(seen.(s)))))
      (List.init 50 (fun i -> i))
  in
  List.iter Shard_exec.await promises;
  Array.iter
    (fun l ->
      Alcotest.(check (list int))
        "submission order preserved"
        (List.init 50 (fun i -> i))
        (List.rev !l))
    seen;
  check_bool "exceptions propagate" true
    (match Shard_exec.call exec ~shard:2 (fun () -> failwith "boom") with
    | () -> false
    | exception Failure m -> m = "boom");
  Shard_exec.shutdown exec;
  Shard_exec.shutdown exec (* idempotent *)

let test_exec_inline_is_direct () =
  let exec = Shard_exec.create ~shards:3 () in
  check_int "inline mode" 1 (Shard_exec.domain_count exec);
  check_int "runs on the caller" 7
    (Shard_exec.call exec ~shard:1 (fun () -> 7));
  check_int "no mailbox" 0 (Shard_exec.mailbox_depth exec ~shard:1);
  Shard_exec.shutdown exec

(* --- the group-commit writer ---------------------------------------- *)

let a1 = Activity.update "a1"
let x1 = Object_id.v "x"

let records_of text =
  match Wal.decode_records text with
  | Ok (records, Wal.Intact) -> records
  | Ok (_, _) -> Alcotest.fail "durable image not intact"
  | Error e -> Alcotest.fail (Fmt.str "%a" Wal.pp_error e)

let test_writer_append_is_volatile () =
  let synced = ref 0 in
  let w = Wal.Writer.create ~label:"t" ~sync_cost:(fun () -> incr synced) () in
  Wal.Writer.append w (Wal.Event (Event.invoke a1 x1 (Bank_account.deposit 3)));
  Wal.Writer.append w (Wal.Event (Event.respond a1 x1 Value.ok));
  check_int "buffered, not durable" 2 (Wal.Writer.pending w);
  check_int "durable image is empty" 0
    (List.length (records_of (Wal.Writer.synced_text w)));
  check_int "full image has the tail" 2
    (List.length (records_of (Wal.Writer.text w)));
  check_int "sync covers the batch" 2 (Wal.Writer.sync w);
  check_int "device paid once" 1 !synced;
  check_int "nothing pending" 0 (Wal.Writer.pending w);
  check_int "now durable" 2
    (List.length (records_of (Wal.Writer.synced_text w)));
  check_int "empty sync" 0 (Wal.Writer.sync w);
  check_int "counters" 2 (Wal.Writer.appends w);
  check_int "counters" 2 (Wal.Writer.syncs w)

let test_writer_crash_window () =
  let w = Wal.Writer.create () in
  Wal.Writer.append_list w
    [
      Wal.Event (Event.invoke a1 x1 (Bank_account.deposit 3));
      Wal.Event (Event.respond a1 x1 Value.ok);
      Wal.Event (Event.commit a1 x1);
    ];
  ignore (Wal.Writer.sync w);
  (* the second transaction crashes in the window between append and
     sync: its commit must not be in the durable image *)
  let a2 = Activity.update "a2" in
  Wal.Writer.append_list w
    [
      Wal.Event (Event.invoke a2 x1 (Bank_account.deposit 9));
      Wal.Event (Event.respond a2 x1 Value.ok);
      Wal.Event (Event.commit a2 x1);
    ];
  let durable = records_of (Wal.Writer.synced_text w) in
  check_int "only the synced transaction" 3 (List.length durable);
  check_bool "a2 is lost" true
    (List.for_all
       (function
         | Wal.Event e -> Activity.equal (Event.activity e) a1
         | Wal.Control _ -> true)
       durable)

(* --- group commit at the group level -------------------------------- *)

let test_crash_before_sync_never_acknowledged () =
  let g = rw_group ~group_commit:true () in
  let x = List.hd accounts in
  let s = Shard_group.shard_of g x in
  let t1 = Shard_group.begin_txn g (Activity.update "lost") in
  ignore (granted (Shard_group.invoke g t1 x (Bank_account.deposit 100)));
  Shard_group.commit_batch ~crash_before_sync:[ s ] g [ t1 ];
  (* appended but never synced: the commit is not acknowledged *)
  check_bool "not acknowledged" true (Gtxn.status t1 = Gtxn.Aborted);
  check_int "not in the committed projection" 0 (Shard_group.committed_count g);
  check_bool "shard went down" true (Shard_group.shard_crashed g s);
  check_int "durable image lost the whole transaction" 0
    (List.length (records_of (Shard_group.durable_shard g s)));
  (match Shard_group.recover_shard g s (Shard_group.durable_shard g s) with
  | Ok report ->
    check_int "nothing to replay" 0
      report.Recovery.shard.Recovery.base.Recovery.replayed
  | Error e -> Alcotest.fail (Fmt.str "%a" Recovery.pp_failure e));
  (* the recovered shard serves synced commits again *)
  let t2 = Shard_group.begin_txn g (Activity.update "after") in
  ignore (granted (Shard_group.invoke g t2 x (Bank_account.deposit 5)));
  Shard_group.commit_batch g [ t2 ];
  check_bool "acknowledged after sync" true (Gtxn.status t2 = Gtxn.Committed);
  let t3 = Shard_group.begin_txn g (Activity.read_only "audit") in
  check_bool "the lost deposit never applied" true
    (granted (Shard_group.invoke g t3 x Bank_account.balance) = Value.Int 5);
  Shard_group.abort g t3

let test_synced_commits_survive_crash () =
  let g = rw_group ~group_commit:true ~shards:3 () in
  let ts =
    List.mapi
      (fun i x ->
        let t = Shard_group.begin_txn g (Activity.update (Fmt.str "t%d" i)) in
        ignore (granted (Shard_group.invoke g t x (Bank_account.deposit (i + 1))));
        t)
      accounts
  in
  Shard_group.commit_batch g ts;
  List.iter
    (fun t -> check_bool "committed" true (Gtxn.status t = Gtxn.Committed))
    ts;
  (* an acknowledged commit is durable: crash + recover keeps it *)
  let before = Shard_group.committed_count g in
  let wal = Shard_group.crash_shard g 0 in
  (match Shard_group.recover_shard g 0 wal with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Fmt.str "%a" Recovery.pp_failure e));
  check_int "every acknowledged commit survived" before
    (Shard_group.committed_count g);
  check_int "no stuck legs" 0 (Shard_group.in_doubt_count g)

let test_batch_apis_match_serial_calls () =
  (* one multi-shard transaction and one single-shard transaction
     through the batch APIs, cross-checked against plain invoke *)
  let g = rw_group ~group_commit:false ~shards:2 () in
  let on s = List.filter (fun x -> Shard_group.shard_of g x = s) accounts in
  let x, y, z =
    (List.hd (on 0), List.hd (on 1), List.nth (on 0) 1)
  in
  let t1 = Shard_group.begin_txn g (Activity.update "multi") in
  let t2 = Shard_group.begin_txn g (Activity.update "single") in
  let results =
    Shard_group.invoke_batch g
      [
        (t1, x, Bank_account.deposit 10);
        (t1, y, Bank_account.deposit 20);
        (t2, z, Bank_account.deposit 1);
      ]
  in
  check_int "all granted in entry order" 3 (List.length results);
  List.iter (fun r -> ignore (granted r)) results;
  check_int "t1 spans both shards" 2 (Gtxn.fanout t1);
  Shard_group.commit_batch g [ t1; t2 ];
  check_bool "multi committed" true (Gtxn.status t1 = Gtxn.Committed);
  check_bool "single committed" true (Gtxn.status t2 = Gtxn.Committed);
  check_bool "2pc drew an agreed timestamp" true
    (Shard_group.agreed_commit_ts g (Gtxn.gid t1) <> None);
  let t3 = Shard_group.begin_txn g (Activity.read_only "audit") in
  check_bool "multi's deposit landed" true
    (granted (Shard_group.invoke g t3 x Bank_account.balance) = Value.Int 10);
  check_bool "single's deposit landed" true
    (granted (Shard_group.invoke g t3 z Bank_account.balance) = Value.Int 1);
  Shard_group.abort g t3

(* --- determinism across domain counts ------------------------------- *)

let classic_fingerprint ~domains seed =
  let g = rw_group ~seed ~shards:3 ~domains () in
  let o = Sharded_driver.run g (Workload.banking ()) in
  let wals = List.init 3 (Shard_group.durable_shard g) in
  Shard_group.shutdown g;
  (o, wals)

let test_classic_path_domain_independent () =
  (* the pre-multicore driver, event-for-event: per-shard WALs are
     byte-identical at domains 1 and 4 *)
  let o1, w1 = classic_fingerprint ~domains:1 7 in
  let o4, w4 = classic_fingerprint ~domains:4 7 in
  check_int "same commits" o1.Sharded_driver.committed
    o4.Sharded_driver.committed;
  check_int "same aborts" o1.Sharded_driver.aborted_deadlock
    o4.Sharded_driver.aborted_deadlock;
  List.iteri
    (fun s (a, b) -> check_string (Fmt.str "shard %d WAL" s) a b)
    (List.combine w1 w4)

let mcore_fingerprint ~domains seed =
  let g = rw_group ~seed ~shards:4 ~domains ~group_commit:true () in
  let config =
    { Mcore_driver.default_config with jobs = 120; inflight = 16; seed }
  in
  let o = Mcore_driver.run ~config g (Workload.banking ()) in
  let projection =
    Fmt.str "%a"
      (Fmt.list (fun ppf (a, ops) ->
           Fmt.pf ppf "%a:%a" Activity.pp a
             (Fmt.list (fun ppf (x, op, v) ->
                  Fmt.pf ppf "(%a %a %a)" Object_id.pp x Operation.pp op
                    Value.pp v))
             ops))
      (Shard_group.committed_projection g)
  in
  let wals = List.init 4 (Shard_group.durable_shard g) in
  Shard_group.shutdown g;
  (o, projection, wals)

let prop_mcore_domain_independent =
  QCheck.Test.make ~count:6 ~name:"mcore driver: domains never change results"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let o1, p1, w1 = mcore_fingerprint ~domains:1 seed in
      let o4, p4, w4 = mcore_fingerprint ~domains:4 seed in
      (* elapsed/throughput are 0 under the default clock, so plain
         structural equality covers the whole outcome record *)
      o1 = o4 && p1 = p4 && List.for_all2 String.equal w1 w4)

(* --- the 4-domain stress test ---------------------------------------- *)

let money_delta ops =
  List.fold_left
    (fun acc (_, op, v) ->
      match (Operation.name op, Operation.args op) with
      | "deposit", [ Value.Int n ] when Value.equal v Value.ok -> acc + n
      | "withdraw", [ Value.Int n ] when Value.equal v Value.ok -> acc - n
      | _ -> acc)
    0 ops

let test_four_domain_banking_stress () =
  (* enough accounts that the window stays saturated with runnable
     transfers — the regime where group commit batches *)
  let accounts = Workload.account_ids 64 in
  let metrics = Obs.Shard_metrics.create ~shards:4 () in
  let g =
    Shard_group.create ~metrics ~seed:11 ~domains:4 ~group_commit:true
      ~shards:4 ()
  in
  List.iter
    (fun x ->
      Shard_group.add_object g x (fun log id ->
          Op_locking.rw log id (module Bank_account)))
    accounts;
  let config =
    { Mcore_driver.default_config with jobs = 300; inflight = 48; seed = 11 }
  in
  let o = Mcore_driver.run ~config g (Workload.banking ~accounts:64 ()) in
  check_bool "made progress" true (o.Mcore_driver.committed > 100);
  check_bool "2pc transfers happened" true (o.Mcore_driver.committed_multi > 0);
  check_int "no stuck in-doubt legs" 0 (Shard_group.in_doubt_count g);
  check_int "tally matches" o.Mcore_driver.committed
    (Shard_group.committed_count g);
  (* conservation: the balances the shards answer now must equal the
     money the committed projection says entered minus what left — a
     torn transfer (one leg applied, one lost) breaks the equality *)
  let expected =
    List.fold_left
      (fun acc (_, ops) -> acc + money_delta ops)
      0
      (Shard_group.committed_projection g)
  in
  let actual =
    List.fold_left
      (fun acc x ->
        let t = Shard_group.begin_txn g (Activity.read_only "audit") in
        let v = granted (Shard_group.invoke g t x Bank_account.balance) in
        Shard_group.abort g t;
        match v with Value.Int n -> acc + n | _ -> acc)
      0 accounts
  in
  check_int "money is conserved across shards" expected actual;
  (* group commit did its job: one sync covered many commits *)
  check_bool "syncs per commit below one" true
    (Obs.Shard_metrics.syncs_per_commit metrics < 1.0);
  check_bool "batch histogram saw multi-record syncs" true
    (Obs.Metrics.Histogram.count (Obs.Shard_metrics.group_commit_batch metrics)
    > 0);
  Shard_group.shutdown g

let suite =
  [
    Alcotest.test_case "mailbox: fifo, bounded, close drains" `Quick
      test_mailbox_fifo_and_close;
    Alcotest.test_case "exec: per-shard order survives the pool" `Quick
      test_exec_per_shard_order;
    Alcotest.test_case "exec: inline mode is a direct call" `Quick
      test_exec_inline_is_direct;
    Alcotest.test_case "writer: append is volatile until sync" `Quick
      test_writer_append_is_volatile;
    Alcotest.test_case "writer: crash window loses the unsynced tail" `Quick
      test_writer_crash_window;
    Alcotest.test_case "group commit: crash before sync never acknowledged"
      `Quick test_crash_before_sync_never_acknowledged;
    Alcotest.test_case "group commit: acknowledged commits survive" `Quick
      test_synced_commits_survive_crash;
    Alcotest.test_case "batch APIs agree with serial calls" `Quick
      test_batch_apis_match_serial_calls;
    Alcotest.test_case "classic path: WALs identical at 1 and 4 domains"
      `Quick test_classic_path_domain_independent;
    QCheck_alcotest.to_alcotest prop_mcore_domain_independent;
    Alcotest.test_case "4-domain banking stress: conserved and batched" `Slow
      test_four_domain_banking_stress;
  ]
