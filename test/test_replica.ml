(* The read-replica tier: WAL shipping over a lossy channel, snapshot
   reads behind the high-water mark, stale-read detection, failover,
   and the replica/primary equivalence property. *)

open Core
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

let proto name = Option.get (Fault_harness.find_protocol name)

let build (p : Fault_harness.protocol) ~shards ~seed =
  let group = Shard_group.create ~policy:p.Fault_harness.policy ~seed ~shards () in
  let w = p.Fault_harness.workload () in
  List.iter
    (fun id -> Shard_group.add_object group id p.Fault_harness.make_object)
    w.Workload.objects;
  (group, w)

let tier_of ?faults ?stale ?seed (p : Fault_harness.protocol) ~replicas group =
  Replica_tier.create ?faults ?stale ?seed ~replicas
    ~make_object:p.Fault_harness.make_object group

let drive ?(clients = 4) ?(duration = 200) ?(base = 0) ?(seed = 5) group w =
  let config =
    {
      Sharded_driver.default_config with
      clients;
      duration;
      activity_base = base;
      seed;
    }
  in
  ignore (Sharded_driver.run ~config group w)

let updates_only =
  List.filter (fun (t : Replica_projection.txn) ->
      not (Activity.is_read_only t.Replica_projection.activity))

let shard_committed group s =
  Replica_projection.committed Recovery.Timestamp_order
    (History.to_list (System.history (Shard_group.system group s)))
  |> updates_only

let replica_committed tier ~replica ~shard =
  Replica_projection.committed Recovery.Timestamp_order
    (Replica_tier.replica_events tier ~replica ~shard)
  |> updates_only

let check_equiv tier group ~replicas ~shards =
  for i = 0 to replicas - 1 do
    for s = 0 to shards - 1 do
      match
        Replica_projection.diff
          (replica_committed tier ~replica:i ~shard:s)
          (shard_committed group s)
      with
      | None -> ()
      | Some msg -> Alcotest.failf "replica %d shard %d: %s" i s msg
    done
  done

(* --- shipping ------------------------------------------------------- *)

let test_ship_and_apply () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:3 ~seed:2 in
  let tier = tier_of p ~replicas:2 group in
  drive group w;
  Replica_tier.sync tier;
  for i = 0 to 1 do
    for s = 0 to 2 do
      check_int "applied = feed"
        (Replica_tier.feed_pos tier ~shard:s)
        (Replica_tier.applied_pos tier ~replica:i ~shard:s)
    done;
    check_int "no lag" 0 (Replica_tier.lag_records tier ~replica:i)
  done;
  check_equiv tier group ~replicas:2 ~shards:3;
  check_bool "segments flowed" true (Replica_tier.segments_shipped tier > 0)

let test_lossy_channel_heals () =
  let p = proto "multiversion" in
  let group, w = build p ~shards:2 ~seed:3 in
  let faults = { Msim.drop = 0.3; duplicate = 0.3; reorder = 0.4 } in
  let tier = tier_of ~faults ~seed:9 p ~replicas:3 group in
  drive group w;
  Replica_tier.sync tier;
  check_equiv tier group ~replicas:3 ~shards:2;
  check_bool "channel actually dropped" true
    (Replica_tier.channel_dropped tier > 0)

let test_damaged_segment_resyncs () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:2 ~seed:4 in
  let tier = tier_of p ~replicas:2 group in
  drive ~duration:120 group w;
  Replica_tier.damage_next_segments tier 3;
  Replica_tier.sync tier;
  check_bool "damage detected" true (Replica_tier.damaged_segments tier >= 1);
  check_bool "resynced" true (Replica_tier.resyncs tier >= 1);
  (* The refused segments were never applied, even in part. *)
  check_equiv tier group ~replicas:2 ~shards:2

let test_lag_schedule_catches_up () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:2 ~seed:6 in
  let tier = tier_of p ~replicas:2 group in
  drive ~duration:120 group w;
  Replica_tier.set_lag tier ~replica:1 5;
  Replica_tier.pump tier;
  check_bool "lagged replica behind" true
    (Replica_tier.lag_records tier ~replica:1
    > Replica_tier.lag_records tier ~replica:0);
  Replica_tier.sync tier;
  check_equiv tier group ~replicas:2 ~shards:2

(* --- snapshot reads ------------------------------------------------- *)

let read_all_accounts (w : Workload.t) =
  List.map (fun x -> (x, Bank_account.balance)) w.Workload.objects

(* Satellite: the stale-read regression.  A read below the replica's
   mark must bounce to the primary (or wait), never return the
   replica's early state.  This test fails if the tier ever serves the
   pre-deposit balance. *)
let test_stale_read_bounces () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:1 ~seed:7 in
  let acct = List.hd w.Workload.objects in
  let deposit n =
    let g = Shard_group.begin_txn group (Activity.update (Fmt.str "dep%d" n)) in
    (match Shard_group.invoke group g acct (Bank_account.deposit n) with
    | Shard_group.Granted _ -> ()
    | _ -> Alcotest.fail "deposit refused");
    ignore (Shard_group.commit group g)
  in
  let tier = tier_of ~stale:`Bounce p ~replicas:1 group in
  deposit 100;
  (* Nothing shipped yet: the replica has no mark, so the read must be
     answered by the primary — with the committed balance. *)
  (match Replica_tier.read ~replica:0 tier [ (acct, Bank_account.balance) ] with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
    check_bool "bounced" true o.Replica_tier.bounced;
    (match o.Replica_tier.serve with
    | Replica_tier.Served_primary -> ()
    | Replica_tier.Served_replica _ ->
      Alcotest.fail "replica served below its mark");
    match o.Replica_tier.values with
    | [ (_, _, Value.Int 100) ] -> ()
    | _ -> Alcotest.fail "read missed the committed deposit");
  check_int "stale reads counted" 1 (Replica_tier.stale_bounced tier);
  (* Under the wait policy the mark catches up and the replica serves —
     again with the full committed state. *)
  deposit 50;
  let tier2 = tier_of ~stale:(`Wait 4) p ~replicas:1 group in
  match Replica_tier.read ~replica:0 tier2 [ (acct, Bank_account.balance) ] with
  | Error msg -> Alcotest.fail msg
  | Ok o -> (
    (match o.Replica_tier.serve with
    | Replica_tier.Served_replica 0 -> ()
    | _ -> Alcotest.fail "expected the replica to serve after waiting");
    check_bool "waited for the mark" true (o.Replica_tier.waited > 0);
    match o.Replica_tier.values with
    | [ (_, _, Value.Int 150) ] -> ()
    | _ -> Alcotest.fail "replica served early state")

let test_reads_round_robin_and_match_primary () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:2 ~seed:8 in
  let tier = tier_of p ~replicas:2 group in
  drive ~duration:150 group w;
  Replica_tier.sync tier;
  let steps = read_all_accounts w in
  for _ = 1 to 4 do
    match Replica_tier.read tier steps with
    | Error msg -> Alcotest.fail msg
    | Ok o ->
      check_bool "served without bouncing" false o.Replica_tier.bounced
  done;
  check_bool "both replicas served" true
    (Replica_tier.reads_at tier ~replica:0 > 0
    && Replica_tier.reads_at tier ~replica:1 > 0)

(* --- replica crash -------------------------------------------------- *)

let test_replica_crash_keeps_log_loses_mark () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:2 ~seed:11 in
  let tier = tier_of p ~replicas:2 group in
  drive ~duration:120 group w;
  Replica_tier.sync tier;
  let pos = Replica_tier.applied_pos tier ~replica:0 ~shard:0 in
  check_bool "mark established" true (Replica_tier.hwm tier ~replica:0 ~shard:0 >= 0);
  Replica_tier.crash_replica tier 0;
  Replica_tier.restart_replica tier 0;
  (* Durable log survives; the mark (segment metadata) does not. *)
  check_int "applied survives the crash" pos
    (Replica_tier.applied_pos tier ~replica:0 ~shard:0);
  check_int "mark reset" (-1) (Replica_tier.hwm tier ~replica:0 ~shard:0);
  (* A restarted replica is below any mark: the read either bounces or
     pumps until a fresh segment re-establishes it — never serves the
     unmarked state silently. *)
  (match Replica_tier.read ~replica:0 tier (read_all_accounts w) with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
    check_bool "bounced or waited for a fresh mark" true
      (o.Replica_tier.bounced || o.Replica_tier.waited > 0));
  Replica_tier.sync tier;
  check_bool "fresh segment re-established the mark" true
    (Replica_tier.hwm tier ~replica:0 ~shard:0 >= 0);
  check_equiv tier group ~replicas:2 ~shards:2

(* --- failover ------------------------------------------------------- *)

let test_failover_zero_lost () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:2 ~seed:12 in
  let tier = tier_of p ~replicas:2 group in
  drive ~duration:150 group w;
  Replica_tier.sync tier;
  let pre = shard_committed group 0 in
  check_bool "something committed" true (pre <> []);
  Replica_tier.crash_primary tier 0;
  (match Replica_tier.fail_over tier 0 with
  | Error msg -> Alcotest.fail msg
  | Ok pr ->
    (match pr.Replica_tier.verified with
    | None -> ()
    | Some msg -> Alcotest.fail msg);
    check_int "epoch bumped" 1 pr.Replica_tier.new_epoch);
  (* The recovered incarnation holds every pre-crash commit. *)
  let after = shard_committed group 0 in
  List.iter
    (fun txn ->
      check_bool "commit survived failover" true
        (List.exists (Replica_projection.equal_txn txn) after))
    pre;
  check_int "promotion counted" 1 (Replica_tier.promotions tier);
  (* Replicas resync onto the new epoch and converge again. *)
  drive ~duration:100 ~base:50_000 ~seed:13 group w;
  Replica_tier.sync tier;
  check_equiv tier group ~replicas:2 ~shards:2

let test_fencing_refuses_old_epoch () =
  let p = proto "hybrid" in
  let group, w = build p ~shards:2 ~seed:14 in
  let tier = tier_of p ~replicas:2 group in
  drive ~duration:120 group w;
  (* Cut replica 1 off, fail over, heal: its queued old-epoch segments
     arrive fenced and are refused. *)
  Replica_tier.pump tier;
  Replica_tier.partition_replica tier 1;
  Replica_tier.pump tier;
  (match Replica_tier.fail_over tier 0 with
  | Error msg -> Alcotest.fail msg
  | Ok _ -> ());
  Replica_tier.heal_replica tier 1;
  Replica_tier.sync tier;
  check_int "epoch advanced" 1 (Replica_tier.epoch tier ~shard:0);
  check_equiv tier group ~replicas:2 ~shards:2

(* --- the failover drill -------------------------------------------- *)

let test_drill_smoke () =
  let r =
    Replica_drill.run_many ~quick:true ~seeds:[ 1; 2; 3; 4; 5; 6 ] ()
  in
  check_int "all schedules ran" 6 r.Replica_drill.schedules;
  check_int "zero lost commits" 0 r.Replica_drill.r_lost;
  check_int "zero stale reads served" 0 r.Replica_drill.r_stale;
  (match Replica_drill.divergences r with
  | [] -> ()
  | d :: _ ->
    Alcotest.fail
      (Fmt.str "diverged: %a" Replica_drill.pp_schedule d));
  check_bool "promotions happened" true (r.Replica_drill.r_promotions >= 6);
  check_bool "reads flowed" true (r.Replica_drill.r_reads > 0)

(* --- the equivalence property --------------------------------------- *)

(* Satellite: over protocols × seeds × lag schedules, every replica's
   committed projection matches the primary's — in full at quiescence,
   and filtered as-of any timestamp t under a timestamp policy. *)
let prop_replica_equivalence =
  QCheck2.Test.make
    ~name:"replica projection ≡ primary committed as of t" ~count:20
    QCheck2.Gen.(
      triple (int_bound 500) (int_bound 11)
        (list_size (int_bound 4) (int_bound 6)))
    (fun (seed, pidx, lags) ->
      let protos = Shard_harness.protocols in
      let p = List.nth protos (pidx mod List.length protos) in
      let group, w = build p ~shards:2 ~seed:(seed + 1) in
      let tier = tier_of ~seed:(seed + 2) p ~replicas:2 group in
      drive ~duration:100 ~seed:(seed + 3) group w;
      List.iteri
        (fun i n -> Replica_tier.set_lag tier ~replica:(i mod 2) n)
        lags;
      Replica_tier.sync tier;
      let order =
        match p.Fault_harness.policy with
        | `None_ -> Recovery.Commit_order
        | `Static | `Hybrid -> Recovery.Timestamp_order
      in
      let ok = ref true in
      for i = 0 to 1 do
        for s = 0 to 1 do
          let rep =
            Replica_projection.committed order
              (Replica_tier.replica_events tier ~replica:i ~shard:s)
            |> updates_only
          in
          let prim =
            Replica_projection.committed order
              (History.to_list (System.history (Shard_group.system group s)))
            |> updates_only
          in
          if Replica_projection.diff rep prim <> None then ok := false;
          (* As-of-t agreement at a mid-run timestamp. *)
          if order = Recovery.Timestamp_order then begin
            let max_ts =
              List.fold_left
                (fun a (t : Replica_projection.txn) ->
                  match t.Replica_projection.ts with
                  | Some ts -> max a (Timestamp.to_int ts)
                  | None -> a)
                0 prim
            in
            let t = max_ts / 2 in
            if
              Replica_projection.diff
                (Replica_projection.as_of t rep)
                (Replica_projection.as_of t prim)
              <> None
            then ok := false
          end
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "ship: replicas converge on the primary" `Quick
      test_ship_and_apply;
    Alcotest.test_case "ship: drop/duplicate/reorder heal by resend" `Quick
      test_lossy_channel_heals;
    Alcotest.test_case "ship: damaged segments resync, never apply" `Quick
      test_damaged_segment_resyncs;
    Alcotest.test_case "ship: lag schedules catch up" `Quick
      test_lag_schedule_catches_up;
    Alcotest.test_case "read: stale reads bounce, never serve early state"
      `Quick test_stale_read_bounces;
    Alcotest.test_case "read: round-robin replicas serve snapshots" `Quick
      test_reads_round_robin_and_match_primary;
    Alcotest.test_case "crash: replica keeps its log, loses its mark" `Quick
      test_replica_crash_keeps_log_loses_mark;
    Alcotest.test_case "failover: promotion loses nothing" `Quick
      test_failover_zero_lost;
    Alcotest.test_case "failover: old epoch is fenced" `Quick
      test_fencing_refuses_old_epoch;
    Alcotest.test_case "drill: seeded schedules stay clean" `Quick
      test_drill_smoke;
    to_alcotest prop_replica_equivalence;
  ]
