(* The protocol-synthesis pass end to end: determinism of the compiled
   tables (twice in one process, and across spawned multicore domains),
   the Derived_locking runtime's concurrency win over rw locking, the
   budgeted stabilized-depth search surfaced through lint, a corrupted
   table caught by the probes, and the ISSUE's headline acceptance —
   every derived_* protocol certifies at 0 unsound with looseness
   strictly below generic commutativity on the account alphabet. *)

open Core

let to_alcotest = QCheck_alcotest.to_alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fresh_table (d : Lint_domain.t) ~depth =
  Synthesize_table.synthesize d.spec ~alphabet:d.alphabet ~depth
    ~budget:(Synthesize.budget_for depth)

(* --- determinism --------------------------------------------------- *)

let synth_deterministic =
  QCheck2.Test.make
    ~name:"synthesis is deterministic (two fresh compilations agree)"
    ~count:12
    ~print:(fun (name, depth) -> Fmt.str "%s at depth %d" name depth)
    QCheck2.Gen.(
      pair
        (oneofl (List.map (fun d -> d.Lint_domain.name) Lint_domain.all))
        (int_range 1 2))
    (fun (name, depth) ->
      let d = Lint_domain.find_exn name in
      Synthesize_table.equal (fresh_table d ~depth) (fresh_table d ~depth))

(* The memoized synthesis that lint, the catalog, the bench and the CLI
   all share must be the same table a fresh compilation produces — a
   multi-protocol lint run and a single-protocol one see identical
   matrices. *)
let test_memoized_equals_fresh () =
  List.iter
    (fun name ->
      let d = Lint_domain.find_exn name in
      let memoized = Synthesize.table (Synthesize.of_domain ~depth:3 d) in
      Alcotest.(check bool)
        (name ^ ": memoized synthesis = fresh compilation")
        true
        (Synthesize_table.equal memoized (fresh_table d ~depth:3)))
    [ "account"; "register" ]

(* Compilation on a spawned multicore domain agrees with the host
   domain: nothing in the exploration depends on ambient state. *)
let test_deterministic_across_domains () =
  let d = Lint_domain.find_exn "account" in
  let spawned = Domain.spawn (fun () -> fresh_table d ~depth:2) in
  let here = fresh_table d ~depth:2 in
  Alcotest.(check bool)
    "table compiled on a spawned domain agrees" true
    (Synthesize_table.equal here (Domain.join spawned))

(* --- the runtime win ----------------------------------------------- *)

let acct = Object_id.v "acct"

(* The escrow-style history: two transactions deposit concurrently.
   The synthesized account table knows deposit(5)ok/deposit(2)ok
   commute, so Derived_locking grants both; rw locking serializes
   them. *)
let test_derived_admits_concurrent_deposits () =
  let run make =
    let sys = System.create ~policy:`None_ () in
    let log = System.log sys in
    System.add_object sys (make log acct);
    let ta = System.begin_txn sys (Activity.update "u1") in
    let tb = System.begin_txn sys (Activity.update "u2") in
    let ra = System.invoke sys ta acct (Bank_account.deposit 5) in
    let rb = System.invoke sys tb acct (Bank_account.deposit 2) in
    (ra, rb)
  in
  let synthesis =
    Synthesize.of_domain ~depth:3 (Lint_domain.find_exn "account")
  in
  (match run (fun log id -> Synthesize.make_object synthesis log id) with
  | Atomic_object.Granted _, Atomic_object.Granted _ -> ()
  | _, r ->
    Alcotest.failf "derived_account blocked a concurrent deposit: %a"
      Atomic_object.pp_invoke_result r);
  match run (fun log id -> Op_locking.rw log id (module Bank_account)) with
  | Atomic_object.Granted _, Atomic_object.Wait _ -> ()
  | _, r ->
    Alcotest.failf "rw locking should block the second deposit, got %a"
      Atomic_object.pp_invoke_result r

(* The concurrency the table recovers over op-level locking is visible
   statically too: some operation pairs conflict at the op level but
   commute for specific result pairs. *)
let test_account_table_refines_op_locking () =
  let d = Lint_domain.find_exn "account" in
  let table = Synthesize.table (Synthesize.of_domain ~depth:3 d) in
  Alcotest.(check bool)
    "account table recovers result-dependent concurrency" true
    (Synthesize_table.refinements table <> [])

(* --- budgeted stabilized-depth search ------------------------------ *)

let test_budget_stabilized () =
  (* register's three-op alphabet closes quickly: the budgeted search
     must report a stabilized frontier set and raise no warning. *)
  let r = Lint.run ~protocol:"derived_register" ~depth:2 ~budget:6 () in
  Alcotest.(check (option int)) "budget echoed in the report" (Some 6)
    r.Lint.budget;
  Alcotest.(check (list string)) "no stabilization warnings" [] r.Lint.warnings;
  (match r.Lint.protocols with
  | [ (c : Lint.protocol_cert) ] -> (
    match c.synthesis with
    | None -> Alcotest.fail "derived protocol carries no synthesis record"
    | Some s ->
      let st = Synthesize_table.stats (Synthesize.table s) in
      Alcotest.(check bool) "stabilized" true st.Commutativity_check.stabilized;
      Alcotest.(check bool) "not truncated" false
        st.Commutativity_check.truncated;
      Alcotest.(check bool) "distinct <= enumerated" true
        (st.Commutativity_check.distinct <= st.Commutativity_check.enumerated))
  | _ -> Alcotest.fail "expected exactly one protocol certificate");
  let s = Obs.Json.to_string (Lint.to_json r) in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("json exposes " ^ key) true (contains s key))
    [ "enumerated"; "distinct"; "truncated"; "depth_used"; "stabilized";
      "budget" ]

let test_budget_warns_when_open () =
  (* The account alphabet keeps growing past any small budget: the run
     must warn loudly instead of silently truncating. *)
  let r = Lint.run ~protocol:"derived_account" ~depth:2 ~budget:4 () in
  Alcotest.(check bool) "non-stabilized warning fires" true
    (List.exists (fun w -> contains w "NOT stabilized") r.Lint.warnings)

(* --- a corrupted synthesized table is caught ----------------------- *)

let test_corrupted_table_caught () =
  let account = Lint_domain.find_exn "account" in
  let synthesis = Synthesize.of_domain ~depth:3 account in
  let corrupted =
    Synthesize_table.force_commute (Synthesize.table synthesis)
      (Bank_account.withdraw 3, Value.ok)
      (Bank_account.withdraw 6, Value.ok)
  in
  let cert =
    Lint.certify_protocol ~depth:2
      {
        Lint_catalog.name = "corrupt-derived-account";
        policy = `None_;
        domain = account;
        make_object =
          (fun log id -> Synthesize.make_object ~table:corrupted synthesis log id);
      }
  in
  Alcotest.(check bool) "flipped conflict cell flagged unsound" true
    (cert.Lint.unsound <> [])

(* --- the headline acceptance at depth 3 ---------------------------- *)

let report3 = lazy (Lint.run ~depth:3 ())

let test_acceptance_depth3 () =
  let report = Lazy.force report3 in
  let find name =
    match
      List.find_opt
        (fun (c : Lint.protocol_cert) -> c.protocol = name)
        report.Lint.protocols
    with
    | Some c -> c
    | None -> Alcotest.failf "protocol %s missing from report" name
  in
  let derived =
    List.filter
      (fun (c : Lint.protocol_cert) ->
        String.length c.protocol >= 8 && String.sub c.protocol 0 8 = "derived_")
      report.Lint.protocols
  in
  Alcotest.(check int) "one derived protocol per registry ADT" 11
    (List.length derived);
  List.iter
    (fun (c : Lint.protocol_cert) ->
      Alcotest.(check (list string)) (c.protocol ^ ": 0 unsound") [] c.unsound;
      Alcotest.(check bool)
        (c.protocol ^ ": wide cross-shard probes ran")
        true
        (c.cross.Lint_xprobe.wide_probed > 0))
    derived;
  let commut = (find "commutativity").looseness in
  Alcotest.(check bool)
    (Fmt.str "derived_account looseness (%.2f) strictly below generic \
              commutativity (%.2f)"
       (find "derived_account").looseness commut)
    true
    ((find "derived_account").looseness < commut)

let suite =
  [
    to_alcotest synth_deterministic;
    Alcotest.test_case "memoized synthesis equals a fresh compilation" `Quick
      test_memoized_equals_fresh;
    Alcotest.test_case "synthesis agrees across multicore domains" `Quick
      test_deterministic_across_domains;
    Alcotest.test_case "derived_account admits concurrent deposits rw blocks"
      `Quick test_derived_admits_concurrent_deposits;
    Alcotest.test_case "account table refines op-level locking" `Quick
      test_account_table_refines_op_locking;
    Alcotest.test_case "budget mode reports a stabilized exploration" `Quick
      test_budget_stabilized;
    Alcotest.test_case "budget mode warns when the frontier stays open" `Quick
      test_budget_warns_when_open;
    Alcotest.test_case "corrupted synthesized table caught by probes" `Quick
      test_corrupted_table_caught;
    Alcotest.test_case "acceptance: derived protocols at depth 3" `Slow
      test_acceptance_depth3;
  ]
