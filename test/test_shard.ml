(* The sharded transactional runtime: routing, fast-path and 2PC
   commits, agreed commit timestamps, crash/recovery of prepared legs,
   cross-shard deadlocks, and the merged-projection property. *)

open Core
open Helpers

let to_alcotest = QCheck_alcotest.to_alcotest

let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* --- fixtures ------------------------------------------------------- *)

let accounts = Workload.account_ids 8

(* Two accounts homed on different shards of a 2-shard group — found by
   the router itself, so the fixture survives hash changes. *)
let cross_pair =
  let on s =
    List.find (fun x -> Shard_router.shard_of ~shards:2 x = s) accounts
  in
  (on 0, on 1)

let rw_group ?metrics ?(seed = 1) ?(shards = 2) () =
  let g = Shard_group.create ?metrics ~seed ~shards () in
  List.iter
    (fun x ->
      Shard_group.add_object g x (fun log id ->
          Op_locking.rw log id (module Bank_account)))
    accounts;
  g

let hybrid_group ?(seed = 1) ?(shards = 2) () =
  let g = Shard_group.create ~policy:`Hybrid ~seed ~shards () in
  List.iter
    (fun x ->
      Shard_group.add_object g x (fun log id ->
          Hybrid.of_adt log id (module Bank_account)))
    accounts;
  g

let granted = function
  | Shard_group.Granted v -> v
  | Shard_group.Wait _ -> Alcotest.fail "unexpected wait"
  | Shard_group.Refused why -> Alcotest.fail ("refused: " ^ why)

let deposit g gt x n =
  ignore (granted (Shard_group.invoke g gt x (Bank_account.deposit n)))

(* --- routing -------------------------------------------------------- *)

let test_router_deterministic () =
  List.iter
    (fun x ->
      let s = Shard_router.shard_of ~shards:4 x in
      check_int "stable" s (Shard_router.shard_of ~shards:4 x);
      check_bool "in range" true (s >= 0 && s < 4))
    accounts;
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Router.shard_of: shards must be positive") (fun () ->
      ignore (Shard_router.shard_of ~shards:0 x))

let test_router_spreads () =
  let shards =
    List.sort_uniq Int.compare
      (List.map (Shard_router.shard_of ~shards:2) accounts)
  in
  check_int "both shards used" 2 (List.length shards)

(* --- fast path ------------------------------------------------------ *)

let test_single_shard_fast_path () =
  let g = rw_group () in
  let a, _ = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 10;
  (match Shard_group.commit g t with
  | Shard_group.Fast -> ()
  | Shard_group.Distributed _ -> Alcotest.fail "expected the fast path");
  check_int "no 2pc round ran" 0 (Shard_group.tpc_rounds g);
  check_int "one committed" 1 (Shard_group.committed_count g);
  check_bool "committed" true (Gtxn.status t = Gtxn.Committed)

let test_hybrid_fast_path_draws_group_ts () =
  let g = hybrid_group () in
  let a, b = cross_pair in
  let t1 = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t1 a 10;
  ignore (Shard_group.commit g t1);
  let t2 = Shard_group.begin_txn g (Activity.update "t2") in
  deposit g t2 b 10;
  ignore (Shard_group.commit g t2);
  match (Gtxn.commit_ts t1, Gtxn.commit_ts t2) with
  | Some ts1, Some ts2 ->
    (* Different shards, one clock: the later commit gets the later,
       distinct timestamp. *)
    check_bool "group clock orders fast-path commits" true
      (Timestamp.compare ts1 ts2 < 0)
  | _ -> Alcotest.fail "hybrid updates must carry commit timestamps"

(* --- 2PC commits ---------------------------------------------------- *)

let test_cross_shard_commit () =
  let g = rw_group () in
  let a, b = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 5;
  deposit g t b 7;
  (match Shard_group.commit g t with
  | Shard_group.Distributed (d, parts) ->
    check_bool "decided commit" true d.Tpc.committed;
    check_int "two participants" 2 (List.length parts);
    check_bool "atomic" true (Tpc.atomic_decision d)
  | Shard_group.Fast -> Alcotest.fail "expected a 2PC round");
  check_bool "committed" true (Gtxn.status t = Gtxn.Committed);
  (* Both shard histories record the commit. *)
  List.iter
    (fun s ->
      check_bool
        (Fmt.str "committed at shard %d" s)
        true
        (Activity.Set.mem (Gtxn.activity t)
           (History.committed (System.history (Shard_group.system g s)))))
    [ 0; 1 ]

let test_agreed_commit_ts_across_shards () =
  let g = hybrid_group () in
  let a, b = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 5;
  deposit g t b 7;
  ignore (Shard_group.commit g t);
  let ts_at s =
    History.timestamp_of
      (System.history (Shard_group.system g s))
      (Gtxn.activity t)
  in
  match (ts_at 0, ts_at 1, Shard_group.agreed_commit_ts g (Gtxn.gid t)) with
  | Some ts0, Some ts1, Some agreed ->
    check_bool "shards agree" true (Timestamp.compare ts0 ts1 = 0);
    check_int "and match the 2PC decision" agreed (Timestamp.to_int ts0)
  | _ -> Alcotest.fail "expected a commit timestamp on both shards"

let test_vote_no_aborts_everywhere () =
  let g = rw_group () in
  let a, b = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 5;
  deposit g t b 7;
  (match Shard_group.commit ~votes_no:[ 1 ] g t with
  | Shard_group.Distributed (d, _) ->
    check_bool "decided abort" false d.Tpc.committed
  | Shard_group.Fast -> Alcotest.fail "expected a 2PC round");
  check_bool "aborted" true (Gtxn.status t = Gtxn.Aborted);
  List.iter
    (fun s ->
      let h = System.history (Shard_group.system g s) in
      check_bool
        (Fmt.str "aborted at shard %d" s)
        true
        (Activity.Set.mem (Gtxn.activity t) (History.aborted h));
      check_bool
        (Fmt.str "not committed at shard %d" s)
        false
        (Activity.Set.mem (Gtxn.activity t) (History.committed h)))
    [ 0; 1 ];
  check_int "nothing committed" 0 (Shard_group.committed_count g)

(* --- the blocking window and its resolution ------------------------- *)

let test_coordinator_crash_leaves_in_doubt () =
  let g = rw_group () in
  let a, b = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 5;
  deposit g t b 7;
  let fault = { Tpc.no_fault with f_coordinator_crash = Tpc.After_prepare } in
  ignore (Shard_group.commit ~fault g t);
  check_bool "in doubt" true (Gtxn.status t = Gtxn.In_doubt);
  check_int "both legs prepared" 2 (Shard_group.in_doubt_count g);
  check_bool "no decision recorded" true
    (Shard_group.decision_of g (Gtxn.gid t) = None);
  (* A conflicting operation blocks behind the prepared legs. *)
  let t2 = Shard_group.begin_txn g (Activity.update "t2") in
  (match Shard_group.invoke g t2 a (Bank_account.deposit 1) with
  | Shard_group.Wait blockers ->
    check_bool "blocked on the in-doubt txn" true
      (List.exists (fun b -> Gtxn.equal b t) blockers)
  | _ -> Alcotest.fail "expected to block behind the prepared leg");
  Shard_group.abort g t2;
  (* Resolution: no durable decision means presumed abort. *)
  check_int "both legs resolved" 2 (Shard_group.resolve_in_doubt g);
  check_int "no leg in doubt" 0 (Shard_group.in_doubt_count g);
  check_bool "presumed abort" true (Gtxn.status t = Gtxn.Aborted)

(* Participant crashes between its yes-vote and the decision; the WAL's
   Prepared record survives, recovery reinstates the leg, and the
   replayed decision resolves it — the commit branch via the durable
   decision log, the abort branch via presumed abort. *)
let crash_and_recover ~resolve g s =
  let wal = Shard_group.crash_shard g s in
  match Shard_group.recover_shard ?resolve g s wal with
  | Ok report -> report.Recovery.shard
  | Error e -> Alcotest.fail (Fmt.str "recovery failed: %a" Recovery.pp_failure e)

let test_participant_crash_recovers_to_commit () =
  let g = rw_group () in
  let a, b = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 5;
  deposit g t b 7;
  let crash_idx =
    (* the participant index of shard 1 in the 2PC round *)
    match Gtxn.shards t with 1 :: _ -> 0 | _ -> 1
  in
  let fault =
    { Tpc.no_fault with f_participant_crash = Some (crash_idx, `After_vote) }
  in
  (match Shard_group.commit ~fault g t with
  | Shard_group.Distributed (d, _) ->
    check_bool "coordinator decided commit" true d.Tpc.committed
  | Shard_group.Fast -> Alcotest.fail "expected a 2PC round");
  check_bool "shard 1 crashed" true (Shard_group.shard_crashed g 1);
  (* The surviving shard committed; the crashed one is held by its WAL. *)
  let wal = Shard_group.durable_shard g 1 in
  check_bool "WAL holds the prepared record" true
    (has_substring ~sub:"!prepared" wal);
  let report = crash_and_recover ~resolve:None g 1 in
  check_int "one leg reinstated" 1 report.Recovery.reinstated;
  check_int "resolved from the decision log" 1 report.Recovery.resolved;
  check_int "nothing left in doubt" 0 (Shard_group.in_doubt_count g);
  check_bool "committed on both shards" true
    (List.for_all
       (fun s ->
         Activity.Set.mem (Gtxn.activity t)
           (History.committed (System.history (Shard_group.system g s))))
       [ 0; 1 ])

let test_participant_crash_held_in_doubt_then_aborts () =
  let g = rw_group () in
  let a, b = cross_pair in
  let t = Shard_group.begin_txn g (Activity.update "t1") in
  deposit g t a 5;
  deposit g t b 7;
  (* Coordinator dies undecided AND shard 1 then crashes: recovery must
     hold the reinstated leg in doubt until a decision resolves it. *)
  let fault = { Tpc.no_fault with f_coordinator_crash = Tpc.After_prepare } in
  ignore (Shard_group.commit ~fault g t);
  check_bool "in doubt" true (Gtxn.status t = Gtxn.In_doubt);
  let report =
    crash_and_recover ~resolve:(Some (fun _ -> `Unknown)) g 1
  in
  check_int "reinstated" 1 report.Recovery.reinstated;
  check_int "unresolved" 0 report.Recovery.resolved;
  check_int "held in doubt" 1 (List.length report.Recovery.in_doubt);
  check_bool "still in doubt" true (Gtxn.status t = Gtxn.In_doubt);
  check_int "two prepared legs" 2 (Shard_group.in_doubt_count g);
  (* The decision log has no record: presumed abort ends the window. *)
  check_int "resolved" 2 (Shard_group.resolve_in_doubt g);
  check_int "clear" 0 (Shard_group.in_doubt_count g);
  check_bool "aborted" true (Gtxn.status t = Gtxn.Aborted);
  List.iter
    (fun s ->
      check_bool
        (Fmt.str "not committed at shard %d" s)
        false
        (Activity.Set.mem (Gtxn.activity t)
           (History.committed (System.history (Shard_group.system g s)))))
    [ 0; 1 ]

(* --- cross-shard deadlock ------------------------------------------- *)

let test_cross_shard_deadlock () =
  let g = rw_group () in
  let a, b = cross_pair in
  let t1 = Shard_group.begin_txn g (Activity.update "t1") in
  let t2 = Shard_group.begin_txn g (Activity.update "t2") in
  deposit g t1 a 1;
  deposit g t2 b 1;
  (* Each now needs the other's home object: a cycle no single shard
     can see. *)
  (match Shard_group.invoke g t1 b (Bank_account.deposit 1) with
  | Shard_group.Wait _ -> ()
  | _ -> Alcotest.fail "t1 should block on t2");
  check_bool "no cycle visible yet" true (Shard_group.find_deadlock g = None);
  (match Shard_group.invoke g t2 a (Bank_account.deposit 1) with
  | Shard_group.Wait _ -> ()
  | _ -> Alcotest.fail "t2 should block on t1");
  match Shard_group.find_deadlock g with
  | None -> Alcotest.fail "expected a cross-shard deadlock"
  | Some cycle ->
    check_int "both in the cycle" 2 (List.length cycle);
    let v = Shard_group.victim cycle in
    check_bool "youngest is the victim" true (Gtxn.equal v t2);
    Shard_group.abort ~reason:"deadlock" g v;
    check_bool "cycle broken" true (Shard_group.find_deadlock g = None)

(* --- driver and harness --------------------------------------------- *)

let test_driver_clean_run () =
  let g = rw_group ~seed:3 ~shards:3 () in
  let w = Workload.banking () in
  let o = Sharded_driver.run g w in
  check_bool "made progress" true (o.Sharded_driver.committed > 10);
  check_bool "multi-shard commits happened" true
    (o.Sharded_driver.committed_multi > 0);
  check_bool "fast-path commits happened" true
    (o.Sharded_driver.committed_single > 0);
  check_int "none in doubt" 0 o.Sharded_driver.left_in_doubt;
  check_int "none stuck" 0 (Shard_group.in_doubt_count g);
  check_int "tally matches" o.Sharded_driver.committed
    (Shard_group.committed_count g)

let test_driver_metrics () =
  let metrics = Obs.Shard_metrics.create ~shards:2 () in
  let g = rw_group ~metrics ~seed:5 () in
  let w = Workload.banking () in
  let o = Sharded_driver.run g w in
  let rendered = Obs.Shard_metrics.render metrics in
  check_bool "renders the 2PC summary" true (has_substring ~sub:"2pc:" rendered);
  check_bool "registers per-shard instruments" true
    (has_substring ~sub:"shard0.committed.local"
       (Obs.Metrics.Registry.render_text (Obs.Shard_metrics.registry metrics)));
  check_bool "counts 2PC rounds" true
    (Shard_group.tpc_rounds g >= o.Sharded_driver.committed_multi)

let test_harness_quick_sweep () =
  let summary =
    Shard_harness.run_many ~quick:true ~seeds:(List.init 18 (fun i -> i + 1)) ()
  in
  (match Shard_harness.divergences summary with
  | [] -> ()
  | r :: _ ->
    Alcotest.fail (Fmt.str "divergence: %a" Shard_harness.pp_result r));
  check_int "all schedules ran" 18 summary.Shard_harness.schedules;
  check_bool "most schedules converge" true
    (summary.Shard_harness.converged > 12)

(* --- the blocking facade (real domains) ------------------------------ *)

let test_facade_atomically () =
  let rt = Sharded.create ~shards:2 () in
  List.iter
    (fun x ->
      Sharded.add_object rt x (fun log id ->
          Op_locking.rw log id (module Bank_account)))
    accounts;
  let a, b = cross_pair in
  (* A cross-shard transfer through the facade runs 2PC behind commit. *)
  (match
     Sharded.atomically rt (Activity.update "seed") (fun _ invoke ->
         ignore (invoke a (Bank_account.deposit 10));
         invoke b (Bank_account.deposit 5))
   with
  | Ok v -> check_bool "deposit ok" true (Value.equal v Value.ok)
  | Error e -> Alcotest.fail e);
  (* An unknown operation is refused; atomically aborts cleanly. *)
  (match
     Sharded.atomically rt (Activity.update "bad") (fun _ invoke ->
         invoke a (Operation.make "mystery" []))
   with
  | Ok _ -> Alcotest.fail "expected refusal"
  | Error _ -> ());
  check_int "one global commit" 1 (Sharded.committed_count rt)

let test_facade_across_domains () =
  let rt = Sharded.create ~shards:2 () in
  List.iter
    (fun x ->
      Sharded.add_object rt x (fun log id ->
          Op_locking.rw log id (module Bank_account)))
    accounts;
  let a, b = cross_pair in
  (* Four domains race cross-shard transfers; 2PL plus the group's
     deadlock breaker must let every one commit or die as a victim. *)
  let worker i =
    Domain.spawn (fun () ->
        let src, dst = if i mod 2 = 0 then (a, b) else (b, a) in
        let rec go tries =
          if tries > 25 then Error "starved"
          else
            match
              Sharded.atomically rt
                (Activity.update (Fmt.str "w%d.%d" i tries))
                (fun _ invoke ->
                  ignore (invoke src (Bank_account.deposit 1));
                  invoke dst (Bank_account.deposit 1))
            with
            | Ok _ -> Ok ()
            | Error "deadlock victim" -> go (tries + 1)
            | Error e -> Error e
        in
        go 0)
  in
  let domains = List.init 4 worker in
  List.iter
    (fun d ->
      match Domain.join d with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    domains;
  check_int "every worker committed once" 4 (Sharded.committed_count rt);
  (* All-or-nothing across the shards under real parallelism. *)
  let h0 = Sharded.history rt 0 and h1 = Sharded.history rt 1 in
  check_bool "no activity committed on one shard and aborted on the other"
    true
    (Activity.Set.is_empty
       (Activity.Set.inter (History.committed h0) (History.aborted h1))
    && Activity.Set.is_empty
         (Activity.Set.inter (History.committed h1) (History.aborted h0)))

(* --- cross-shard tracing --------------------------------------------- *)

(* A traced multi-shard run: flow arrows pair up s-to-f by id, the
   merged trace survives the importer, and the analyzer attributes
   every committed transaction's full interval to named phases. *)
let test_traced_run_round_trips_and_attributes () =
  let g = rw_group ~seed:7 ~shards:2 () in
  let tracer = Obs.Shard_trace.create ~shards:2 in
  let config = { Sharded_driver.default_config with duration = 300; seed = 7 } in
  let o = Sharded_driver.run ~config ~tracer g (Workload.banking ()) in
  check_bool "made progress" true (o.Sharded_driver.committed > 0);
  check_bool "multi-shard commits happened" true
    (o.Sharded_driver.committed_multi > 0);
  let evs = Obs.Shard_trace.events tracer in
  let with_ph p = List.filter (fun e -> e.Obs.Trace.ph = p) evs in
  let starts = with_ph Obs.Trace.S and finishes = with_ph Obs.Trace.F in
  check_bool "messages flew" true (starts <> []);
  let ids l = List.sort compare (List.filter_map (fun e -> e.Obs.Trace.id) l) in
  check_bool "every flow start has a matching finish" true
    (ids starts = ids finishes);
  (* Requests arrive at shard timelines; votes flow back to pid 0. *)
  check_bool "some flows land on shard timelines" true
    (List.exists (fun e -> e.Obs.Trace.pid > 0) finishes);
  check_bool "some flows land back on the coordinator" true
    (List.exists (fun e -> e.Obs.Trace.pid = 0) finishes);
  (* The merged export round-trips through the importer... *)
  match Obs.Trace.parse (Obs.Shard_trace.export tracer) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    check_int "round-trip preserves every event" (List.length evs)
      (List.length parsed);
    (* ...and the analyzer accounts for each committed transaction. *)
    let r = Obs.Trace_analysis.analyze parsed in
    check_bool "recognized as cross-shard" true
      r.Obs.Trace_analysis.cross_shard;
    check_int "analyzer sees every commit" o.Sharded_driver.committed
      r.Obs.Trace_analysis.committed;
    List.iter
      (fun t ->
        let covered =
          Obs.Trace_analysis.breakdown_total t.Obs.Trace_analysis.phases
        in
        check_bool "phases partition the txn interval" true
          (Float.abs (covered -. t.Obs.Trace_analysis.total) <= 1e-6))
      r.Obs.Trace_analysis.txns

(* --- the open-loop driver -------------------------------------------- *)

let open_cfg =
  {
    Sharded_driver.default_open_config with
    rate = 0.3;
    o_duration = 800;
    window = 200;
    o_seed = 9;
  }

let test_open_loop_deterministic () =
  let run () =
    let g = rw_group ~seed:2 ~shards:3 () in
    Sharded_driver.run_open ~config:open_cfg g (Workload.banking ())
  in
  let a = run () and b = run () in
  check_int "same arrivals" a.Sharded_driver.arrivals b.Sharded_driver.arrivals;
  check_int "same commits" a.Sharded_driver.o_committed
    b.Sharded_driver.o_committed;
  check_int "same aborts" a.Sharded_driver.o_aborted b.Sharded_driver.o_aborted;
  check_int "same number of windows"
    (List.length a.Sharded_driver.windows)
    (List.length b.Sharded_driver.windows);
  let check_float = Alcotest.(check (float 1e-9)) in
  List.iter2
    (fun (wa : Sharded_driver.window) (wb : Sharded_driver.window) ->
      check_int "window start" wa.Sharded_driver.w_start wb.Sharded_driver.w_start;
      check_int "window arrivals" wa.Sharded_driver.w_arrivals
        wb.Sharded_driver.w_arrivals;
      check_int "window commits" wa.Sharded_driver.w_committed
        wb.Sharded_driver.w_committed;
      check_int "window aborts" wa.Sharded_driver.w_aborted
        wb.Sharded_driver.w_aborted;
      check_float "window p50" wa.Sharded_driver.w_p50 wb.Sharded_driver.w_p50;
      check_float "window p99" wa.Sharded_driver.w_p99 wb.Sharded_driver.w_p99)
    a.Sharded_driver.windows b.Sharded_driver.windows

let test_open_loop_group_latency_is_shard_merge () =
  let g = rw_group ~seed:4 ~shards:3 () in
  let o = Sharded_driver.run_open ~config:open_cfg g (Workload.banking ()) in
  check_bool "made progress" true (o.Sharded_driver.o_committed > 0);
  let module H = Obs.Metrics.Histogram in
  let merged = H.merge_all (Array.to_list o.Sharded_driver.shard_latency) in
  let latency = o.Sharded_driver.latency in
  check_int "group count = merged shard counts" (H.count merged)
    (H.count latency);
  Alcotest.(check (float 1e-9)) "group sum" (H.sum merged) (H.sum latency);
  List.iter2
    (fun (_, m) (_, l) -> check_int "bucket" m l)
    (H.buckets merged) (H.buckets latency);
  (* Every commit's latency landed in exactly one home shard. *)
  check_int "commits all measured" o.Sharded_driver.o_committed (H.count latency)

(* --- the merged-projection property --------------------------------- *)

(* A sharded run's merged committed projection, replayed serially
   against one combined system, is exactly an equivalent single-shard
   run: every committed transaction re-executes with its logged
   results.  This is global atomicity made operational. *)
let prop_merged_projection_replays =
  QCheck2.Test.make ~name:"sharded committed projection = single-shard replay"
    ~count:25
    QCheck2.Gen.(
      triple (int_range 1 1000) (int_range 1 4) (oneofl [ `Rw; `Hybrid ]))
    (fun (seed, shards, kind) ->
      let make, policy =
        match kind with
        | `Rw ->
          ( (fun log id -> Op_locking.rw log id (module Bank_account)),
            `None_ )
        | `Hybrid ->
          ((fun log id -> Hybrid.of_adt log id (module Bank_account)), `Hybrid)
      in
      let g = Shard_group.create ~policy ~seed ~shards () in
      List.iter (fun x -> Shard_group.add_object g x make) accounts;
      let w = Workload.banking () in
      let config =
        { Sharded_driver.default_config with duration = 400; seed }
      in
      let o = Sharded_driver.run ~config g w in
      let sys = System.create ~policy () in
      List.iter
        (fun x -> System.add_object sys (make (System.log sys) x))
        accounts;
      match Recovery.replay_txns sys (Shard_group.committed_projection g) with
      | Error f ->
        QCheck2.Test.fail_reportf "merged replay diverged: %a"
          Recovery.pp_failure f
      | Ok report ->
        if report.Recovery.replayed <> o.Sharded_driver.committed then
          QCheck2.Test.fail_reportf "replayed %d of %d committed"
            report.Recovery.replayed o.Sharded_driver.committed
        else true)

let suite =
  [
    Alcotest.test_case "router: deterministic and in range" `Quick
      test_router_deterministic;
    Alcotest.test_case "router: spreads accounts over shards" `Quick
      test_router_spreads;
    Alcotest.test_case "single-shard commit takes the fast path" `Quick
      test_single_shard_fast_path;
    Alcotest.test_case "hybrid fast path draws from the group clock" `Quick
      test_hybrid_fast_path_draws_group_ts;
    Alcotest.test_case "cross-shard commit runs 2PC" `Quick
      test_cross_shard_commit;
    Alcotest.test_case "shards agree on the 2PC commit timestamp" `Quick
      test_agreed_commit_ts_across_shards;
    Alcotest.test_case "a no-vote aborts every leg" `Quick
      test_vote_no_aborts_everywhere;
    Alcotest.test_case "coordinator crash leaves legs in doubt" `Quick
      test_coordinator_crash_leaves_in_doubt;
    Alcotest.test_case "crashed participant recovers to commit" `Quick
      test_participant_crash_recovers_to_commit;
    Alcotest.test_case "recovered leg held in doubt, then aborts" `Quick
      test_participant_crash_held_in_doubt_then_aborts;
    Alcotest.test_case "cross-shard deadlock victimizes the youngest" `Quick
      test_cross_shard_deadlock;
    Alcotest.test_case "driver: clean sharded run" `Quick test_driver_clean_run;
    Alcotest.test_case "driver: per-shard metrics" `Quick test_driver_metrics;
    Alcotest.test_case "facade: atomically commits and refuses" `Quick
      test_facade_atomically;
    Alcotest.test_case "facade: cross-shard transfers across domains" `Quick
      test_facade_across_domains;
    Alcotest.test_case "harness: quick fault sweep has no divergence" `Slow
      test_harness_quick_sweep;
    Alcotest.test_case "traced run: flows pair, importer round-trips, \
                        analyzer attributes" `Quick
      test_traced_run_round_trips_and_attributes;
    Alcotest.test_case "open loop: same seed, same windowed series" `Quick
      test_open_loop_deterministic;
    Alcotest.test_case "open loop: group latency merges the shards" `Quick
      test_open_loop_group_latency_is_shard_merge;
    to_alcotest prop_merged_projection_replays;
  ]
