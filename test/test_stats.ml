(* Edge cases of the summary statistics: percentile extremes,
   singleton and empty inputs. *)

open Core

let check_f = Alcotest.(check (float 1e-9))

let test_percentile_extremes () =
  let xs = [ 4.; 1.; 3.; 5.; 2. ] in
  check_f "p0 is the minimum" 1. (Stats.percentile 0. xs);
  check_f "p100 is the maximum" 5. (Stats.percentile 100. xs);
  check_f "p50 is the median" 3. (Stats.percentile 50. xs);
  (* Nearest-rank: p20 of five elements is the first. *)
  check_f "p20 of five" 1. (Stats.percentile 20. xs);
  check_f "p20.1 of five" 2. (Stats.percentile 20.1 xs)

let test_singleton () =
  let xs = [ 7. ] in
  check_f "mean" 7. (Stats.mean xs);
  check_f "median" 7. (Stats.median xs);
  check_f "p0" 7. (Stats.percentile 0. xs);
  check_f "p100" 7. (Stats.percentile 100. xs);
  check_f "min" 7. (Stats.minimum xs);
  check_f "max" 7. (Stats.maximum xs);
  check_f "stddev of one point" 0. (Stats.stddev xs)

let test_empty () =
  check_f "mean" 0. (Stats.mean []);
  check_f "median" 0. (Stats.median []);
  check_f "p0" 0. (Stats.percentile 0. []);
  check_f "p95" 0. (Stats.percentile 95. []);
  check_f "p100" 0. (Stats.percentile 100. []);
  check_f "min" 0. (Stats.minimum []);
  check_f "max" 0. (Stats.maximum []);
  check_f "stddev" 0. (Stats.stddev [])

let suite =
  [
    Alcotest.test_case "percentile extremes" `Quick test_percentile_extremes;
    Alcotest.test_case "singleton" `Quick test_singleton;
    Alcotest.test_case "empty" `Quick test_empty;
  ]
