(* Mechanical verification of the hand-written commutativity tables
   against the specifications. *)

open Core
open Helpers

let verify_table name spec hand gen_ops alphabet =
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let label =
            Fmt.str "%s: %a vs %a" name Operation.pp p Operation.pp q
          in
          match
            Commutativity_check.commute_on_reachable spec ~gen_ops p q
          with
          | Commute -> check_bool label true (hand p q)
          | Conflict _ -> check_bool label false (hand p q)
          | Unknown why -> Alcotest.failf "%s: unknown (%s)" label why)
        alphabet)
    alphabet

let test_intset_table () =
  let alphabet =
    Intset.[ insert 1; insert 2; delete 1; delete 2; member 1; member 2; size ]
  in
  verify_table "intset" Intset.spec Intset.commutes alphabet alphabet

let test_account_table () =
  let alphabet =
    Bank_account.[ deposit 5; deposit 2; withdraw 3; withdraw 6; balance ]
  in
  verify_table "account" Bank_account.spec Bank_account.commutes alphabet
    alphabet

let test_register_table () =
  let alphabet = Register.[ read; write 1; write 2 ] in
  verify_table "register" Register.spec Register.commutes alphabet alphabet

let test_queue_table () =
  let alphabet = Fifo_queue.[ enqueue 1; enqueue 2; dequeue ] in
  verify_table "queue" Fifo_queue.spec Fifo_queue.commutes alphabet alphabet

let test_counter_table () =
  let alphabet = [ Counter.increment ] in
  verify_table "counter" Counter.spec Counter.commutes alphabet alphabet

let test_blind_counter_table () =
  let alphabet = Blind_counter.[ bump 1; bump 2; read ] in
  verify_table "blind counter" Blind_counter.spec Blind_counter.commutes
    alphabet alphabet

let test_stack_table () =
  let alphabet = Stack.[ push 1; push 2; pop ] in
  verify_table "stack" Stack.spec Stack.commutes alphabet alphabet

let test_append_log_table () =
  let alphabet = Append_log.[ append 1; append 2; size; read 0 ] in
  verify_table "append log" Append_log.spec Append_log.commutes alphabet
    alphabet

let test_kv_map_table () =
  let alphabet =
    Kv_map.[ put 1 10; put 1 20; put 2 10; get 1; get 2; remove 1; size ]
  in
  verify_table "kv map" Kv_map.spec Kv_map.commutes alphabet alphabet

let test_priority_queue_table () =
  let alphabet =
    Priority_queue.[ add 1; add 5; extract_min; find_min ]
  in
  verify_table "priority queue" Priority_queue.spec Priority_queue.commutes
    alphabet alphabet

(* The semiqueue's [deq] is non-deterministic; the generalized engine
   must both certify its table and justify its most conservative entry:
   two concurrent [deq]s may each be granted the same item against the
   same committed state, so [deq]/[deq] is a conflict even though the
   two orders are observationally symmetric. *)
let test_semiqueue_table () =
  let alphabet = Semiqueue.[ enq 1; enq 2; deq ] in
  verify_table "semiqueue" Semiqueue.spec Semiqueue.commutes alphabet alphabet

let test_semiqueue_deq_conflict () =
  let gen_ops = Semiqueue.[ enq 1; enq 2; deq ] in
  (match
     Commutativity_check.commute_on_reachable Semiqueue.spec ~gen_ops
       Semiqueue.deq Semiqueue.deq
   with
  | Conflict _ -> ()
  | v ->
    Alcotest.failf "deq/deq should conflict, got %a"
      Commutativity_check.pp_verdict v);
  match
    Commutativity_check.commute_on_reachable Semiqueue.spec ~gen_ops
      (Semiqueue.enq 1) (Semiqueue.enq 2)
  with
  | Commute -> ()
  | v ->
    Alcotest.failf "enq 1/enq 2 should commute, got %a"
      Commutativity_check.pp_verdict v

let test_exploration_dedup () =
  (* insert 1 twice reaches the same state: without deduplication the
     intset exploration at depth 3 would return 7^3-ish frontiers. *)
  let gen_ops = Intset.[ insert 1; delete 1; member 1 ] in
  let frontiers, stats =
    Commutativity_check.reachable_frontiers Intset.spec ~gen_ops ~depth:3
  in
  check_int "distinct matches list" stats.distinct (List.length frontiers);
  check_bool "dedup removed duplicates" true (stats.distinct < stats.enumerated);
  (* Reachable: {} and {1}. *)
  check_int "intset on one element has two distinct states" 2 stats.distinct;
  check_bool "not truncated" false stats.truncated

let test_exploration_truncation () =
  (* [member] probes make the 8 subset states distinguishable, so a cap
     of 2 genuinely cuts the exploration short. *)
  let gen_ops =
    Intset.[ insert 1; insert 2; insert 3; member 1; member 2; member 3 ]
  in
  let _, stats =
    Commutativity_check.reachable_frontiers Intset.spec ~gen_ops ~depth:3
      ~max_states:2
  in
  check_bool "cap reported" true stats.truncated;
  match
    Commutativity_check.commute_on_reachable Intset.spec ~gen_ops ~max_states:2
      (Intset.insert 1) (Intset.insert 2)
  with
  | Unknown _ -> ()
  | v ->
    Alcotest.failf "truncated exploration should be unknown, got %a"
      Commutativity_check.pp_verdict v

let test_observational_equality () =
  let f = Seq_spec.start Intset.spec in
  let advance frontier op res = Option.get (Seq_spec.advance frontier op res) in
  let f1 = advance f (Intset.insert 1) Value.ok in
  let f2 = advance f1 (Intset.insert 1) Value.ok in
  let probes = Intset.[ member 1; member 2; size ] in
  check_bool "idempotent insert: same state" true
    (Commutativity_check.observationally_equal ~probes ~depth:2 f1 f2);
  let g = advance f (Intset.insert 2) Value.ok in
  check_bool "different elements: different states" false
    (Commutativity_check.observationally_equal ~probes ~depth:2 f1 g)

let suite =
  [
    Alcotest.test_case "intset table verified" `Quick test_intset_table;
    Alcotest.test_case "account table verified" `Quick test_account_table;
    Alcotest.test_case "register table verified" `Quick test_register_table;
    Alcotest.test_case "queue table verified" `Quick test_queue_table;
    Alcotest.test_case "counter table verified" `Quick test_counter_table;
    Alcotest.test_case "blind counter table verified" `Quick
      test_blind_counter_table;
    Alcotest.test_case "stack table verified" `Quick test_stack_table;
    Alcotest.test_case "append log table verified" `Quick
      test_append_log_table;
    Alcotest.test_case "kv map table verified" `Quick test_kv_map_table;
    Alcotest.test_case "priority queue table verified" `Quick
      test_priority_queue_table;
    Alcotest.test_case "semiqueue table verified" `Quick test_semiqueue_table;
    Alcotest.test_case "semiqueue deq/deq conflicts" `Quick
      test_semiqueue_deq_conflict;
    Alcotest.test_case "exploration deduplicates" `Quick test_exploration_dedup;
    Alcotest.test_case "exploration truncation reported" `Quick
      test_exploration_truncation;
    Alcotest.test_case "observational equality" `Quick
      test_observational_equality;
  ]
