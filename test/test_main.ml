let () =
  Alcotest.run "weihl83"
    [
      ("primitives", Test_primitives.suite);
      ("history", Test_history.suite);
      ("wellformed", Test_wellformed.suite);
      ("acceptance", Test_acceptance.suite);
      ("orders", Test_orders.suite);
      ("serializability", Test_serializability.suite);
      ("atomicity (paper examples)", Test_atomicity.suite);
      ("adts", Test_adts.suite);
      ("op locking (baselines)", Test_op_locking.suite);
      ("escrow account", Test_escrow.suite);
      ("da set", Test_da_set.suite);
      ("da queue", Test_da_queue.suite);
      ("da generic (reference)", Test_da_generic.suite);
      ("da semiqueue", Test_da_semiqueue.suite);
      ("multiversion (static)", Test_multiversion.suite);
      ("hybrid", Test_hybrid.suite);
      ("hybrid account (escrow updates)", Test_hybrid_account.suite);
      ("system", Test_system.suite);
      ("infrastructure", Test_infrastructure.suite);
      ("simulator", Test_sim.suite);
      ("notation", Test_notation.suite);
      ("enumeration", Test_enumerate.suite);
      ("validator", Test_validator.suite);
      ("optimality constructions", Test_optimality.suite);
      ("commutativity derivation", Test_commutativity.suite);
      ("model checking (explore)", Test_explore.suite);
      ("new adts", Test_new_adts.suite);
      ("da kv map", Test_da_kv.suite);
      ("da blind counter", Test_da_counter.suite);
      ("rw before-image recovery", Test_rw_undo.suite);
      ("two-phase commit", Test_tpc.suite);
      ("multicore runtime", Test_concurrent.suite);
      ("recovery", Test_recovery.suite);
      ("checkpointing", Test_checkpoint.suite);
      ("stats edge cases", Test_stats.suite);
      ("adt inference", Test_infer.suite);
      ("observability", Test_obs.suite);
      ("fault injection", Test_fault.suite);
      ("lint certifier", Test_lint.suite);
      ("protocol synthesis", Test_synth.suite);
      ("sharded runtime", Test_shard.suite);
      ("multicore shards", Test_mcore.suite);
    ("replica tier", Test_replica.suite);
      ("properties (qcheck)", Test_props.suite);
    ]
