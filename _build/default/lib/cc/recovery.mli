(** Crash recovery from the event log.

    The shared event log doubles as a write-ahead log: its text form
    ({!Weihl_event.Notation}) is the durable record, and the committed
    projection determines the state to rebuild.  Recovery re-executes
    the committed transactions serially against fresh objects:

    - in {e commit order} for dynamic-atomic systems — commit order is
      consistent with [precedes], so dynamic atomicity guarantees it is
      a valid serialization;
    - in {e timestamp order} for static and hybrid systems — their
      definitions make the timestamp order the valid serialization.

    Re-execution must reproduce the logged results exactly (serial
    execution of a deterministic specification); any mismatch means the
    log and the objects disagree and recovery fails loudly rather than
    silently diverging.  Aborted and in-flight transactions are
    discarded, exactly as [perm] discards them in the model. *)

open Weihl_event

type order = Commit_order | Timestamp_order

val committed_in_order :
  order -> History.t -> (Activity.t * (Object_id.t * Operation.t * Value.t) list) list
(** The committed transactions, each with its completed operations in
    program order, sorted by the recovery order.  Activities without a
    timestamp are dropped under [Timestamp_order]. *)

val restore :
  order -> System.t -> History.t -> (int, string) result
(** Re-execute the committed transactions of the history against the
    (fresh) system's objects.  Returns the number of transactions
    replayed, or a description of the first divergence.  The system's
    log will contain the replayed events. *)

val restore_from_text :
  order -> System.t -> string -> (int, string) result
(** {!restore} after parsing the durable text form. *)
