(** A dynamic-atomic blind counter (statistics counter).

    [bump n] operations commute with each other, so every bump is
    granted immediately; [read] must be definite in every serialization
    order, so it waits for other transactions' pending bumps and then
    holds a read claim that delays later bumps until the reader
    completes (the same discipline as the escrow account's
    [balance]). *)

open Weihl_event

val make : Event_log.t -> Object_id.t -> Atomic_object.t
