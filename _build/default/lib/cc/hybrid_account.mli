(** The full hybrid-atomic bank account: escrow updates + versioned
    audits.

    {!Hybrid.of_adt} processes updates with commutativity locking; the
    paper's own design (Section 4.3: "it processes updates using
    dynamic atomicity") allows {e any} dynamic-atomic discipline for
    updates.  This object combines the best of both experiments:

    - update transactions run under the escrow rules of
      {!Escrow_account} (concurrent covered withdrawals, immediate
      deposits, definite answers protected by claims);
    - at commit an update's net effect is archived as a version stamped
      with its commit timestamp (drawn by the manager from the monotone
      clock, hence consistent with [precedes]);
    - read-only transactions with initiation timestamp [t] answer
      [balance] from the versions with commit timestamps below [t] —
      never waiting, never aborting, never disturbing updates.

    Every history this object generates is hybrid atomic. *)

open Weihl_event

val make : Event_log.t -> Object_id.t -> Atomic_object.t
