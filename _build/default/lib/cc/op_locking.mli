(** Operation locking with a pluggable conflict relation — the family
    of "scheduler model" protocols the paper compares against
    (Section 5.1).

    A transaction may execute an operation only if it conflicts with no
    operation held by another active transaction; locks are held until
    commit or abort (strictness), and recovery uses intentions lists.
    Every history such an object generates is dynamic atomic — these
    protocols are correct but {e suboptimal}: they refuse interleavings
    dynamic atomicity permits (see [Weihl_cc.Escrow_account] and
    [Weihl_cc.Da_queue] for data-dependent objects that admit them).

    Two standard instantiations:
    - {!rw}: conflict iff not both operations are reads — classical
      strict two-phase locking;
    - {!commutativity}: conflict iff the operations do not commute
      state-independently — the protocols of Bernstein 81, Korth 81 and
      Schwarz & Spector 82. *)

open Weihl_event

val make :
  Event_log.t ->
  Object_id.t ->
  Weihl_spec.Seq_spec.t ->
  conflict:(Operation.t -> Operation.t -> bool) ->
  Atomic_object.t

val rw : Event_log.t -> Object_id.t -> (module Weihl_adt.Adt_sig.S) ->
  Atomic_object.t

val commutativity :
  Event_log.t -> Object_id.t -> (module Weihl_adt.Adt_sig.S) ->
  Atomic_object.t
