(** A logical clock issuing unique, monotonically increasing
    timestamps.

    The hybrid protocol draws update timestamps from such a clock at
    commit; because the clock is monotone, the timestamp order of
    committed updates is automatically consistent with [precedes]
    (a commit that precedes an operation of a later activity happened
    earlier in real time, hence drew a smaller timestamp) — the
    implementation route the paper attributes to Lamport clocks
    (Section 4.3.3). *)

open Weihl_event

type t

val create : ?start:int -> unit -> t

val next : t -> Timestamp.t
(** Strictly greater than every timestamp previously issued or
    observed. *)

val observe : t -> Timestamp.t -> unit
(** Advance the clock past an externally chosen timestamp. *)

val now : t -> Timestamp.t
(** The last issued/observed timestamp (the initial value if none). *)
