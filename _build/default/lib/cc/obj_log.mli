(** Per-object event recording with invoke/respond pairing.

    Blocked invocations are re-attempted by the caller; the invocation
    event must nevertheless be recorded exactly once, when the
    operation is first submitted.  This helper tracks the pending
    operation of each transaction at one object and appends the
    corresponding events to the shared log. *)

open Weihl_event

type t

val create : Event_log.t -> Object_id.t -> t
val object_id : t -> Object_id.t

val invoked : t -> Txn.t -> Operation.t -> unit
(** Record the invocation event unless the same operation is already
    pending for this transaction (i.e. this is a retry). *)

val responded : t -> Txn.t -> Value.t -> unit
(** Record the termination event and clear the pending operation. *)

val dropped : t -> Txn.t -> unit
(** Clear the pending operation without a termination event (used when
    a protocol refuses an operation and the transaction will abort). *)

val committed : t -> Txn.t -> unit
(** Record the commit event, carrying the transaction's commit
    timestamp if one is set. *)

val aborted : t -> Txn.t -> unit

val initiated : t -> Txn.t -> unit
(** Record the initiation event (with the transaction's initiation
    timestamp) unless already recorded for this transaction.
    @raise Invalid_argument if the transaction has no initiation
    timestamp. *)
