open Weihl_event

type t = { mutable events : Event.t list (* newest first *) }

let create () = { events = [] }
let record t e = t.events <- e :: t.events
let history t = History.of_list (List.rev t.events)
let length t = List.length t.events
let clear t = t.events <- []
