(** Strict read/write two-phase locking with {e before-image} recovery
    — the classical alternative to intentions lists.

    Writers apply operations to the object state in place, saving the
    state they found on their first write (the before-image); abort
    restores it.  This is sound only because the exclusive write lock
    guarantees no other transaction observed or modified the state in
    between — exactly the coupling of recovery technique to
    concurrency-control assumptions that Section 5 warns biases
    specifications toward particular recovery implementations.  The
    ablation benchmark contrasts its commit/abort costs with the
    intentions-list objects.

    Functionally equivalent to [Op_locking.rw]: same conflicts, same
    answers, dynamic atomic histories. *)

open Weihl_event

val make :
  Event_log.t -> Object_id.t -> (module Weihl_adt.Adt_sig.S) ->
  Atomic_object.t
