open Weihl_event

type t = {
  log : Event_log.t;
  id : Object_id.t;
  pending : (int, Operation.t) Hashtbl.t;
  initiated_txns : (int, unit) Hashtbl.t;
}

let create log id =
  { log; id; pending = Hashtbl.create 8; initiated_txns = Hashtbl.create 8 }

let object_id t = t.id

let invoked t txn op =
  match Hashtbl.find_opt t.pending (Txn.id txn) with
  | Some op' when Operation.equal op op' -> () (* retry *)
  | Some _ ->
    invalid_arg
      "Obj_log.invoked: transaction switched operations while one was \
       pending"
  | None ->
    Hashtbl.replace t.pending (Txn.id txn) op;
    Event_log.record t.log (Event.invoke (Txn.activity txn) t.id op)

let responded t txn res =
  Hashtbl.remove t.pending (Txn.id txn);
  Event_log.record t.log (Event.respond (Txn.activity txn) t.id res)

let dropped t txn = Hashtbl.remove t.pending (Txn.id txn)

let committed t txn =
  let a = Txn.activity txn in
  let e =
    match Txn.commit_ts txn with
    | Some ts -> Event.commit_ts a t.id ts
    | None -> Event.commit a t.id
  in
  Event_log.record t.log e

let aborted t txn =
  Hashtbl.remove t.pending (Txn.id txn);
  Event_log.record t.log (Event.abort (Txn.activity txn) t.id)

let initiated t txn =
  if not (Hashtbl.mem t.initiated_txns (Txn.id txn)) then begin
    match Txn.init_ts txn with
    | None ->
      invalid_arg "Obj_log.initiated: transaction has no initiation timestamp"
    | Some ts ->
      Hashtbl.replace t.initiated_txns (Txn.id txn) ();
      Event_log.record t.log (Event.initiate (Txn.activity txn) t.id ts)
  end

