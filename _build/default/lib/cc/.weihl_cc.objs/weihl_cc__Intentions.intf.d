lib/cc/intentions.mli: Operation Txn Value Weihl_event Weihl_spec
