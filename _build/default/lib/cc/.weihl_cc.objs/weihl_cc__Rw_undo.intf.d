lib/cc/rw_undo.mli: Atomic_object Event_log Object_id Weihl_adt Weihl_event
