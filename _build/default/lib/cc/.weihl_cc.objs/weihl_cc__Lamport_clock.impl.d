lib/cc/lamport_clock.ml: Timestamp Weihl_event
