lib/cc/event_log.mli: Event History Weihl_event
