lib/cc/obj_log.mli: Event_log Object_id Operation Txn Value Weihl_event
