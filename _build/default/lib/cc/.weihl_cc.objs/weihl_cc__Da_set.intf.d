lib/cc/da_set.mli: Atomic_object Event_log Object_id Weihl_event
