lib/cc/da_semiqueue.mli: Atomic_object Event_log Object_id Weihl_event
