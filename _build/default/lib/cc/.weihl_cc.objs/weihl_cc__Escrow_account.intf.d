lib/cc/escrow_account.mli: Atomic_object Event_log Object_id Weihl_event
