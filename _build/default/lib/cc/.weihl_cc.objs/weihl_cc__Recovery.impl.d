lib/cc/recovery.ml: Activity Atomic_object Event Fmt History Int List Notation Object_id Operation Option System Timestamp Txn Value Weihl_event
