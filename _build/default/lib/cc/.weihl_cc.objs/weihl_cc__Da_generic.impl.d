lib/cc/da_generic.ml: Atomic_object Fmt List Obj_log Operation Option Txn Value Weihl_event Weihl_spec
