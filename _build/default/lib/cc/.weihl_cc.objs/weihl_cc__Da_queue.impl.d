lib/cc/da_queue.ml: Atomic_object Fmt Int List Obj_log Operation Option Txn Value Weihl_adt Weihl_event
