lib/cc/hybrid.mli: Atomic_object Event_log Object_id Operation Weihl_adt Weihl_event Weihl_spec
