lib/cc/hybrid.ml: Atomic_object Fmt Intentions List Obj_log Operation Timestamp Txn Value Weihl_adt Weihl_event Weihl_spec
