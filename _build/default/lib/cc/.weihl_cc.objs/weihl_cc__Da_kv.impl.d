lib/cc/da_kv.ml: Atomic_object Fmt Intentions List Obj_log Operation Option Txn Value Weihl_adt Weihl_event
