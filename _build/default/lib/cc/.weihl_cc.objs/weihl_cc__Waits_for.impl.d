lib/cc/waits_for.ml: Hashtbl List Txn
