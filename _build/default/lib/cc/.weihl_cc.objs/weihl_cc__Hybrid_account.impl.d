lib/cc/hybrid_account.ml: Atomic_object Fmt List Obj_log Operation Timestamp Txn Value Weihl_adt Weihl_event
