lib/cc/rw_undo.ml: Atomic_object Fmt Hashtbl Obj_log Operation Txn Weihl_adt Weihl_event Weihl_spec
