lib/cc/lamport_clock.mli: Timestamp Weihl_event
