lib/cc/waits_for.mli: Txn
