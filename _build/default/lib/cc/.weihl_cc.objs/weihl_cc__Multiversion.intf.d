lib/cc/multiversion.mli: Atomic_object Event_log Object_id Weihl_event Weihl_spec
