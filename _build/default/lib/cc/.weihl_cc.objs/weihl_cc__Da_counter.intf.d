lib/cc/da_counter.mli: Atomic_object Event_log Object_id Weihl_event
