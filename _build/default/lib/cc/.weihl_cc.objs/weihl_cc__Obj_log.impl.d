lib/cc/obj_log.ml: Event Event_log Hashtbl Object_id Operation Txn Weihl_event
