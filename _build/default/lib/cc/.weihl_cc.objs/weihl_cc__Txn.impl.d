lib/cc/txn.ml: Activity Fmt Int List Object_id Timestamp Weihl_event
