lib/cc/atomic_object.ml: Fmt Object_id Operation Txn Value Weihl_event Weihl_spec
