lib/cc/system.ml: Activity Atomic_object Event_log Fmt Lamport_clock List Object_id Timestamp Txn Waits_for Weihl_event
