lib/cc/intentions.ml: Hashtbl List Operation Txn Value Weihl_event Weihl_spec
