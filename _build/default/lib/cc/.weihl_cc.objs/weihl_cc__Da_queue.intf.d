lib/cc/da_queue.mli: Atomic_object Event_log Object_id Weihl_event
