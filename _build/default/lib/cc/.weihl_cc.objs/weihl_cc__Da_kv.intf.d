lib/cc/da_kv.mli: Atomic_object Event_log Object_id Weihl_event
