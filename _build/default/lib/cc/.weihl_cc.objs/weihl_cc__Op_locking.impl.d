lib/cc/op_locking.ml: Atomic_object Fmt Intentions List Obj_log Operation Txn Weihl_adt Weihl_event
