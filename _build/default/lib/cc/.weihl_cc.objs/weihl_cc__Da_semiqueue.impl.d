lib/cc/da_semiqueue.ml: Atomic_object Fmt List Obj_log Operation Txn Value Weihl_adt Weihl_event
