lib/cc/system.mli: Activity Atomic_object Event_log History Lamport_clock Object_id Operation Timestamp Txn Weihl_event
