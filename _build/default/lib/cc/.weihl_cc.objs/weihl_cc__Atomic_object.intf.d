lib/cc/atomic_object.mli: Format Object_id Txn Value Weihl_event Weihl_spec
