lib/cc/da_counter.ml: Atomic_object Fmt List Obj_log Operation Txn Value Weihl_adt Weihl_event
