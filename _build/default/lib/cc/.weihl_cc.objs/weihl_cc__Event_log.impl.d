lib/cc/event_log.ml: Event History List Weihl_event
