lib/cc/txn.mli: Activity Format Object_id Timestamp Weihl_event
