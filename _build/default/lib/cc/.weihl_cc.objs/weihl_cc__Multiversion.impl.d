lib/cc/multiversion.ml: Atomic_object Fmt Hashtbl Int List Obj_log Operation Option Timestamp Txn Value Weihl_event Weihl_spec
