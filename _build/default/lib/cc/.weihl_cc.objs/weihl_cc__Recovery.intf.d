lib/cc/recovery.mli: Activity History Object_id Operation System Value Weihl_event
