open Weihl_event

type order = Commit_order | Timestamp_order

(* Completed (op, result) pairs of one activity, in program order. *)
let completed_ops h a =
  let events = History.to_list (History.project_activity a h) in
  let rec pair = function
    | Event.Invoke (_, x, op) :: Event.Respond (_, x', res) :: rest
      when Object_id.equal x x' ->
      (x, op, res) :: pair rest
    | _ :: rest -> pair rest
    | [] -> []
  in
  pair events

let commit_position h a =
  let rec go i = function
    | [] -> None
    | Event.Commit (a', _, _) :: _ when Activity.equal a a' -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (History.to_list h)

let committed_in_order order h =
  let committed = Activity.Set.elements (History.committed h) in
  let keyed =
    match order with
    | Commit_order ->
      List.filter_map
        (fun a -> Option.map (fun i -> (i, a)) (commit_position h a))
        committed
    | Timestamp_order ->
      List.filter_map
        (fun a ->
          Option.map
            (fun ts -> (Timestamp.to_int ts, a))
            (History.timestamp_of h a))
        committed
  in
  List.sort (fun (i, _) (j, _) -> Int.compare i j) keyed
  |> List.map (fun (_, a) -> (a, completed_ops h a))

let restore order sys h =
  let txns = committed_in_order order h in
  let rec replay count = function
    | [] -> Ok count
    | (activity, ops) :: rest -> (
      let txn = System.begin_txn sys activity in
      let rec run = function
        | [] ->
          System.commit sys txn;
          Ok ()
        | (obj, op, expected) :: more -> (
          match System.invoke sys txn obj op with
          | Atomic_object.Granted actual ->
            if Value.equal actual expected then run more
            else
              Error
                (Fmt.str
                   "recovery divergence: %a at %a answered %a, log says %a"
                   Operation.pp op Object_id.pp obj Value.pp actual Value.pp
                   expected)
          | Atomic_object.Wait _ ->
            Error
              (Fmt.str
                 "recovery stalled: %a at %a blocked during serial replay"
                 Operation.pp op Object_id.pp obj)
          | Atomic_object.Refused why ->
            Error (Fmt.str "recovery refused: %s" why))
      in
      match run ops with
      | Ok () -> replay (count + 1) rest
      | Error _ as e ->
        (* Leave the failed transaction aborted so the system stays
           consistent. *)
        (if Txn.is_active txn then System.abort sys txn);
        e)
  in
  replay 0 txns

let restore_from_text order sys text =
  match Notation.history_of_string text with
  | Error e -> Error (Fmt.str "%a" Notation.pp_error e)
  | Ok h -> restore order sys h
