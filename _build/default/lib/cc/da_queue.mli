(** A dynamic-atomic FIFO queue — the object behind the Figure 5-1
    separation from the scheduler model.

    Enqueues are buffered per transaction and become visible atomically
    at commit, so concurrent enqueuers never conflict.  The relative
    order of two enqueuers is pinned only when [precedes] pins it (one
    committed before the other invoked a response); otherwise both
    serialization orders remain possible, exactly as dynamic atomicity
    demands.

    A dequeue is therefore granted only when the value at the next
    queue position is the {e same in every serialization order
    consistent with the pins} — the paper's interleaving, where two
    activities concurrently enqueue the equal sequences [1;2] and
    [1;2], is granted, while an interleaving whose orders disagree on
    the front is refused (if the ambiguity is already committed and
    permanent) or waited out (if an active transaction may still
    resolve it).

    A dequeue that answers [empty] claims emptiness: later enqueues by
    other transactions wait until the claimant completes, preserving
    serializability of the [empty] answer in every consistent order. *)

open Weihl_event

val make :
  ?max_extensions:int -> Event_log.t -> Object_id.t -> Atomic_object.t
(** [max_extensions] caps the number of serialization orders examined
    per dequeue (default 500); past the cap the object conservatively
    waits on the active transactions involved. *)
