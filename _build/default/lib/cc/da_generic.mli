(** A reference implementation of dynamic atomicity for {e any}
    sequential specification, by direct quantification over
    serialization orders.

    The paper defines dynamic atomicity as a property of an object's
    specification; the bespoke objects in this library
    ({!Escrow_account}, {!Da_set}, {!Da_queue}, …) realize it with
    hand-derived, constant-time conflict rules.  This object realizes
    it {e by definition}: an operation is granted result [r] only if
    {e every} serialization of the transactions seen so far — every
    subset of the active transactions (they may yet abort), in every
    order consistent with the object-local [precedes] pins — replays
    all previously granted results and permits [r].

    Because new transactions are always checked against the granted
    results already on the books, a grant can never be invalidated
    later: the rule is self-protecting, and every generated history is
    dynamic atomic.  When no single result is valid in every
    serialization, the invoker waits (other active transactions may
    resolve the ambiguity) or, if the ambiguity is already committed
    and permanent, is refused.

    The price is exponential work in the number of concurrently known
    transactions, bounded by [max_serializations]; past the bound the
    object conservatively makes the invoker wait.  Use it as an oracle
    in tests and ablations, or for low-concurrency objects whose
    semantics defeat hand analysis. *)

open Weihl_event

val make :
  ?max_serializations:int ->
  Event_log.t ->
  Object_id.t ->
  Weihl_spec.Seq_spec.t ->
  Atomic_object.t
(** [max_serializations] default 2000. *)
