(** A dynamic-atomic key/value map with result-aware, per-key conflict
    detection — {!Da_set} generalized to bindings.

    - operations on distinct keys never conflict;
    - identical [put]s (same key, same value) and identical [remove]s
      are idempotent and never conflict;
    - a [get(k)] that answered [v] is compatible with a concurrent
      [put(k,v)] of the {e same} value (either order leaves the answer
      [v]) and with a concurrent [remove(k)] when it answered [none];
    - [size] conflicts with every update (conservatively).

    Recovery is by intentions lists; every history the object generates
    is dynamic atomic. *)

open Weihl_event

val make : Event_log.t -> Object_id.t -> Atomic_object.t
