open Weihl_event

type ts_policy = [ `None_ | `Static | `Hybrid ]

type t = {
  policy : ts_policy;
  event_log : Event_log.t;
  clock : Lamport_clock.t;
  mutable objects : Atomic_object.t Object_id.Map.t;
  mutable next_txn_id : int;
  mutable txns : Txn.t list;
  mutable ts_source : (unit -> Timestamp.t) option;
  waits : Waits_for.t;
}

let create ?(policy = `None_) () =
  {
    policy;
    event_log = Event_log.create ();
    clock = Lamport_clock.create ();
    objects = Object_id.Map.empty;
    next_txn_id = 0;
    txns = [];
    ts_source = None;
    waits = Waits_for.create ();
  }

let policy t = t.policy
let log t = t.event_log
let history t = Event_log.history t.event_log
let clock t = t.clock
let set_ts_source t f = t.ts_source <- Some f

let draw_init_ts t =
  match t.ts_source with
  | Some f ->
    let ts = f () in
    Lamport_clock.observe t.clock ts;
    ts
  | None -> Lamport_clock.next t.clock

let add_object t (obj : Atomic_object.t) =
  if Object_id.Map.mem obj.id t.objects then
    invalid_arg
      (Fmt.str "System.add_object: duplicate object %a" Object_id.pp obj.id);
  t.objects <- Object_id.Map.add obj.id obj t.objects

let find_object t x = Object_id.Map.find_opt x t.objects

let find_object_exn t x =
  match find_object t x with
  | Some obj -> obj
  | None ->
    invalid_arg (Fmt.str "System: unknown object %a" Object_id.pp x)

let begin_txn t activity =
  let txn = Txn.make ~id:t.next_txn_id activity in
  t.next_txn_id <- t.next_txn_id + 1;
  (match t.policy with
  | `None_ -> ()
  | `Static -> Txn.set_init_ts txn (draw_init_ts t)
  | `Hybrid ->
    if Activity.is_read_only activity then
      Txn.set_init_ts txn (Lamport_clock.next t.clock));
  t.txns <- txn :: t.txns;
  txn

let require_active txn =
  if not (Txn.is_active txn) then
    invalid_arg (Fmt.str "System: transaction %a is not active" Txn.pp txn)

let invoke t txn x op =
  require_active txn;
  let obj = find_object_exn t x in
  if not (List.exists (Object_id.equal x) (Txn.touched txn)) then begin
    obj.initiate txn;
    Txn.touch txn x
  end;
  let result = obj.try_invoke txn op in
  (match result with
  | Atomic_object.Wait blockers -> Waits_for.set_waiting t.waits txn blockers
  | Atomic_object.Granted _ | Atomic_object.Refused _ ->
    Waits_for.clear t.waits txn);
  result

let commit t txn =
  require_active txn;
  (match t.policy with
  | `Hybrid when not (Txn.is_read_only txn) ->
    Txn.set_commit_ts txn (Lamport_clock.next t.clock)
  | `None_ | `Static | `Hybrid -> ());
  List.iter
    (fun x -> (find_object_exn t x).commit txn)
    (List.rev (Txn.touched txn));
  Txn.set_status txn Txn.Committed;
  Waits_for.clear t.waits txn

let abort t txn =
  require_active txn;
  List.iter
    (fun x -> (find_object_exn t x).abort txn)
    (List.rev (Txn.touched txn));
  Txn.set_status txn Txn.Aborted;
  Waits_for.clear t.waits txn

let waiting t txn = Waits_for.blockers t.waits txn
let find_deadlock t = Waits_for.find_cycle t.waits
let active_txns t = List.filter Txn.is_active t.txns
