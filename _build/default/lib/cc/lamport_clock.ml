open Weihl_event

type t = { mutable value : int }

let create ?(start = 0) () =
  if start < 0 then invalid_arg "Lamport_clock.create: negative start";
  { value = start }

let next c =
  c.value <- c.value + 1;
  Timestamp.v c.value

let observe c ts =
  let v = Timestamp.to_int ts in
  if v > c.value then c.value <- v

let now c = Timestamp.v c.value
