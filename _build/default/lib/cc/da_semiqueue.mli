(** A dynamic-atomic semiqueue: the paper's argument that
    non-determinism buys concurrency (Section 1), as a protocol.

    The semiqueue's [deq] may answer {e any} enqueued element, so —
    unlike the FIFO queue, whose dequeuers must serialize — several
    transactions can dequeue concurrently: each takes a distinct
    committed element, and every serialization order justifies every
    answer.  Rules:

    - [enq] is always granted (multiset insertion commutes); elements
      become dequeueable when their enqueuer commits;
    - [deq] takes any committed element not already taken by an active
      transaction, or one of the caller's own tentative elements; if
      only other transactions' uncommitted elements remain it waits,
      and if the queue is certainly empty it answers [empty] while
      claiming emptiness (later enqueuers wait until the claimant
      completes, as with the FIFO queue);
    - abort returns taken elements and discards tentative ones. *)

open Weihl_event

val make : Event_log.t -> Object_id.t -> Atomic_object.t
