(** A dynamic-atomic bank account using escrow-style data-dependent
    synchronization — the object realizing the extra concurrency of
    Section 5.1.

    The object tracks the committed balance together with the
    uncommitted debits and credits of active transactions, maintaining
    the interval [low, high] of balances reachable by completing the
    active transactions in any order:

    - [deposit n] always proceeds (deposits commute);
    - [withdraw n] answers [ok] when [low >= n] (every serialization
      covers it), answers [insufficient_funds] when [high < n] (no
      serialization covers it), and otherwise waits — its outcome
      depends on which active transactions commit;
    - [balance] waits until no other transaction has uncommitted
      updates, then answers the committed balance adjusted by the
      reader's own updates.

    Every history this object generates is dynamic atomic; in
    particular it grants the two Section 5.1 interleavings that
    commutativity locking refuses. *)

open Weihl_event

val make : Event_log.t -> Object_id.t -> Atomic_object.t
