(** A dynamic-atomic integer set using result-aware, per-element
    conflict detection.

    Conventional commutativity locking serializes [insert(i)] against
    [member(i)] unconditionally.  This object exploits both the element
    argument and the {e result} of each granted operation:

    - operations on distinct elements never conflict;
    - [insert(i)] and [insert(i)] (and [delete]/[delete]) are
      idempotent and never conflict;
    - [member(i)] that answered [true] is compatible with a concurrent
      [insert(i)] — inserting an element cannot falsify an observed
      presence — while [member(i)] that answered [false] conflicts with
      it, and dually for [delete(i)];
    - [size] conflicts with every update (conservatively).

    Recovery is by intentions lists.  Every history this object
    generates is dynamic atomic. *)

open Weihl_event

val make : Event_log.t -> Object_id.t -> Atomic_object.t
