(** The counter object from the optimality proof of Section 4.1.

    Its single operation, [increment], increments the state (initially
    zero) and returns the resulting value.  Because the returned value
    exposes the exact position of the invocation in the serial order,
    a history of committed increments is serializable in {e exactly
    one} order — the property the proof exploits to force any local
    atomicity property more permissive than dynamic atomicity into a
    contradiction. *)

open Weihl_event

include Adt_sig.S

val increment : Operation.t
