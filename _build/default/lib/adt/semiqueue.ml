open Weihl_event

let enq i = Operation.make "enq" [ Value.Int i ]
let deq = Operation.make "deq" []
let empty_result = Value.Sym "empty"

module Spec = struct
  type state = int list (* multiset, kept sorted *)

  let type_name = "semiqueue"
  let initial = []

  let remove_one i s =
    let rec go = function
      | [] -> []
      | j :: rest -> if j = i then rest else j :: go rest
    in
    go s

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "enq", [ Value.Int i ] -> [ (List.sort Int.compare (i :: s), Value.ok) ]
    | "deq", [] -> (
      match s with
      | [] -> [ ([], empty_result) ]
      | _ ->
        (* Any element may be answered: one outcome per distinct
           element. *)
        List.sort_uniq Int.compare s
        |> List.map (fun i -> (remove_one i s, Value.Int i)))
    | _ -> []

  let equal_state = List.equal Int.equal
  let pp_state ppf s = Fmt.pf ppf "{|%a|}" Fmt.(list ~sep:comma int) s
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* Enqueues commute with each other (multiset insertion is orderless);
   dequeues are treated conservatively by the state-independent
   table. *)
let commutes p q =
  match (Operation.name p, Operation.name q) with
  | "enq", "enq" -> true
  | _ -> false

let classify _ = Adt_sig.Write
