open Weihl_event

let add i = Operation.make "add" [ Value.Int i ]
let extract_min = Operation.make "extract_min" []
let find_min = Operation.make "find_min" []
let empty_result = Value.Sym "empty"

module Spec = struct
  type state = int list (* sorted ascending; a multiset *)

  let type_name = "priority_queue"
  let initial = []

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "add", [ Value.Int i ] -> [ (List.sort Int.compare (i :: s), Value.ok) ]
    | "extract_min", [] -> (
      match s with
      | [] -> [ ([], empty_result) ]
      | m :: rest -> [ (rest, Value.Int m) ])
    | "find_min", [] -> (
      match s with
      | [] -> [ ([], empty_result) ]
      | m :: _ -> [ (s, Value.Int m) ])
    | _ -> []

  let equal_state = List.equal Int.equal
  let pp_state ppf s = Fmt.pf ppf "{min|%a}" Fmt.(list ~sep:comma int) s
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* adds commute (multiset insertion); observations conflict with adds
   of possibly-smaller elements only in a state-dependent way, so the
   state-independent table is conservative there. *)
let commutes p q =
  match (Operation.name p, Operation.name q) with
  | "add", "add" -> true
  | "find_min", "find_min" -> true
  | _ -> false

let classify op =
  match Operation.name op with
  | "find_min" -> Adt_sig.Read
  | _ -> Adt_sig.Write
