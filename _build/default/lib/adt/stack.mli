(** A LIFO stack of integers.  [push] answers [ok]; [pop] answers and
    removes the top element, or the symbol [empty].  The inverse
    discipline to the FIFO queue: pushes do not commute with each
    other (the pop order inverts), making it the worst case for
    commutativity locking. *)

open Weihl_event

include Adt_sig.S

val push : int -> Operation.t
val pop : Operation.t
val empty_result : Value.t
