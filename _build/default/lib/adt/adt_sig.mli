(** The shape shared by every abstract data type in this library.

    Beyond the sequential specification itself, each ADT supplies the
    two pieces of semantic information consumed by the baseline
    protocols of Section 5.1:

    - a {e state-independent commutativity} relation, as used by the
      locking protocols of Bernstein 81, Korth 81 and Schwarz &
      Spector 82: two operations commute iff executing them in either
      order from {e any} state yields the same final state and the same
      results;
    - a {e read/write classification}, as used by classical two-phase
      locking, the coarsest semantic information. *)

open Weihl_event

type rw = Read | Write

module type S = sig
  module Spec : Weihl_spec.Seq_spec.S

  val spec : Weihl_spec.Seq_spec.t
  (** [Spec], packed. *)

  val commutes : Operation.t -> Operation.t -> bool
  (** State-independent commutativity.  Unknown operations commute with
      nothing. *)

  val classify : Operation.t -> rw
  (** Read/write classification.  Unknown operations are classified
      [Write] (the conservative choice). *)
end
