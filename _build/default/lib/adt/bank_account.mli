(** The bank-account object of Section 5.1.

    Operations deposit a sum, withdraw a sum, or examine the balance;
    the initial balance is zero.  [withdraw] terminates either normally
    ([ok]), debiting the account, or abnormally ([insufficient_funds])
    when the balance is too small — the data dependence that lets
    dynamic atomicity run withdrawals concurrently when the balance
    covers them all, while state-independent commutativity locking must
    serialize every withdraw against every deposit and withdraw. *)

open Weihl_event

include Adt_sig.S

val deposit : int -> Operation.t
(** @raise Invalid_argument on a negative amount. *)

val withdraw : int -> Operation.t
(** @raise Invalid_argument on a negative amount. *)

val balance : Operation.t
