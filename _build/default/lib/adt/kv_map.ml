open Weihl_event

let put k v = Operation.make "put" [ Value.Int k; Value.Int v ]
let get k = Operation.make "get" [ Value.Int k ]
let remove k = Operation.make "remove" [ Value.Int k ]
let size = Operation.make "size" []
let none_result = Value.Sym "none"

module Spec = struct
  type state = (int * int) list (* sorted by key, duplicate-free *)

  let type_name = "kv_map"
  let initial = []

  let bind k v s =
    List.sort (fun (a, _) (b, _) -> Int.compare a b)
      ((k, v) :: List.remove_assoc k s)

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "put", [ Value.Int k; Value.Int v ] -> [ (bind k v s, Value.ok) ]
    | "get", [ Value.Int k ] -> (
      match List.assoc_opt k s with
      | Some v -> [ (s, Value.Int v) ]
      | None -> [ (s, none_result) ])
    | "remove", [ Value.Int k ] -> [ (List.remove_assoc k s, Value.ok) ]
    | "size", [] -> [ (s, Value.Int (List.length s)) ]
    | _ -> []

  let equal_state = List.equal (fun (k, v) (k', v') -> k = k' && v = v')

  let pp_state ppf s =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:comma (pair ~sep:(any "->") int int))
      s
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

let key op =
  match Operation.args op with
  | Value.Int k :: _ -> Some k
  | _ -> None

(* put(k,v) commutes with put(k,v) (idempotent) and with any operation
   on a different key except size; reads commute with reads. *)
let commutes p q =
  match (Operation.name p, Operation.name q) with
  | "get", "get" | "get", "size" | "size", "get" | "size", "size" -> true
  | ("put" | "remove" | "get"), ("put" | "remove" | "get") -> (
    match (key p, key q) with
    | Some k, Some k' ->
      k <> k'
      || (Operation.equal p q && Operation.name p <> "get")
      || (Operation.name p = "get" && Operation.name q = "get")
    | _ -> false)
  | ("size", ("put" | "remove")) | (("put" | "remove"), "size") -> false
  | _ -> false

let classify op =
  match Operation.name op with
  | "get" | "size" -> Adt_sig.Read
  | _ -> Adt_sig.Write
