(** A read/write integer register — the classical object underlying the
    scheduler-model protocols the paper compares against.  Initially
    zero. *)

open Weihl_event

include Adt_sig.S

val read : Operation.t
val write : int -> Operation.t
