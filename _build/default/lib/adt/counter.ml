open Weihl_event

let increment = Operation.make "increment" []

module Spec = struct
  type state = int

  let type_name = "counter"
  let initial = 0

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "increment", [] -> [ (s + 1, Value.Int (s + 1)) ]
    | _ -> []

  let equal_state = Int.equal
  let pp_state = Fmt.int
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* increment returns its serial position, so no two increments
   commute. *)
let commutes _ _ = false
let classify _ = Adt_sig.Write
