open Weihl_event

let insert i = Operation.make "insert" [ Value.Int i ]
let delete i = Operation.make "delete" [ Value.Int i ]
let member i = Operation.make "member" [ Value.Int i ]
let size = Operation.make "size" []

module Spec = struct
  type state = int list (* sorted, duplicate-free *)

  let type_name = "intset"
  let initial = []

  let add i s = if List.mem i s then s else List.sort Int.compare (i :: s)
  let remove i s = List.filter (fun j -> j <> i) s

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "insert", [ Value.Int i ] -> [ (add i s, Value.ok) ]
    | "delete", [ Value.Int i ] -> [ (remove i s, Value.ok) ]
    | "member", [ Value.Int i ] -> [ (s, Value.Bool (List.mem i s)) ]
    | "size", [] -> [ (s, Value.Int (List.length s)) ]
    | _ -> []

  let equal_state = List.equal Int.equal
  let pp_state ppf s = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) s
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* State-independent commutativity.  insert/insert and delete/delete
   always commute (idempotent updates on a set); insert/delete only on
   distinct elements; member commutes with updates on distinct
   elements; size is disturbed by any update. *)
let key op =
  match Operation.args op with [ Value.Int i ] -> Some i | _ -> None

let commutes p q =
  let open Operation in
  match (name p, name q) with
  | "member", "member" | "member", "size" | "size", "member" | "size", "size"
    ->
    true
  | "insert", "insert" | "delete", "delete" -> true
  | ("insert", "delete" | "delete", "insert")
  | ("member", "insert" | "insert", "member")
  | ("member", "delete" | "delete", "member") -> (
    match (key p, key q) with Some i, Some j -> i <> j | _ -> false)
  | ("size", ("insert" | "delete")) | (("insert" | "delete"), "size") -> false
  | _ -> false

let classify op =
  match Operation.name op with
  | "member" | "size" -> Adt_sig.Read
  | _ -> Adt_sig.Write
