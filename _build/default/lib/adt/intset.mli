(** The paper's running example (Section 2): a set of integers with
    operations to insert an integer, delete an integer, and check for
    membership; we add [size] for workloads that need an aggregate
    read.  Initially empty.

    [insert] and [delete] always answer [ok]; [member] answers a
    boolean; [size] the cardinality. *)

open Weihl_event

include Adt_sig.S

val insert : int -> Operation.t
val delete : int -> Operation.t
val member : int -> Operation.t
val size : Operation.t
