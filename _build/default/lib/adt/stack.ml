open Weihl_event

let push i = Operation.make "push" [ Value.Int i ]
let pop = Operation.make "pop" []
let empty_result = Value.Sym "empty"

module Spec = struct
  type state = int list (* top first *)

  let type_name = "stack"
  let initial = []

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "push", [ Value.Int i ] -> [ (i :: s, Value.ok) ]
    | "pop", [] -> (
      match s with
      | [] -> [ ([], empty_result) ]
      | top :: rest -> [ (rest, Value.Int top) ])
    | _ -> []

  let equal_state = List.equal Int.equal
  let pp_state ppf s = Fmt.pf ppf ">%a]" Fmt.(list ~sep:comma int) s
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* Two pushes of the same value commute (the resulting stacks are
   equal); everything else conflicts. *)
let commutes p q =
  match
    (Operation.name p, Operation.args p, Operation.name q, Operation.args q)
  with
  | "push", [ Value.Int i ], "push", [ Value.Int j ] -> i = j
  | _ -> false

let classify _ = Adt_sig.Write
