open Weihl_event

let check_amount n =
  if n < 0 then invalid_arg "Bank_account: negative amount"

let deposit n =
  check_amount n;
  Operation.make "deposit" [ Value.Int n ]

let withdraw n =
  check_amount n;
  Operation.make "withdraw" [ Value.Int n ]

let balance = Operation.make "balance" []

module Spec = struct
  type state = int (* current balance, >= 0 *)

  let type_name = "bank_account"
  let initial = 0

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "deposit", [ Value.Int n ] when n >= 0 -> [ (s + n, Value.ok) ]
    | "withdraw", [ Value.Int n ] when n >= 0 ->
      if s >= n then [ (s - n, Value.ok) ]
      else [ (s, Value.insufficient_funds) ]
    | "balance", [] -> [ (s, Value.Int s) ]
    | _ -> []

  let equal_state = Int.equal
  let pp_state = Fmt.int
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* Section 5.1: two deposits commute (addition is commutative); two
   withdraws do not (a balance covering either but not both makes the
   results order-dependent); deposit and withdraw do not (the deposit
   may be what lets the withdrawal succeed); balance is disturbed by
   any update. *)
let commutes p q =
  match (Operation.name p, Operation.name q) with
  | "deposit", "deposit" -> true
  | "balance", "balance" -> true
  | _ -> false

let classify op =
  match Operation.name op with
  | "balance" -> Adt_sig.Read
  | _ -> Adt_sig.Write
