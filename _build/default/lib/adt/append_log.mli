(** An append-only log.  [append i] adds a record and answers [ok];
    [size] answers the record count; [read k] answers the k-th record
    (0-based) or the symbol [none].

    Appends of different values do not commute (their order is
    observable through [read]); the log is the minimal object
    exhibiting the queue's Figure 5-1 phenomenon without removal. *)

open Weihl_event

include Adt_sig.S

val append : int -> Operation.t
val size : Operation.t
val read : int -> Operation.t
val none_result : Value.t
