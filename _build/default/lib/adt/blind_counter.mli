(** A blind counter: [bump n] adds [n] and answers [ok] (unlike the
    Section 4.1 counter, it does not reveal the running total), and
    [read] answers the total.

    Because bumps are blind they all commute — the statistics-counter
    shape that data-dependent protocols handle with full concurrency
    (see [Weihl_cc.Da_counter]). *)

open Weihl_event

include Adt_sig.S

val bump : int -> Operation.t
val read : Operation.t
