lib/adt/bank_account.mli: Adt_sig Operation Weihl_event
