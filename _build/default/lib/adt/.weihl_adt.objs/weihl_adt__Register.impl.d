lib/adt/register.ml: Adt_sig Fmt Int Operation Value Weihl_event Weihl_spec
