lib/adt/fifo_queue.mli: Adt_sig Operation Value Weihl_event
