lib/adt/register.mli: Adt_sig Operation Weihl_event
