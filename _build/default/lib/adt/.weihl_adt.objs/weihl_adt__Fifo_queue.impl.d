lib/adt/fifo_queue.ml: Adt_sig Fmt Int List Operation Value Weihl_event Weihl_spec
