lib/adt/stack.mli: Adt_sig Operation Value Weihl_event
