lib/adt/semiqueue.mli: Adt_sig Operation Value Weihl_event
