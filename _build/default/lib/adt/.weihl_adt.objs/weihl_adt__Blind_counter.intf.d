lib/adt/blind_counter.mli: Adt_sig Operation Weihl_event
