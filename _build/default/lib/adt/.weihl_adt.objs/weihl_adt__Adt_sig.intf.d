lib/adt/adt_sig.mli: Operation Weihl_event Weihl_spec
