lib/adt/counter.mli: Adt_sig Operation Weihl_event
