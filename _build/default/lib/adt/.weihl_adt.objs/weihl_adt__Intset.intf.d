lib/adt/intset.mli: Adt_sig Operation Weihl_event
