lib/adt/bank_account.ml: Adt_sig Fmt Int Operation Value Weihl_event Weihl_spec
