lib/adt/kv_map.mli: Adt_sig Operation Value Weihl_event
