lib/adt/append_log.mli: Adt_sig Operation Value Weihl_event
