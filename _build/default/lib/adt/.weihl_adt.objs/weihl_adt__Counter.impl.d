lib/adt/counter.ml: Adt_sig Fmt Int Operation Value Weihl_event Weihl_spec
