(** A semiqueue: a weakly ordered queue whose [deq] removes and answers
    {e some} enqueued element, chosen non-deterministically.

    This is the style of object the paper has in mind when it insists
    that specifications be allowed to be non-deterministic
    (Section 1): a deterministic FIFO forces dequeues to serialize,
    while the semiqueue's looseness lets an implementation hand
    concurrent dequeuers different elements and remain atomic.  Its
    acceptance check genuinely exercises the state-{e set} semantics of
    {!Weihl_spec.Seq_spec}. *)

open Weihl_event

include Adt_sig.S

val enq : int -> Operation.t
val deq : Operation.t
val empty_result : Value.t
