open Weihl_event

let enqueue i = Operation.make "enqueue" [ Value.Int i ]
let dequeue = Operation.make "dequeue" []
let empty_result = Value.Sym "empty"

module Spec = struct
  type state = int list (* front first *)

  let type_name = "fifo_queue"
  let initial = []

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "enqueue", [ Value.Int i ] -> [ (s @ [ i ], Value.ok) ]
    | "dequeue", [] -> (
      match s with
      | [] -> [ ([], empty_result) ]
      | front :: rest -> [ (rest, Value.Int front) ])
    | _ -> []

  let equal_state = List.equal Int.equal
  let pp_state ppf s = Fmt.pf ppf "<%a<" Fmt.(list ~sep:comma int) s

end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

(* Section 5.1: enqueue(1) does not commute with enqueue(2) — the
   resulting queue orders differ.  Equal elements do commute.  dequeue
   commutes with nothing (not even itself: the answers swap). *)
let commutes p q =
  match
    (Operation.name p, Operation.args p, Operation.name q, Operation.args q)
  with
  | "enqueue", [ Value.Int i ], "enqueue", [ Value.Int j ] -> i = j
  | _ -> false

let classify _ = Adt_sig.Write
