open Weihl_event

let append i = Operation.make "append" [ Value.Int i ]
let size = Operation.make "size" []
let read k = Operation.make "read" [ Value.Int k ]
let none_result = Value.Sym "none"

module Spec = struct
  type state = int list (* oldest first *)

  let type_name = "append_log"
  let initial = []

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "append", [ Value.Int i ] -> [ (s @ [ i ], Value.ok) ]
    | "size", [] -> [ (s, Value.Int (List.length s)) ]
    | "read", [ Value.Int k ] -> (
      match List.nth_opt s k with
      | Some v -> [ (s, Value.Int v) ]
      | None -> [ (s, none_result) ])
    | _ -> []

  let equal_state = List.equal Int.equal
  let pp_state ppf s = Fmt.pf ppf "log[%a]" Fmt.(list ~sep:comma int) s
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

let commutes p q =
  match
    (Operation.name p, Operation.args p, Operation.name q, Operation.args q)
  with
  | "append", [ Value.Int i ], "append", [ Value.Int j ] -> i = j
  | "size", _, "size", _ -> true
  | "read", _, "read", _ -> true
  | "read", _, "size", _ | "size", _, "read", _ -> true
  | _ -> false

let classify op =
  match Operation.name op with
  | "size" | "read" -> Adt_sig.Read
  | _ -> Adt_sig.Write
