open Weihl_event

let read = Operation.make "read" []
let write i = Operation.make "write" [ Value.Int i ]

module Spec = struct
  type state = int

  let type_name = "register"
  let initial = 0

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "read", [] -> [ (s, Value.Int s) ]
    | "write", [ Value.Int i ] -> [ (i, Value.ok) ]
    | _ -> []

  let equal_state = Int.equal
  let pp_state = Fmt.int
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

let commutes p q =
  match
    (Operation.name p, Operation.args p, Operation.name q, Operation.args q)
  with
  | "read", _, "read", _ -> true
  | "write", [ Value.Int i ], "write", [ Value.Int j ] -> i = j
  | _ -> false

let classify op =
  match Operation.name op with "read" -> Adt_sig.Read | _ -> Adt_sig.Write
