(** A min-priority queue of integers.  [add] answers [ok];
    [extract_min] answers and removes the smallest element, or the
    symbol [empty]; [find_min] answers the smallest without removing.

    Unlike the FIFO queue, adds {e do} commute with each other (the
    multiset of elements determines the state), so semantic locking
    already recovers concurrency here; extractions still conflict. *)

open Weihl_event

include Adt_sig.S

val add : int -> Operation.t
val extract_min : Operation.t
val find_min : Operation.t
val empty_result : Value.t
