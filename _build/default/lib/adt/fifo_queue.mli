(** The first-in-first-out queue of Section 5.1, used to show that the
    scheduler model cannot express dynamic atomicity.

    [enqueue i] appends to the back and answers [ok]; [dequeue] removes
    the front element and answers it, or answers the symbol [empty]
    (leaving the queue unchanged) when there is nothing to dequeue. *)

open Weihl_event

include Adt_sig.S

val enqueue : int -> Operation.t
val dequeue : Operation.t
val empty_result : Value.t
