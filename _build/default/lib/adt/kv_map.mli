(** A key/value map with integer keys and values — a directory-like
    object showing that the framework scales past the paper's toy
    types.  [get] answers the bound value or the symbol [none];
    [put]/[remove] answer [ok]; [size] counts bindings. *)

open Weihl_event

include Adt_sig.S

val put : int -> int -> Operation.t
val get : int -> Operation.t
val remove : int -> Operation.t
val size : Operation.t
val none_result : Value.t
