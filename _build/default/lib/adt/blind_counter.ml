open Weihl_event

let bump n = Operation.make "bump" [ Value.Int n ]
let read = Operation.make "read" []

module Spec = struct
  type state = int

  let type_name = "blind_counter"
  let initial = 0

  let step s op =
    match (Operation.name op, Operation.args op) with
    | "bump", [ Value.Int n ] -> [ (s + n, Value.ok) ]
    | "read", [] -> [ (s, Value.Int s) ]
    | _ -> []

  let equal_state = Int.equal
  let pp_state = Fmt.int
end

let spec : Weihl_spec.Seq_spec.t = (module Spec)

let commutes p q =
  match (Operation.name p, Operation.name q) with
  | "bump", "bump" -> true (* addition commutes *)
  | "read", "read" -> true
  | _ -> false

let classify op =
  match Operation.name op with "read" -> Adt_sig.Read | _ -> Adt_sig.Write
