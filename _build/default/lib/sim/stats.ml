let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let percentile p = function
  | [] -> 0.
  | xs ->
    let sorted = List.sort Float.compare xs in
    let n = List.length sorted in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) |> max 1 |> min n
    in
    List.nth sorted (rank - 1)

let median xs = percentile 50. xs
let minimum = function [] -> 0. | xs -> List.fold_left Float.min (List.hd xs) xs
let maximum = function [] -> 0. | xs -> List.fold_left Float.max (List.hd xs) xs
