(** A small deterministic PRNG (splitmix64) so every simulation,
    test and benchmark is reproducible from its seed. *)

type t

val create : int -> t
(** Seeded generator. *)

val copy : t -> t

val next : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
