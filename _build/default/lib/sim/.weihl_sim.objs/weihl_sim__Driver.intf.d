lib/sim/driver.mli: Format Weihl_cc Workload
