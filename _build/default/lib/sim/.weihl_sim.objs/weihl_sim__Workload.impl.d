lib/sim/workload.ml: Fmt List Object_id Operation Rng Value Weihl_adt Weihl_event
