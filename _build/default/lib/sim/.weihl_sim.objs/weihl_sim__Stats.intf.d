lib/sim/stats.mli:
