lib/sim/rng.mli:
