lib/sim/stats.ml: Float List
