lib/sim/driver.ml: Activity Array Fmt Hashtbl List Option Pqueue Rng Stats Weihl_cc Weihl_event Workload
