lib/sim/pqueue.mli:
