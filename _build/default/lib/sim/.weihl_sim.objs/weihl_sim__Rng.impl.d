lib/sim/rng.ml: Int64 List
