lib/sim/workload.mli: Object_id Operation Rng Value Weihl_event
