type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Keep 62 bits so the value fits OCaml's 63-bit immediate int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  l
  |> List.map (fun x -> (next t, x))
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
  |> List.map snd
