(** Summary statistics for simulation measurements. *)

val mean : float list -> float
(** 0. on the empty list. *)

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank method; 0. on
    the empty list. *)

val median : float list -> float
val minimum : float list -> float
val maximum : float list -> float
