(** A minimal binary min-heap keyed by (time, sequence), used as the
    simulator's event queue.  The sequence number makes the pop order
    total and hence the simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Sequence numbers are assigned in push order. *)

val pop : 'a t -> (int * 'a) option
(** The earliest (time, value), ties broken by push order. *)

val peek_time : 'a t -> int option
