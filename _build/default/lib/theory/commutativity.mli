(** Deriving state-independent commutativity from specifications by
    bounded exploration.

    The baseline locking protocols consume hand-written commutativity
    tables ([Adt_sig.S.commutes]).  Hand-written semantic tables are
    exactly the kind of artifact that silently rots; this module checks
    them against the specification itself: two operations commute on a
    bounded state space iff, from every reachable state, executing them
    in either order yields the same results and
    observationally-equivalent states (compared by probing).

    The derivation is sound and complete only for the explored bound,
    which suffices to catch table errors on the small integer domains
    the tests use.  Operations with non-deterministic outcomes are not
    compared ({!commute_on_reachable} returns [None] for them). *)

open Weihl_event

val reachable_frontiers :
  Weihl_spec.Seq_spec.t ->
  gen_ops:Operation.t list ->
  depth:int ->
  Weihl_spec.Seq_spec.frontier list
(** All frontiers reachable by applying up to [depth] generator
    operations (first outcome of each) from the initial state.
    Duplicates are not removed. *)

val observationally_equal :
  probes:Operation.t list ->
  depth:int ->
  Weihl_spec.Seq_spec.frontier ->
  Weihl_spec.Seq_spec.frontier ->
  bool
(** Bounded bisimulation: both frontiers give the same result sets for
    every probe, and the successors along each common (probe, result)
    edge are themselves observationally equal to [depth - 1]. *)

val commute_on_reachable :
  Weihl_spec.Seq_spec.t ->
  gen_ops:Operation.t list ->
  ?probe_depth:int ->
  ?state_depth:int ->
  Operation.t ->
  Operation.t ->
  bool option
(** [Some true] / [Some false]: the operations do / do not commute from
    every reachable state (results compared, final states compared by
    probing with [gen_ops]).  [None]: one of the operations is
    non-deterministic somewhere on the explored space, so the
    deterministic comparison does not apply.  Defaults: [probe_depth]
    2, [state_depth] 3. *)
