open Weihl_event
module Spec_env = Weihl_spec.Spec_env
module Serializability = Weihl_spec.Serializability
module Orders = Weihl_spec.Orders
module Counter = Weihl_adt.Counter

type refutation = {
  counter_object : Object_id.t;
  pinned_order : Activity.t list;
  computation : History.t;
  env : Spec_env.t;
}

(* A fresh object id not appearing in the history. *)
let fresh_counter_id h =
  let taken = List.map Object_id.name (History.objects h) in
  let rec go i =
    let candidate = if i = 0 then "y_counter" else Fmt.str "y_counter%d" i in
    if List.mem candidate taken then go (i + 1) else Object_id.v candidate
  in
  go 0

(* Splice the pinned counter increments into [h]: each committed
   activity invokes increment on [y] immediately before its first
   commit event (so well-formedness is preserved) and commits at [y]
   immediately after that commit event.  The increment's answer is the
   activity's 1-based position in [order] — which makes the counter's
   projection acceptable serially *only* in [order]. *)
let splice h y order =
  let position a =
    let rec go i = function
      | [] -> None
      | b :: rest -> if Activity.equal a b then Some i else go (i + 1) rest
    in
    go 1 order
  in
  let seen_commit = Hashtbl.create 8 in
  let events =
    List.concat_map
      (fun e ->
        match e with
        | Event.Commit (a, _, _) when not (Hashtbl.mem seen_commit (Activity.name a)) -> (
          Hashtbl.replace seen_commit (Activity.name a) ();
          match position a with
          | Some k ->
            [
              Event.invoke a y Counter.increment;
              Event.respond a y (Value.Int k);
              e;
              Event.commit a y;
            ]
          | None -> [ e ])
        | _ -> [ e ])
      (History.to_list h)
  in
  History.of_list events

let build env h order =
  let y = fresh_counter_id h in
  let computation = splice h y order in
  {
    counter_object = y;
    pinned_order = order;
    computation;
    env = Spec_env.add y Counter.spec env;
  }

let dynamic_refutation env h =
  let p = History.perm h in
  let acts = History.activities p in
  let bad_order =
    Orders.linear_extensions ~equal:Activity.equal (History.precedes h) acts
    |> Seq.find (fun order -> not (Serializability.in_order env p order))
  in
  Option.map (build env h) bad_order

let static_refutation env h =
  match History.timestamp_order h with
  | None -> None
  | Some order ->
    if Serializability.in_order env (History.perm h) order then None
    else Some (build env h order)
