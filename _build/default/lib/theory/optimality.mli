(** The optimality proofs of Sections 4.1-4.3, as executable
    constructions.

    The paper proves each local atomicity property optimal by
    contradiction: given a history [h] permitted by some
    more-permissive property but {e not} (say) dynamic atomic, there is
    a total order [T], consistent with [precedes(h)], in which
    [perm(h)] is not serializable.  The proof then builds a counter
    object [y] whose specification accepts exactly the serial sequences
    of increments 1, 2, 3, … — so a history of committed increments is
    serializable {e only} in the order the returned values dictate —
    and splices increments into [h] so that [y] pins the order [T].
    The combined computation is then not atomic, contradicting locality
    of the supposed property.

    [dynamic_refutation] and [static_refutation] perform exactly that
    construction.  Given a history that fails the local property, they
    return the extended environment and the combined computation; the
    caller can verify non-atomicity with {!Weihl_spec.Atomicity.atomic}
    (the test suite does). *)

open Weihl_event

type refutation = {
  counter_object : Object_id.t;
  pinned_order : Activity.t list;
      (** the order [T] the counter forces *)
  computation : History.t;
      (** well-formed; its projection on the original objects is [h],
          its projection on [counter_object] is the serial counter
          history in order [T] *)
  env : Weihl_spec.Spec_env.t;
      (** the original environment extended with the counter *)
}

val dynamic_refutation :
  Weihl_spec.Spec_env.t -> History.t -> refutation option
(** [None] when [h] {e is} dynamic atomic (no refutation exists).
    Otherwise picks a total order consistent with [precedes h] in which
    [perm h] is not serializable and pins it. *)

val static_refutation :
  Weihl_spec.Spec_env.t -> History.t -> refutation option
(** Same construction against the timestamp order: [None] when [h] is
    static atomic or carries no timestamps. *)
