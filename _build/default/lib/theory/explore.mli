(** Small-scope model checking of the protocols.

    The random-schedule tests sample interleavings; this module
    enumerates {e all} of them.  Given a way to build a fresh system
    and a set of transaction scripts, {!all_histories} drives every
    schedule (every order in which enabled clients can take steps,
    including the deadlock resolutions each schedule forces) and
    returns the distinct histories produced.  Tests then assert the
    protocol's local atomicity property on every one — exhaustive
    verification for the chosen scope.

    Scheduling rules: a client whose invocation was told to wait is
    re-enabled only after some other transaction completes (stepping it
    earlier would replay the identical attempt); if every unfinished
    client is blocked, the deadlock victim (the youngest transaction in
    the cycle) is aborted and its client stops.  The state space is
    bounded by [max_schedules]. *)

open Weihl_event

type script =
  [ `Update | `Read_only ] * (Object_id.t * Operation.t) list

exception Schedule_space_exhausted
(** Raised when enumeration hits [max_schedules] — the scope is too
    large to be exhaustive, so results would be misleading. *)

val all_histories :
  ?max_schedules:int ->
  make_system:(unit -> Weihl_cc.System.t) ->
  script list ->
  History.t list
(** Distinct complete histories over every schedule.  Default
    [max_schedules] 20_000.
    @raise Schedule_space_exhausted when the bound is hit. *)

val count_schedules :
  ?max_schedules:int ->
  make_system:(unit -> Weihl_cc.System.t) ->
  script list ->
  int
(** The number of maximal schedules explored. *)
