lib/theory/optimality.mli: Activity History Object_id Weihl_event Weihl_spec
