lib/theory/commutativity.mli: Operation Weihl_event Weihl_spec
