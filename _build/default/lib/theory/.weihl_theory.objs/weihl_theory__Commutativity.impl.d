lib/theory/commutativity.ml: List Value Weihl_event Weihl_spec
