lib/theory/explore.ml: Activity Fmt History List Object_id Operation Weihl_cc Weihl_event
