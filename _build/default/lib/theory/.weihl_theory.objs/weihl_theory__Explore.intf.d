lib/theory/explore.mli: History Object_id Operation Weihl_cc Weihl_event
