lib/theory/optimality.ml: Activity Event Fmt Hashtbl History List Object_id Option Seq Value Weihl_adt Weihl_event Weihl_spec
