open Weihl_event
module Cc = Weihl_cc

type script =
  [ `Update | `Read_only ] * (Object_id.t * Operation.t) list

exception Schedule_space_exhausted

(* Client status during one replayed schedule. *)
type client = {
  activity : Activity.t;
  mutable remaining : (Object_id.t * Operation.t) list;
  mutable txn : Cc.Txn.t option;
  mutable finished : bool;
  mutable blocked : bool;
}

let fresh_clients scripts =
  List.mapi
    (fun i (kind, steps) ->
      let activity =
        match kind with
        | `Update -> Activity.update (Fmt.str "u%d" i)
        | `Read_only -> Activity.read_only (Fmt.str "r%d" i)
      in
      { activity; remaining = steps; txn = None; finished = false;
        blocked = false })
    scripts

let dead cl =
  cl.finished
  || match cl.txn with Some t -> not (Cc.Txn.is_active t) | None -> false

(* Execute one step of client [i].  Completions unblock everyone. *)
let step sys clients i =
  let cl = List.nth clients i in
  let unblock_all () = List.iter (fun c -> c.blocked <- false) clients in
  let txn =
    match cl.txn with
    | Some t -> t
    | None ->
      let t = Cc.System.begin_txn sys cl.activity in
      cl.txn <- Some t;
      t
  in
  match cl.remaining with
  | [] ->
    Cc.System.commit sys txn;
    cl.finished <- true;
    unblock_all ()
  | (obj, op) :: rest -> (
    match Cc.System.invoke sys txn obj op with
    | Cc.Atomic_object.Granted _ ->
      cl.remaining <- rest;
      unblock_all ()
    | Cc.Atomic_object.Wait _ -> cl.blocked <- true
    | Cc.Atomic_object.Refused _ ->
      Cc.System.abort sys txn;
      cl.finished <- true;
      unblock_all ())

(* Replay a prefix of scheduling decisions on a fresh system; return
   the system, clients, and the indices enabled next (empty = maximal
   schedule).  Deadlocks are resolved deterministically inside the
   replay whenever every live client is blocked. *)
let replay make_system scripts prefix =
  let sys = make_system () in
  let clients = fresh_clients scripts in
  let resolve_if_stuck () =
    let live = List.filter (fun c -> not (dead c)) clients in
    if live <> [] && List.for_all (fun c -> c.blocked) live then begin
      match Cc.System.find_deadlock sys with
      | Some cycle ->
        Cc.System.abort sys (Cc.Waits_for.victim cycle);
        List.iter (fun c -> c.blocked <- false) clients
      | None ->
        (* Everyone blocked with no cycle cannot happen for the
           protocols in this library. *)
        invalid_arg "Explore: all clients blocked without a deadlock"
    end
  in
  List.iter
    (fun i ->
      step sys clients i;
      resolve_if_stuck ())
    prefix;
  let enabled =
    List.mapi (fun i c -> (i, c)) clients
    |> List.filter_map (fun (i, c) ->
           if (not (dead c)) && not c.blocked then Some i else None)
  in
  (sys, enabled)

let explore ?(max_schedules = 20_000) ~make_system scripts ~on_complete =
  let schedules = ref 0 in
  let rec dfs prefix =
    let sys, enabled = replay make_system scripts prefix in
    match enabled with
    | [] ->
      incr schedules;
      if !schedules > max_schedules then raise Schedule_space_exhausted;
      on_complete (Cc.System.history sys)
    | _ -> List.iter (fun i -> dfs (prefix @ [ i ])) enabled
  in
  dfs [];
  !schedules

let all_histories ?max_schedules ~make_system scripts =
  let seen = ref [] in
  let on_complete h =
    if not (List.exists (History.equal h) !seen) then seen := h :: !seen
  in
  ignore (explore ?max_schedules ~make_system scripts ~on_complete);
  List.rev !seen

let count_schedules ?max_schedules ~make_system scripts =
  explore ?max_schedules ~make_system scripts ~on_complete:(fun _ -> ())
