open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

let reachable_frontiers spec ~gen_ops ~depth =
  let rec go frontier depth acc =
    let acc = frontier :: acc in
    if depth = 0 then acc
    else
      List.fold_left
        (fun acc op ->
          match Seq_spec.outcomes frontier op with
          | (_, f') :: _ -> go f' (depth - 1) acc
          | [] -> acc)
        acc gen_ops
  in
  go (Seq_spec.start spec) depth []

let rec observationally_equal ~probes ~depth f g =
  depth = 0
  || List.for_all
       (fun probe ->
         let outcomes_f = Seq_spec.outcomes f probe in
         let outcomes_g = Seq_spec.outcomes g probe in
         let results l = List.sort Value.compare (List.map fst l) in
         List.equal Value.equal (results outcomes_f) (results outcomes_g)
         && List.for_all
              (fun (r, f') ->
                match
                  List.find_opt (fun (r', _) -> Value.equal r r') outcomes_g
                with
                | Some (_, g') ->
                  observationally_equal ~probes ~depth:(depth - 1) f' g'
                | None -> false)
              outcomes_f)
       probes

let commute_on_reachable spec ~gen_ops ?(probe_depth = 2) ?(state_depth = 3)
    p q =
  let frontiers = reachable_frontiers spec ~gen_ops ~depth:state_depth in
  let deterministic = ref true in
  let run frontier op =
    match Seq_spec.outcomes frontier op with
    | [ (r, f') ] -> Some (r, f')
    | [] -> None
    | _ :: _ :: _ ->
      deterministic := false;
      None
  in
  let commutes_everywhere =
    List.for_all
      (fun frontier ->
        match run frontier p with
        | None -> !deterministic (* p impossible here: vacuous *)
        | Some (rp1, f1) -> (
          match run f1 q with
          | None -> !deterministic
          | Some (rq1, f_pq) -> (
            match run frontier q with
            | None -> !deterministic
            | Some (rq2, f2) -> (
              match run f2 p with
              | None -> !deterministic
              | Some (rp2, f_qp) ->
                Value.equal rp1 rp2 && Value.equal rq1 rq2
                && observationally_equal ~probes:gen_ops ~depth:probe_depth
                     f_pq f_qp))))
      frontiers
  in
  if not !deterministic then None else Some commutes_everywhere
