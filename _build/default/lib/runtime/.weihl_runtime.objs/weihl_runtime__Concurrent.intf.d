lib/runtime/concurrent.mli: Activity History Object_id Operation Value Weihl_cc Weihl_event
