lib/runtime/concurrent.ml: Condition Fun Hashtbl Mutex Weihl_cc
