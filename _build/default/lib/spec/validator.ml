open Weihl_event

type t = {
  env : Spec_env.t;
  mode : Wellformed.mode;
  max_activities : int;
  mutable events : Event.t list; (* newest first *)
}

type verdicts = {
  well_formed : bool;
  atomic : bool option;
  dynamic_atomic : bool option;
  static_atomic : bool option;
  hybrid_atomic : bool option;
}

let create ?(mode = Wellformed.Base) ?(max_activities = 6) env =
  { env; mode; max_activities; events = [] }

let feed t e = t.events <- e :: t.events
let feed_history t h = List.iter (feed t) (History.to_list h)
let history t = History.of_list (List.rev t.events)

let verdicts t =
  let h = history t in
  let well_formed = Wellformed.is_well_formed t.mode h in
  let committed = Activity.Set.cardinal (History.committed h) in
  if committed > t.max_activities then
    {
      well_formed;
      atomic = None;
      dynamic_atomic = None;
      static_atomic = None;
      hybrid_atomic = None;
    }
  else
    let timestamped = Option.is_some (History.timestamp_order h) in
    {
      well_formed;
      atomic = Some (Atomicity.atomic t.env h);
      dynamic_atomic = Some (Atomicity.dynamic_atomic t.env h);
      static_atomic =
        (if timestamped then Some (Atomicity.static_atomic t.env h) else None);
      hybrid_atomic =
        (if timestamped then Some (Atomicity.hybrid_atomic t.env h) else None);
    }

let pp_opt ppf = function
  | None -> Fmt.string ppf "n/a"
  | Some b -> Fmt.bool ppf b

let pp_verdicts ppf v =
  Fmt.pf ppf
    "well-formed: %b; atomic: %a; dynamic: %a; static: %a; hybrid: %a"
    v.well_formed pp_opt v.atomic pp_opt v.dynamic_atomic pp_opt
    v.static_atomic pp_opt v.hybrid_atomic
