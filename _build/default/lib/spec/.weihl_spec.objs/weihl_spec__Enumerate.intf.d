lib/spec/enumerate.mli: Activity Event History Object_id Operation Seq Timestamp Value Weihl_event
