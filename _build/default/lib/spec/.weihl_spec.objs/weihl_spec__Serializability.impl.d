lib/spec/serializability.ml: Acceptance Activity Event Fmt History List Object_id Option Orders Seq Seq_spec Spec_env Weihl_event
