lib/spec/spec_env.mli: Object_id Seq_spec Weihl_event
