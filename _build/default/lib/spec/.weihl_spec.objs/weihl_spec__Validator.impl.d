lib/spec/validator.ml: Activity Atomicity Event Fmt History List Option Spec_env Weihl_event Wellformed
