lib/spec/spec_env.ml: Fmt List Object_id Seq_spec Weihl_event
