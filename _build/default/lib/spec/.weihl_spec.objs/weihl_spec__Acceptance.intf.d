lib/spec/acceptance.mli: History Seq_spec Spec_env Weihl_event
