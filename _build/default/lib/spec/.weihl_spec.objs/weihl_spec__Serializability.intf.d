lib/spec/serializability.mli: Activity History Spec_env Weihl_event
