lib/spec/seq_spec.ml: Fmt Format List Operation Value Weihl_event
