lib/spec/orders.mli: Seq
