lib/spec/enumerate.ml: Activity Event Fun History List Object_id Operation Seq Timestamp Value Weihl_event
