lib/spec/seq_spec.mli: Format Operation Value Weihl_event
