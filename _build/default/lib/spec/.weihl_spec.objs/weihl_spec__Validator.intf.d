lib/spec/validator.mli: Event Format History Spec_env Weihl_event Wellformed
