lib/spec/atomicity.mli: Activity History Spec_env Weihl_event
