lib/spec/orders.ml: List Seq
