lib/spec/acceptance.ml: Activity Event History List Seq_spec Spec_env Weihl_event
