lib/spec/atomicity.ml: History Option Serializability Weihl_event
