open Weihl_event

let in_order env h order =
  let acts = History.activities h in
  let covered =
    List.for_all (fun a -> List.exists (Activity.equal a) order) acts
  in
  covered
  &&
  let order = List.filter (fun a -> List.exists (Activity.equal a) acts) order in
  Acceptance.accepts env (History.concat_serial order h)

let serializable_naive env h =
  let acts = History.activities h in
  Seq.find (fun order -> in_order env h order) (Orders.permutations acts)

(* Backtracking with prefix pruning: maintain one specification
   frontier per object; an activity can extend the serial prefix only
   if every object accepts its whole block of (operation, result)
   pairs.  Rejected prefixes cut the entire subtree. *)
let serializable env h =
  let acts = History.activities h in
  (* Pre-split each activity's operations per object, in program
     order. *)
  let blocks =
    List.map
      (fun a ->
        let ops =
          List.filter_map
            (fun e ->
              match (e : Event.t) with
              | Invoke (a', x, op) when Activity.equal a a' -> Some (`I (x, op))
              | Respond (a', x, res) when Activity.equal a a' ->
                Some (`R (x, res))
              | _ -> None)
            (History.to_list (History.project_activity a h))
        in
        (* Pair invocations with their responses (a trailing pending
           invocation has no effect on any serial frontier). *)
        let rec pair = function
          | `I (x, op) :: `R (x', res) :: rest when Object_id.equal x x' ->
            (x, op, res) :: pair rest
          | `I (_, _) :: rest -> pair rest
          | `R (_, _) :: rest -> pair rest (* unmatched: ignore *)
          | [] -> []
        in
        (a, pair ops))
      acts
  in
  let apply_block frontiers (_, ops) =
    List.fold_left
      (fun frontiers (x, op, res) ->
        match frontiers with
        | None -> None
        | Some fs -> (
          let frontier =
            match Object_id.Map.find_opt x fs with
            | Some f -> Some f
            | None ->
              Option.map Seq_spec.start (Spec_env.find env x)
          in
          match frontier with
          | None ->
            invalid_arg
              (Fmt.str "Serializability: no specification for object %a"
                 Object_id.pp x)
          | Some f -> (
            match Seq_spec.advance f op res with
            | None -> None
            | Some f' -> Some (Object_id.Map.add x f' fs))))
      (Some frontiers) ops
  in
  let rec search frontiers chosen remaining =
    match remaining with
    | [] -> Some (List.rev chosen)
    | _ ->
      List.find_map
        (fun ((a, _) as block) ->
          match apply_block frontiers block with
          | None -> None
          | Some frontiers' ->
            search frontiers' (a :: chosen)
              (List.filter (fun (b, _) -> not (Activity.equal a b)) remaining))
        remaining
  in
  search Object_id.Map.empty [] blocks

let in_every_order_consistent_with env h pairs =
  let acts = History.activities h in
  let exts = Orders.linear_extensions ~equal:Activity.equal pairs acts in
  (* An empty enumeration (cyclic constraints) yields false: there is
     no consistent order to serialize in. *)
  (not (Seq.is_empty exts))
  && Seq.for_all (fun order -> in_order env h order) exts
