open Weihl_event

type t = Seq_spec.t Object_id.Map.t

let empty = Object_id.Map.empty
let add = Object_id.Map.add

let of_list l =
  List.fold_left (fun env (x, spec) -> add x spec env) empty l

let find env x = Object_id.Map.find_opt x env

let find_exn env x =
  match find env x with
  | Some s -> s
  | None ->
    invalid_arg
      (Fmt.str "Spec_env.find_exn: no specification for object %a"
         Object_id.pp x)

let objects env = List.map fst (Object_id.Map.bindings env)
