(** A specification environment assigns a sequential specification to
    every object of a system. *)

open Weihl_event

type t

val empty : t
val add : Object_id.t -> Seq_spec.t -> t -> t
val of_list : (Object_id.t * Seq_spec.t) list -> t
val find : t -> Object_id.t -> Seq_spec.t option

val find_exn : t -> Object_id.t -> Seq_spec.t
(** @raise Invalid_argument if the object has no specification. *)

val objects : t -> Object_id.t list
