let rec permutations = function
  | [] -> Seq.return []
  | l ->
    (* Pick each element as the head in turn. *)
    let rec picks prefix = function
      | [] -> Seq.empty
      | x :: rest ->
        let tail_perms =
          Seq.map (fun p -> x :: p) (permutations (List.rev_append prefix rest))
        in
        Seq.append tail_perms (fun () -> picks (x :: prefix) rest ())
    in
    picks [] l

let linear_extensions ~equal pairs elts =
  let relevant =
    List.filter
      (fun (a, b) ->
        List.exists (equal a) elts && List.exists (equal b) elts)
      pairs
  in
  (* Enumerate by repeatedly choosing a minimal element. *)
  let rec go remaining =
    match remaining with
    | [] -> Seq.return []
    | _ ->
      let minimal =
        List.filter
          (fun x ->
            not
              (List.exists
                 (fun (a, b) ->
                   equal b x && List.exists (equal a) remaining
                   && not (equal a x))
                 relevant))
          remaining
      in
      List.to_seq minimal
      |> Seq.concat_map (fun x ->
             let rest = List.filter (fun y -> not (equal y x)) remaining in
             Seq.map (fun p -> x :: p) (go rest))
  in
  go elts

let consistent ~equal pairs order =
  let index x =
    let rec find i = function
      | [] -> None
      | y :: rest -> if equal x y then Some i else find (i + 1) rest
    in
    find 0 order
  in
  List.for_all
    (fun (a, b) ->
      match (index a, index b) with
      | Some i, Some j -> i < j
      | _, _ -> true)
    pairs
