open Weihl_event

let atomic env h =
  Option.is_some (Serializability.serializable env (History.perm h))

let serialization_witness env h =
  Serializability.serializable env (History.perm h)

let dynamic_atomic env h =
  Serializability.in_every_order_consistent_with env (History.perm h)
    (History.precedes h)

let in_timestamp_order env h =
  match History.timestamp_order h with
  | None -> false
  | Some order -> Serializability.in_order env (History.perm h) order

let static_atomic = in_timestamp_order

let hybrid_atomic = in_timestamp_order
