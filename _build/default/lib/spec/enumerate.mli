(** Bounded enumeration of well-formed histories.

    The optimality and incomparability arguments of Sections 4.1-4.3
    quantify over {e all} histories; on bounded universes we can check
    them exhaustively.  A {!session} fixes one activity's program —
    which operations it invokes, in order, with which candidate results
    — and {!histories} lazily yields every interleaving of the sessions
    under every combination of candidate results.

    The result lists let callers explore outcomes a sequential replay
    would never produce (the whole point of concurrent histories);
    downstream checkers then decide which are atomic. *)

open Weihl_event

type step = {
  obj : Object_id.t;
  op : Operation.t;
  candidates : Value.t list;
      (** possible termination results to enumerate *)
}

type session = {
  activity : Activity.t;
  initiate_ts : Timestamp.t option;
      (** when set, the session starts with an initiation event at the
          object of its first step (or each distinct object touched) *)
  steps : step list;
  terminal : [ `Commit | `Abort | `Active ];
      (** how the session ends, with completion events at every touched
          object *)
}

val step : ?candidates:Value.t list -> Object_id.t -> Operation.t -> step
(** Default candidates: [[Value.ok]]. *)

val session :
  ?initiate_ts:Timestamp.t ->
  ?terminal:[ `Commit | `Abort | `Active ] ->
  Activity.t ->
  step list ->
  session
(** Default terminal: [`Commit]. *)

val events_of_session : session -> (Event.t * Value.t list option) list
(** The session's event skeleton: respond events carry their candidate
    lists ([Some]); all other events are fixed ([None]).  Exposed for
    tests. *)

val histories : session list -> History.t Seq.t
(** Every interleaving × every candidate-result assignment.  The count
    is multinomial in the session lengths times the product of
    candidate counts — keep sessions small. *)

val count : session list -> int
(** [Seq.length (histories sessions)], without building histories. *)
