open Weihl_event

type step = {
  obj : Object_id.t;
  op : Operation.t;
  candidates : Value.t list;
}

type session = {
  activity : Activity.t;
  initiate_ts : Timestamp.t option;
  steps : step list;
  terminal : [ `Commit | `Abort | `Active ];
}

let step ?(candidates = [ Value.ok ]) obj op = { obj; op; candidates }

let session ?initiate_ts ?(terminal = `Commit) activity steps =
  { activity; initiate_ts; steps; terminal }

let touched_objects s =
  List.fold_left
    (fun acc st ->
      if List.exists (Object_id.equal st.obj) acc then acc
      else acc @ [ st.obj ])
    [] s.steps

(* The event skeleton: respond events carry their candidate lists. *)
let events_of_session s =
  let objects = touched_objects s in
  let initiations =
    match s.initiate_ts with
    | None -> []
    | Some ts ->
      List.map (fun obj -> (Event.initiate s.activity obj ts, None)) objects
  in
  let operations =
    List.concat_map
      (fun st ->
        [
          (Event.invoke s.activity st.obj st.op, None);
          (* The result slot is a placeholder; the candidate list rides
             along for expansion. *)
          (Event.respond s.activity st.obj Value.Unit, Some st.candidates);
        ])
      s.steps
  in
  let completions =
    match s.terminal with
    | `Active -> []
    | `Commit ->
      List.map (fun obj -> (Event.commit s.activity obj, None)) objects
    | `Abort ->
      List.map (fun obj -> (Event.abort s.activity obj, None)) objects
  in
  initiations @ operations @ completions

(* All interleavings of several sequences, preserving each sequence's
   internal order, as a lazy Seq. *)
let rec interleavings (seqs : 'a list list) : 'a list Seq.t =
  if List.for_all (( = ) []) seqs then Seq.return []
  else
    Seq.init (List.length seqs) Fun.id
    |> Seq.concat_map (fun i ->
           match List.nth seqs i with
           | [] -> Seq.empty
           | head :: tail ->
             let rest = List.mapi (fun j s -> if j = i then tail else s) seqs in
             Seq.map (fun l -> head :: l) (interleavings rest))

(* Expand candidate results: each Respond placeholder becomes one event
   per candidate. *)
let rec expand = function
  | [] -> Seq.return []
  | (e, None) :: rest -> Seq.map (fun l -> e :: l) (expand rest)
  | (e, Some candidates) :: rest ->
    let act = Event.activity e and obj = Event.object_id e in
    List.to_seq candidates
    |> Seq.concat_map (fun res ->
           Seq.map (fun l -> Event.respond act obj res :: l) (expand rest))

let histories sessions =
  let skeletons = List.map events_of_session sessions in
  interleavings skeletons
  |> Seq.concat_map (fun interleaved ->
         Seq.map History.of_list (expand interleaved))

let count sessions = Seq.fold_left (fun n _ -> n + 1) 0 (histories sessions)
