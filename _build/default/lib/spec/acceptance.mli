(** Acceptability of serial sequences (Section 3).

    A serial sequence is acceptable in a system if, for every object
    [x], its projection [h|x] is permitted by the sequential
    specification of [x].  For a single object this means replaying the
    (operation, result) pairs through the specification's
    non-deterministic state machine and requiring a consistent
    execution to exist. *)

open Weihl_event

val object_accepts : Seq_spec.t -> History.t -> bool
(** [object_accepts spec h] — [h] must contain events of a single
    object.  Commit, abort and initiate events are ignored (the
    sequential specification constrains only operation behaviour); a
    trailing pending invocation is permitted.

    @raise Invalid_argument if [h] contains an abort event for an
    activity that also has operation events, since discarding effects
    is not meaningful inside a serial specification check: callers
    should check [perm]-projections. *)

val accepts : Spec_env.t -> History.t -> bool
(** [accepts env h] iff [object_accepts] holds of every per-object
    projection of [h].

    @raise Invalid_argument if some object of [h] has no specification
    in [env]. *)

val serial_and_accepts : Spec_env.t -> History.t -> bool
(** [accepts] together with the requirement that [h] is serial. *)
