(** The paper's atomicity definitions, as decision procedures on
    finite histories.

    Each checker takes a specification environment (the acceptable
    serial behaviour of every object) and a well-formed history, and
    decides the corresponding property from the paper:

    - {!atomic} — Section 3: [perm(h)] is serializable.
    - {!dynamic_atomic} — Section 4.1: [perm(h)] is serializable in
      every total order consistent with [precedes(h)].
    - {!static_atomic} — Section 4.2.2: [perm(h)] is serializable in
      timestamp order, timestamps being chosen at initiation.
    - {!hybrid_atomic} — Section 4.3.2: [perm(h)] is serializable in
      timestamp order, update timestamps chosen at commit and read-only
      timestamps at initiation.

    All three local properties imply {!atomic} (Theorems 1, 4 and 5);
    the test suite checks this on random histories. *)

open Weihl_event

val atomic : Spec_env.t -> History.t -> bool

val dynamic_atomic : Spec_env.t -> History.t -> bool

val static_atomic : Spec_env.t -> History.t -> bool
(** [false] when some committed activity carries no timestamp: such a
    history is not well-formed in the static model (Section 4.2.1). *)

val hybrid_atomic : Spec_env.t -> History.t -> bool
(** [false] when some committed activity carries no timestamp: update
    activities receive timestamps at commit and read-only activities at
    initiation (Section 4.3.1). *)

val serialization_witness : Spec_env.t -> History.t -> Activity.t list option
(** A serialization order witnessing atomicity of [h], if any. *)
