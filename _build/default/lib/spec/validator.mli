(** An online validator: feed events as they happen, read verdicts.

    The checkers in {!Atomicity} are offline decision procedures; this
    wrapper maintains a growing history and re-evaluates on demand,
    giving systems a runtime monitor — the shape of tool the paper's
    "online implementations" discussion motivates.  Verdicts about
    atomicity are exponential in the number of committed activities, so
    they are computed only while that number stays within
    [max_activities]; beyond it they read [None] ("not computed"), while
    well-formedness — which is cheap — is always maintained. *)

open Weihl_event

type t

type verdicts = {
  well_formed : bool;
  atomic : bool option;
  dynamic_atomic : bool option;
  static_atomic : bool option;
  hybrid_atomic : bool option;
}

val create :
  ?mode:Wellformed.mode -> ?max_activities:int -> Spec_env.t -> t
(** Defaults: mode [Base], max_activities 6. *)

val feed : t -> Event.t -> unit
val feed_history : t -> History.t -> unit
val history : t -> History.t

val verdicts : t -> verdicts
(** Current verdicts for the whole history seen so far.  [static] and
    [hybrid] are [None] when some committed activity lacks a timestamp
    (they would be trivially false). *)

val pp_verdicts : Format.formatter -> verdicts -> unit
