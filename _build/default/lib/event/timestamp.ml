type t = int

let v n =
  if n < 0 then invalid_arg "Timestamp.v: negative timestamp";
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let ( < ) a b = compare a b < 0
let pp = Fmt.int
