(** Operation invocations: a named operation together with its actual
    arguments, e.g. [insert(3)] or [withdraw(4)]. *)

type t = { name : string; args : Value.t list }

val make : string -> Value.t list -> t
(** [make name args] builds an operation.  The empty-argument form
    [make "dequeue" []] corresponds to the paper's [<dequeue,x,c>]. *)

val name : t -> string
val args : t -> Value.t list
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
