(** Textual notation for events and histories — the paper's
    [<insert(3),x,a>] syntax.

    {!Event.pp} already prints this form; this module parses it back,
    so example histories can live in plain-text files and round-trip
    through the tooling ([weihl check] in [bin/]).

    Grammar (whitespace-insensitive inside the angle brackets):
    {v
      event   ::= '<' body ',' object ',' activity '>'
      body    ::= 'commit' | 'commit' '(' nat ')' | 'abort'
                | 'initiate' '(' nat ')'
                | ident                      (* operation, no arguments *)
                | ident '(' args ')'         (* operation with arguments *)
                | value                      (* a termination result *)
      value   ::= nat | '-' nat | 'true' | 'false' | '()' | ident
      args    ::= value (',' value)*
    v}

    A bare identifier body is ambiguous between an invocation and a
    symbolic result; following the paper's convention, a body is read
    as a {e result} (termination event) when it is a literal value
    ([true], [false], a number, [()]) or when it matches the previous
    pending invocation convention is impossible to apply locally — so
    plain identifiers parse as invocations unless listed in
    [results]. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val event_of_string :
  ?read_only:(string -> bool) ->
  ?results:string list ->
  string ->
  (Event.t, string) result
(** Parse one event.  [read_only] classifies activity names
    (default: names starting with 'r', 's' or 't' are read-only, the
    paper's convention).  [results] lists identifiers to read as
    symbolic results rather than invocations (default: ["ok";
    "insufficient_funds"; "empty"; "none"]). *)

val history_of_string :
  ?read_only:(string -> bool) ->
  ?results:string list ->
  string ->
  (History.t, error) result
(** Parse a newline-separated history.  Blank lines and lines starting
    with '#' are skipped. *)

val history_to_string : History.t -> string
(** One event per line; inverse of {!history_of_string} for histories
    built from the default conventions. *)
