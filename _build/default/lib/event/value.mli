(** Values exchanged between activities and objects.

    Operation arguments and results in Weihl's model are drawn from an
    uninterpreted universe; objects give them meaning through their
    specifications.  We fix a small concrete universe that is rich
    enough for every abstract data type in the paper (integer sets,
    counters, bank accounts, FIFO queues) and for the extra types built
    on top of them. *)

type t =
  | Unit                (** the result of operations such as [ok] that carry no data *)
  | Bool of bool        (** e.g. the result of [member] *)
  | Int of int          (** e.g. the result of [increment] or [balance] *)
  | Sym of string       (** symbolic results such as [ok] or [insufficient_funds] *)
  | List of t list      (** aggregate results, e.g. an audit snapshot *)
  | Pair of t * t       (** pairs, e.g. a key/value binding *)

val ok : t
(** The conventional normal-termination result, written [ok] in the paper. *)

val insufficient_funds : t
(** The abnormal termination of [withdraw] in the bank-account example. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
