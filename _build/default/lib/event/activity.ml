type kind = Update | Read_only

type t = { name : string; kind : kind }

let update name = { name; kind = Update }
let read_only name = { name; kind = Read_only }
let name a = a.name
let kind a = a.kind
let is_read_only a = a.kind = Read_only
let equal a b = String.equal a.name b.name
let compare a b = String.compare a.name b.name
let pp ppf a = Fmt.string ppf a.name

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
