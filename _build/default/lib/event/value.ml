type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | List of t list
  | Pair of t * t

let ok = Sym "ok"
let insufficient_funds = Sym "insufficient_funds"

let rec equal v w =
  match v, w with
  | Unit, Unit -> true
  | Bool b, Bool c -> Bool.equal b c
  | Int i, Int j -> Int.equal i j
  | Sym s, Sym t -> String.equal s t
  | List vs, List ws ->
    List.length vs = List.length ws && List.for_all2 equal vs ws
  | Pair (a, b), Pair (c, d) -> equal a c && equal b d
  | (Unit | Bool _ | Int _ | Sym _ | List _ | Pair _), _ -> false

let rec compare v w =
  let tag = function
    | Unit -> 0 | Bool _ -> 1 | Int _ -> 2 | Sym _ -> 3 | List _ -> 4
    | Pair _ -> 5
  in
  match v, w with
  | Unit, Unit -> 0
  | Bool b, Bool c -> Bool.compare b c
  | Int i, Int j -> Int.compare i j
  | Sym s, Sym t -> String.compare s t
  | List vs, List ws -> List.compare compare vs ws
  | Pair (a, b), Pair (c, d) ->
    let c0 = compare a c in
    if c0 <> 0 then c0 else compare b d
  | _, _ -> Int.compare (tag v) (tag w)

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Sym s -> Fmt.string ppf s
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b

let to_string v = Fmt.str "%a" pp v
