type t = string

let v s = s
let name s = s
let equal = String.equal
let compare = String.compare
let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)
