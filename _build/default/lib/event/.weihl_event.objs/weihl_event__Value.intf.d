lib/event/value.mli: Format
