lib/event/wellformed.ml: Activity Event Fmt Hashtbl History List Object_id Option Result String Timestamp
