lib/event/timestamp.ml: Fmt Int
