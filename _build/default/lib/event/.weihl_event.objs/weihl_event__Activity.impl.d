lib/event/activity.ml: Fmt Map Set String
