lib/event/timestamp.mli: Format
