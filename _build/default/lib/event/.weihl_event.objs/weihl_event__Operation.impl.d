lib/event/operation.ml: Fmt List String Value
