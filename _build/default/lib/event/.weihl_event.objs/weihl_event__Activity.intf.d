lib/event/activity.mli: Format Map Set
