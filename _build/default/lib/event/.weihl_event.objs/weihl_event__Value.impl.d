lib/event/value.ml: Bool Fmt Int List String
