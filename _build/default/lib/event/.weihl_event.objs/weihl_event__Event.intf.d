lib/event/event.mli: Activity Format Object_id Operation Timestamp Value
