lib/event/notation.mli: Event Format History
