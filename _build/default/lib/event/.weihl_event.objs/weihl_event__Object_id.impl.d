lib/event/object_id.ml: Fmt Map Set String
