lib/event/history.mli: Activity Event Format Object_id Timestamp
