lib/event/event.ml: Activity Fmt Int Object_id Operation Option Timestamp Value
