lib/event/notation.ml: Activity Event Fmt Fun History List Object_id Operation Option String Timestamp Value
