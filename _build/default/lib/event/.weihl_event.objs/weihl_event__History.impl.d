lib/event/history.ml: Activity Event Fmt Fun List Object_id Option Timestamp
