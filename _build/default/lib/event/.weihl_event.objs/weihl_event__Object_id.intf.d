lib/event/object_id.mli: Format Map Set
