lib/event/wellformed.mli: Activity Format History Object_id
