lib/event/operation.mli: Format Value
