(** Timestamps, drawn from a countable well-ordered set.

    Following the paper we use natural numbers.  Construction via
    {!v} enforces non-negativity. *)

type t

val v : int -> t
(** @raise Invalid_argument if the argument is negative. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
