(** Well-formedness of event sequences.

    Section 2 restricts attention to sequences in which activities
    behave like sequential processes; Sections 4.2.1 and 4.3.1 add
    timestamp constraints for the static and hybrid models.  The three
    regimes are selected by a {!mode}. *)

type mode =
  | Base
      (** Section 2: invoke/respond/commit/abort events only; the four
          sequential-process constraints. *)
  | Static
      (** Section 4.2.1: additionally, every activity initiates at an
          object before invoking operations there; initiation
          timestamps are unique per activity and distinct across
          activities. *)
  | Hybrid
      (** Section 4.3.1: read-only activities initiate before invoking;
          timestamp events (commit timestamps of updates, initiation
          timestamps of read-only activities) are unique per activity
          and distinct across activities; update commit timestamps are
          consistent with [precedes]. *)

type violation =
  | Overlapping_invocation of Activity.t
      (** The activity invoked an operation while one was pending. *)
  | Unmatched_response of Activity.t * Object_id.t
      (** A termination event with no pending invocation at that
          object. *)
  | Commit_and_abort of Activity.t
      (** The activity both commits and aborts in the sequence. *)
  | Commit_while_pending of Activity.t
      (** The activity committed while waiting for an invocation. *)
  | Event_after_commit of Activity.t
      (** The activity invoked an operation (or initiated) after
          committing. *)
  | Duplicate_completion of Activity.t * Object_id.t
      (** The activity committed or aborted twice at the same
          object. *)
  | Invoke_before_initiate of Activity.t * Object_id.t
      (** (Static/Hybrid) an operation was invoked at an object before
          the required initiation there. *)
  | Duplicate_timestamp of Activity.t * Activity.t
      (** Two distinct activities carry the same timestamp. *)
  | Inconsistent_timestamp of Activity.t
      (** One activity carries two different timestamps. *)
  | Timestamp_against_precedes of Activity.t * Activity.t
      (** (Hybrid) [(a,b) ∈ precedes] but [ts(b) < ts(a)] for update
          commits. *)

val pp_violation : Format.formatter -> violation -> unit

val check : mode -> History.t -> (unit, violation list) result
(** All violations found, in order of detection. *)

val is_well_formed : mode -> History.t -> bool
