(** Events, the atoms of Weihl's model of computation.

    A computation is a finite sequence of events.  An event is the
    invocation of an operation on an object by an activity, the
    termination of an invocation, the commit or abort of an activity at
    an object, or (Sections 4.2.1 and 4.3.1) the initiation of an
    activity at an object with a timestamp.

    Commit events optionally carry a timestamp: plain commits
    ([<commit,x,a>]) are used for dynamic and static atomicity, while
    hybrid atomicity timestamps updates at commit
    ([<commit(t),x,a>]). *)

type t =
  | Invoke of Activity.t * Object_id.t * Operation.t
      (** [<op(args),x,a>] — activity [a] invokes [op] on [x]. *)
  | Respond of Activity.t * Object_id.t * Value.t
      (** [<res,x,a>] — the pending invocation of [a] at [x] terminates
          with result [res]. *)
  | Commit of Activity.t * Object_id.t * Timestamp.t option
      (** [<commit,x,a>] or [<commit(t),x,a>]. *)
  | Abort of Activity.t * Object_id.t
      (** [<abort,x,a>]. *)
  | Initiate of Activity.t * Object_id.t * Timestamp.t
      (** [<initiate(t),x,a>]. *)

val invoke : Activity.t -> Object_id.t -> Operation.t -> t
val respond : Activity.t -> Object_id.t -> Value.t -> t
val commit : Activity.t -> Object_id.t -> t
val commit_ts : Activity.t -> Object_id.t -> Timestamp.t -> t
val abort : Activity.t -> Object_id.t -> t
val initiate : Activity.t -> Object_id.t -> Timestamp.t -> t

val activity : t -> Activity.t
(** The activity participating in the event. *)

val object_id : t -> Object_id.t
(** The object participating in the event. *)

val is_invoke : t -> bool
val is_respond : t -> bool
val is_commit : t -> bool
val is_abort : t -> bool
val is_initiate : t -> bool

val timestamp : t -> Timestamp.t option
(** The timestamp carried by the event, if any (initiations always
    carry one; commits may). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [<insert(3),x,a>]. *)

val to_string : t -> string
