(** Activities (the paper's transactions / threads of control).

    Section 4.3 partitions activities into {e update} activities
    (written [a], [b], [c] in the paper) and {e read-only} activities
    (written [r], [s], [t]).  The partition is irrelevant to dynamic
    and static atomicity but essential to hybrid atomicity, so we carry
    it on the activity itself.  Identity (and thus ordering and
    equality) is determined by the name alone. *)

type kind = Update | Read_only

type t

val update : string -> t
(** An update activity, i.e. one that may invoke state-changing
    operations. *)

val read_only : string -> t
(** A read-only activity: one that invokes no state-changing
    operations (Section 4.3). *)

val name : t -> string
val kind : t -> kind
val is_read_only : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
