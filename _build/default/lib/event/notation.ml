type error = { line : int; message : string }

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

let default_read_only name =
  String.length name > 0
  && (match name.[0] with 'r' | 's' | 't' -> true | _ -> false)

let default_results = [ "ok"; "insufficient_funds"; "empty"; "none" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

(* Split [s] on top-level commas (none of our values nest, so every
   comma splits). *)
let split_commas s = String.split_on_char ',' s |> List.map String.trim

let parse_nat s = int_of_string_opt s

let parse_value s =
  let s = String.trim s in
  if s = "()" then Some Value.Unit
  else if s = "true" then Some (Value.Bool true)
  else if s = "false" then Some (Value.Bool false)
  else
    match parse_nat s with
    | Some n -> Some (Value.Int n)
    | None ->
      if s <> "" && String.for_all is_ident_char s then Some (Value.Sym s)
      else None

(* Split "name(arg1,arg2)" into (name, Some "arg1,arg2"), or
   (body, None) when there are no parentheses. *)
let split_call s =
  match String.index_opt s '(' with
  | None -> Ok (s, None)
  | Some i ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      Error "unbalanced parentheses"
    else
      let name = String.sub s 0 i in
      let args = String.sub s (i + 1) (String.length s - i - 2) in
      Ok (String.trim name, Some args)

let event_of_string ?(read_only = default_read_only)
    ?(results = default_results) s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '<' || s.[n - 1] <> '>' then
    Error "expected <body,object,activity>"
  else
    let inner = String.sub s 1 (n - 2) in
    (* The activity and object are the last two comma-separated
       fields; everything before belongs to the body (operation
       arguments may themselves contain commas). *)
    match List.rev (split_commas inner) with
    | act_name :: obj_name :: body_rev when act_name <> "" && obj_name <> ""
      ->
      let body = String.concat "," (List.rev body_rev) |> String.trim in
      if body = "" then Error "empty event body"
      else begin
        let activity =
          if read_only act_name then Activity.read_only act_name
          else Activity.update act_name
        in
        let obj = Object_id.v obj_name in
        if body = "()" then Ok (Event.respond activity obj Value.Unit)
        else
        match split_call body with
        | Error e -> Error e
        | Ok ("commit", None) -> Ok (Event.commit activity obj)
        | Ok ("commit", Some arg) -> (
          match parse_nat (String.trim arg) with
          | Some t -> Ok (Event.commit_ts activity obj (Timestamp.v t))
          | None -> Error "commit timestamp must be a natural number")
        | Ok ("abort", None) -> Ok (Event.abort activity obj)
        | Ok ("abort", Some _) -> Error "abort takes no argument"
        | Ok ("initiate", Some arg) -> (
          match parse_nat (String.trim arg) with
          | Some t -> Ok (Event.initiate activity obj (Timestamp.v t))
          | None -> Error "initiation timestamp must be a natural number")
        | Ok ("initiate", None) -> Error "initiate requires a timestamp"
        | Ok (name, Some args) ->
          let parsed = List.map parse_value (split_commas args) in
          if List.exists Option.is_none parsed then
            Error (Fmt.str "cannot parse arguments of %s" name)
          else
            Ok
              (Event.invoke activity obj
                 (Operation.make name (List.filter_map Fun.id parsed)))
        | Ok (bare, None) -> (
          (* A bare body is a result if it looks like a literal or is a
             registered symbolic result; otherwise a no-argument
             invocation. *)
          match parse_value bare with
          | Some (Value.Sym sym) when not (List.mem sym results) ->
            Ok (Event.invoke activity obj (Operation.make sym []))
          | Some v -> Ok (Event.respond activity obj v)
          | None -> Error (Fmt.str "cannot parse body %S" bare))
      end
    | _ -> Error "expected <body,object,activity>"

let history_of_string ?read_only ?results s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (History.of_list (List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
      else begin
        match event_of_string ?read_only ?results trimmed with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error message -> Error { line = lineno; message }
      end
  in
  go 1 [] lines

let history_to_string h =
  String.concat "\n" (List.map Event.to_string (History.to_list h))
