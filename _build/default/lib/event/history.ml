type t = Event.t list

let empty = []
let append h e = h @ [ e ]
let of_list l = l
let to_list h = h
let length = List.length
let equal h k = List.equal Event.equal h k

let project_object x h =
  List.filter (fun e -> Object_id.equal (Event.object_id e) x) h

let project_activity a h =
  List.filter (fun e -> Activity.equal (Event.activity e) a) h

(* First-appearance order, deduplicated. *)
let dedup_keep_order equal xs =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: rest ->
      if List.exists (equal x) seen then go seen rest
      else go (x :: seen) rest
  in
  go [] xs

let activities h =
  dedup_keep_order Activity.equal (List.map Event.activity h)

let objects h = dedup_keep_order Object_id.equal (List.map Event.object_id h)

let committed h =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Commit (a, _, _) -> Activity.Set.add a acc
      | _ -> acc)
    Activity.Set.empty h

let aborted h =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Abort (a, _) -> Activity.Set.add a acc
      | _ -> acc)
    Activity.Set.empty h

let active h =
  let resolved = Activity.Set.union (committed h) (aborted h) in
  List.fold_left
    (fun acc a ->
      if Activity.Set.mem a resolved then acc else Activity.Set.add a acc)
    Activity.Set.empty (activities h)

let perm h =
  let c = committed h in
  List.filter (fun e -> Activity.Set.mem (Event.activity e) c) h

let updates h =
  List.filter (fun e -> not (Activity.is_read_only (Event.activity e))) h

let equivalent h k =
  let acts =
    dedup_keep_order Activity.equal (activities h @ activities k)
  in
  List.for_all
    (fun a -> equal (project_activity a h) (project_activity a k))
    acts

let precedes h =
  (* (a,b) iff some Respond of b occurs after some Commit of a.  A
     single left-to-right pass suffices: carry the set of activities
     that have committed so far; each Respond of b adds (a,b) for every
     previously committed a <> b. *)
  let _, pairs =
    List.fold_left
      (fun (committed_so_far, pairs) e ->
        match e with
        | Event.Commit (a, _, _) ->
          (Activity.Set.add a committed_so_far, pairs)
        | Event.Respond (b, _, _) ->
          let pairs =
            Activity.Set.fold
              (fun a pairs ->
                if Activity.equal a b then pairs
                else if
                  List.exists
                    (fun (a', b') ->
                      Activity.equal a a' && Activity.equal b b')
                    pairs
                then pairs
                else (a, b) :: pairs)
              committed_so_far pairs
          in
          (committed_so_far, pairs)
        | Event.Invoke _ | Event.Abort _ | Event.Initiate _ ->
          (committed_so_far, pairs))
      (Activity.Set.empty, [])
      h
  in
  List.rev pairs

let precedes_mem h a b =
  List.exists
    (fun (a', b') -> Activity.equal a a' && Activity.equal b b')
    (precedes h)

let timestamp_of h a =
  List.find_map
    (fun e ->
      if Activity.equal (Event.activity e) a then Event.timestamp e
      else None)
    h

let timestamp_order h =
  let acts = Activity.Set.elements (committed h) in
  let stamped =
    List.map (fun a -> Option.map (fun t -> (a, t)) (timestamp_of h a)) acts
  in
  if List.exists Option.is_none stamped then None
  else
    let stamped = List.filter_map Fun.id stamped in
    let sorted =
      List.sort (fun (_, t) (_, t') -> Timestamp.compare t t') stamped
    in
    Some (List.map fst sorted)

let serial h =
  (* No activity's events may resume after another activity's events
     have intervened. *)
  let rec go seen current = function
    | [] -> true
    | e :: rest ->
      let a = Event.activity e in
      (match current with
      | Some c when Activity.equal c a -> go seen current rest
      | _ ->
        if List.exists (Activity.equal a) seen then false
        else go (a :: seen) (Some a) rest)
  in
  go [] None h

let is_prefix p h =
  let rec go p h =
    match p, h with
    | [], _ -> true
    | _, [] -> false
    | e :: p', f :: h' -> Event.equal e f && go p' h'
  in
  go p h

let concat_serial order h =
  List.concat_map (fun a -> project_activity a h) order

let pp ppf h = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Event.pp) h
let to_string h = Fmt.str "%a" pp h
