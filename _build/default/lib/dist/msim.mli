(** A deterministic message-passing simulation: nodes exchange messages
    over a network with seeded random delays; crashed nodes stop
    sending and receiving.  The substrate under {!Tpc}. *)

type 'msg t

val create :
  ?min_delay:int -> ?max_delay:int -> seed:int -> nodes:int ->
  handler:('msg t -> node:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** [handler] is invoked on each delivery at a live node.  Delays are
    uniform in [min_delay, max_delay] (defaults 1 and 5). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a message; dropped silently if the source is already
    crashed (a dead node sends nothing) or if the destination is
    crashed at delivery time. *)

val set_timer : 'msg t -> node:int -> after:int -> 'msg -> unit
(** Deliver a message from a node to itself after a fixed delay —
    timeouts. *)

val crash : 'msg t -> int -> unit
val crashed : 'msg t -> int -> bool
val crash_at : 'msg t -> time:int -> int -> unit
(** Schedule a crash at an absolute virtual time. *)

val now : 'msg t -> int
(** Current virtual time. *)

val messages_delivered : 'msg t -> int

val run : ?until:int -> 'msg t -> unit
(** Process deliveries in time order until the queue drains or virtual
    time exceeds [until] (default 100_000). *)
