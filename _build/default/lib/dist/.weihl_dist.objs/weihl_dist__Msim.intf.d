lib/dist/msim.mli:
