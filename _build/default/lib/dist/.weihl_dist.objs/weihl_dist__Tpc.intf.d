lib/dist/tpc.mli: Format
