lib/dist/msim.ml: Hashtbl Weihl_sim
