lib/dist/tpc.ml: Array Fmt List Msim
