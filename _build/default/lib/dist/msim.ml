module Pqueue = Weihl_sim.Pqueue
module Rng = Weihl_sim.Rng

type 'msg event = Deliver of int * 'msg | Crash of int

type 'msg t = {
  rng : Rng.t;
  min_delay : int;
  max_delay : int;
  queue : 'msg event Pqueue.t;
  crashed_nodes : (int, unit) Hashtbl.t;
  handler : 'msg t -> node:int -> 'msg -> unit;
  mutable time : int;
  mutable delivered : int;
  nodes : int;
}

let create ?(min_delay = 1) ?(max_delay = 5) ~seed ~nodes ~handler () =
  if min_delay < 0 || max_delay < min_delay then
    invalid_arg "Msim.create: bad delay range";
  {
    rng = Rng.create seed;
    min_delay;
    max_delay;
    queue = Pqueue.create ();
    crashed_nodes = Hashtbl.create 4;
    handler;
    time = 0;
    delivered = 0;
    nodes;
  }

let crashed t node = Hashtbl.mem t.crashed_nodes node

let send t ~src ~dst msg =
  if dst < 0 || dst >= t.nodes then invalid_arg "Msim.send: bad destination";
  if not (crashed t src) then begin
    let delay = Rng.int_range t.rng t.min_delay t.max_delay in
    Pqueue.push t.queue ~time:(t.time + delay) (Deliver (dst, msg))
  end

let set_timer t ~node ~after msg =
  if not (crashed t node) then
    Pqueue.push t.queue ~time:(t.time + after) (Deliver (node, msg))

let crash t node = Hashtbl.replace t.crashed_nodes node ()
let crash_at t ~time node = Pqueue.push t.queue ~time (Crash node)
let now t = t.time
let messages_delivered t = t.delivered

let run ?(until = 100_000) t =
  let rec loop () =
    match Pqueue.pop t.queue with
    | None -> ()
    | Some (time, ev) ->
      if time <= until then begin
        t.time <- max t.time time;
        (match ev with
        | Crash node -> crash t node
        | Deliver (node, msg) ->
          if not (crashed t node) then begin
            t.delivered <- t.delivered + 1;
            t.handler t ~node msg
          end);
        loop ()
      end
  in
  loop ()
