(* The optimality proof of Section 4.1, executed step by step.

   Dynamic atomicity is optimal: no local property admits strictly more
   histories.  The proof takes any history that is NOT dynamic atomic,
   finds a serialization order T consistent with precedes in which it
   fails, and builds a counter object whose answers pin exactly T —
   composing the two yields a computation that is not atomic, so no
   local property may admit the original history.

     dune exec examples/optimality.exe
*)

open Core

let () =
  let x = Object_id.v "x" in
  let a = Activity.update "a"
  and b = Activity.update "b"
  and c = Activity.update "c" in
  let env = Spec_env.of_list [ (x, Intset.spec) ] in

  (* The Section 4.1 history: atomic, but not dynamic atomic. *)
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.member 3);
        Event.invoke b x (Intset.insert 3);
        Event.respond b x Value.ok;
        Event.respond a x (Value.Bool false);
        Event.invoke c x (Intset.member 3);
        Event.commit b x;
        Event.respond c x (Value.Bool true);
        Event.commit a x;
        Event.commit c x;
      ]
  in
  Fmt.pr "The history h (Section 4.1):@.%a@.@." History.pp h;
  Fmt.pr "atomic:         %b@." (Atomicity.atomic env h);
  Fmt.pr "dynamic atomic: %b@." (Atomicity.dynamic_atomic env h);
  Fmt.pr "precedes(h):    %a@.@."
    Fmt.(
      list ~sep:comma (fun ppf (p, q) ->
          pf ppf "(%a,%a)" Activity.pp p Activity.pp q))
    (History.precedes h);

  match Optimality.dynamic_refutation env h with
  | None -> Fmt.pr "h is dynamic atomic; nothing to refute.@."
  | Some rf ->
    Fmt.pr
      "Suppose some local property P admitted h.  Dynamic atomicity@.\
       fails in the order %a (consistent with precedes), so the proof@.\
       builds a counter object '%a' that pins exactly that order:@.@."
      Fmt.(list ~sep:(any "-") Activity.pp)
      rf.Optimality.pinned_order Object_id.pp rf.Optimality.counter_object;
    Fmt.pr "%a@.@." History.pp
      (History.project_object rf.Optimality.counter_object
         rf.Optimality.computation);
    Fmt.pr
      "The combined computation projects to h at x and to the pinned@.\
       counter history at %a.  Is it atomic?  %b@.@."
      Object_id.pp rf.Optimality.counter_object
      (Atomicity.atomic rf.Optimality.env rf.Optimality.computation);
    Fmt.pr
      "Not atomic — yet every object separately satisfied P (x by@.\
       assumption, the counter because its specification is dynamic@.\
       atomic and P admits everything dynamic atomicity does).  So P@.\
       is not a local atomicity property: dynamic atomicity is@.\
       optimal.  (Theorems in Section 4.1; machinery in@.\
       lib/theory/optimality.ml.)@."
