(* Multicore tellers: OCaml 5 domains hammering one escrow account
   through the blocking runtime facade (Core.Concurrent).

   Each teller domain runs transactions with Concurrent.atomically:
   invocations block while the escrow protocol says wait, deadlock
   victims are aborted automatically, and commit/abort fan-out is
   handled by the wrapper.  At the end we audit: the committed balance
   must equal the sum of effects the domains tallied for themselves.

     dune exec examples/parallel_tellers.exe
*)

open Core

let acct = Object_id.v "acct"
let n_domains = 4
let txns_per_domain = 200

let () =
  let sys = Concurrent.create () in
  Concurrent.add_object sys (Escrow_account.make (Concurrent.log sys) acct);

  (match
     Concurrent.atomically sys (Activity.update "seed") (fun _ invoke ->
         invoke acct (Bank_account.deposit 10_000))
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  let net_effect = Atomic.make 0 in
  let committed = Atomic.make 0 in
  let failed = Atomic.make 0 in

  let teller domain_id =
    let rng = Rng.create (1000 + domain_id) in
    for i = 1 to txns_per_domain do
      let amount = 1 + Rng.int rng 50 in
      let is_deposit = Rng.int rng 3 = 0 in
      let op =
        if is_deposit then Bank_account.deposit amount
        else Bank_account.withdraw amount
      in
      let name = Fmt.str "d%d_%d" domain_id i in
      match
        Concurrent.atomically sys (Activity.update name) (fun _ invoke ->
            invoke acct op)
      with
      | Ok v ->
        Atomic.incr committed;
        let delta =
          if is_deposit then amount
          else if Value.equal v Value.ok then -amount
          else 0
        in
        ignore (Atomic.fetch_and_add net_effect delta)
      | Error _ -> Atomic.incr failed
    done
  in
  let domains =
    List.init n_domains (fun d -> Domain.spawn (fun () -> teller d))
  in
  List.iter Domain.join domains;

  let final_balance =
    match
      Concurrent.atomically sys (Activity.update "audit") (fun _ invoke ->
          invoke acct Bank_account.balance)
    with
    | Ok (Value.Int n) -> n
    | Ok v -> Fmt.failwith "unexpected audit answer %a" Value.pp v
    | Error e -> failwith e
  in
  let expected = 10_000 + Atomic.get net_effect in
  Fmt.pr "%d domains x %d transactions@." n_domains txns_per_domain;
  Fmt.pr "committed: %d, failed: %d@." (Atomic.get committed)
    (Atomic.get failed);
  Fmt.pr "final balance: %d, expected from tallies: %d -> %s@." final_balance
    expected
    (if final_balance = expected then "CONSISTENT" else "BROKEN");
  let h = Concurrent.history sys in
  Fmt.pr "history: %d events, well-formed: %b@." (History.length h)
    (Wellformed.is_well_formed Wellformed.Base h);
  if final_balance <> expected then exit 1
