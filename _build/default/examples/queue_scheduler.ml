(* Figure 5-1: the scheduler model cannot express dynamic atomicity.

   Two producers concurrently enqueue the sequence [1;2]; a consumer
   then dequeues.  A scheduler that executes operations in submission
   order would leave the queue holding 1,1,2,2 — an unserializable
   outcome.  Dynamic atomicity instead answers 1,2,1,2 (correct in both
   serialization orders), and our dynamic-atomic queue object produces
   exactly that online.

     dune exec examples/queue_scheduler.exe
*)

open Core

let x = Object_id.v "q"
let env = Spec_env.of_list [ (x, Fifo_queue.spec) ]

let show label h =
  Fmt.pr "%s@.  atomic: %b   dynamic atomic: %b@.@." label
    (Atomicity.atomic env h)
    (Atomicity.dynamic_atomic env h)

let () =
  let a = Activity.update "a"
  and b = Activity.update "b"
  and c = Activity.update "c" in
  let enqueues =
    [
      Event.invoke a x (Fifo_queue.enqueue 1);
      Event.respond a x Value.ok;
      Event.invoke b x (Fifo_queue.enqueue 1);
      Event.respond b x Value.ok;
      Event.invoke a x (Fifo_queue.enqueue 2);
      Event.respond a x Value.ok;
      Event.invoke b x (Fifo_queue.enqueue 2);
      Event.respond b x Value.ok;
      Event.commit a x;
      Event.commit b x;
    ]
  in
  let with_dequeues results =
    History.of_list
      (enqueues
      @ List.concat_map
          (fun v ->
            [
              Event.invoke c x Fifo_queue.dequeue;
              Event.respond c x (Value.Int v);
            ])
          results
      @ [ Event.commit c x ])
  in

  Fmt.pr "== What the paper's Figure 5-1 is about ==@.@.";
  show "Scheduler-model outcome: c dequeues 1,1,2,2"
    (with_dequeues [ 1; 1; 2; 2 ]);
  show "Dynamic-atomicity outcome: c dequeues 1,2,1,2"
    (with_dequeues [ 1; 2; 1; 2 ]);

  (* Now produce the good interleaving online. *)
  Fmt.pr "== The dynamic-atomic queue object, live ==@.@.";
  let sys = System.create () in
  System.add_object sys (Da_queue.make (System.log sys) x);
  let ta = System.begin_txn sys a in
  let tb = System.begin_txn sys b in
  let enq t v =
    match System.invoke sys t x (Fifo_queue.enqueue v) with
    | Atomic_object.Granted _ ->
      Fmt.pr "  %a enqueues %d@." Txn.pp t v
    | r -> Fmt.pr "  %a enqueue %d: %a@." Txn.pp t v Atomic_object.pp_invoke_result r
  in
  enq ta 1;
  enq tb 1;
  enq ta 2;
  enq tb 2;
  System.commit sys ta;
  System.commit sys tb;
  Fmt.pr "  a and b commit (in either order — neither precedes the other)@.";
  let tc = System.begin_txn sys c in
  for _ = 1 to 4 do
    match System.invoke sys tc x Fifo_queue.dequeue with
    | Atomic_object.Granted v -> Fmt.pr "  c dequeues %a@." Value.pp v
    | r -> Fmt.pr "  c dequeue: %a@." Atomic_object.pp_invoke_result r
  done;
  System.commit sys tc;
  let h = System.history sys in
  Fmt.pr "@.Produced history is dynamic atomic: %b@."
    (Atomicity.dynamic_atomic env h);

  (* And the guard rail: with *different* value sequences the front is
     genuinely ambiguous, so the object refuses rather than guess. *)
  Fmt.pr "@.== Ambiguity is detected, not guessed away ==@.@.";
  let sys2 = System.create () in
  System.add_object sys2 (Da_queue.make (System.log sys2) x);
  let ta = System.begin_txn sys2 (Activity.update "a") in
  let tb = System.begin_txn sys2 (Activity.update "b") in
  ignore (System.invoke sys2 ta x (Fifo_queue.enqueue 7));
  ignore (System.invoke sys2 tb x (Fifo_queue.enqueue 9));
  System.commit sys2 ta;
  System.commit sys2 tb;
  let tc = System.begin_txn sys2 (Activity.update "c") in
  (match System.invoke sys2 tc x Fifo_queue.dequeue with
  | Atomic_object.Refused why -> Fmt.pr "  dequeue refused: %s@." why
  | r -> Fmt.pr "  dequeue: %a@." Atomic_object.pp_invoke_result r);
  System.abort sys2 tc
