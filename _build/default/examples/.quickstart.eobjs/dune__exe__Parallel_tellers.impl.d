examples/parallel_tellers.ml: Activity Atomic Bank_account Concurrent Core Domain Escrow_account Fmt History List Object_id Rng Value Wellformed
