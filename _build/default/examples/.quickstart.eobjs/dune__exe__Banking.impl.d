examples/banking.ml: Bank_account Core Driver Escrow_account Fmt Hybrid Hybrid_account List Multiversion Op_locking Stats System Workload
