examples/optimality.ml: Activity Atomicity Core Event Fmt History Intset Object_id Optimality Spec_env Value
