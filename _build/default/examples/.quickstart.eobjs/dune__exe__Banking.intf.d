examples/banking.mli:
