examples/parallel_tellers.mli:
