examples/escrow_teller.ml: Activity Atomic_object Atomicity Bank_account Core Escrow_account Fmt History Object_id Operation Spec_env System Txn Value
