examples/quickstart.ml: Activity Atomic_object Atomicity Core Da_set Event Fmt History Intset Object_id Spec_env System Value Wellformed
