examples/queue_scheduler.mli:
