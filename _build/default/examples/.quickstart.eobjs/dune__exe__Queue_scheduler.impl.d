examples/queue_scheduler.ml: Activity Atomic_object Atomicity Core Da_queue Event Fifo_queue Fmt History List Object_id Spec_env System Txn Value
