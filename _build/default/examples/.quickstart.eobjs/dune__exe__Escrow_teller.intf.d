examples/escrow_teller.mli:
