examples/optimality.mli:
