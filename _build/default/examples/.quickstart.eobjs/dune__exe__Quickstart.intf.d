examples/quickstart.mli:
