(* Quickstart: build the paper's Section 3 history by hand, ask the
   checkers what it is, and watch perm/precedes at work.

     dune exec examples/quickstart.exe
*)

open Core

let () =
  let x = Object_id.v "x" in
  let a = Activity.update "a"
  and b = Activity.update "b"
  and c = Activity.update "c" in

  (* The integer-set computation from Section 3: a queries while b
     inserts and c's delete aborts. *)
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.member 3);
        Event.invoke b x (Intset.insert 3);
        Event.respond b x Value.ok;
        Event.respond a x (Value.Bool true);
        Event.commit b x;
        Event.invoke c x (Intset.delete 3);
        Event.respond c x Value.ok;
        Event.commit a x;
        Event.abort c x;
      ]
  in
  Fmt.pr "The computation h:@.%a@.@." History.pp h;

  Fmt.pr "perm(h) — events of committed activities only:@.%a@.@." History.pp
    (History.perm h);

  let env = Spec_env.of_list [ (x, Intset.spec) ] in
  Fmt.pr "well-formed?        %b@."
    (Wellformed.is_well_formed Wellformed.Base h);
  Fmt.pr "atomic?             %b@." (Atomicity.atomic env h);
  (match Atomicity.serialization_witness env h with
  | Some order ->
    Fmt.pr "serialization order: %a@."
      Fmt.(list ~sep:(any "-") Activity.pp)
      order
  | None -> Fmt.pr "no serialization order@.");
  Fmt.pr "dynamic atomic?     %b@." (Atomicity.dynamic_atomic env h);
  Fmt.pr "precedes(h):        %a@.@."
    Fmt.(
      list ~sep:comma (fun ppf (p, q) ->
          pf ppf "(%a,%a)" Activity.pp p Activity.pp q))
    (History.precedes h);

  (* The same story, produced online by a dynamic-atomic object. *)
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  let ta = System.begin_txn sys (Activity.update "a") in
  let tb = System.begin_txn sys (Activity.update "b") in
  (match System.invoke sys tb x (Intset.insert 3) with
  | Atomic_object.Granted v -> Fmt.pr "b: insert(3) -> %a@." Value.pp v
  | other -> Fmt.pr "b: %a@." Atomic_object.pp_invoke_result other);
  System.commit sys tb;
  (match System.invoke sys ta x (Intset.member 3) with
  | Atomic_object.Granted v -> Fmt.pr "a: member(3) -> %a@." Value.pp v
  | other -> Fmt.pr "a: %a@." Atomic_object.pp_invoke_result other);
  System.commit sys ta;
  let produced = System.history sys in
  Fmt.pr "@.The protocol produced:@.%a@." History.pp produced;
  Fmt.pr "dynamic atomic?     %b@." (Atomicity.dynamic_atomic env produced)
