(* Concurrent ATM tellers on one account: data-dependent dynamic
   atomicity in action (Section 5.1).

   Several tellers withdraw from the same account concurrently.  Under
   commutativity locking every withdrawal serializes; the escrow
   account grants them concurrently while the balance covers them all,
   blocks the ones in doubt, and answers insufficient_funds only when
   no serialization could cover the request.  An aborting teller
   returns its escrowed money.

     dune exec examples/escrow_teller.exe
*)

open Core

let acct = Object_id.v "acct"
let env = Spec_env.of_list [ (acct, Bank_account.spec) ]

let describe sys t op =
  match System.invoke sys t acct op with
  | Atomic_object.Granted v ->
    Fmt.pr "  %a: %a -> %a@." Txn.pp t Operation.pp op Value.pp v;
    `Granted v
  | Atomic_object.Wait blockers ->
    Fmt.pr "  %a: %a -> must wait for %a@." Txn.pp t Operation.pp op
      Fmt.(list ~sep:comma Txn.pp)
      blockers;
    `Wait
  | Atomic_object.Refused why ->
    Fmt.pr "  %a: %a -> refused (%s)@." Txn.pp t Operation.pp op why;
    `Refused

let () =
  let sys = System.create () in
  System.add_object sys (Escrow_account.make (System.log sys) acct);

  Fmt.pr "Seed the account with 100.@.";
  let t0 = System.begin_txn sys (Activity.update "seed") in
  ignore (describe sys t0 (Bank_account.deposit 100));
  System.commit sys t0;

  Fmt.pr "@.Three tellers withdraw concurrently (60+30 covered, 20 not):@.";
  let t1 = System.begin_txn sys (Activity.update "teller1") in
  let t2 = System.begin_txn sys (Activity.update "teller2") in
  let t3 = System.begin_txn sys (Activity.update "teller3") in
  ignore (describe sys t1 (Bank_account.withdraw 60));
  ignore (describe sys t2 (Bank_account.withdraw 30));
  (* Only 10 certainly remain; 20 is possible only if someone aborts. *)
  ignore (describe sys t3 (Bank_account.withdraw 20));

  Fmt.pr "@.teller1 changes its mind and aborts — escrow returns its 60:@.";
  System.abort sys t1;
  ignore (describe sys t3 (Bank_account.withdraw 20));
  System.commit sys t2;
  System.commit sys t3;

  Fmt.pr "@.A withdrawal no serialization can cover fails immediately:@.";
  let t4 = System.begin_txn sys (Activity.update "teller4") in
  ignore (describe sys t4 (Bank_account.withdraw 1000));
  System.commit sys t4;

  Fmt.pr "@.Final audit:@.";
  let t5 = System.begin_txn sys (Activity.update "audit") in
  ignore (describe sys t5 Bank_account.balance);
  System.commit sys t5;

  let h = System.history sys in
  Fmt.pr "@.%d events; dynamic atomic: %b@." (History.length h)
    (Atomicity.dynamic_atomic env h)
