(* Reed's multi-version timestamp protocol, generalized (static
   atomicity, Section 4.2). *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make spec =
  let sys = System.create ~policy:`Static () in
  System.add_object sys (Multiversion.make (System.log sys) x spec);
  sys

let expect_refused name = function
  | Atomic_object.Refused _ -> ()
  | other ->
    Alcotest.fail
      (Fmt.str "%s: got %a" name Atomic_object.pp_invoke_result other)

let test_timestamp_order_respected () =
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 3)));
  System.commit sys t1;
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 x (Intset.member 3)) with
  | Value.Bool true -> ()
  | v -> Alcotest.fail (Fmt.str "expected true, got %a" Value.pp v));
  System.commit sys t2;
  let h = System.history sys in
  check_bool "well-formed (static)" true
    (Wellformed.is_well_formed Wellformed.Static h);
  check_bool "static atomic" true (Atomicity.static_atomic set_env h)

let test_late_writer_refused () =
  (* b (later timestamp) reads; then a (earlier timestamp) tries to
     write behind it: Reed rejects the writer. *)
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 x (Intset.member 3)) with
  | Value.Bool false -> ()
  | v -> Alcotest.fail (Fmt.str "expected false, got %a" Value.pp v));
  System.commit sys t2;
  expect_refused "insert behind later member"
    (System.invoke sys t1 x (Intset.insert 3));
  System.abort sys t1;
  let h = System.history sys in
  check_bool "static atomic despite refusal" true
    (Atomicity.static_atomic set_env h)

let test_harmless_late_writer_allowed () =
  (* The generalization is data-dependent: inserting 3 cannot
     invalidate a later member(5). *)
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 x (Intset.member 5)) with
  | Value.Bool false -> ()
  | v -> Alcotest.fail (Fmt.str "expected false, got %a" Value.pp v));
  System.commit sys t2;
  ignore (granted (System.invoke sys t1 x (Intset.insert 3)));
  System.commit sys t1;
  let h = System.history sys in
  check_bool "static atomic" true (Atomicity.static_atomic set_env h)

let test_reader_waits_for_uncommitted_earlier () =
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 3)));
  expect_wait "reader waits for the earlier active writer"
    (System.invoke sys t2 x (Intset.member 3));
  System.commit sys t1;
  (match granted (System.invoke sys t2 x (Intset.member 3)) with
  | Value.Bool true -> ()
  | v -> Alcotest.fail (Fmt.str "expected true, got %a" Value.pp v));
  System.commit sys t2;
  check_bool "static atomic" true
    (Atomicity.static_atomic set_env (System.history sys))

let test_aborted_writer_versions_discarded () =
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 3)));
  System.abort sys t1;
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 x (Intset.member 3)) with
  | Value.Bool false -> ()
  | v -> Alcotest.fail (Fmt.str "expected false, got %a" Value.pp v));
  System.commit sys t2;
  check_bool "static atomic" true
    (Atomicity.static_atomic set_env (System.history sys))

let test_account_on_multiversion () =
  let sys = make Bank_account.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 x (Bank_account.deposit 10)));
  System.commit sys t1;
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t2 x (Bank_account.withdraw 4)));
  System.commit sys t2;
  let t3 = System.begin_txn sys (Activity.update "c") in
  (match granted (System.invoke sys t3 x Bank_account.balance) with
  | Value.Int 6 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 6, got %a" Value.pp v));
  System.commit sys t3;
  check_bool "static atomic" true
    (Atomicity.static_atomic
       (Spec_env.of_list [ (x, Bank_account.spec) ])
       (System.history sys))

let test_initiation_events_logged () =
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 x (Intset.member 1)));
  System.commit sys t1;
  let h = System.history sys in
  check_bool "history starts with an initiation" true
    (match History.to_list h with
    | e :: _ -> Event.is_initiate e
    | [] -> false)

let test_no_deadlock_possible () =
  (* Waits point only from larger to smaller timestamps, so a cycle is
     impossible; exercise a wait chain and confirm no cycle is ever
     reported. *)
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  let t3 = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 1)));
  expect_wait "t2 waits on t1" (System.invoke sys t2 x (Intset.member 1));
  expect_wait "t3 waits on t1" (System.invoke sys t3 x (Intset.member 1));
  check_bool "no deadlock" true (Option.is_none (System.find_deadlock sys));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 x (Intset.member 1)));
  ignore (granted (System.invoke sys t3 x (Intset.member 1)));
  System.commit sys t2;
  System.commit sys t3;
  check_bool "static atomic" true
    (Atomicity.static_atomic set_env (System.history sys))

let test_random_schedules () =
  for seed = 1 to 25 do
    let sys = make Intset.spec in
    let scripts =
      [
        (`Update, [ (x, Intset.insert 1); (x, Intset.member 2) ]);
        (`Update, [ (x, Intset.member 1); (x, Intset.insert 2) ]);
        (`Update, [ (x, Intset.delete 1) ]);
        (`Update, [ (x, Intset.member 2) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed (static)" seed)
      true
      (Wellformed.is_well_formed Wellformed.Static h);
    check_bool
      (Fmt.str "seed %d static atomic" seed)
      true
      (Atomicity.static_atomic set_env h)
  done

let suite =
  [
    Alcotest.test_case "timestamp order respected" `Quick
      test_timestamp_order_respected;
    Alcotest.test_case "late writer refused (Reed)" `Quick
      test_late_writer_refused;
    Alcotest.test_case "harmless late writer allowed" `Quick
      test_harmless_late_writer_allowed;
    Alcotest.test_case "reader waits for uncommitted" `Quick
      test_reader_waits_for_uncommitted_earlier;
    Alcotest.test_case "aborted versions discarded" `Quick
      test_aborted_writer_versions_discarded;
    Alcotest.test_case "bank account semantics" `Quick
      test_account_on_multiversion;
    Alcotest.test_case "initiation events logged" `Quick
      test_initiation_events_logged;
    Alcotest.test_case "deadlock-free by construction" `Quick
      test_no_deadlock_possible;
    Alcotest.test_case "random schedules static atomic" `Quick
      test_random_schedules;
  ]
