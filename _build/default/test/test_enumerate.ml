(* Bounded history enumeration, and exhaustive theorem checks built on
   it. *)

open Core
open Helpers

let test_counts () =
  (* Two sessions of lengths m and n events interleave in
     C(m+n, m) ways; one op + commit = 3 events each. *)
  let s1 = Enumerate.session a [ Enumerate.step x (Intset.insert 1) ] in
  let s2 = Enumerate.session b [ Enumerate.step x (Intset.insert 2) ] in
  check_int "C(6,3) = 20" 20 (Enumerate.count [ s1; s2 ]);
  (* Candidate results multiply. *)
  let s3 =
    Enumerate.session b
      [
        Enumerate.step x (Intset.member 1)
          ~candidates:[ Value.Bool true; Value.Bool false ];
      ]
  in
  check_int "20 * 2 candidates" 40 (Enumerate.count [ s1; s3 ]);
  check_int "single session: one interleaving" 1 (Enumerate.count [ s1 ])

let test_all_well_formed () =
  let s1 =
    Enumerate.session a
      [
        Enumerate.step x (Intset.insert 1);
        Enumerate.step x (Intset.member 2)
          ~candidates:[ Value.Bool true; Value.Bool false ];
      ]
  in
  let s2 =
    Enumerate.session b [ Enumerate.step x (Intset.delete 1) ] ~terminal:`Abort
  in
  Seq.iter
    (fun h ->
      check_bool "well-formed" true (Wellformed.is_well_formed Wellformed.Base h))
    (Enumerate.histories [ s1; s2 ])

let test_static_sessions_well_formed () =
  let s1 =
    Enumerate.session a ~initiate_ts:(ts 1)
      [ Enumerate.step x (Intset.insert 1) ]
  in
  let s2 =
    Enumerate.session b ~initiate_ts:(ts 2)
      [ Enumerate.step x (Intset.delete 1) ]
  in
  Seq.iter
    (fun h ->
      check_bool "well-formed (static)" true
        (Wellformed.is_well_formed Wellformed.Static h))
    (Enumerate.histories [ s1; s2 ])

(* Exhaustive Theorem 1/4 check on the bank account — a different
   object family than the census in bench E5. *)
let test_theorems_exhaustive_account () =
  let candidates_withdraw = [ Value.ok; Value.insufficient_funds ] in
  let sessions =
    [
      Enumerate.session a ~initiate_ts:(ts 1)
        [ Enumerate.step y (Bank_account.deposit 5) ];
      Enumerate.session b ~initiate_ts:(ts 2)
        [
          Enumerate.step y (Bank_account.withdraw 5)
            ~candidates:candidates_withdraw;
        ];
    ]
  in
  let env = account_env in
  let total = ref 0 and unsound = ref 0 in
  Seq.iter
    (fun h ->
      if Wellformed.is_well_formed Wellformed.Static h then begin
        incr total;
        let local =
          Atomicity.dynamic_atomic env h
          || Atomicity.static_atomic env h
          || Atomicity.hybrid_atomic env h
        in
        if local && not (Atomicity.atomic env h) then incr unsound
      end)
    (Enumerate.histories sessions);
  check_bool "examined a non-trivial universe" true (!total > 50);
  check_int "no local property admits a non-atomic history" 0 !unsound

(* The paper's Section 5.1 separation, exhaustively: every history of
   two concurrent withdrawals fully covered by a committed deposit is
   atomic when both answer ok. *)
let test_covered_withdrawals_always_atomic () =
  let sessions =
    [
      Enumerate.session b [ Enumerate.step y (Bank_account.withdraw 4) ];
      Enumerate.session c [ Enumerate.step y (Bank_account.withdraw 3) ];
    ]
  in
  let seed =
    [
      Event.invoke a y (Bank_account.deposit 10);
      Event.respond a y Value.ok;
      Event.commit a y;
    ]
  in
  Seq.iter
    (fun h ->
      let full = History.of_list (seed @ History.to_list h) in
      check_bool "dynamic atomic" true
        (Atomicity.dynamic_atomic account_env full))
    (Enumerate.histories sessions)

let suite =
  [
    Alcotest.test_case "interleaving counts" `Quick test_counts;
    Alcotest.test_case "all enumerated histories well-formed" `Quick
      test_all_well_formed;
    Alcotest.test_case "static sessions well-formed" `Quick
      test_static_sessions_well_formed;
    Alcotest.test_case "theorems exhaustive on the account" `Quick
      test_theorems_exhaustive_account;
    Alcotest.test_case "covered withdrawals always atomic (5.1)" `Quick
      test_covered_withdrawals_always_atomic;
  ]
