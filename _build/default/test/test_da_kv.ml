(* The data-dependent key/value map. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let m = Object_id.v "map"
let env = Spec_env.of_list [ (m, Kv_map.spec) ]

let make () =
  let sys = System.create () in
  System.add_object sys (Da_kv.make (System.log sys) m);
  sys

let test_distinct_keys_concurrent () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 m (Kv_map.put 1 10)));
  ignore (granted (System.invoke sys t2 m (Kv_map.put 2 20)));
  ignore (granted (System.invoke sys t2 m (Kv_map.get 2)));
  System.commit sys t2;
  System.commit sys t1;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_same_key_puts_conflict () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 m (Kv_map.put 1 10)));
  expect_wait "conflicting put" (System.invoke sys t2 m (Kv_map.put 1 11));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 m (Kv_map.put 1 11)));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_identical_puts_concurrent () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 m (Kv_map.put 1 10)));
  ignore (granted (System.invoke sys t2 m (Kv_map.put 1 10)));
  System.commit sys t2;
  System.commit sys t1;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_get_tolerates_same_value_put () =
  let sys = make () in
  let t0 = System.begin_txn sys (Activity.update "init") in
  ignore (granted (System.invoke sys t0 m (Kv_map.put 1 10)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t1 m (Kv_map.get 1)) with
  | Value.Int 10 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 10, got %a" Value.pp v));
  (* Re-putting the same binding cannot invalidate the answer. *)
  ignore (granted (System.invoke sys t2 m (Kv_map.put 1 10)));
  (* But a different value must wait behind the reader. *)
  let t3 = System.begin_txn sys (Activity.update "c") in
  expect_wait "changing put behind get"
    (System.invoke sys t3 m (Kv_map.put 1 99));
  System.commit sys t1;
  System.commit sys t2;
  ignore (granted (System.invoke sys t3 m (Kv_map.put 1 99)));
  System.commit sys t3;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_get_none_tolerates_remove () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t1 m (Kv_map.get 1)) with
  | v when Value.equal v Kv_map.none_result -> ()
  | v -> Alcotest.fail (Fmt.str "expected none, got %a" Value.pp v));
  ignore (granted (System.invoke sys t2 m (Kv_map.remove 1)));
  (* A put would make the answer wrong in one order. *)
  let t3 = System.begin_txn sys (Activity.update "c") in
  expect_wait "put behind get(none)" (System.invoke sys t3 m (Kv_map.put 1 5));
  System.commit sys t1;
  System.commit sys t2;
  ignore (granted (System.invoke sys t3 m (Kv_map.put 1 5)));
  System.commit sys t3;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_random_schedules () =
  for seed = 1 to 25 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (m, Kv_map.put 1 10); (m, Kv_map.get 2) ]);
        (`Update, [ (m, Kv_map.get 1); (m, Kv_map.put 2 20) ]);
        (`Update, [ (m, Kv_map.remove 1) ]);
        (`Update, [ (m, Kv_map.put 1 10) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed" seed)
      true
      (Wellformed.is_well_formed Wellformed.Base h);
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic env h)
  done

let suite =
  [
    Alcotest.test_case "distinct keys interleave" `Quick
      test_distinct_keys_concurrent;
    Alcotest.test_case "same-key puts conflict" `Quick
      test_same_key_puts_conflict;
    Alcotest.test_case "identical puts interleave" `Quick
      test_identical_puts_concurrent;
    Alcotest.test_case "get tolerates same-value put" `Quick
      test_get_tolerates_same_value_put;
    Alcotest.test_case "get(none) tolerates remove" `Quick
      test_get_none_tolerates_remove;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
  ]
