(* Serializability: fixed-order and existential (Section 3). *)

open Core
open Helpers

let test_in_order () =
  let p = History.perm sec3_atomic in
  check_bool "serializable in b-a" true
    (Serializability.in_order set_env p [ b; a ]);
  check_bool "not serializable in a-b" false
    (Serializability.in_order set_env p [ a; b ]);
  check_bool "order missing an activity" false
    (Serializability.in_order set_env p [ b ])

let test_serializable_witness () =
  match Serializability.serializable set_env (History.perm sec3_atomic) with
  | Some order ->
    Alcotest.(check (list string))
      "witness is b-a" [ "b"; "a" ]
      (List.map Activity.name order)
  | None -> Alcotest.fail "expected a witness"

let test_not_serializable () =
  check_bool "member true on empty set" true
    (Option.is_none
       (Serializability.serializable set_env (History.perm sec3_not_atomic)))

let test_every_order_consistent () =
  (* sec41_dynamic: serializable in all three orders consistent with
     {(b,c)}. *)
  let h = sec41_dynamic in
  check_bool "all consistent orders" true
    (Serializability.in_every_order_consistent_with set_env (History.perm h)
       (History.precedes h));
  let h' = sec41_not_dynamic in
  check_bool "fails for the non-dynamic example" false
    (Serializability.in_every_order_consistent_with set_env (History.perm h')
       (History.precedes h'))

let test_empty_history () =
  check_bool "empty history serializable" true
    (Option.is_some (Serializability.serializable set_env History.empty));
  check_bool "empty in empty order" true
    (Serializability.in_order set_env History.empty [])

let test_queue_example_orders () =
  (* Section 5.1: the queue interleaving is serializable in both a-b-c
     and b-a-c but in no order placing c first. *)
  let p = History.perm sec51_queue in
  check_bool "a-b-c" true (Serializability.in_order queue_env p [ a; b; c ]);
  check_bool "b-a-c" true (Serializability.in_order queue_env p [ b; a; c ]);
  check_bool "c first fails" false
    (Serializability.in_order queue_env p [ c; a; b ]);
  check_bool "c in the middle fails" false
    (Serializability.in_order queue_env p [ a; c; b ])

let test_bank_example_orders () =
  let p = History.perm sec51_withdrawals in
  check_bool "a-b-c" true (Serializability.in_order account_env p [ a; b; c ]);
  check_bool "a-c-b" true (Serializability.in_order account_env p [ a; c; b ]);
  check_bool "b-a-c fails (withdraw before deposit)" false
    (Serializability.in_order account_env p [ b; a; c ])

let suite =
  [
    Alcotest.test_case "fixed order" `Quick test_in_order;
    Alcotest.test_case "existential witness" `Quick test_serializable_witness;
    Alcotest.test_case "unserializable" `Quick test_not_serializable;
    Alcotest.test_case "every consistent order" `Quick
      test_every_order_consistent;
    Alcotest.test_case "empty history" `Quick test_empty_history;
    Alcotest.test_case "queue orders (5.1)" `Quick test_queue_example_orders;
    Alcotest.test_case "bank orders (5.1)" `Quick test_bank_example_orders;
  ]
