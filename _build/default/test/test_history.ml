(* Projections, perm, precedes, equivalence, serial recognition. *)

open Core
open Helpers

let test_projections () =
  let h = sec3_atomic in
  check_int "h|x has all events" 9 (History.length (History.project_object x h));
  check_int "h|a" 3 (History.length (History.project_activity a h));
  check_int "h|b" 3 (History.length (History.project_activity b h));
  check_int "h|c" 3 (History.length (History.project_activity c h));
  check_bool "projection is a subsequence" true
    (List.for_all
       (fun e -> List.exists (Event.equal e) (History.to_list h))
       (History.to_list (History.project_activity a h)))

let test_activities_objects () =
  let h = sec3_atomic in
  Alcotest.(check (list string))
    "activities in first-appearance order" [ "a"; "b"; "c" ]
    (List.map Activity.name (History.activities h));
  Alcotest.(check (list string))
    "single object" [ "x" ]
    (List.map Object_id.name (History.objects h))

let test_committed_aborted () =
  let h = sec3_atomic in
  check_bool "a committed" true (Activity.Set.mem a (History.committed h));
  check_bool "b committed" true (Activity.Set.mem b (History.committed h));
  check_bool "c aborted" true (Activity.Set.mem c (History.aborted h));
  check_bool "c not committed" false (Activity.Set.mem c (History.committed h));
  check_bool "no active" true (Activity.Set.is_empty (History.active h))

let test_perm () =
  let p = History.perm sec3_atomic in
  check_int "perm drops c's three events" 6 (History.length p);
  check_bool "no c events remain" true
    (List.for_all
       (fun e -> not (Activity.equal (Event.activity e) c))
       (History.to_list p));
  (* perm of the non-atomic Section 3 example keeps everything. *)
  Alcotest.check history "perm keeps committed" sec3_not_atomic
    (History.perm sec3_not_atomic)

let test_perm_idempotent () =
  List.iter
    (fun h ->
      Alcotest.check history "perm idempotent" (History.perm h)
        (History.perm (History.perm h)))
    [ sec3_atomic; sec41_not_dynamic; sec51_queue; sec43_well_formed ]

let test_precedes_empty () =
  (* Paper: responses before any commit yield the empty relation. *)
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.member 3);
        Event.respond a x (Value.Bool false);
        Event.invoke b x (Intset.insert 3);
        Event.respond b x Value.ok;
        Event.commit a x;
        Event.commit b x;
      ]
  in
  check_int "empty precedes" 0 (List.length (History.precedes h))

let test_precedes_pair () =
  (* Paper: b's termination after a's commit puts (a,b) in the
     relation. *)
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.member 3);
        Event.respond a x (Value.Bool false);
        Event.commit a x;
        Event.invoke b x (Intset.insert 3);
        Event.respond b x Value.ok;
        Event.commit b x;
      ]
  in
  check_bool "(a,b) present" true (History.precedes_mem h a b);
  check_bool "(b,a) absent" false (History.precedes_mem h b a);
  check_int "exactly one pair" 1 (List.length (History.precedes h))

let test_precedes_sec41 () =
  let h = sec41_not_dynamic in
  check_bool "(b,c)" true (History.precedes_mem h b c);
  check_int "only (b,c)" 1 (List.length (History.precedes h))

let test_precedes_irreflexive () =
  (* An activity's own later responses do not relate it to itself. *)
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.insert 1);
        Event.respond a x Value.ok;
        Event.commit a x;
      ]
  in
  check_bool "not (a,a)" false (History.precedes_mem h a a)

let test_equivalent () =
  let serial = History.concat_serial [ b; a ] (History.perm sec3_atomic) in
  check_bool "perm equivalent to its serialization" true
    (History.equivalent (History.perm sec3_atomic) serial);
  check_bool "different histories not equivalent" false
    (History.equivalent sec3_atomic sec3_not_atomic)

let test_serial () =
  check_bool "interleaved is not serial" false (History.serial sec3_atomic);
  let serial = History.concat_serial [ b; a ] (History.perm sec3_atomic) in
  check_bool "concatenated projections are serial" true (History.serial serial);
  check_bool "empty is serial" true (History.serial History.empty);
  (* An activity resuming after another intervened is not serial. *)
  let bad =
    History.of_list
      [
        Event.invoke a x (Intset.insert 1);
        Event.respond a x Value.ok;
        Event.invoke b x (Intset.insert 2);
        Event.respond b x Value.ok;
        Event.commit a x;
      ]
  in
  check_bool "resumed activity breaks seriality" false (History.serial bad)

let test_timestamps () =
  (match History.timestamp_of sec42_static a with
  | Some t -> check_int "a's timestamp" 2 (Timestamp.to_int t)
  | None -> Alcotest.fail "a has a timestamp");
  (match History.timestamp_order sec42_static with
  | Some order ->
    Alcotest.(check (list string))
      "timestamp order b-a" [ "b"; "a" ]
      (List.map Activity.name order)
  | None -> Alcotest.fail "timestamp order exists");
  check_bool "untimestamped history has no order" true
    (Option.is_none (History.timestamp_order sec3_atomic)
    = (not (Activity.Set.is_empty (History.committed sec3_atomic))))

let test_updates () =
  let h = sec43_well_formed in
  let u = History.updates h in
  check_bool "updates drops read-only events" true
    (List.for_all
       (fun e -> not (Activity.is_read_only (Event.activity e)))
       (History.to_list u));
  check_int "three update events remain" 3 (History.length u)

let test_is_prefix () =
  let h = History.to_list sec3_atomic in
  let p = History.of_list (List.filteri (fun i _ -> i < 4) h) in
  check_bool "prefix recognized" true (History.is_prefix p sec3_atomic);
  check_bool "whole is prefix of itself" true
    (History.is_prefix sec3_atomic sec3_atomic);
  check_bool "non-prefix rejected" false
    (History.is_prefix sec3_not_atomic sec3_atomic)

let suite =
  [
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "activities and objects" `Quick test_activities_objects;
    Alcotest.test_case "committed/aborted/active" `Quick test_committed_aborted;
    Alcotest.test_case "perm" `Quick test_perm;
    Alcotest.test_case "perm idempotent" `Quick test_perm_idempotent;
    Alcotest.test_case "precedes: empty (paper)" `Quick test_precedes_empty;
    Alcotest.test_case "precedes: pair (paper)" `Quick test_precedes_pair;
    Alcotest.test_case "precedes: section 4.1" `Quick test_precedes_sec41;
    Alcotest.test_case "precedes irreflexive" `Quick test_precedes_irreflexive;
    Alcotest.test_case "equivalence" `Quick test_equivalent;
    Alcotest.test_case "serial recognition" `Quick test_serial;
    Alcotest.test_case "timestamps" `Quick test_timestamps;
    Alcotest.test_case "updates projection" `Quick test_updates;
    Alcotest.test_case "prefixes" `Quick test_is_prefix;
  ]
