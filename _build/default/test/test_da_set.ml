(* The result-aware dynamic-atomic set. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make () =
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  sys

let test_distinct_elements_concurrent () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 1)));
  ignore (granted (System.invoke sys t2 x (Intset.delete 2)));
  ignore (granted (System.invoke sys t2 x (Intset.member 3)));
  System.commit sys t2;
  System.commit sys t1;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_idempotent_updates_concurrent () =
  (* insert(i) twice: commutativity locking would allow this too, but
     here both transactions hold the same element. *)
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 5)));
  ignore (granted (System.invoke sys t2 x (Intset.insert 5)));
  System.commit sys t1;
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_member_true_tolerates_insert () =
  (* The data-dependent refinement: a member that answered true cannot
     be invalidated by a concurrent insert of the same element. *)
  let sys = make () in
  let t0 = System.begin_txn sys (Activity.update "init") in
  ignore (granted (System.invoke sys t0 x (Intset.insert 4)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t1 x (Intset.member 4)) with
  | Value.Bool true -> ()
  | v -> Alcotest.fail (Fmt.str "expected true, got %a" Value.pp v));
  ignore (granted (System.invoke sys t2 x (Intset.insert 4)));
  System.commit sys t1;
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_member_false_blocks_insert () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t1 x (Intset.member 4)) with
  | Value.Bool false -> ()
  | v -> Alcotest.fail (Fmt.str "expected false, got %a" Value.pp v));
  expect_wait "insert behind member(false)"
    (System.invoke sys t2 x (Intset.insert 4));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 x (Intset.insert 4)));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_member_true_blocks_delete () =
  let sys = make () in
  let t0 = System.begin_txn sys (Activity.update "init") in
  ignore (granted (System.invoke sys t0 x (Intset.insert 4)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x (Intset.member 4)));
  expect_wait "delete behind member(true)"
    (System.invoke sys t2 x (Intset.delete 4));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 x (Intset.delete 4)));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_insert_delete_conflict () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x (Intset.insert 4)));
  expect_wait "delete conflicts with insert"
    (System.invoke sys t2 x (Intset.delete 4));
  System.abort sys t1;
  ignore (granted (System.invoke sys t2 x (Intset.delete 4)));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_size_conflicts_with_updates () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x Intset.size));
  expect_wait "insert behind size" (System.invoke sys t2 x (Intset.insert 1));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 x (Intset.insert 1)));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_random_schedules () =
  for seed = 1 to 25 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (x, Intset.insert 1); (x, Intset.member 1) ]);
        (`Update, [ (x, Intset.member 2); (x, Intset.insert 2) ]);
        (`Update, [ (x, Intset.delete 1); (x, Intset.member 3) ]);
        (`Update, [ (x, Intset.insert 3) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed" seed)
      true
      (Wellformed.is_well_formed Wellformed.Base h);
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic set_env h)
  done

let suite =
  [
    Alcotest.test_case "distinct elements interleave" `Quick
      test_distinct_elements_concurrent;
    Alcotest.test_case "idempotent updates interleave" `Quick
      test_idempotent_updates_concurrent;
    Alcotest.test_case "member(true) tolerates insert" `Quick
      test_member_true_tolerates_insert;
    Alcotest.test_case "member(false) blocks insert" `Quick
      test_member_false_blocks_insert;
    Alcotest.test_case "member(true) blocks delete" `Quick
      test_member_true_blocks_delete;
    Alcotest.test_case "insert/delete conflict" `Quick
      test_insert_delete_conflict;
    Alcotest.test_case "size conflicts with updates" `Quick
      test_size_conflicts_with_updates;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
  ]
