(* The transaction manager: lifecycle, timestamp policies, errors. *)

open Core
open Helpers

let granted = Test_op_locking.granted

let test_lifecycle_errors () =
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t x (Intset.insert 1)));
  System.commit sys t;
  Alcotest.check_raises "double commit"
    (Invalid_argument "System: transaction a#0 is not active") (fun () ->
      System.commit sys t);
  Alcotest.check_raises "invoke after commit"
    (Invalid_argument "System: transaction a#0 is not active") (fun () ->
      ignore (System.invoke sys t x (Intset.insert 2)))

let test_duplicate_object () =
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  Alcotest.check_raises "duplicate object"
    (Invalid_argument "System.add_object: duplicate object x") (fun () ->
      System.add_object sys (Da_set.make (System.log sys) x))

let test_unknown_object () =
  let sys = System.create () in
  let t = System.begin_txn sys (Activity.update "a") in
  Alcotest.check_raises "unknown object"
    (Invalid_argument "System: unknown object nowhere") (fun () ->
      ignore (System.invoke sys t (Object_id.v "nowhere") (Intset.insert 1)))

let test_policy_timestamps () =
  let sys = System.create ~policy:`Static () in
  let t = System.begin_txn sys (Activity.update "a") in
  check_bool "static assigns initiation timestamps" true
    (Option.is_some (Txn.init_ts t));
  let sys2 = System.create ~policy:`Hybrid () in
  let u = System.begin_txn sys2 (Activity.update "a") in
  let r' = System.begin_txn sys2 (Activity.read_only "r") in
  check_bool "hybrid: updates get no initiation timestamp" true
    (Option.is_none (Txn.init_ts u));
  check_bool "hybrid: read-only get initiation timestamps" true
    (Option.is_some (Txn.init_ts r'));
  let sys3 = System.create () in
  let v = System.begin_txn sys3 (Activity.update "a") in
  check_bool "dynamic: no timestamps" true (Option.is_none (Txn.init_ts v))

let test_commit_events_only_at_touched_objects () =
  let sys = System.create () in
  let log = System.log sys in
  System.add_object sys (Da_set.make log x);
  System.add_object sys (Escrow_account.make log y);
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t x (Intset.insert 1)));
  System.commit sys t;
  let h = System.history sys in
  let commits = List.filter Event.is_commit (History.to_list h) in
  check_int "one commit event" 1 (List.length commits);
  check_bool "at the touched object" true
    (List.for_all (fun e -> Object_id.equal (Event.object_id e) x) commits)

let test_active_txns () =
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  check_int "two active" 2 (List.length (System.active_txns sys));
  System.commit sys t1;
  System.abort sys t2;
  check_int "none active" 0 (List.length (System.active_txns sys))

let test_lamport_clock () =
  let c = Lamport_clock.create () in
  let t1 = Lamport_clock.next c in
  let t2 = Lamport_clock.next c in
  check_bool "monotone" true Timestamp.(t1 < t2);
  Lamport_clock.observe c (Timestamp.v 100);
  check_bool "observe advances" true
    (Timestamp.to_int (Lamport_clock.next c) > 100);
  Lamport_clock.observe c (Timestamp.v 5);
  check_bool "observe never regresses" true
    (Timestamp.to_int (Lamport_clock.now c) > 100)

let test_event_log () =
  let log = Event_log.create () in
  check_int "empty" 0 (Event_log.length log);
  Event_log.record log (Event.commit a x);
  Event_log.record log (Event.commit b x);
  check_int "two events" 2 (Event_log.length log);
  (match History.to_list (Event_log.history log) with
  | [ e1; e2 ] ->
    check_bool "order preserved" true
      (Activity.equal (Event.activity e1) a
      && Activity.equal (Event.activity e2) b)
  | _ -> Alcotest.fail "expected two events");
  Event_log.clear log;
  check_int "cleared" 0 (Event_log.length log)

let test_waits_for_no_false_cycles () =
  let w = Waits_for.create () in
  let t1 = Txn.make ~id:1 (Activity.update "a") in
  let t2 = Txn.make ~id:2 (Activity.update "b") in
  let t3 = Txn.make ~id:3 (Activity.update "c") in
  Waits_for.set_waiting w t1 [ t2 ];
  Waits_for.set_waiting w t2 [ t3 ];
  check_bool "chain is no cycle" true (Option.is_none (Waits_for.find_cycle w));
  Waits_for.set_waiting w t3 [ t1 ];
  (match Waits_for.find_cycle w with
  | Some cycle ->
    check_int "three-party cycle" 3 (List.length cycle);
    check_int "victim is youngest" 3 (Txn.id (Waits_for.victim cycle))
  | None -> Alcotest.fail "expected cycle");
  Waits_for.clear w t3;
  check_bool "cleared edge breaks cycle" true
    (Option.is_none (Waits_for.find_cycle w))

let suite =
  [
    Alcotest.test_case "lifecycle errors" `Quick test_lifecycle_errors;
    Alcotest.test_case "duplicate object" `Quick test_duplicate_object;
    Alcotest.test_case "unknown object" `Quick test_unknown_object;
    Alcotest.test_case "timestamp policies" `Quick test_policy_timestamps;
    Alcotest.test_case "commit events at touched objects" `Quick
      test_commit_events_only_at_touched_objects;
    Alcotest.test_case "active transactions" `Quick test_active_txns;
    Alcotest.test_case "lamport clock" `Quick test_lamport_clock;
    Alcotest.test_case "event log" `Quick test_event_log;
    Alcotest.test_case "waits-for cycles" `Quick test_waits_for_no_false_cycles;
  ]
