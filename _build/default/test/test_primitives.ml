(* The base vocabulary: values, operations, activities, timestamps,
   events. *)

open Core
open Helpers

let test_value_equal_compare () =
  let vals =
    [
      Value.Unit; Value.Bool true; Value.Bool false; Value.Int 0;
      Value.Int 42; Value.Int (-1); Value.Sym "ok"; Value.Sym "empty";
      Value.List [ Value.Int 1; Value.Int 2 ];
      Value.Pair (Value.Int 1, Value.Sym "ok");
    ]
  in
  List.iteri
    (fun i v ->
      List.iteri
        (fun j w ->
          check_bool "equal iff compare = 0" (i = j) (Value.equal v w);
          check_bool "compare consistency" (Value.equal v w)
            (Value.compare v w = 0))
        vals)
    vals;
  (* compare is antisymmetric and total on this sample. *)
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          check_int "antisymmetry" 0
            (compare (Value.compare v w) (-Value.compare w v)))
        vals)
    vals

let test_value_pp () =
  Alcotest.(check string) "unit" "()" (Value.to_string Value.Unit);
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true));
  Alcotest.(check string) "int" "-3" (Value.to_string (Value.Int (-3)));
  Alcotest.(check string) "sym" "ok" (Value.to_string Value.ok);
  Alcotest.(check string) "list" "[1; 2]"
    (Value.to_string (Value.List [ Value.Int 1; Value.Int 2 ]));
  Alcotest.(check string) "pair" "(1, ok)"
    (Value.to_string (Value.Pair (Value.Int 1, Value.ok)))

let test_operation () =
  let op = Operation.make "insert" [ Value.Int 3 ] in
  Alcotest.(check string) "pp with args" "insert(3)" (Operation.to_string op);
  Alcotest.(check string) "pp without args" "size"
    (Operation.to_string (Operation.make "size" []));
  check_bool "equal" true (Operation.equal op (Intset.insert 3));
  check_bool "different args differ" false
    (Operation.equal op (Intset.insert 4));
  check_bool "different names differ" false
    (Operation.equal op (Intset.delete 3));
  check_int "compare equal" 0 (Operation.compare op (Intset.insert 3))

let test_activity () =
  check_bool "identity by name" true
    (Activity.equal (Activity.update "a") (Activity.read_only "a"));
  check_bool "kind preserved" true
    (Activity.is_read_only (Activity.read_only "r"));
  check_bool "updates are not read-only" false
    (Activity.is_read_only (Activity.update "a"));
  let s = Activity.Set.of_list [ a; b; a ] in
  check_int "set dedupes by name" 2 (Activity.Set.cardinal s)

let test_timestamp () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Timestamp.v: negative timestamp") (fun () ->
      ignore (Timestamp.v (-1)));
  check_bool "ordering" true Timestamp.(ts 1 < ts 2);
  check_bool "not less than self" false Timestamp.(ts 2 < ts 2);
  check_int "round trip" 5 (Timestamp.to_int (ts 5))

let test_event_accessors () =
  let e = Event.invoke a x (Intset.insert 3) in
  check_bool "activity" true (Activity.equal (Event.activity e) a);
  check_bool "object" true (Object_id.equal (Event.object_id e) x);
  check_bool "is_invoke" true (Event.is_invoke e);
  check_bool "timestamp absent" true (Option.is_none (Event.timestamp e));
  let c = Event.commit_ts a x (ts 4) in
  check_bool "commit timestamp" true
    (match Event.timestamp c with
    | Some t -> Timestamp.to_int t = 4
    | None -> false);
  let i = Event.initiate a x (ts 9) in
  check_bool "initiate carries its timestamp" true
    (Option.is_some (Event.timestamp i))

let test_event_pp_notation () =
  Alcotest.(check string) "invoke" "<insert(3),x,a>"
    (Event.to_string (Event.invoke a x (Intset.insert 3)));
  Alcotest.(check string) "respond" "<true,x,a>"
    (Event.to_string (Event.respond a x (Value.Bool true)));
  Alcotest.(check string) "commit" "<commit,x,a>"
    (Event.to_string (Event.commit a x));
  Alcotest.(check string) "commit(t)" "<commit(2),x,a>"
    (Event.to_string (Event.commit_ts a x (ts 2)));
  Alcotest.(check string) "abort" "<abort,x,c>"
    (Event.to_string (Event.abort c x));
  Alcotest.(check string) "initiate" "<initiate(1),x,r>"
    (Event.to_string (Event.initiate r x (ts 1)))

let test_event_equal_compare () =
  let events =
    [
      Event.invoke a x (Intset.insert 3);
      Event.invoke a x (Intset.insert 4);
      Event.invoke b x (Intset.insert 3);
      Event.respond a x Value.ok;
      Event.commit a x;
      Event.commit_ts a x (ts 1);
      Event.abort a x;
      Event.initiate a x (ts 1);
    ]
  in
  List.iteri
    (fun i e ->
      List.iteri
        (fun j f ->
          check_bool "equal iff same index" (i = j) (Event.equal e f);
          check_bool "compare zero iff equal" (Event.equal e f)
            (Event.compare e f = 0))
        events)
    events

let suite =
  [
    Alcotest.test_case "value equality and order" `Quick
      test_value_equal_compare;
    Alcotest.test_case "value printing" `Quick test_value_pp;
    Alcotest.test_case "operations" `Quick test_operation;
    Alcotest.test_case "activities" `Quick test_activity;
    Alcotest.test_case "timestamps" `Quick test_timestamp;
    Alcotest.test_case "event accessors" `Quick test_event_accessors;
    Alcotest.test_case "event notation printing" `Quick
      test_event_pp_notation;
    Alcotest.test_case "event equality and order" `Quick
      test_event_equal_compare;
  ]
