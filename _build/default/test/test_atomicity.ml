(* Every example history the paper classifies, asserted to classify the
   same way under our checkers. *)

open Core
open Helpers

let atomic env h = Atomicity.atomic env h
let dyn env h = Atomicity.dynamic_atomic env h
let sta env h = Atomicity.static_atomic env h
let hyb env h = Atomicity.hybrid_atomic env h

let test_sec3 () =
  check_bool "sec3 example is atomic" true (atomic set_env sec3_atomic);
  check_bool "member-true-on-empty is not atomic" false
    (atomic set_env sec3_not_atomic)

let test_sec41 () =
  let h = sec41_not_dynamic in
  check_bool "atomic" true (atomic set_env h);
  check_bool "but not dynamic atomic" false (dyn set_env h);
  let h' = sec41_dynamic in
  check_bool "variant is atomic" true (atomic set_env h');
  check_bool "and dynamic atomic" true (dyn set_env h')

let test_sec42 () =
  let h = sec42_not_static in
  check_bool "atomic" true (atomic set_env h);
  check_bool "but not static atomic" false (sta set_env h);
  let h' = sec42_static in
  check_bool "variant is atomic" true (atomic set_env h');
  check_bool "and static atomic" true (sta set_env h')

let test_sec43 () =
  let h = sec43_not_hybrid in
  check_bool "atomic" true (atomic set_env h);
  check_bool "but not hybrid atomic" false (hyb set_env h);
  let h' = sec43_hybrid in
  check_bool "variant is atomic" true (atomic set_env h');
  check_bool "and hybrid atomic" true (hyb set_env h');
  check_bool "paper's well-formed hybrid example is hybrid atomic" true
    (hyb set_env sec43_well_formed)

let test_sec51_bank () =
  check_bool "concurrent withdrawals are dynamic atomic" true
    (dyn account_env sec51_withdrawals);
  check_bool "withdraw concurrent with unneeded deposit" true
    (dyn account_env sec51_withdraw_deposit)

let test_sec51_queue () =
  check_bool "queue interleaving is atomic" true (atomic queue_env sec51_queue);
  check_bool "and dynamic atomic" true (dyn queue_env sec51_queue)

(* The scheduler model cannot produce the Section 5.1 interleaving: a
   scheduler executes each operation against the store in submission
   order, so c would have to dequeue 1,1,2,2 — and that execution is
   NOT serializable.  We reproduce both halves of the argument. *)
let test_scheduler_model_limitation () =
  let scheduler_history =
    History.of_list
      [
        Event.invoke a x (Fifo_queue.enqueue 1);
        Event.respond a x Value.ok;
        Event.invoke b x (Fifo_queue.enqueue 1);
        Event.respond b x Value.ok;
        Event.invoke a x (Fifo_queue.enqueue 2);
        Event.respond a x Value.ok;
        Event.invoke b x (Fifo_queue.enqueue 2);
        Event.respond b x Value.ok;
        Event.commit a x;
        Event.commit b x;
        Event.invoke c x Fifo_queue.dequeue;
        Event.respond c x (Value.Int 1);
        Event.invoke c x Fifo_queue.dequeue;
        Event.respond c x (Value.Int 1);
        Event.invoke c x Fifo_queue.dequeue;
        Event.respond c x (Value.Int 2);
        Event.invoke c x Fifo_queue.dequeue;
        Event.respond c x (Value.Int 2);
        Event.commit c x;
      ]
  in
  check_bool "what the scheduler produces (1,1,2,2) is not serializable"
    false
    (atomic queue_env scheduler_history);
  check_bool "what dynamic atomicity permits (1,2,1,2) is" true
    (dyn queue_env sec51_queue)

(* Dynamic and static atomicity are incomparable (Section 4.2.3): each
   permits interleavings the other forbids. *)
let test_dynamic_static_incomparable () =
  (* Static-but-not-dynamic: timestamps order b before a even though a
     committed first and b's response follows a's commit. *)
  let h =
    History.of_list
      [
        Event.initiate a x (ts 2);
        Event.initiate b x (ts 1);
        Event.invoke a x (Intset.insert 3);
        Event.respond a x Value.ok;
        Event.commit a x;
        Event.invoke b x (Intset.member 3);
        Event.respond b x (Value.Bool false);
        Event.commit b x;
      ]
  in
  check_bool "well-formed (static)" true
    (Wellformed.is_well_formed Wellformed.Static h);
  check_bool "static atomic" true (sta set_env h);
  check_bool "not dynamic atomic" false (dyn set_env h);
  (* Dynamic-but-not-static: serializable in commit order a-b, but the
     timestamps demand b-a. *)
  let h' =
    History.of_list
      [
        Event.initiate a x (ts 2);
        Event.initiate b x (ts 1);
        Event.invoke a x (Intset.insert 3);
        Event.respond a x Value.ok;
        Event.commit a x;
        Event.invoke b x (Intset.member 3);
        Event.respond b x (Value.Bool true);
        Event.commit b x;
      ]
  in
  check_bool "well-formed (static)" true
    (Wellformed.is_well_formed Wellformed.Static h');
  check_bool "dynamic atomic" true (dyn set_env h');
  check_bool "not static atomic" false (sta set_env h')

(* The counter construction from the optimality proof (Section 4.1):
   committed increments are serializable in exactly one order, so any
   interleaving an over-permissive property admits is pinned down. *)
let test_counter_construction () =
  let h =
    History.of_list
      [
        Event.invoke a y Counter.increment;
        Event.respond a y (Value.Int 1);
        Event.commit a y;
        Event.invoke b y Counter.increment;
        Event.respond b y (Value.Int 2);
        Event.commit b y;
        Event.invoke c y Counter.increment;
        Event.respond c y (Value.Int 3);
        Event.commit c y;
      ]
  in
  check_bool "serial counter history is atomic" true (atomic counter_env h);
  (* Exactly one serialization order works. *)
  let orders =
    Orders.permutations [ a; b; c ]
    |> List.of_seq
    |> List.filter (fun o -> Serializability.in_order counter_env h o)
  in
  check_int "unique order" 1 (List.length orders);
  (* Composing the counter with the not-dynamic-atomic set history of
     Section 4.1 destroys atomicity — the optimality argument's
     contradiction, made executable.  The counter pins the order c-a-b
     (c=1, a=2, b=3), while the set history requires a before b...
     compatible; pin b before a instead to reproduce the clash. *)
  let env = Spec_env.of_list [ (x, Intset.spec); (y, Counter.spec) ] in
  let pinned =
    History.of_list
      [
        (* h|x: member(3)->false by a concurrent with insert(3) by b
           forces a before b. *)
        Event.invoke a x (Intset.member 3);
        Event.invoke b x (Intset.insert 3);
        Event.respond b x Value.ok;
        Event.respond a x (Value.Bool false);
        (* h|y: the counter pins b before a. *)
        Event.invoke b y Counter.increment;
        Event.respond b y (Value.Int 1);
        Event.invoke a y Counter.increment;
        Event.respond a y (Value.Int 2);
        Event.commit b x;
        Event.commit b y;
        Event.commit a x;
        Event.commit a y;
      ]
  in
  check_bool "composed computation is not atomic" false (atomic env pinned)

let test_local_properties_imply_atomic_on_examples () =
  List.iter
    (fun (env, h) ->
      if dyn env h then check_bool "dynamic => atomic" true (atomic env h);
      if sta env h then check_bool "static => atomic" true (atomic env h);
      if hyb env h then check_bool "hybrid => atomic" true (atomic env h))
    [
      (set_env, sec3_atomic); (set_env, sec41_dynamic);
      (set_env, sec41_not_dynamic); (set_env, sec42_static);
      (set_env, sec42_not_static); (set_env, sec43_hybrid);
      (set_env, sec43_not_hybrid); (account_env, sec51_withdrawals);
      (account_env, sec51_withdraw_deposit); (queue_env, sec51_queue);
    ]

let suite =
  [
    Alcotest.test_case "section 3 examples" `Quick test_sec3;
    Alcotest.test_case "section 4.1 examples" `Quick test_sec41;
    Alcotest.test_case "section 4.2 examples" `Quick test_sec42;
    Alcotest.test_case "section 4.3 examples" `Quick test_sec43;
    Alcotest.test_case "section 5.1 bank examples" `Quick test_sec51_bank;
    Alcotest.test_case "section 5.1 queue example" `Quick test_sec51_queue;
    Alcotest.test_case "scheduler-model limitation (fig 5-1)" `Quick
      test_scheduler_model_limitation;
    Alcotest.test_case "dynamic/static incomparable" `Quick
      test_dynamic_static_incomparable;
    Alcotest.test_case "counter optimality construction" `Quick
      test_counter_construction;
    Alcotest.test_case "local properties imply atomicity" `Quick
      test_local_properties_imply_atomic_on_examples;
  ]
