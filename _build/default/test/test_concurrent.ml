(* The multicore runtime facade: real domains through the blocking
   interface. *)

open Core
open Helpers

let acct = Object_id.v "acct"
let acct_env = Spec_env.of_list [ (acct, Bank_account.spec) ]

let test_atomically_commit_and_refuse () =
  let sys = Concurrent.create () in
  Concurrent.add_object sys (Escrow_account.make (Concurrent.log sys) acct);
  (match
     Concurrent.atomically sys (Activity.update "a") (fun _txn invoke ->
         invoke acct (Bank_account.deposit 10))
   with
  | Ok v -> check_bool "deposit ok" true (Value.equal v Value.ok)
  | Error e -> Alcotest.fail e);
  (* An unknown operation is refused; atomically turns it into Error
     and the transaction aborts cleanly. *)
  (match
     Concurrent.atomically sys (Activity.update "b") (fun _txn invoke ->
         invoke acct (Operation.make "mystery" []))
   with
  | Ok _ -> Alcotest.fail "expected refusal"
  | Error _ -> ());
  let h = Concurrent.history sys in
  check_bool "well-formed" true (Wellformed.is_well_formed Wellformed.Base h);
  check_bool "atomic" true (Atomicity.atomic acct_env h)

let test_blocking_unblocks_across_domains () =
  let sys = Concurrent.create () in
  Concurrent.add_object sys (Escrow_account.make (Concurrent.log sys) acct);
  ignore
    (Concurrent.atomically sys (Activity.update "seed") (fun _ invoke ->
         invoke acct (Bank_account.deposit 5)));
  (* Holder takes the whole balance into escrow, then releases it after
     the other domain has had time to block. *)
  let holder = Concurrent.begin_txn sys (Activity.update "holder") in
  ignore (Concurrent.invoke sys holder acct (Bank_account.withdraw 5));
  let waiter =
    Domain.spawn (fun () ->
        Concurrent.atomically sys (Activity.update "waiter") (fun _ invoke ->
            (* Blocks until the holder aborts and the funds return. *)
            invoke acct (Bank_account.withdraw 4)))
  in
  (* Give the waiter a moment to block, then release. *)
  Domain.cpu_relax ();
  Concurrent.abort sys holder;
  (match Domain.join waiter with
  | Ok v -> check_bool "waiter eventually granted" true (Value.equal v Value.ok)
  | Error e -> Alcotest.fail e);
  check_bool "atomic" true
    (Atomicity.atomic acct_env (Concurrent.history sys))

let test_deadlock_broken_across_domains () =
  let sys = Concurrent.create () in
  let log = Concurrent.log sys in
  let ox = Object_id.v "ox" and oy = Object_id.v "oy" in
  Concurrent.add_object sys (Op_locking.rw log ox (module Register));
  Concurrent.add_object sys (Op_locking.rw log oy (module Register));
  let barrier = Atomic.make 0 in
  let worker name first second =
    Domain.spawn (fun () ->
        Concurrent.atomically sys (Activity.update name) (fun _ invoke ->
            ignore (invoke first (Register.write 1));
            Atomic.incr barrier;
            (* Wait until both hold their first lock, then cross. *)
            while Atomic.get barrier < 2 do
              Domain.cpu_relax ()
            done;
            invoke second (Register.write 2)))
  in
  let d1 = worker "w1" ox oy in
  let d2 = worker "w2" oy ox in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  let ok r = match r with Ok _ -> true | Error _ -> false in
  check_bool "exactly one survives the deadlock" true (ok r1 <> ok r2);
  check_bool "atomic" true
    (Atomicity.atomic
       (Spec_env.of_list [ (ox, Register.spec); (oy, Register.spec) ])
       (Concurrent.history sys))

let test_many_domains_consistency () =
  let sys = Concurrent.create () in
  Concurrent.add_object sys (Da_counter.make (Concurrent.log sys) acct);
  let per_domain = 50 and domains = 4 in
  let committed = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              match
                Concurrent.atomically sys
                  (Activity.update (Fmt.str "d%d_%d" d i))
                  (fun _ invoke -> invoke acct (Blind_counter.bump 1))
              with
              | Ok _ -> Atomic.incr committed
              | Error _ -> ()
            done))
  in
  List.iter Domain.join workers;
  match
    Concurrent.atomically sys (Activity.update "reader") (fun _ invoke ->
        invoke acct Blind_counter.read)
  with
  | Ok (Value.Int total) ->
    check_int "every committed bump counted" (Atomic.get committed) total
  | Ok v -> Alcotest.fail (Fmt.str "unexpected %a" Value.pp v)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "atomically: commit and refuse" `Quick
      test_atomically_commit_and_refuse;
    Alcotest.test_case "blocking across domains" `Quick
      test_blocking_unblocks_across_domains;
    Alcotest.test_case "deadlock broken across domains" `Quick
      test_deadlock_broken_across_domains;
    Alcotest.test_case "many domains, counted consistently" `Quick
      test_many_domains_consistency;
  ]
