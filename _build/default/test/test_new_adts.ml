(* The extended ADT family: stack, priority queue, blind counter,
   append-only log. *)

open Core
open Helpers

let replay spec ops =
  let rec go frontier acc = function
    | [] -> List.rev acc
    | op :: rest -> (
      match Seq_spec.outcomes frontier op with
      | [] -> Alcotest.fail (Fmt.str "no outcome for %a" Operation.pp op)
      | (res, f) :: _ -> go f (res :: acc) rest)
  in
  go (Seq_spec.start spec) [] ops

let results spec ops = List.map Value.to_string (replay spec ops)

let test_stack () =
  Alcotest.(check (list string))
    "LIFO discipline"
    [ "empty"; "ok"; "ok"; "2"; "1"; "empty" ]
    (results Stack.spec
       Stack.[ pop; push 1; push 2; pop; pop; pop ]);
  check_bool "same pushes commute" true (Stack.commutes (Stack.push 1) (Stack.push 1));
  check_bool "different pushes do not" false
    (Stack.commutes (Stack.push 1) (Stack.push 2));
  check_bool "pop commutes with nothing" false
    (Stack.commutes Stack.pop Stack.pop)

let test_priority_queue () =
  Alcotest.(check (list string))
    "min-extraction order"
    [ "ok"; "ok"; "ok"; "1"; "1"; "3"; "7"; "empty" ]
    (results Priority_queue.spec
       Priority_queue.
         [ add 7; add 1; add 3; find_min; extract_min; extract_min;
           extract_min; extract_min ]);
  check_bool "adds commute" true
    (Priority_queue.commutes (Priority_queue.add 1) (Priority_queue.add 2));
  check_bool "extracts do not" false
    (Priority_queue.commutes Priority_queue.extract_min
       Priority_queue.extract_min);
  check_bool "find_min reads" true
    (Priority_queue.classify Priority_queue.find_min = Adt_sig.Read)

let test_blind_counter () =
  Alcotest.(check (list string))
    "bumps accumulate"
    [ "ok"; "ok"; "5"; "ok"; "4" ]
    (results Blind_counter.spec
       Blind_counter.[ bump 2; bump 3; read; bump (-1); read ]);
  check_bool "bumps commute" true
    (Blind_counter.commutes (Blind_counter.bump 1) (Blind_counter.bump 2));
  check_bool "read does not commute with bump" false
    (Blind_counter.commutes Blind_counter.read (Blind_counter.bump 1))

let test_append_log () =
  Alcotest.(check (list string))
    "append and read"
    [ "ok"; "ok"; "2"; "10"; "20"; "none" ]
    (results Append_log.spec
       Append_log.[ append 10; append 20; size; read 0; read 1; read 5 ]);
  check_bool "same-value appends commute" true
    (Append_log.commutes (Append_log.append 1) (Append_log.append 1));
  check_bool "different appends do not" false
    (Append_log.commutes (Append_log.append 1) (Append_log.append 2));
  check_bool "reads commute" true
    (Append_log.commutes (Append_log.read 0) Append_log.size)

(* The protocols are generic: run the new ADTs through commutativity
   locking and multiversion and check the local properties hold. *)

let x_obj = Object_id.v "obj"

let test_stack_under_locking () =
  for seed = 1 to 10 do
    let sys = System.create () in
    System.add_object sys
      (Op_locking.commutativity (System.log sys) x_obj (module Stack));
    let scripts =
      [
        (`Update, [ (x_obj, Stack.push 1); (x_obj, Stack.push 2) ]);
        (`Update, [ (x_obj, Stack.push 1) ]);
        (`Update, [ (x_obj, Stack.pop) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic (Spec_env.of_list [ (x_obj, Stack.spec) ]) h)
  done

let test_priority_queue_under_multiversion () =
  for seed = 1 to 10 do
    let sys = System.create ~policy:`Static () in
    System.add_object sys
      (Multiversion.make (System.log sys) x_obj Priority_queue.spec);
    let scripts =
      [
        (`Update, [ (x_obj, Priority_queue.add 3) ]);
        (`Update, [ (x_obj, Priority_queue.add 1); (x_obj, Priority_queue.find_min) ]);
        (`Update, [ (x_obj, Priority_queue.extract_min) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d static atomic" seed)
      true
      (Atomicity.static_atomic
         (Spec_env.of_list [ (x_obj, Priority_queue.spec) ])
         h)
  done

let test_append_log_under_rw_undo () =
  for seed = 1 to 10 do
    let sys = System.create () in
    System.add_object sys
      (Rw_undo.make (System.log sys) x_obj (module Append_log));
    let scripts =
      [
        (`Update, [ (x_obj, Append_log.append 1); (x_obj, Append_log.size) ]);
        (`Update, [ (x_obj, Append_log.append 2) ]);
        (`Update, [ (x_obj, Append_log.read 0) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic
         (Spec_env.of_list [ (x_obj, Append_log.spec) ])
         h)
  done

let suite =
  [
    Alcotest.test_case "stack" `Quick test_stack;
    Alcotest.test_case "priority queue" `Quick test_priority_queue;
    Alcotest.test_case "blind counter" `Quick test_blind_counter;
    Alcotest.test_case "append log" `Quick test_append_log;
    Alcotest.test_case "stack under commutativity locking" `Quick
      test_stack_under_locking;
    Alcotest.test_case "priority queue under multiversion" `Quick
      test_priority_queue_under_multiversion;
    Alcotest.test_case "append log under before-image 2PL" `Quick
      test_append_log_under_rw_undo;
  ]
