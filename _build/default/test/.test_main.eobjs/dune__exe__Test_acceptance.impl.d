test/test_acceptance.ml: Acceptance Alcotest Bank_account Core Counter Event Fifo_queue Helpers History Intset Semiqueue Spec_env Value
