test/test_notation.ml: Activity Alcotest Core Event Fifo_queue Fmt Helpers History Intset Kv_map List Notation Value
