test/test_multiversion.ml: Activity Alcotest Atomic_object Atomicity Bank_account Core Event Fmt Helpers History Intset Multiversion Option Spec_env System Test_op_locking Value Wellformed
