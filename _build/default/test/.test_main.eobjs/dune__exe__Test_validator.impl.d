test/test_validator.ml: Activity Alcotest Core Event Helpers Intset List Validator Value Wellformed
