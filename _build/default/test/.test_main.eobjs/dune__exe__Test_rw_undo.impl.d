test/test_rw_undo.ml: Activity Alcotest Atomicity Core Fmt Helpers Intset Object_id Op_locking Rw_undo Spec_env System Test_op_locking Value
