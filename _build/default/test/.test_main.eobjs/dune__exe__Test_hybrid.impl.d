test/test_hybrid.ml: Activity Alcotest Atomic_object Atomicity Bank_account Core Fmt Helpers History Hybrid Object_id Spec_env System Test_op_locking Timestamp Value Wellformed
