test/test_da_set.ml: Activity Alcotest Atomicity Core Da_set Fmt Helpers Intset System Test_op_locking Value Wellformed
