test/test_da_counter.ml: Activity Alcotest Atomicity Blind_counter Core Da_counter Fmt Helpers List Object_id Spec_env System Test_op_locking Value
