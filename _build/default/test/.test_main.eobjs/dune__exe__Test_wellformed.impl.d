test/test_wellformed.ml: Alcotest Bank_account Core Event Helpers History Intset List Value Wellformed
