test/test_system.ml: Activity Alcotest Core Da_set Escrow_account Event Event_log Helpers History Intset Lamport_clock List Object_id Option System Test_op_locking Timestamp Txn Waits_for
