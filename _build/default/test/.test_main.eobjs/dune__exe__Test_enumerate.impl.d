test/test_enumerate.ml: Alcotest Atomicity Bank_account Core Enumerate Event Helpers History Intset Seq Value Wellformed
