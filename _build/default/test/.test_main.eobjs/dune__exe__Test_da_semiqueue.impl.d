test/test_da_semiqueue.ml: Activity Alcotest Atomicity Core Da_semiqueue Explore Fmt Helpers List Object_id Semiqueue Spec_env System Test_op_locking Value Wellformed
