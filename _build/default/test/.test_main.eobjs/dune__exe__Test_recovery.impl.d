test/test_recovery.ml: Activity Alcotest Atomicity Bank_account Core Da_set Escrow_account Fmt Helpers Intset List Multiversion Notation Recovery String System Test_op_locking Value
