test/test_sim.ml: Activity Alcotest Atomicity Bank_account Core Driver Escrow_account Helpers History Hybrid Int64 List Multiversion Op_locking Pqueue Rng Spec_env Stats System Workload
