test/test_da_kv.ml: Activity Alcotest Atomicity Core Da_kv Fmt Helpers Kv_map Object_id Spec_env System Test_op_locking Value Wellformed
