test/test_da_queue.ml: Activity Alcotest Atomic_object Atomicity Core Da_queue Fifo_queue Fmt Helpers System Test_op_locking Value Wellformed
