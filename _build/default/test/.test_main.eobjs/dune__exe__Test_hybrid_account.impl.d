test/test_hybrid_account.ml: Activity Alcotest Atomic_object Atomicity Bank_account Core Explore Fmt Helpers Hybrid_account List System Test_op_locking Value Wellformed
