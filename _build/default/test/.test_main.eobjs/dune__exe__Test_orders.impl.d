test/test_orders.ml: Alcotest Core Helpers Int List Orders
