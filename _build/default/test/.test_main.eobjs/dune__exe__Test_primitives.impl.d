test/test_primitives.ml: Activity Alcotest Core Event Helpers Intset List Object_id Operation Option Timestamp Value
