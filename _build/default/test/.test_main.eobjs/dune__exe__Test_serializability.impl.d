test/test_serializability.ml: Activity Alcotest Core Helpers History List Option Serializability
