test/test_history.ml: Activity Alcotest Core Event Helpers History Intset List Object_id Option Timestamp Value
