test/test_optimality.ml: Activity Alcotest Atomicity Core Counter Da_set Event Fmt Helpers History Intset List Object_id Optimality Option Serializability Spec_env System Value Wellformed
