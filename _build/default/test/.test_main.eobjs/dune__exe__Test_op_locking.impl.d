test/test_op_locking.ml: Activity Alcotest Atomic_object Atomicity Bank_account Core Fmt Helpers Intset List Op_locking Option Register Spec_env System Txn Value Waits_for Wellformed
