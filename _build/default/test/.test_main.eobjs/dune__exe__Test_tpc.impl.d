test/test_tpc.ml: Alcotest Core Fmt Helpers List Msim Option Tpc
