test/test_da_generic.ml: Activity Alcotest Atomic_object Atomicity Bank_account Core Da_generic Escrow_account Fifo_queue Fmt Helpers Intset List Semiqueue Spec_env System Test_op_locking Value
