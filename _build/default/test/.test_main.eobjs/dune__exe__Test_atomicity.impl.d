test/test_atomicity.ml: Alcotest Atomicity Core Counter Event Fifo_queue Helpers History Intset List Orders Serializability Spec_env Value Wellformed
