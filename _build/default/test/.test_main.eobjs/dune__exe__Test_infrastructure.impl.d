test/test_infrastructure.ml: Activity Alcotest Core Event Event_log Helpers History Intentions Intset List Obj_log Timestamp Txn Value
