test/test_adts.ml: Adt_sig Alcotest Bank_account Core Counter Fifo_queue Fmt Helpers Intset Kv_map List Operation Option Register Semiqueue Seq_spec String Value
