test/helpers.ml: Activity Alcotest Atomic_object Bank_account Core Counter Event Fifo_queue Fmt History Intset List Object_id Operation Rng Spec_env System Timestamp Txn Value Waits_for
