test/test_escrow.ml: Activity Alcotest Atomic_object Atomicity Bank_account Core Escrow_account Fmt Helpers Operation System Test_op_locking Value Wellformed
