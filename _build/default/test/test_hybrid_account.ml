(* The full hybrid-atomic account: escrow updates + versioned audits. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make () =
  let sys = System.create ~policy:`Hybrid () in
  System.add_object sys (Hybrid_account.make (System.log sys) y);
  sys

let test_escrow_updates_and_free_audits_together () =
  (* The combination neither Hybrid.of_adt nor Escrow_account offers:
     concurrent covered withdrawals AND a non-blocking audit, in the
     same history. *)
  let sys = make () in
  let t0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys t0 y (Bank_account.deposit 10)));
  System.commit sys t0;
  let tb = System.begin_txn sys (Activity.update "b") in
  let tc = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys tb y (Bank_account.withdraw 4)));
  (* Section 5.1: the second covered withdrawal proceeds concurrently. *)
  ignore (granted (System.invoke sys tc y (Bank_account.withdraw 3)));
  (* Section 4.3.3: the audit proceeds despite both being active. *)
  let r' = System.begin_txn sys (Activity.read_only "r") in
  (match granted (System.invoke sys r' y Bank_account.balance) with
  | Value.Int 10 -> ()
  | v -> Alcotest.fail (Fmt.str "expected snapshot 10, got %a" Value.pp v));
  System.commit sys r';
  System.commit sys tc;
  System.commit sys tb;
  let h = System.history sys in
  check_bool "well-formed (hybrid)" true
    (Wellformed.is_well_formed Wellformed.Hybrid h);
  check_bool "hybrid atomic" true (Atomicity.hybrid_atomic account_env h)

let test_snapshot_boundary () =
  let sys = make () in
  let u1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys u1 y (Bank_account.deposit 5)));
  System.commit sys u1;
  let r' = System.begin_txn sys (Activity.read_only "r") in
  let u2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys u2 y (Bank_account.deposit 7)));
  System.commit sys u2;
  (match granted (System.invoke sys r' y Bank_account.balance) with
  | Value.Int 5 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 5, got %a" Value.pp v));
  System.commit sys r';
  check_bool "hybrid atomic" true
    (Atomicity.hybrid_atomic account_env (System.history sys))

let test_update_balance_still_quiesces () =
  (* Update transactions reading the balance still use the escrow
     discipline (quiesce + claim); only read-only audits get
     snapshots. *)
  let sys = make () in
  let u1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys u1 y (Bank_account.deposit 2)));
  let u2 = System.begin_txn sys (Activity.update "b") in
  expect_wait "update's balance read waits"
    (System.invoke sys u2 y Bank_account.balance);
  System.commit sys u1;
  (match granted (System.invoke sys u2 y Bank_account.balance) with
  | Value.Int 2 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 2, got %a" Value.pp v));
  System.commit sys u2;
  check_bool "hybrid atomic" true
    (Atomicity.hybrid_atomic account_env (System.history sys))

let test_read_only_other_ops_refused () =
  let sys = make () in
  let r' = System.begin_txn sys (Activity.read_only "r") in
  (match System.invoke sys r' y (Bank_account.deposit 1) with
  | Atomic_object.Refused _ -> ()
  | o -> Alcotest.fail (Fmt.str "got %a" Atomic_object.pp_invoke_result o));
  System.abort sys r'

let test_exhaustive_schedules () =
  let histories =
    Explore.all_histories
      ~make_system:(fun () ->
        let sys = System.create ~policy:`Hybrid () in
        System.add_object sys (Hybrid_account.make (System.log sys) y);
        let t = System.begin_txn sys (Activity.update "seed") in
        ignore (System.invoke sys t y (Bank_account.deposit 8));
        System.commit sys t;
        sys)
      [
        (`Update, [ (y, Bank_account.withdraw 4) ]);
        (`Update, [ (y, Bank_account.withdraw 3); (y, Bank_account.deposit 2) ]);
        (`Read_only, [ (y, Bank_account.balance) ]);
      ]
  in
  check_bool "non-trivial scope" true (List.length histories > 1);
  List.iteri
    (fun i h ->
      check_bool
        (Fmt.str "history %d well-formed" i)
        true
        (Wellformed.is_well_formed Wellformed.Hybrid h);
      check_bool
        (Fmt.str "history %d hybrid atomic" i)
        true
        (Atomicity.hybrid_atomic account_env h))
    histories

let test_random_schedules () =
  for seed = 1 to 20 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (y, Bank_account.deposit 10) ]);
        (`Update, [ (y, Bank_account.withdraw 4) ]);
        (`Read_only, [ (y, Bank_account.balance) ]);
        (`Update, [ (y, Bank_account.withdraw 3); (y, Bank_account.deposit 1) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed" seed)
      true
      (Wellformed.is_well_formed Wellformed.Hybrid h);
    check_bool
      (Fmt.str "seed %d hybrid atomic" seed)
      true
      (Atomicity.hybrid_atomic account_env h)
  done

let suite =
  [
    Alcotest.test_case "escrow updates + free audits" `Quick
      test_escrow_updates_and_free_audits_together;
    Alcotest.test_case "snapshot boundary" `Quick test_snapshot_boundary;
    Alcotest.test_case "update balance quiesces" `Quick
      test_update_balance_still_quiesces;
    Alcotest.test_case "read-only refused non-balance ops" `Quick
      test_read_only_other_ops_refused;
    Alcotest.test_case "exhaustive schedules" `Quick test_exhaustive_schedules;
    Alcotest.test_case "random schedules hybrid atomic" `Quick
      test_random_schedules;
  ]
