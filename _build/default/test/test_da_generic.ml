(* The generic dynamic-atomicity reference object, and its agreement
   with the hand-built protocols. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make spec =
  let sys = System.create () in
  System.add_object sys (Da_generic.make (System.log sys) x spec);
  sys

(* It reproduces the escrow account's signature move: concurrent
   covered withdrawals. *)
let test_concurrent_withdrawals () =
  let sys = make Bank_account.spec in
  let t0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys t0 x (Bank_account.deposit 10)));
  System.commit sys t0;
  let tb = System.begin_txn sys (Activity.update "b") in
  let tc = System.begin_txn sys (Activity.update "c") in
  (match granted (System.invoke sys tb x (Bank_account.withdraw 4)) with
  | v -> check_bool "b ok" true (Value.equal v Value.ok));
  (match granted (System.invoke sys tc x (Bank_account.withdraw 3)) with
  | v -> check_bool "c ok" true (Value.equal v Value.ok));
  System.commit sys tc;
  System.commit sys tb;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic
       (Spec_env.of_list [ (x, Bank_account.spec) ])
       (System.history sys))

(* And the uncovered case waits, exactly like escrow. *)
let test_uncovered_withdrawal_waits () =
  let sys = make Bank_account.spec in
  let t0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys t0 x (Bank_account.deposit 5)));
  System.commit sys t0;
  let tb = System.begin_txn sys (Activity.update "b") in
  let tc = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys tb x (Bank_account.withdraw 4)));
  expect_wait "second withdrawal undetermined"
    (System.invoke sys tc x (Bank_account.withdraw 4));
  System.abort sys tb;
  ignore (granted (System.invoke sys tc x (Bank_account.withdraw 4)));
  System.commit sys tc;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic
       (Spec_env.of_list [ (x, Bank_account.spec) ])
       (System.history sys))

(* It reproduces the queue's Figure 5-1 behaviour from the raw spec —
   no hand-written queue logic involved. *)
let test_fig51_from_spec_alone () =
  let sys = make Fifo_queue.spec in
  let ta = System.begin_txn sys (Activity.update "a") in
  let tb = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 2)));
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 2)));
  System.commit sys ta;
  System.commit sys tb;
  let tc = System.begin_txn sys (Activity.update "c") in
  let deq () =
    match granted (System.invoke sys tc x Fifo_queue.dequeue) with
    | Value.Int v -> v
    | v -> Alcotest.fail (Fmt.str "unexpected %a" Value.pp v)
  in
  let d1 = deq () in
  let d2 = deq () in
  let d3 = deq () in
  let d4 = deq () in
  Alcotest.(check (list int)) "1,2,1,2" [ 1; 2; 1; 2 ] [ d1; d2; d3; d4 ];
  System.commit sys tc;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_ambiguous_front_refused () =
  let sys = make Fifo_queue.spec in
  let ta = System.begin_txn sys (Activity.update "a") in
  let tb = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 7)));
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 9)));
  System.commit sys ta;
  System.commit sys tb;
  let tc = System.begin_txn sys (Activity.update "c") in
  (match System.invoke sys tc x Fifo_queue.dequeue with
  | Atomic_object.Refused _ -> ()
  | r -> Alcotest.fail (Fmt.str "got %a" Atomic_object.pp_invoke_result r));
  System.abort sys tc

(* Result-aware set behaviour, from the spec alone. *)
let test_member_semantics () =
  let sys = make Intset.spec in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t1 x (Intset.member 4)) with
  | Value.Bool false -> ()
  | v -> Alcotest.fail (Fmt.str "expected false, got %a" Value.pp v));
  (* insert(4) by another transaction would flip the granted answer in
     one serialization order: it must wait. *)
  expect_wait "insert behind member(false)"
    (System.invoke sys t2 x (Intset.insert 4));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 x (Intset.insert 4)));
  (* member(4) -> true by a third transaction tolerates a concurrent
     re-insert. *)
  System.commit sys t2;
  let t3 = System.begin_txn sys (Activity.update "c") in
  let t4 = System.begin_txn sys (Activity.update "d") in
  (match granted (System.invoke sys t3 x (Intset.member 4)) with
  | Value.Bool true -> ()
  | v -> Alcotest.fail (Fmt.str "expected true, got %a" Value.pp v));
  ignore (granted (System.invoke sys t4 x (Intset.insert 4)));
  System.commit sys t3;
  System.commit sys t4;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

(* The non-deterministic semiqueue: the generic object hands
   concurrent dequeuers different elements — the concurrency
   non-determinism buys (Section 1). *)
let test_semiqueue_concurrent_dequeues () =
  let env = Spec_env.of_list [ (x, Semiqueue.spec) ] in
  let sys = make Semiqueue.spec in
  let t0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys t0 x (Semiqueue.enq 1)));
  ignore (granted (System.invoke sys t0 x (Semiqueue.enq 2)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  let v1 = granted (System.invoke sys t1 x Semiqueue.deq) in
  let v2 = granted (System.invoke sys t2 x Semiqueue.deq) in
  check_bool "both dequeues granted concurrently" true
    (not (Value.equal v1 v2));
  System.commit sys t2;
  System.commit sys t1;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_random_schedules () =
  for seed = 1 to 15 do
    let sys = make Intset.spec in
    let scripts =
      [
        (`Update, [ (x, Intset.insert 1); (x, Intset.member 1) ]);
        (`Update, [ (x, Intset.member 2); (x, Intset.insert 2) ]);
        (`Update, [ (x, Intset.delete 1) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic set_env h)
  done

(* Agreement with escrow on deterministic interleavings: whatever the
   bespoke object grants, the reference object grants with the same
   answer. *)
let test_agreement_with_escrow () =
  let scenario make_obj =
    let sys = System.create () in
    System.add_object sys (make_obj (System.log sys) x);
    let t0 = System.begin_txn sys (Activity.update "seed") in
    ignore (System.invoke sys t0 x (Bank_account.deposit 20));
    System.commit sys t0;
    let t1 = System.begin_txn sys (Activity.update "a") in
    let t2 = System.begin_txn sys (Activity.update "b") in
    let r1 = System.invoke sys t1 x (Bank_account.withdraw 8) in
    let r2 = System.invoke sys t2 x (Bank_account.withdraw 30) in
    let r3 = System.invoke sys t2 x (Bank_account.deposit 5) in
    System.commit sys t1;
    System.commit sys t2;
    List.map
      (function
        | Atomic_object.Granted v -> Fmt.str "granted %a" Value.pp v
        | Atomic_object.Wait _ -> "wait"
        | Atomic_object.Refused _ -> "refused")
      [ r1; r2; r3 ]
  in
  Alcotest.(check (list string))
    "same grant decisions"
    (scenario Escrow_account.make)
    (scenario (fun log id -> Da_generic.make log id Bank_account.spec))

let suite =
  [
    Alcotest.test_case "concurrent withdrawals (escrow move)" `Quick
      test_concurrent_withdrawals;
    Alcotest.test_case "uncovered withdrawal waits" `Quick
      test_uncovered_withdrawal_waits;
    Alcotest.test_case "figure 5-1 from the spec alone" `Quick
      test_fig51_from_spec_alone;
    Alcotest.test_case "ambiguous front refused" `Quick
      test_ambiguous_front_refused;
    Alcotest.test_case "result-aware member semantics" `Quick
      test_member_semantics;
    Alcotest.test_case "semiqueue concurrent dequeues" `Quick
      test_semiqueue_concurrent_dequeues;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
    Alcotest.test_case "agreement with escrow" `Quick
      test_agreement_with_escrow;
  ]
