(* Parsing and printing the paper's <op,x,a> notation. *)

open Core
open Helpers

let parse s =
  match Notation.event_of_string s with
  | Ok e -> e
  | Error m -> Alcotest.fail (Fmt.str "parse %S: %s" s m)

let event = Alcotest.testable Event.pp Event.equal

let test_event_forms () =
  Alcotest.check event "invocation with argument"
    (Event.invoke a x (Intset.insert 3))
    (parse "<insert(3),x,a>");
  Alcotest.check event "invocation without argument"
    (Event.invoke c x (Fifo_queue.dequeue))
    (parse "<dequeue,x,c>");
  Alcotest.check event "boolean result"
    (Event.respond a x (Value.Bool true))
    (parse "<true,x,a>");
  Alcotest.check event "symbolic result"
    (Event.respond b x Value.ok)
    (parse "<ok,x,b>");
  Alcotest.check event "integer result"
    (Event.respond c x (Value.Int 2))
    (parse "<2,x,c>");
  Alcotest.check event "commit" (Event.commit a x) (parse "<commit,x,a>");
  Alcotest.check event "timestamped commit"
    (Event.commit_ts a x (ts 2))
    (parse "<commit(2),x,a>");
  Alcotest.check event "abort" (Event.abort c x) (parse "<abort,x,c>");
  Alcotest.check event "initiation"
    (Event.initiate r x (ts 1))
    (parse "<initiate(1),x,r>");
  Alcotest.check event "multi-argument operation"
    (Event.invoke a x (Kv_map.put 1 10))
    (parse "<put(1,10),x,a>")

let test_read_only_convention () =
  check_bool "r is read-only" true
    (Activity.is_read_only (Event.activity (parse "<commit,x,r>")));
  check_bool "a is an update" false
    (Activity.is_read_only (Event.activity (parse "<commit,x,a>")))

let test_whitespace () =
  Alcotest.check event "spaces tolerated"
    (Event.invoke a x (Intset.insert 3))
    (parse "  < insert(3) , x , a >  ")

let test_errors () =
  let bad s =
    match Notation.event_of_string s with
    | Ok _ -> Alcotest.fail (Fmt.str "expected failure on %S" s)
    | Error _ -> ()
  in
  bad "";
  bad "insert(3),x,a";
  bad "<>";
  bad "<,x,a>";
  bad "<insert(3,x,a>";
  bad "<commit(x),x,a>";
  bad "<initiate,x,a>";
  bad "<abort(1),x,a>"

let test_negative_and_multiarg_values () =
  Alcotest.check event "negative result"
    (Event.respond a x (Value.Int (-3)))
    (parse "<-3,x,a>");
  Alcotest.check event "unit result"
    (Event.respond a x Value.Unit)
    (parse "<(),x,a>")

let test_history_round_trip () =
  List.iter
    (fun h ->
      let text = Notation.history_to_string h in
      match Notation.history_of_string text with
      | Ok h' -> Alcotest.check history "round trip" h h'
      | Error e -> Alcotest.fail (Fmt.str "%a" Notation.pp_error e))
    [
      sec3_atomic; sec41_dynamic; sec42_static; sec43_well_formed;
      sec51_withdrawals; sec51_queue;
    ]

let test_history_comments_and_errors () =
  let src = "# the paper's Section 3 example\n\n<member(3),x,a>\n<commit,x,a>\n" in
  (match Notation.history_of_string src with
  | Ok h -> check_int "two events" 2 (History.length h)
  | Error e -> Alcotest.fail (Fmt.str "%a" Notation.pp_error e));
  match Notation.history_of_string "<commit,x,a>\nnot an event\n" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> check_int "error on line 2" 2 e.Notation.line

let suite =
  [
    Alcotest.test_case "event forms" `Quick test_event_forms;
    Alcotest.test_case "read-only naming convention" `Quick
      test_read_only_convention;
    Alcotest.test_case "whitespace" `Quick test_whitespace;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "negative and unit values" `Quick
      test_negative_and_multiarg_values;
    Alcotest.test_case "history round trip" `Quick test_history_round_trip;
    Alcotest.test_case "comments and line numbers" `Quick
      test_history_comments_and_errors;
  ]
