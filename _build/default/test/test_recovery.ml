(* Crash recovery: rebuild object state from the (textual) event log. *)

open Core
open Helpers

let granted = Test_op_locking.granted

(* Run some escrow traffic including an abort and an in-flight
   transaction, "crash", recover into a fresh system, and compare
   balances. *)
let test_escrow_crash_restart () =
  let sys = System.create () in
  System.add_object sys (Escrow_account.make (System.log sys) y);
  let t0 = System.begin_txn sys (Activity.update "a0") in
  ignore (granted (System.invoke sys t0 y (Bank_account.deposit 100)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "a1") in
  ignore (granted (System.invoke sys t1 y (Bank_account.withdraw 30)));
  System.commit sys t1;
  (* Aborted work must not survive recovery. *)
  let t2 = System.begin_txn sys (Activity.update "a2") in
  ignore (granted (System.invoke sys t2 y (Bank_account.deposit 1000)));
  System.abort sys t2;
  (* In-flight (uncommitted) work must not survive either. *)
  let t3 = System.begin_txn sys (Activity.update "a3") in
  ignore (granted (System.invoke sys t3 y (Bank_account.withdraw 5)));
  (* --- crash: only the durable text of the log survives --- *)
  let wal = Notation.history_to_string (System.history sys) in
  let sys' = System.create () in
  System.add_object sys' (Escrow_account.make (System.log sys') y);
  (match Recovery.restore_from_text Recovery.Commit_order sys' wal with
  | Ok n -> check_int "two transactions replayed" 2 n
  | Error e -> Alcotest.fail e);
  let audit = System.begin_txn sys' (Activity.update "audit") in
  (match granted (System.invoke sys' audit y Bank_account.balance) with
  | Value.Int 70 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 70, got %a" Value.pp v));
  System.commit sys' audit;
  check_bool "recovered history is dynamic atomic" true
    (Atomicity.dynamic_atomic account_env (System.history sys'))

let test_set_recovery_preserves_contents () =
  let sys = System.create () in
  System.add_object sys (Da_set.make (System.log sys) x);
  let run name steps =
    let t = System.begin_txn sys (Activity.update name) in
    List.iter (fun op -> ignore (granted (System.invoke sys t x op))) steps;
    System.commit sys t
  in
  run "a" [ Intset.insert 1; Intset.insert 2 ];
  run "b" [ Intset.delete 1 ];
  run "c" [ Intset.insert 3 ];
  let h = System.history sys in
  let sys' = System.create () in
  System.add_object sys' (Da_set.make (System.log sys') x);
  (match Recovery.restore Recovery.Commit_order sys' h with
  | Ok n -> check_int "three transactions" 3 n
  | Error e -> Alcotest.fail e);
  let t = System.begin_txn sys' (Activity.update "probe") in
  let probe op =
    Value.to_string (granted (System.invoke sys' t x op))
  in
  Alcotest.(check (list string))
    "contents preserved" [ "false"; "true"; "true"; "2" ]
    [ probe (Intset.member 1); probe (Intset.member 2);
      probe (Intset.member 3); probe Intset.size ];
  System.commit sys' t

let test_static_recovery_in_timestamp_order () =
  (* Under static atomicity the valid serialization is timestamp order,
     which can differ from commit order. *)
  let sys = System.create ~policy:`Static () in
  System.add_object sys (Multiversion.make (System.log sys) x Intset.spec);
  let ta = System.begin_txn sys (Activity.update "a") in
  let tb = System.begin_txn sys (Activity.update "b") in
  (* b (later timestamp) runs and commits first. *)
  (match granted (System.invoke sys tb x (Intset.member 3)) with
  | Value.Bool false -> ()
  | v -> Alcotest.fail (Fmt.str "expected false, got %a" Value.pp v));
  System.commit sys tb;
  (* a (earlier timestamp) inserts a different element — allowed. *)
  ignore (granted (System.invoke sys ta x (Intset.insert 5)));
  System.commit sys ta;
  let h = System.history sys in
  let sys' = System.create ~policy:`Static () in
  System.add_object sys' (Multiversion.make (System.log sys') x Intset.spec);
  (match Recovery.restore Recovery.Timestamp_order sys' h with
  | Ok n -> check_int "two transactions" 2 n
  | Error e -> Alcotest.fail e);
  check_bool "recovered history static atomic" true
    (Atomicity.static_atomic set_env (System.history sys'))

let test_divergence_detected () =
  (* Recovering a log against an object with different semantics must
     fail loudly, not silently diverge. *)
  let sys = System.create () in
  System.add_object sys (Escrow_account.make (System.log sys) y);
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t y (Bank_account.deposit 7)));
  ignore (granted (System.invoke sys t y Bank_account.balance));
  System.commit sys t;
  let h = System.history sys in
  (* "Recover" into a fresh system whose account already has money —
     the balance answer diverges from the log. *)
  let sys' = System.create () in
  System.add_object sys' (Escrow_account.make (System.log sys') y);
  let seed = System.begin_txn sys' (Activity.update "seed") in
  ignore (granted (System.invoke sys' seed y (Bank_account.deposit 1)));
  System.commit sys' seed;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match Recovery.restore Recovery.Commit_order sys' h with
  | Ok _ -> Alcotest.fail "expected divergence"
  | Error msg ->
    check_bool "describes the divergence" true
      (contains msg "divergence" || contains msg "refused"
      || contains msg "stalled")

let suite =
  [
    Alcotest.test_case "escrow crash/restart" `Quick test_escrow_crash_restart;
    Alcotest.test_case "set contents preserved" `Quick
      test_set_recovery_preserves_contents;
    Alcotest.test_case "static recovery in timestamp order" `Quick
      test_static_recovery_in_timestamp_order;
    Alcotest.test_case "divergence detected" `Quick test_divergence_detected;
  ]
