(* The dynamic-atomic FIFO queue: Figure 5-1 made executable. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make () =
  let sys = System.create () in
  System.add_object sys (Da_queue.make (System.log sys) x);
  sys

let expect_int name n = function
  | Atomic_object.Granted (Value.Int v) -> check_int name n v
  | other ->
    Alcotest.fail
      (Fmt.str "%s: got %a" name Atomic_object.pp_invoke_result other)

let test_fig51_interleaving () =
  (* The exact Section 5.1 interleaving: a and b enqueue [1;2]
     concurrently, then c dequeues 1,2,1,2.  Commutativity locking
     refuses this (enqueue(1) and enqueue(2) do not commute); the
     dynamic-atomic queue grants it because both serialization orders
     agree on the dequeued values. *)
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  let tb = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 2)));
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 2)));
  System.commit sys ta;
  System.commit sys tb;
  let tc = System.begin_txn sys (Activity.update "c") in
  expect_int "first" 1 (System.invoke sys tc x Fifo_queue.dequeue);
  expect_int "second" 2 (System.invoke sys tc x Fifo_queue.dequeue);
  expect_int "third" 1 (System.invoke sys tc x Fifo_queue.dequeue);
  expect_int "fourth" 2 (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys tc;
  let h = System.history sys in
  check_bool "well-formed" true (Wellformed.is_well_formed Wellformed.Base h);
  check_bool "dynamic atomic" true (Atomicity.dynamic_atomic queue_env h)

let test_ambiguous_front_refused () =
  (* Unpinned committed enqueuers with different values: no dequeue
     answer is correct in every serialization order. *)
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  let tb = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 2)));
  System.commit sys ta;
  System.commit sys tb;
  let tc = System.begin_txn sys (Activity.update "c") in
  (match System.invoke sys tc x Fifo_queue.dequeue with
  | Atomic_object.Refused _ -> ()
  | other ->
    Alcotest.fail (Fmt.str "got %a" Atomic_object.pp_invoke_result other));
  System.abort sys tc

let test_pinned_order_dequeues () =
  (* b enqueues after a committed, so precedes pins a before b. *)
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 1)));
  System.commit sys ta;
  let tb = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys tb x (Fifo_queue.enqueue 2)));
  System.commit sys tb;
  let tc = System.begin_txn sys (Activity.update "c") in
  expect_int "front is 1" 1 (System.invoke sys tc x Fifo_queue.dequeue);
  expect_int "then 2" 2 (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys tc;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_empty_claim_blocks_enqueue () =
  let sys = make () in
  let tc = System.begin_txn sys (Activity.update "c") in
  (match granted (System.invoke sys tc x Fifo_queue.dequeue) with
  | v when Value.equal v Fifo_queue.empty_result -> ()
  | v -> Alcotest.fail (Fmt.str "expected empty, got %a" Value.pp v));
  let ta = System.begin_txn sys (Activity.update "a") in
  expect_wait "enqueue behind empty claim"
    (System.invoke sys ta x (Fifo_queue.enqueue 9));
  System.commit sys tc;
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 9)));
  System.commit sys ta;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_dequeue_waits_on_active_enqueuer () =
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 5)));
  let tc = System.begin_txn sys (Activity.update "c") in
  expect_wait "dequeue waits while outcome unresolved"
    (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys ta;
  expect_int "sees the committed element" 5
    (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys tc;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_dequeuer_abort_reinstates () =
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 2)));
  System.commit sys ta;
  let tb = System.begin_txn sys (Activity.update "b") in
  expect_int "b takes 1" 1 (System.invoke sys tb x Fifo_queue.dequeue);
  System.abort sys tb;
  let tc = System.begin_txn sys (Activity.update "c") in
  expect_int "1 is back at the front" 1
    (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys tc;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_single_active_dequeuer () =
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 1)));
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 2)));
  System.commit sys ta;
  let tb = System.begin_txn sys (Activity.update "b") in
  let tc = System.begin_txn sys (Activity.update "c") in
  expect_int "b takes 1" 1 (System.invoke sys tb x Fifo_queue.dequeue);
  expect_wait "c waits behind the tentative dequeuer"
    (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys tb;
  expect_int "c takes 2" 2 (System.invoke sys tc x Fifo_queue.dequeue);
  System.commit sys tc;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_own_enqueue_dequeued () =
  let sys = make () in
  let ta = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys ta x (Fifo_queue.enqueue 7)));
  expect_int "own tentative element visible" 7
    (System.invoke sys ta x Fifo_queue.dequeue);
  System.commit sys ta;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic queue_env (System.history sys))

let test_random_schedules () =
  (* Producers with identical sequences plus a consumer — the shape of
     Figure 5-1 under random schedules. *)
  for seed = 1 to 20 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (x, Fifo_queue.enqueue 1); (x, Fifo_queue.enqueue 2) ]);
        (`Update, [ (x, Fifo_queue.enqueue 1); (x, Fifo_queue.enqueue 2) ]);
        (`Update, [ (x, Fifo_queue.dequeue) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed" seed)
      true
      (Wellformed.is_well_formed Wellformed.Base h);
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic queue_env h)
  done

let suite =
  [
    Alcotest.test_case "figure 5-1 interleaving" `Quick test_fig51_interleaving;
    Alcotest.test_case "ambiguous front refused" `Quick
      test_ambiguous_front_refused;
    Alcotest.test_case "pinned order dequeues" `Quick test_pinned_order_dequeues;
    Alcotest.test_case "empty claim blocks enqueue" `Quick
      test_empty_claim_blocks_enqueue;
    Alcotest.test_case "dequeue waits on active enqueuer" `Quick
      test_dequeue_waits_on_active_enqueuer;
    Alcotest.test_case "dequeuer abort reinstates" `Quick
      test_dequeuer_abort_reinstates;
    Alcotest.test_case "single active dequeuer" `Quick
      test_single_active_dequeuer;
    Alcotest.test_case "own enqueue dequeued" `Quick test_own_enqueue_dequeued;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
  ]
