(* Acceptability of serial sequences against sequential specifications
   (Section 3), including the non-deterministic state-set semantics. *)

open Core
open Helpers

let serial events = History.of_list events

let test_set_serial_accepted () =
  (* The paper's acceptable serial sequence: insert(3); member(3) ->
     true; delete(3); member(3) -> false (folded into activities). *)
  let h =
    serial
      [
        Event.invoke a x (Intset.insert 3);
        Event.respond a x Value.ok;
        Event.invoke a x (Intset.member 3);
        Event.respond a x (Value.Bool true);
        Event.commit a x;
        Event.invoke b x (Intset.delete 3);
        Event.respond b x Value.ok;
        Event.invoke b x (Intset.member 3);
        Event.respond b x (Value.Bool false);
        Event.commit b x;
      ]
  in
  check_bool "accepted" true (Acceptance.accepts set_env h)

let test_set_serial_rejected () =
  (* The paper's unacceptable serial sequence: member(3) true on an
     empty set. *)
  let h =
    serial
      [
        Event.invoke a x (Intset.member 3);
        Event.respond a x (Value.Bool true);
        Event.commit a x;
      ]
  in
  check_bool "rejected" false (Acceptance.accepts set_env h)

let test_wrong_result_rejected () =
  let h =
    serial
      [
        Event.invoke a x (Intset.insert 3);
        Event.respond a x (Value.Bool true); (* insert answers ok *)
        Event.commit a x;
      ]
  in
  check_bool "wrong result type rejected" false (Acceptance.accepts set_env h)

let test_trailing_invoke_ok () =
  let h = serial [ Event.invoke a x (Intset.insert 3) ] in
  check_bool "pending trailing invocation accepted" true
    (Acceptance.accepts set_env h)

let test_account_sequences () =
  let dep n = Event.invoke a y (Bank_account.deposit n) in
  let wd n = Event.invoke a y (Bank_account.withdraw n) in
  let ok_ = Event.respond a y Value.ok in
  let insufficient = Event.respond a y Value.insufficient_funds in
  check_bool "withdraw covered" true
    (Acceptance.accepts account_env
       (serial [ dep 10; ok_; wd 4; ok_; wd 6; ok_ ]));
  check_bool "withdraw uncovered answers insufficient_funds" true
    (Acceptance.accepts account_env (serial [ dep 5; ok_; wd 6; insufficient ]));
  check_bool "ok on uncovered withdrawal rejected" false
    (Acceptance.accepts account_env (serial [ dep 5; ok_; wd 6; ok_ ]));
  check_bool "insufficient on covered withdrawal rejected" false
    (Acceptance.accepts account_env (serial [ dep 5; ok_; wd 3; insufficient ]))

let test_queue_fifo_order () =
  let enq v = Event.invoke a x (Fifo_queue.enqueue v) in
  let deq = Event.invoke a x Fifo_queue.dequeue in
  let ok_ = Event.respond a x Value.ok in
  let got v = Event.respond a x (Value.Int v) in
  check_bool "FIFO order enforced" true
    (Acceptance.accepts queue_env
       (serial [ enq 1; ok_; enq 2; ok_; deq; got 1; deq; got 2 ]));
  check_bool "LIFO order rejected" false
    (Acceptance.accepts queue_env
       (serial [ enq 1; ok_; enq 2; ok_; deq; got 2 ]));
  check_bool "dequeue on empty answers empty" true
    (Acceptance.accepts queue_env
       (serial [ deq; Event.respond a x Fifo_queue.empty_result ]))

let test_semiqueue_nondeterminism () =
  let env = Spec_env.of_list [ (x, Semiqueue.spec) ] in
  let enq v = Event.invoke a x (Semiqueue.enq v) in
  let deq = Event.invoke a x Semiqueue.deq in
  let ok_ = Event.respond a x Value.ok in
  let got v = Event.respond a x (Value.Int v) in
  (* Either enqueued element may come out first. *)
  check_bool "first element allowed" true
    (Acceptance.accepts env (serial [ enq 1; ok_; enq 2; ok_; deq; got 1 ]));
  check_bool "second element allowed" true
    (Acceptance.accepts env (serial [ enq 1; ok_; enq 2; ok_; deq; got 2 ]));
  check_bool "absent element rejected" false
    (Acceptance.accepts env (serial [ enq 1; ok_; enq 2; ok_; deq; got 3 ]));
  (* The state-set semantics must track both branches: after dequeuing
     1, dequeuing 2 must still be allowed, and vice versa. *)
  check_bool "both branches tracked" true
    (Acceptance.accepts env
       (serial [ enq 1; ok_; enq 2; ok_; deq; got 2; deq; got 1 ]))

let test_counter_positions () =
  let inc = Event.invoke a y Counter.increment in
  let got v = Event.respond a y (Value.Int v) in
  check_bool "increments return serial positions" true
    (Acceptance.accepts counter_env (serial [ inc; got 1; inc; got 2 ]));
  check_bool "skipping a position rejected" false
    (Acceptance.accepts counter_env (serial [ inc; got 1; inc; got 3 ]))

let test_multi_object () =
  let env = Spec_env.of_list [ (x, Intset.spec); (y, Bank_account.spec) ] in
  let h =
    serial
      [
        Event.invoke a x (Intset.insert 1);
        Event.respond a x Value.ok;
        Event.invoke a y (Bank_account.deposit 5);
        Event.respond a y Value.ok;
        Event.invoke a y Bank_account.balance;
        Event.respond a y (Value.Int 5);
        Event.commit a x;
        Event.commit a y;
      ]
  in
  check_bool "multi-object serial sequence" true (Acceptance.accepts env h)

let test_missing_spec_raises () =
  let h = serial [ Event.invoke a x (Intset.insert 1) ] in
  Alcotest.check_raises "missing specification"
    (Invalid_argument "Spec_env.find_exn: no specification for object x")
    (fun () -> ignore (Acceptance.accepts Spec_env.empty h))

let suite =
  [
    Alcotest.test_case "set: paper's acceptable sequence" `Quick
      test_set_serial_accepted;
    Alcotest.test_case "set: paper's unacceptable sequence" `Quick
      test_set_serial_rejected;
    Alcotest.test_case "wrong results rejected" `Quick
      test_wrong_result_rejected;
    Alcotest.test_case "trailing invocation" `Quick test_trailing_invoke_ok;
    Alcotest.test_case "bank account semantics" `Quick test_account_sequences;
    Alcotest.test_case "queue FIFO semantics" `Quick test_queue_fifo_order;
    Alcotest.test_case "semiqueue non-determinism" `Quick
      test_semiqueue_nondeterminism;
    Alcotest.test_case "counter positions" `Quick test_counter_positions;
    Alcotest.test_case "multiple objects" `Quick test_multi_object;
    Alcotest.test_case "missing spec raises" `Quick test_missing_spec_raises;
  ]
