(* Permutations and linear extensions. *)

open Core

let perms l = List.of_seq (Orders.permutations l)

let test_permutation_counts () =
  Helpers.check_int "0! = 1" 1 (List.length (perms []));
  Helpers.check_int "3! = 6" 6 (List.length (perms [ 1; 2; 3 ]));
  Helpers.check_int "4! = 24" 24 (List.length (perms [ 1; 2; 3; 4 ]))

let test_permutations_distinct () =
  let ps = perms [ 1; 2; 3; 4 ] in
  let distinct = List.sort_uniq compare ps in
  Helpers.check_int "all distinct" (List.length ps) (List.length distinct);
  Helpers.check_bool "all are permutations" true
    (List.for_all (fun p -> List.sort compare p = [ 1; 2; 3; 4 ]) ps)

let exts pairs l =
  List.of_seq (Orders.linear_extensions ~equal:Int.equal pairs l)

let test_linear_extensions () =
  Helpers.check_int "no constraints = all permutations" 6
    (List.length (exts [] [ 1; 2; 3 ]));
  Helpers.check_int "one pair halves" 3
    (List.length (exts [ (1, 2) ] [ 1; 2; 3 ]));
  Helpers.check_int "chain leaves one" 1
    (List.length (exts [ (1, 2); (2, 3) ] [ 1; 2; 3 ]));
  Helpers.check_int "cycle leaves none" 0
    (List.length (exts [ (1, 2); (2, 1) ] [ 1; 2; 3 ]));
  (* Pairs about elements outside the list are ignored. *)
  Helpers.check_int "irrelevant pairs ignored" 2
    (List.length (exts [ (1, 9); (9, 2) ] [ 1; 2 ]))

let test_extensions_are_consistent () =
  let pairs = [ (1, 3); (2, 3) ] in
  let results = exts pairs [ 1; 2; 3; 4 ] in
  Helpers.check_bool "every extension consistent" true
    (List.for_all (fun o -> Orders.consistent ~equal:Int.equal pairs o) results);
  (* And they are exactly the consistent permutations. *)
  let expected =
    List.filter
      (fun o -> Orders.consistent ~equal:Int.equal pairs o)
      (perms [ 1; 2; 3; 4 ])
  in
  Helpers.check_int "same count as filtering permutations"
    (List.length expected) (List.length results)

let test_consistent () =
  Helpers.check_bool "respected" true
    (Orders.consistent ~equal:Int.equal [ (1, 2) ] [ 1; 2; 3 ]);
  Helpers.check_bool "violated" false
    (Orders.consistent ~equal:Int.equal [ (2, 1) ] [ 1; 2; 3 ]);
  Helpers.check_bool "absent elements do not constrain" true
    (Orders.consistent ~equal:Int.equal [ (7, 1) ] [ 1; 2; 3 ])

let suite =
  [
    Alcotest.test_case "permutation counts" `Quick test_permutation_counts;
    Alcotest.test_case "permutations distinct" `Quick
      test_permutations_distinct;
    Alcotest.test_case "linear extensions" `Quick test_linear_extensions;
    Alcotest.test_case "extensions consistent" `Quick
      test_extensions_are_consistent;
    Alcotest.test_case "consistency predicate" `Quick test_consistent;
  ]
