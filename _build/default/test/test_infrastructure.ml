(* The protocol plumbing: intentions lists and per-object event
   recording. *)

open Core
open Helpers

let test_intentions_basics () =
  let store = Intentions.create Intset.spec in
  let t1 = Txn.make ~id:1 (Activity.update "a") in
  let t2 = Txn.make ~id:2 (Activity.update "b") in
  (* peek computes without recording. *)
  (match Intentions.peek store t1 (Intset.member 1) with
  | Some (Value.Bool false) -> ()
  | _ -> Alcotest.fail "peek");
  check_int "peek records nothing" 0
    (List.length (Intentions.intentions store t1));
  (* execute records; own view includes own intentions. *)
  ignore (Intentions.execute store t1 (Intset.insert 1));
  (match Intentions.peek store t1 (Intset.member 1) with
  | Some (Value.Bool true) -> ()
  | _ -> Alcotest.fail "own insert visible");
  (* ...but not other transactions' views. *)
  (match Intentions.peek store t2 (Intset.member 1) with
  | Some (Value.Bool false) -> ()
  | _ -> Alcotest.fail "isolation");
  check_int "one active holder" 1 (List.length (Intentions.active store));
  (* Abort discards; commit installs. *)
  Intentions.abort store t1;
  (match Intentions.peek store t2 (Intset.member 1) with
  | Some (Value.Bool false) -> ()
  | _ -> Alcotest.fail "abort discarded");
  ignore (Intentions.execute store t2 (Intset.insert 2));
  Intentions.commit store t2;
  let t3 = Txn.make ~id:3 (Activity.update "c") in
  (match Intentions.peek store t3 (Intset.member 2) with
  | Some (Value.Bool true) -> ()
  | _ -> Alcotest.fail "commit installed");
  check_int "no active holders left" 0 (List.length (Intentions.active store))

let test_obj_log_pairing () =
  let log = Event_log.create () in
  let olog = Obj_log.create log x in
  let t = Txn.make ~id:1 (Activity.update "a") in
  Obj_log.invoked olog t (Intset.insert 1);
  (* A retry of the same pending operation records nothing new. *)
  Obj_log.invoked olog t (Intset.insert 1);
  check_int "invoke logged once" 1 (Event_log.length log);
  Obj_log.responded olog t Value.ok;
  check_int "respond logged" 2 (Event_log.length log);
  (* Switching operations while one is pending is a caller bug. *)
  Obj_log.invoked olog t (Intset.member 9);
  Alcotest.check_raises "operation switch rejected"
    (Invalid_argument
       "Obj_log.invoked: transaction switched operations while one was \
        pending") (fun () -> Obj_log.invoked olog t (Intset.insert 2));
  Obj_log.dropped olog t;
  Obj_log.committed olog t;
  let h = Event_log.history log in
  check_bool "history well-formed modulo the dropped invoke" true
    (match List.rev (History.to_list h) with
    | Event.Commit _ :: _ -> true
    | _ -> false)

let test_obj_log_timestamps () =
  let log = Event_log.create () in
  let olog = Obj_log.create log x in
  let t = Txn.make ~id:1 (Activity.update "a") in
  Alcotest.check_raises "initiation requires a timestamp"
    (Invalid_argument "Obj_log.initiated: transaction has no initiation \
                       timestamp") (fun () -> Obj_log.initiated olog t);
  Txn.set_init_ts t (ts 3);
  Obj_log.initiated olog t;
  Obj_log.initiated olog t; (* idempotent *)
  check_int "one initiation" 1 (Event_log.length log);
  Txn.set_commit_ts t (ts 9);
  Obj_log.committed olog t;
  match List.rev (History.to_list (Event_log.history log)) with
  | Event.Commit (_, _, Some t9) :: _ ->
    check_int "commit carries its timestamp" 9 (Timestamp.to_int t9)
  | _ -> Alcotest.fail "expected a timestamped commit"

let test_txn_lifecycle () =
  let t = Txn.make ~id:7 (Activity.update "a") in
  check_bool "starts active" true (Txn.is_active t);
  Txn.touch t x;
  Txn.touch t x;
  Txn.touch t y;
  check_int "touched objects deduplicated" 2 (List.length (Txn.touched t));
  Txn.set_status t Txn.Committed;
  check_bool "committed" false (Txn.is_active t);
  Alcotest.check_raises "no resurrection"
    (Invalid_argument "Txn.set_status: transaction already completed")
    (fun () -> Txn.set_status t Txn.Aborted)

let suite =
  [
    Alcotest.test_case "intentions lists" `Quick test_intentions_basics;
    Alcotest.test_case "object log pairing" `Quick test_obj_log_pairing;
    Alcotest.test_case "object log timestamps" `Quick test_obj_log_timestamps;
    Alcotest.test_case "transaction lifecycle" `Quick test_txn_lifecycle;
  ]
