(* Simulator infrastructure: PRNG, stats, event queue, workloads and a
   smoke run of the driver against each protocol family. *)

open Core
open Helpers

let test_rng_deterministic () =
  let r1 = Rng.create 42 and r2 = Rng.create 42 in
  for _ = 1 to 50 do
    check_bool "same stream" true (Int64.equal (Rng.next r1) (Rng.next r2))
  done;
  let r3 = Rng.create 43 in
  check_bool "different seeds differ" false
    (Int64.equal (Rng.next (Rng.create 42)) (Rng.next r3))

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 200 do
    let v = Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10);
    let w = Rng.int_range r 5 8 in
    check_bool "in inclusive range" true (w >= 5 && w <= 8);
    let f = Rng.float r 1.0 in
    check_bool "float in range" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick r ([] : int list)))

let test_rng_shuffle () =
  let r = Rng.create 9 in
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "permutation" l (List.sort compare s)

let test_stats () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p100 = max" 5. (Stats.percentile 100. xs);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.maximum xs);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Stats.mean []);
  Alcotest.(check (float 1e-6)) "stddev"
    (sqrt 2.5)
    (Stats.stddev xs)

let test_pqueue_orders () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:5 "e";
  Pqueue.push q ~time:1 "a";
  Pqueue.push q ~time:3 "c";
  Pqueue.push q ~time:1 "b"; (* same time: push order breaks the tie *)
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "pop order" [ "a"; "b"; "c"; "e" ]
    (List.rev !order);
  check_bool "empty after drain" true (Pqueue.is_empty q)

let test_pqueue_against_model () =
  (* Compare with sorting (stable by push order). *)
  let r = Rng.create 11 in
  let q = Pqueue.create () in
  let pushes = List.init 300 (fun i -> (Rng.int r 50, i)) in
  List.iter (fun (t, v) -> Pqueue.push q ~time:t v) pushes;
  let expected = List.stable_sort (fun (t, _) (t', _) -> compare t t') pushes in
  let rec drain acc =
    match Pqueue.pop q with
    | Some (t, v) -> drain ((t, v) :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list (pair int int))) "heap matches stable sort" expected
    (drain [])

let test_workload_generates () =
  let w = Workload.banking () in
  let rng = Rng.create 3 in
  check_int "eight accounts" 8 (List.length w.Workload.objects);
  for _ = 1 to 100 do
    let s = w.Workload.generate rng in
    check_bool "non-empty scripts" true (s.Workload.steps <> []);
    match s.Workload.label with
    | "audit" ->
      check_bool "audits are read-only" true (s.Workload.kind = `Read_only);
      check_int "audits read every account" 8 (List.length s.Workload.steps)
    | "transfer" -> check_int "transfers have two steps" 2 (List.length s.Workload.steps)
    | "deposit" ->
      check_int "deposits split across two accounts" 2
        (List.length s.Workload.steps)
    | l -> Alcotest.fail ("unexpected label " ^ l)
  done

(* A small end-to-end run per protocol family; the histories of the
   short runs must satisfy the protocol's local property. *)

let build_banking_system protocol =
  let sys, policy =
    match protocol with
    | `Commutativity -> (System.create (), `c)
    | `Escrow -> (System.create (), `e)
    | `Rw -> (System.create (), `rw)
    | `Multiversion -> (System.create ~policy:`Static (), `mv)
    | `Hybrid -> (System.create ~policy:`Hybrid (), `h)
  in
  let log = System.log sys in
  List.iter
    (fun id ->
      let obj =
        match policy with
        | `c -> Op_locking.commutativity log id (module Bank_account)
        | `rw -> Op_locking.rw log id (module Bank_account)
        | `e -> Escrow_account.make log id
        | `mv -> Multiversion.make log id Bank_account.spec
        | `h -> Hybrid.of_adt log id (module Bank_account)
      in
      System.add_object sys obj)
    (Workload.account_ids 3);
  sys

let smoke protocol =
  let sys = build_banking_system protocol in
  let w = Workload.banking ~accounts:3 ~transfer_max:10 () in
  let config =
    { Driver.default_config with clients = 4; duration = 300; seed = 5 }
  in
  let o = Driver.run ~config sys w in
  check_bool "some transactions committed" true (o.Driver.committed > 0);
  o

let test_driver_commutativity () = ignore (smoke `Commutativity)
let test_driver_escrow () = ignore (smoke `Escrow)
let test_driver_rw () = ignore (smoke `Rw)
let test_driver_multiversion () = ignore (smoke `Multiversion)
let test_driver_hybrid () = ignore (smoke `Hybrid)

let test_driver_deterministic () =
  let run () =
    let sys = build_banking_system `Escrow in
    let w = Workload.banking ~accounts:3 () in
    let config =
      { Driver.default_config with clients = 4; duration = 300; seed = 9 }
    in
    Driver.run ~config sys w
  in
  let o1 = run () and o2 = run () in
  check_int "same committed" o1.Driver.committed o2.Driver.committed;
  check_int "same waits" o1.Driver.waits o2.Driver.waits;
  check_int "same aborts" o1.Driver.aborted_deadlock o2.Driver.aborted_deadlock

let test_small_run_histories_atomic () =
  (* Tiny runs whose histories the (exponential) checkers can still
     digest: verify the protocol-level guarantee end-to-end. *)
  let check_one protocol prop_name prop =
    let sys = build_banking_system protocol in
    let w =
      Workload.banking ~accounts:3 ~transfer_max:5 ~audit_fraction:0.2 ()
    in
    let config =
      { Driver.default_config with clients = 2; duration = 40; seed = 13 }
    in
    ignore (Driver.run ~config sys w);
    let h = System.history sys in
    let env =
      Spec_env.of_list
        (List.map (fun id -> (id, Bank_account.spec)) (Workload.account_ids 3))
    in
    if Activity.Set.cardinal (History.committed h) <= 7 then
      check_bool prop_name true (prop env h)
  in
  check_one `Escrow "escrow histories dynamic atomic" Atomicity.dynamic_atomic;
  check_one `Commutativity "locking histories dynamic atomic"
    Atomicity.dynamic_atomic;
  check_one `Multiversion "multiversion histories static atomic"
    Atomicity.static_atomic;
  check_one `Hybrid "hybrid histories hybrid atomic" Atomicity.hybrid_atomic

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "pqueue ordering" `Quick test_pqueue_orders;
    Alcotest.test_case "pqueue vs model" `Quick test_pqueue_against_model;
    Alcotest.test_case "banking workload" `Quick test_workload_generates;
    Alcotest.test_case "driver: commutativity" `Quick
      test_driver_commutativity;
    Alcotest.test_case "driver: escrow" `Quick test_driver_escrow;
    Alcotest.test_case "driver: rw locking" `Quick test_driver_rw;
    Alcotest.test_case "driver: multiversion" `Quick test_driver_multiversion;
    Alcotest.test_case "driver: hybrid" `Quick test_driver_hybrid;
    Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
    Alcotest.test_case "small-run histories atomic" `Quick
      test_small_run_histories_atomic;
  ]
