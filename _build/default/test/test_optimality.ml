(* The optimality constructions of Sections 4.1-4.3, executed. *)

open Core
open Helpers

let test_dynamic_refutation_exists () =
  (* The Section 4.1 atomic-but-not-dynamic history: the construction
     must produce a non-atomic composed computation. *)
  match Optimality.dynamic_refutation set_env sec41_not_dynamic with
  | None -> Alcotest.fail "expected a refutation"
  | Some rf ->
    check_bool "composed computation is well-formed" true
      (Wellformed.is_well_formed Wellformed.Base rf.Optimality.computation);
    check_bool "original history unchanged on its object" true
      (History.equal
         (History.project_object x rf.Optimality.computation)
         sec41_not_dynamic);
    (* The counter's projection is serial-acceptable only in the pinned
       order. *)
    let y_proj =
      History.project_object rf.Optimality.counter_object
        rf.Optimality.computation
    in
    let counter_env =
      Spec_env.of_list [ (rf.Optimality.counter_object, Counter.spec) ]
    in
    check_bool "pinned order accepted at the counter" true
      (Serializability.in_order counter_env (History.perm y_proj)
         rf.Optimality.pinned_order);
    (* And the composition destroys atomicity — the contradiction in
       the proof of optimality. *)
    check_bool "composed computation is NOT atomic" false
      (Atomicity.atomic rf.Optimality.env rf.Optimality.computation)

let test_dynamic_refutation_absent () =
  check_bool "dynamic-atomic histories cannot be refuted" true
    (Option.is_none (Optimality.dynamic_refutation set_env sec41_dynamic));
  check_bool "the bank example cannot be refuted" true
    (Option.is_none
       (Optimality.dynamic_refutation account_env sec51_withdrawals));
  check_bool "empty history cannot be refuted" true
    (Option.is_none (Optimality.dynamic_refutation set_env History.empty))

let test_static_refutation () =
  (match Optimality.static_refutation set_env sec42_not_static with
  | None -> Alcotest.fail "expected a refutation"
  | Some rf ->
    check_bool "composed computation not atomic" false
      (Atomicity.atomic rf.Optimality.env rf.Optimality.computation);
    Alcotest.(check (list string))
      "pinned order is the timestamp order" [ "b"; "a" ]
      (List.map Activity.name rf.Optimality.pinned_order));
  check_bool "static-atomic history cannot be refuted" true
    (Option.is_none (Optimality.static_refutation set_env sec42_static));
  check_bool "untimestamped history cannot be refuted" true
    (Option.is_none (Optimality.static_refutation set_env sec3_atomic))

let test_fresh_counter_avoids_collision () =
  (* A history already using the counter's default name forces a fresh
     one. *)
  let yc = Object_id.v "y_counter" in
  let h =
    History.of_list
      [
        Event.invoke a yc (Intset.member 3);
        Event.invoke b yc (Intset.insert 3);
        Event.respond b yc Value.ok;
        Event.respond a yc (Value.Bool true);
        Event.commit b yc;
        Event.commit a yc;
      ]
  in
  let env = Spec_env.of_list [ (yc, Intset.spec) ] in
  match Optimality.dynamic_refutation env h with
  | None -> Alcotest.fail "expected a refutation (a must follow b)"
  | Some rf ->
    check_bool "fresh counter id" false
      (Object_id.equal rf.Optimality.counter_object yc);
    check_bool "not atomic" false
      (Atomicity.atomic rf.Optimality.env rf.Optimality.computation)

(* Adversarial qcheck-style loop: for random protocol-generated
   histories (always dynamic atomic), no refutation exists; for
   mutated ones that fail the checker, the refutation always works. *)
let test_refutation_agrees_with_checker () =
  for seed = 1 to 15 do
    let sys = System.create () in
    System.add_object sys (Da_set.make (System.log sys) x);
    let scripts =
      [
        (`Update, [ (x, Intset.insert 1); (x, Intset.member 2) ]);
        (`Update, [ (x, Intset.member 1) ]);
        (`Update, [ (x, Intset.delete 1) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    let refuted = Optimality.dynamic_refutation set_env h in
    let is_da = Atomicity.dynamic_atomic set_env h in
    check_bool
      (Fmt.str "seed %d: refutation iff not dynamic atomic" seed)
      is_da
      (Option.is_none refuted);
    match refuted with
    | Some rf ->
      check_bool
        (Fmt.str "seed %d: refutation is genuine" seed)
        false
        (Atomicity.atomic rf.Optimality.env rf.Optimality.computation)
    | None -> ()
  done

let suite =
  [
    Alcotest.test_case "dynamic refutation (sec 4.1)" `Quick
      test_dynamic_refutation_exists;
    Alcotest.test_case "no refutation for dynamic-atomic histories" `Quick
      test_dynamic_refutation_absent;
    Alcotest.test_case "static refutation (sec 4.2)" `Quick
      test_static_refutation;
    Alcotest.test_case "fresh counter id" `Quick
      test_fresh_counter_avoids_collision;
    Alcotest.test_case "refutation agrees with the checker" `Quick
      test_refutation_agrees_with_checker;
  ]
