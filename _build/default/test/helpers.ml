(* Shared fixtures: the paper's example histories, specification
   environments, and small builders used across the suites. *)

open Core

let x = Object_id.v "x"
let y = Object_id.v "y"
let a = Activity.update "a"
let b = Activity.update "b"
let c = Activity.update "c"
let r = Activity.read_only "r"

let set_env = Spec_env.of_list [ (x, Intset.spec) ]
let account_env = Spec_env.of_list [ (y, Bank_account.spec) ]
let queue_env = Spec_env.of_list [ (x, Fifo_queue.spec) ]
let counter_env = Spec_env.of_list [ (y, Counter.spec) ]

let ts = Timestamp.v

(* Section 3: the atomic example.  perm(h) is equivalent to the serial
   sequence b;a. *)
let sec3_atomic =
  History.of_list
    [
      Event.invoke a x (Intset.member 3);
      Event.invoke b x (Intset.insert 3);
      Event.respond b x Value.ok;
      Event.respond a x (Value.Bool true);
      Event.commit b x;
      Event.invoke c x (Intset.delete 3);
      Event.respond c x Value.ok;
      Event.commit a x;
      Event.abort c x;
    ]

(* Section 3: not atomic — member answers true on an initially empty
   set with no committed insert. *)
let sec3_not_atomic =
  History.of_list
    [
      Event.invoke a x (Intset.member 2);
      Event.respond a x (Value.Bool true);
      Event.commit a x;
    ]

(* Section 4.1: atomic but NOT dynamic atomic — perm(h) is serializable
   only in orders placing a before b, yet precedes(h) = {(b,c)} also
   allows b-a-c and b-c-a. *)
let sec41_not_dynamic =
  History.of_list
    [
      Event.invoke a x (Intset.member 3);
      Event.invoke b x (Intset.insert 3);
      Event.respond b x Value.ok;
      Event.respond a x (Value.Bool false);
      Event.invoke c x (Intset.member 3);
      Event.commit b x;
      Event.respond c x (Value.Bool true);
      Event.commit a x;
      Event.commit c x;
    ]

(* Section 4.1: dynamic atomic — a queries element 2, so a is
   unconstrained, and c's true observation is justified in every order
   consistent with precedes = {(b,c)}. *)
let sec41_dynamic =
  History.of_list
    [
      Event.invoke a x (Intset.member 2);
      Event.invoke b x (Intset.insert 3);
      Event.respond b x Value.ok;
      Event.respond a x (Value.Bool false);
      Event.invoke c x (Intset.member 3);
      Event.commit b x;
      Event.respond c x (Value.Bool true);
      Event.commit a x;
      Event.commit c x;
    ]

(* Section 4.2.2: atomic (serializable a-b) but NOT static atomic
   (timestamp order is b-a and insert-then-member(false) is
   unacceptable). *)
let sec42_not_static =
  History.of_list
    [
      Event.initiate a x (ts 2);
      Event.invoke a x (Intset.member 3);
      Event.respond a x (Value.Bool false);
      Event.commit a x;
      Event.initiate b x (ts 1);
      Event.invoke b x (Intset.insert 3);
      Event.respond b x Value.ok;
      Event.commit b x;
    ]

(* Section 4.2.2: static atomic — perm(h) is serializable in timestamp
   order b-a. *)
let sec42_static =
  History.of_list
    [
      Event.initiate a x (ts 2);
      Event.invoke a x (Intset.insert 3);
      Event.respond a x Value.ok;
      Event.commit a x;
      Event.initiate b x (ts 1);
      Event.invoke b x (Intset.member 3);
      Event.respond b x (Value.Bool false);
      Event.commit b x;
    ]

(* Section 4.3.1: the well-formed hybrid example. *)
let sec43_well_formed =
  History.of_list
    [
      Event.invoke a x (Intset.insert 3);
      Event.respond a x Value.ok;
      Event.commit_ts a x (ts 2);
      Event.initiate r x (ts 1);
      Event.invoke r x (Intset.member 3);
      Event.respond r x (Value.Bool false);
      Event.commit r x;
    ]

(* Section 4.3.1 (reconstructed): not well-formed — b's commit
   timestamp contradicts precedes, and r reuses a's timestamp. *)
let sec43_ill_formed =
  History.of_list
    [
      Event.invoke a x (Intset.insert 3);
      Event.respond a x Value.ok;
      Event.commit_ts a x (ts 2);
      Event.invoke b x (Intset.insert 4);
      Event.respond b x Value.ok;
      Event.commit_ts b x (ts 1);
      Event.initiate r x (ts 2);
      Event.invoke r x (Intset.member 3);
      Event.respond r x (Value.Bool true);
      Event.commit r x;
    ]

(* Section 4.3.2 (reconstructed): atomic but not hybrid atomic — the
   read-only activity's timestamp places it after the insert it failed
   to observe. *)
let sec43_not_hybrid =
  History.of_list
    [
      Event.invoke a x (Intset.insert 3);
      Event.respond a x Value.ok;
      Event.commit_ts a x (ts 1);
      Event.initiate r x (ts 2);
      Event.invoke r x (Intset.member 3);
      Event.respond r x (Value.Bool false);
      Event.commit r x;
    ]

(* Section 4.3.2 (reconstructed): hybrid atomic. *)
let sec43_hybrid =
  History.of_list
    [
      Event.invoke a x (Intset.insert 3);
      Event.respond a x Value.ok;
      Event.commit_ts a x (ts 1);
      Event.initiate r x (ts 2);
      Event.invoke r x (Intset.member 3);
      Event.respond r x (Value.Bool true);
      Event.commit r x;
    ]

(* Section 5.1: concurrent withdrawals covered by the balance — dynamic
   atomic, refused by commutativity locking. *)
let sec51_withdrawals =
  History.of_list
    [
      Event.invoke a y (Bank_account.deposit 10);
      Event.respond a y Value.ok;
      Event.commit a y;
      Event.invoke b y (Bank_account.withdraw 4);
      Event.invoke c y (Bank_account.withdraw 3);
      Event.respond c y Value.ok;
      Event.respond b y Value.ok;
      Event.commit c y;
      Event.commit b y;
    ]

(* Section 5.1 (reconstructed): a withdrawal concurrent with a deposit
   it does not need. *)
let sec51_withdraw_deposit =
  History.of_list
    [
      Event.invoke a y (Bank_account.deposit 10);
      Event.respond a y Value.ok;
      Event.commit a y;
      Event.invoke b y (Bank_account.withdraw 5);
      Event.invoke c y (Bank_account.deposit 3);
      Event.respond c y Value.ok;
      Event.respond b y Value.ok;
      Event.commit c y;
      Event.commit b y;
    ]

(* Section 5.1: the FIFO-queue interleaving the scheduler model cannot
   produce. *)
let sec51_queue =
  History.of_list
    [
      Event.invoke a x (Fifo_queue.enqueue 1);
      Event.respond a x Value.ok;
      Event.invoke b x (Fifo_queue.enqueue 1);
      Event.respond b x Value.ok;
      Event.invoke a x (Fifo_queue.enqueue 2);
      Event.respond a x Value.ok;
      Event.invoke b x (Fifo_queue.enqueue 2);
      Event.respond b x Value.ok;
      Event.commit a x;
      Event.commit b x;
      Event.invoke c x Fifo_queue.dequeue;
      Event.respond c x (Value.Int 1);
      Event.invoke c x Fifo_queue.dequeue;
      Event.respond c x (Value.Int 2);
      Event.invoke c x Fifo_queue.dequeue;
      Event.respond c x (Value.Int 1);
      Event.invoke c x Fifo_queue.dequeue;
      Event.respond c x (Value.Int 2);
      Event.commit c x;
    ]

(* Alcotest testables. *)
let history = Alcotest.testable History.pp History.equal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run a System against a list of scripts under a random (seeded)
   schedule, returning the generated history.  Used to validate that
   protocol-generated histories satisfy their local atomicity
   property.  Scripts are (kind, (object, operation) list); a script
   whose transaction is refused or sacrificed to a deadlock simply
   stops (no restart — the aborted events stay in the history, which is
   exactly what the checkers must tolerate). *)
type script_client = {
  activity : Activity.t;
  mutable remaining : (Object_id.t * Operation.t) list;
  mutable txn : Txn.t option;
  mutable finished : bool;
}

let run_scripts ?(seed = 7) ?(max_steps = 10_000) system scripts =
  let rng = Rng.create seed in
  let clients =
    List.mapi
      (fun i (kind, steps) ->
        let activity =
          match kind with
          | `Update -> Activity.update (Fmt.str "u%d" i)
          | `Read_only -> Activity.read_only (Fmt.str "r%d" i)
        in
        { activity; remaining = steps; txn = None; finished = false })
      scripts
  in
  let runnable cl =
    (not cl.finished)
    &&
    match cl.txn with
    | Some t -> Txn.is_active t (* a deadlock victim stops *)
    | None -> true
  in
  let step cl =
    let t =
      match cl.txn with
      | Some t -> t
      | None ->
        let t = System.begin_txn system cl.activity in
        cl.txn <- Some t;
        t
    in
    match cl.remaining with
    | [] ->
      System.commit system t;
      cl.finished <- true
    | (obj, op) :: rest -> (
      match System.invoke system t obj op with
      | Atomic_object.Granted _ -> cl.remaining <- rest
      | Atomic_object.Wait _ -> (
        match System.find_deadlock system with
        | Some cycle -> System.abort system (Waits_for.victim cycle)
        | None -> ())
      | Atomic_object.Refused _ ->
        System.abort system t;
        cl.finished <- true)
  in
  let rec loop steps =
    if steps > 0 then
      match List.filter runnable clients with
      | [] -> ()
      | ready ->
        step (Rng.pick rng ready);
        loop (steps - 1)
  in
  loop max_steps;
  System.history system
