(* Hybrid atomicity: commit-time timestamps for updates, initiation
   timestamps and version queries for read-only activities
   (Section 4.3). *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make () =
  let sys = System.create ~policy:`Hybrid () in
  System.add_object sys
    (Hybrid.of_adt (System.log sys) y (module Bank_account));
  sys

let test_reader_never_waits () =
  let sys = make () in
  (* An update is in flight... *)
  let u = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys u y (Bank_account.deposit 100)));
  (* ...yet the audit proceeds immediately, seeing the state before
     it. *)
  let r' = System.begin_txn sys (Activity.read_only "r") in
  (match granted (System.invoke sys r' y Bank_account.balance) with
  | Value.Int 0 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 0, got %a" Value.pp v));
  System.commit sys r';
  System.commit sys u;
  let h = System.history sys in
  check_bool "well-formed (hybrid)" true
    (Wellformed.is_well_formed Wellformed.Hybrid h);
  check_bool "hybrid atomic" true (Atomicity.hybrid_atomic account_env h)

let test_reader_sees_exactly_earlier_commits () =
  let sys = make () in
  let u1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys u1 y (Bank_account.deposit 5)));
  System.commit sys u1;
  let r' = System.begin_txn sys (Activity.read_only "r") in
  let u2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys u2 y (Bank_account.deposit 7)));
  System.commit sys u2;
  (* r initiated before u2 committed: it must see 5, not 12. *)
  (match granted (System.invoke sys r' y Bank_account.balance) with
  | Value.Int 5 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 5, got %a" Value.pp v));
  System.commit sys r';
  let h = System.history sys in
  check_bool "hybrid atomic" true (Atomicity.hybrid_atomic account_env h)

let test_updates_locked () =
  let sys = make () in
  let u0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys u0 y (Bank_account.deposit 10)));
  System.commit sys u0;
  let u1 = System.begin_txn sys (Activity.update "a") in
  let u2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys u1 y (Bank_account.withdraw 4)));
  expect_wait "withdrawals conflict under commutativity"
    (System.invoke sys u2 y (Bank_account.withdraw 3));
  System.commit sys u1;
  ignore (granted (System.invoke sys u2 y (Bank_account.withdraw 3)));
  System.commit sys u2;
  check_bool "hybrid atomic" true
    (Atomicity.hybrid_atomic account_env (System.history sys))

let test_commit_timestamps_consistent_with_precedes () =
  let sys = make () in
  let u1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys u1 y (Bank_account.deposit 1)));
  System.commit sys u1;
  let u2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys u2 y (Bank_account.deposit 2)));
  System.commit sys u2;
  let h = System.history sys in
  check_bool "well-formed (hybrid)" true
    (Wellformed.is_well_formed Wellformed.Hybrid h);
  match (History.timestamp_of h (Activity.update "a"),
         History.timestamp_of h (Activity.update "b")) with
  | Some ta, Some tb ->
    check_bool "a's commit timestamp below b's" true Timestamp.(ta < tb)
  | _ -> Alcotest.fail "both updates carry commit timestamps"

let test_read_only_update_refused () =
  let sys = make () in
  let r' = System.begin_txn sys (Activity.read_only "r") in
  (match System.invoke sys r' y (Bank_account.deposit 5) with
  | Atomic_object.Refused _ -> ()
  | other ->
    Alcotest.fail (Fmt.str "got %a" Atomic_object.pp_invoke_result other));
  System.abort sys r'

let test_audit_does_not_block_updates () =
  (* The converse of test_reader_never_waits: a long audit holds
     nothing, so updates proceed concurrently. *)
  let sys = make () in
  let u0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys u0 y (Bank_account.deposit 10)));
  System.commit sys u0;
  let r' = System.begin_txn sys (Activity.read_only "r") in
  (match granted (System.invoke sys r' y Bank_account.balance) with
  | Value.Int 10 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 10, got %a" Value.pp v));
  (* r is still active; an update commits freely. *)
  let u1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys u1 y (Bank_account.withdraw 6)));
  System.commit sys u1;
  (* r re-reads and still sees its snapshot. *)
  (match granted (System.invoke sys r' y Bank_account.balance) with
  | Value.Int 10 -> ()
  | v -> Alcotest.fail (Fmt.str "snapshot broken: %a" Value.pp v));
  System.commit sys r';
  check_bool "hybrid atomic" true
    (Atomicity.hybrid_atomic account_env (System.history sys))

let test_multi_object_hybrid () =
  let sys = System.create ~policy:`Hybrid () in
  let log = System.log sys in
  let acc1 = Object_id.v "acct1" and acc2 = Object_id.v "acct2" in
  System.add_object sys (Hybrid.of_adt log acc1 (module Bank_account));
  System.add_object sys (Hybrid.of_adt log acc2 (module Bank_account));
  let env =
    Spec_env.of_list [ (acc1, Bank_account.spec); (acc2, Bank_account.spec) ]
  in
  let u0 = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys u0 acc1 (Bank_account.deposit 10)));
  System.commit sys u0;
  (* A transfer moves 4 from acct1 to acct2; an audit snapshots both.
     Atomicity guarantees the audit sees a consistent total. *)
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t acc1 (Bank_account.withdraw 4)));
  let r' = System.begin_txn sys (Activity.read_only "r") in
  let b1 =
    match granted (System.invoke sys r' acc1 Bank_account.balance) with
    | Value.Int n -> n
    | _ -> Alcotest.fail "int expected"
  in
  ignore (granted (System.invoke sys t acc2 (Bank_account.deposit 4)));
  System.commit sys t;
  let b2 =
    match granted (System.invoke sys r' acc2 Bank_account.balance) with
    | Value.Int n -> n
    | _ -> Alcotest.fail "int expected"
  in
  System.commit sys r';
  check_int "audit total is conserved" 10 (b1 + b2);
  let h = System.history sys in
  check_bool "well-formed (hybrid)" true
    (Wellformed.is_well_formed Wellformed.Hybrid h);
  check_bool "hybrid atomic" true (Atomicity.hybrid_atomic env h)

let test_random_schedules () =
  for seed = 1 to 25 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (y, Bank_account.deposit 10) ]);
        (`Update, [ (y, Bank_account.withdraw 4) ]);
        (`Read_only, [ (y, Bank_account.balance) ]);
        (`Update, [ (y, Bank_account.deposit 3); (y, Bank_account.withdraw 1) ]);
        (`Read_only, [ (y, Bank_account.balance); (y, Bank_account.balance) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed (hybrid)" seed)
      true
      (Wellformed.is_well_formed Wellformed.Hybrid h);
    check_bool
      (Fmt.str "seed %d hybrid atomic" seed)
      true
      (Atomicity.hybrid_atomic account_env h)
  done

let suite =
  [
    Alcotest.test_case "reader never waits" `Quick test_reader_never_waits;
    Alcotest.test_case "reader snapshot boundary" `Quick
      test_reader_sees_exactly_earlier_commits;
    Alcotest.test_case "updates locked" `Quick test_updates_locked;
    Alcotest.test_case "commit timestamps follow precedes" `Quick
      test_commit_timestamps_consistent_with_precedes;
    Alcotest.test_case "read-only update refused" `Quick
      test_read_only_update_refused;
    Alcotest.test_case "audit does not block updates" `Quick
      test_audit_does_not_block_updates;
    Alcotest.test_case "multi-object transfer + audit" `Quick
      test_multi_object_hybrid;
    Alcotest.test_case "random schedules hybrid atomic" `Quick
      test_random_schedules;
  ]
