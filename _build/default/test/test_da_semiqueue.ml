(* The bespoke non-deterministic semiqueue: concurrency that a
   deterministic FIFO cannot offer (Section 1). *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let q = Object_id.v "sq"
let env = Spec_env.of_list [ (q, Semiqueue.spec) ]

let make () =
  let sys = System.create () in
  System.add_object sys (Da_semiqueue.make (System.log sys) q);
  sys

let seed sys values =
  let t = System.begin_txn sys (Activity.update "seed") in
  List.iter
    (fun v -> ignore (granted (System.invoke sys t q (Semiqueue.enq v))))
    values;
  System.commit sys t

let test_concurrent_dequeuers () =
  (* The whole point: two active dequeuers, both granted — the FIFO
     queue would serialize them. *)
  let sys = make () in
  seed sys [ 1; 2 ];
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  let v1 = granted (System.invoke sys t1 q Semiqueue.deq) in
  let v2 = granted (System.invoke sys t2 q Semiqueue.deq) in
  check_bool "distinct elements" true (not (Value.equal v1 v2));
  System.commit sys t1;
  System.commit sys t2;
  let h = System.history sys in
  check_bool "well-formed" true (Wellformed.is_well_formed Wellformed.Base h);
  check_bool "dynamic atomic" true (Atomicity.dynamic_atomic env h)

let test_abort_returns_taken () =
  let sys = make () in
  seed sys [ 7 ];
  let t1 = System.begin_txn sys (Activity.update "a") in
  (match granted (System.invoke sys t1 q Semiqueue.deq) with
  | Value.Int 7 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 7, got %a" Value.pp v));
  System.abort sys t1;
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 q Semiqueue.deq) with
  | Value.Int 7 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 7 back, got %a" Value.pp v));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_empty_requires_certainty () =
  let sys = make () in
  (* An active taker makes emptiness uncertain. *)
  seed sys [ 5 ];
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 q Semiqueue.deq));
  let t2 = System.begin_txn sys (Activity.update "b") in
  expect_wait "empty uncertain while a taker is active"
    (System.invoke sys t2 q Semiqueue.deq);
  System.commit sys t1;
  (match granted (System.invoke sys t2 q Semiqueue.deq) with
  | v when Value.equal v Semiqueue.empty_result -> ()
  | v -> Alcotest.fail (Fmt.str "expected empty, got %a" Value.pp v));
  (* The empty answer claims emptiness: enqueuers wait. *)
  let t3 = System.begin_txn sys (Activity.update "c") in
  expect_wait "enqueue behind empty claim"
    (System.invoke sys t3 q (Semiqueue.enq 9));
  System.commit sys t2;
  ignore (granted (System.invoke sys t3 q (Semiqueue.enq 9)));
  System.commit sys t3;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_own_tentative_dequeueable () =
  let sys = make () in
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t q (Semiqueue.enq 3)));
  (match granted (System.invoke sys t q Semiqueue.deq) with
  | Value.Int 3 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 3, got %a" Value.pp v));
  System.commit sys t;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_uncommitted_elements_invisible () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 q (Semiqueue.enq 4)));
  let t2 = System.begin_txn sys (Activity.update "b") in
  expect_wait "cannot take an uncommitted element"
    (System.invoke sys t2 q Semiqueue.deq);
  System.commit sys t1;
  (match granted (System.invoke sys t2 q Semiqueue.deq) with
  | Value.Int 4 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 4, got %a" Value.pp v));
  System.commit sys t2;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_exhaustive_schedules () =
  let histories =
    Explore.all_histories
      ~make_system:(fun () ->
        let sys = System.create () in
        System.add_object sys (Da_semiqueue.make (System.log sys) q);
        let t = System.begin_txn sys (Activity.update "seed") in
        ignore (System.invoke sys t q (Semiqueue.enq 1));
        ignore (System.invoke sys t q (Semiqueue.enq 2));
        System.commit sys t;
        sys)
      [
        (`Update, [ (q, Semiqueue.deq) ]);
        (`Update, [ (q, Semiqueue.deq) ]);
        (`Update, [ (q, Semiqueue.enq 3) ]);
      ]
  in
  check_bool "non-trivial scope" true (List.length histories > 1);
  List.iteri
    (fun i h ->
      check_bool
        (Fmt.str "history %d dynamic atomic" i)
        true
        (Atomicity.dynamic_atomic env h))
    histories

let suite =
  [
    Alcotest.test_case "concurrent dequeuers" `Quick test_concurrent_dequeuers;
    Alcotest.test_case "abort returns taken elements" `Quick
      test_abort_returns_taken;
    Alcotest.test_case "empty requires certainty" `Quick
      test_empty_requires_certainty;
    Alcotest.test_case "own tentative element dequeueable" `Quick
      test_own_tentative_dequeueable;
    Alcotest.test_case "uncommitted elements invisible" `Quick
      test_uncommitted_elements_invisible;
    Alcotest.test_case "exhaustive schedules" `Quick test_exhaustive_schedules;
  ]
