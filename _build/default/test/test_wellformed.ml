(* The well-formedness constraints of Sections 2, 4.2.1 and 4.3.1. *)

open Core
open Helpers

let wf mode h = Wellformed.is_well_formed mode h

let test_base_ok () =
  List.iter
    (fun h -> check_bool "well-formed" true (wf Wellformed.Base h))
    [
      History.empty; sec3_atomic; sec3_not_atomic; sec41_not_dynamic;
      sec41_dynamic; sec51_withdrawals; sec51_withdraw_deposit; sec51_queue;
    ]

let test_overlapping_invocation () =
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.insert 1);
        Event.invoke a x (Intset.insert 2);
      ]
  in
  check_bool "overlapping invocations rejected" false (wf Wellformed.Base h);
  (* ... even across objects: activities are sequential processes. *)
  let h2 =
    History.of_list
      [
        Event.invoke a x (Intset.insert 1);
        Event.invoke a y (Bank_account.deposit 1);
      ]
  in
  check_bool "overlap across objects rejected" false (wf Wellformed.Base h2)

let test_commit_and_abort () =
  let h =
    History.of_list [ Event.commit a x; Event.abort a y ]
  in
  check_bool "commit+abort rejected" false (wf Wellformed.Base h);
  let h2 = History.of_list [ Event.abort a x; Event.commit a y ] in
  check_bool "abort then commit rejected" false (wf Wellformed.Base h2)

let test_commit_while_pending () =
  let h =
    History.of_list [ Event.invoke a x (Intset.insert 1); Event.commit a x ]
  in
  check_bool "commit while waiting rejected" false (wf Wellformed.Base h)

let test_invoke_after_commit () =
  let h =
    History.of_list
      [ Event.commit a x; Event.invoke a x (Intset.insert 1) ]
  in
  check_bool "invoke after commit rejected" false (wf Wellformed.Base h)

let test_unmatched_response () =
  let h = History.of_list [ Event.respond a x Value.ok ] in
  check_bool "response without invocation rejected" false
    (wf Wellformed.Base h);
  let h2 =
    History.of_list
      [ Event.invoke a x (Intset.insert 1); Event.respond a y Value.ok ]
  in
  check_bool "response at wrong object rejected" false (wf Wellformed.Base h2)

let test_abort_while_pending_ok () =
  (* Only commit is forbidden while an invocation is pending. *)
  let h =
    History.of_list [ Event.invoke a x (Intset.insert 1); Event.abort a x ]
  in
  check_bool "abort while pending allowed" true (wf Wellformed.Base h)

let test_multi_object_commits () =
  let h =
    History.of_list
      [
        Event.invoke a x (Intset.insert 1);
        Event.respond a x Value.ok;
        Event.invoke a y (Bank_account.deposit 5);
        Event.respond a y Value.ok;
        Event.commit a x;
        Event.commit a y;
      ]
  in
  check_bool "commit at each touched object" true (wf Wellformed.Base h);
  let dup = History.append h (Event.commit a x) in
  check_bool "double commit at one object rejected" false
    (wf Wellformed.Base dup)

(* Static mode: the paper's Section 4.2.1 examples. *)

let test_static_ok () =
  let h =
    History.of_list
      [
        Event.initiate a x (ts 1);
        Event.invoke a x (Intset.member 2);
        Event.respond a x (Value.Bool false);
        Event.commit a x;
      ]
  in
  check_bool "paper's well-formed static sequence" true
    (wf Wellformed.Static h);
  check_bool "sec42 examples well-formed" true (wf Wellformed.Static sec42_static);
  check_bool "sec42 examples well-formed" true
    (wf Wellformed.Static sec42_not_static)

let test_static_violations () =
  (* The paper's three-way ill-formed example: a initiates twice with
     different timestamps, b reuses a's timestamp, and a invokes at y
     before initiating there. *)
  let h =
    History.of_list
      [
        Event.initiate a x (ts 1);
        Event.invoke a y (Intset.member 2);
        Event.respond a y (Value.Bool false);
        Event.initiate a y (ts 2);
        Event.initiate b y (ts 1);
        Event.commit a x;
      ]
  in
  match Wellformed.check Wellformed.Static h with
  | Ok () -> Alcotest.fail "expected violations"
  | Error vs ->
    let has pred = List.exists pred vs in
    check_bool "invoke before initiate" true
      (has (function
        | Wellformed.Invoke_before_initiate _ -> true
        | _ -> false));
    check_bool "inconsistent timestamp" true
      (has (function
        | Wellformed.Inconsistent_timestamp _ -> true
        | _ -> false));
    check_bool "duplicate timestamp" true
      (has (function Wellformed.Duplicate_timestamp _ -> true | _ -> false))

(* Hybrid mode: Section 4.3.1. *)

let test_hybrid_ok () =
  check_bool "paper's well-formed hybrid sequence" true
    (wf Wellformed.Hybrid sec43_well_formed);
  check_bool "hybrid-atomic reconstruction well-formed" true
    (wf Wellformed.Hybrid sec43_hybrid)

let test_hybrid_violations () =
  match Wellformed.check Wellformed.Hybrid sec43_ill_formed with
  | Ok () -> Alcotest.fail "expected violations"
  | Error vs ->
    let has pred = List.exists pred vs in
    check_bool "timestamp against precedes" true
      (has (function
        | Wellformed.Timestamp_against_precedes _ -> true
        | _ -> false));
    check_bool "duplicate timestamp (r reuses a's)" true
      (has (function Wellformed.Duplicate_timestamp _ -> true | _ -> false))

let test_hybrid_read_only_must_initiate () =
  let h =
    History.of_list
      [
        Event.invoke r x (Intset.member 1);
        Event.respond r x (Value.Bool false);
        Event.commit r x;
      ]
  in
  check_bool "read-only must initiate first" false (wf Wellformed.Hybrid h);
  (* Updates need not initiate under the hybrid regime. *)
  let h2 =
    History.of_list
      [
        Event.invoke a x (Intset.insert 1);
        Event.respond a x Value.ok;
        Event.commit_ts a x (ts 1);
      ]
  in
  check_bool "updates need not initiate" true (wf Wellformed.Hybrid h2)

let suite =
  [
    Alcotest.test_case "base: accepted histories" `Quick test_base_ok;
    Alcotest.test_case "base: overlapping invocations" `Quick
      test_overlapping_invocation;
    Alcotest.test_case "base: commit and abort" `Quick test_commit_and_abort;
    Alcotest.test_case "base: commit while pending" `Quick
      test_commit_while_pending;
    Alcotest.test_case "base: invoke after commit" `Quick
      test_invoke_after_commit;
    Alcotest.test_case "base: unmatched response" `Quick
      test_unmatched_response;
    Alcotest.test_case "base: abort while pending is fine" `Quick
      test_abort_while_pending_ok;
    Alcotest.test_case "base: multi-object commits" `Quick
      test_multi_object_commits;
    Alcotest.test_case "static: accepted" `Quick test_static_ok;
    Alcotest.test_case "static: paper's violations" `Quick
      test_static_violations;
    Alcotest.test_case "hybrid: accepted" `Quick test_hybrid_ok;
    Alcotest.test_case "hybrid: paper's violations" `Quick
      test_hybrid_violations;
    Alcotest.test_case "hybrid: read-only initiation" `Quick
      test_hybrid_read_only_must_initiate;
  ]
