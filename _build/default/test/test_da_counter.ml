(* The dynamic-atomic blind counter. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let cnt = Object_id.v "counter"
let env = Spec_env.of_list [ (cnt, Blind_counter.spec) ]

let make () =
  let sys = System.create () in
  System.add_object sys (Da_counter.make (System.log sys) cnt);
  sys

let test_bumps_fully_concurrent () =
  let sys = make () in
  let ts' = List.init 5 (fun i -> System.begin_txn sys (Activity.update (Fmt.str "a%d" i))) in
  List.iteri
    (fun i t ->
      ignore (granted (System.invoke sys t cnt (Blind_counter.bump (i + 1)))))
    ts';
  List.iter (fun t -> System.commit sys t) ts';
  let t = System.begin_txn sys (Activity.update "reader") in
  (match granted (System.invoke sys t cnt Blind_counter.read) with
  | Value.Int 15 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 15, got %a" Value.pp v));
  System.commit sys t;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_read_quiesces_and_claims () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 cnt (Blind_counter.bump 3)));
  expect_wait "read waits for pending bumps"
    (System.invoke sys t2 cnt Blind_counter.read);
  System.commit sys t1;
  (match granted (System.invoke sys t2 cnt Blind_counter.read) with
  | Value.Int 3 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 3, got %a" Value.pp v));
  (* The granted read blocks later bumps until the reader resolves. *)
  let t3 = System.begin_txn sys (Activity.update "c") in
  expect_wait "bump behind a read claim"
    (System.invoke sys t3 cnt (Blind_counter.bump 1));
  System.abort sys t2;
  ignore (granted (System.invoke sys t3 cnt (Blind_counter.bump 1)));
  System.commit sys t3;
  check_bool "dynamic atomic despite the abort" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_own_bumps_visible () =
  let sys = make () in
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t cnt (Blind_counter.bump 4)));
  (match granted (System.invoke sys t cnt Blind_counter.read) with
  | Value.Int 4 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 4, got %a" Value.pp v));
  System.commit sys t;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_random_schedules () =
  for seed = 1 to 20 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (cnt, Blind_counter.bump 1); (cnt, Blind_counter.bump 2) ]);
        (`Update, [ (cnt, Blind_counter.bump 5) ]);
        (`Update, [ (cnt, Blind_counter.read) ]);
        (`Update, [ (cnt, Blind_counter.bump 3); (cnt, Blind_counter.read) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic env h)
  done

let suite =
  [
    Alcotest.test_case "bumps fully concurrent" `Quick
      test_bumps_fully_concurrent;
    Alcotest.test_case "read quiesces and claims" `Quick
      test_read_quiesces_and_claims;
    Alcotest.test_case "own bumps visible" `Quick test_own_bumps_visible;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
  ]
