(* Small-scope model checking: every schedule of bounded scripts, every
   protocol, every history checked. *)

open Core
open Helpers

let check_all name make_system env property scripts =
  let histories = Explore.all_histories ~make_system scripts in
  check_bool (name ^ ": non-trivial scope") true (List.length histories > 1);
  List.iteri
    (fun i h ->
      check_bool
        (Fmt.str "%s: history %d satisfies the property" name i)
        true (property env h))
    histories

let test_escrow_exhaustive () =
  check_all "escrow"
    (fun () ->
      let sys = System.create () in
      System.add_object sys (Escrow_account.make (System.log sys) y);
      (* Seed inside the factory so every schedule starts identically. *)
      let t = System.begin_txn sys (Activity.update "seed") in
      ignore (System.invoke sys t y (Bank_account.deposit 10));
      System.commit sys t;
      sys)
    account_env Atomicity.dynamic_atomic
    [
      (`Update, [ (y, Bank_account.withdraw 4) ]);
      (`Update, [ (y, Bank_account.withdraw 3); (y, Bank_account.deposit 1) ]);
      (`Update, [ (y, Bank_account.balance) ]);
    ]

let test_da_set_exhaustive () =
  check_all "da-set"
    (fun () ->
      let sys = System.create () in
      System.add_object sys (Da_set.make (System.log sys) x);
      sys)
    set_env Atomicity.dynamic_atomic
    [
      (`Update, [ (x, Intset.insert 1); (x, Intset.member 2) ]);
      (`Update, [ (x, Intset.member 1) ]);
      (`Update, [ (x, Intset.delete 1) ]);
    ]

let test_da_queue_exhaustive () =
  check_all "da-queue"
    (fun () ->
      let sys = System.create () in
      System.add_object sys (Da_queue.make (System.log sys) x);
      sys)
    queue_env Atomicity.dynamic_atomic
    [
      (`Update, [ (x, Fifo_queue.enqueue 1); (x, Fifo_queue.enqueue 2) ]);
      (`Update, [ (x, Fifo_queue.enqueue 1); (x, Fifo_queue.enqueue 2) ]);
      (`Update, [ (x, Fifo_queue.dequeue) ]);
    ]

let test_multiversion_exhaustive () =
  check_all "multiversion"
    (fun () ->
      let sys = System.create ~policy:`Static () in
      System.add_object sys (Multiversion.make (System.log sys) x Intset.spec);
      sys)
    set_env Atomicity.static_atomic
    [
      (`Update, [ (x, Intset.insert 1) ]);
      (`Update, [ (x, Intset.member 1) ]);
      (`Update, [ (x, Intset.delete 1) ]);
    ]

let test_hybrid_exhaustive () =
  check_all "hybrid"
    (fun () ->
      let sys = System.create ~policy:`Hybrid () in
      System.add_object sys
        (Hybrid.of_adt (System.log sys) y (module Bank_account));
      sys)
    account_env Atomicity.hybrid_atomic
    [
      (`Update, [ (y, Bank_account.deposit 5) ]);
      (`Update, [ (y, Bank_account.withdraw 3) ]);
      (`Read_only, [ (y, Bank_account.balance) ]);
    ]

let test_commutativity_locking_exhaustive () =
  check_all "commutativity locking"
    (fun () ->
      let sys = System.create () in
      System.add_object sys
        (Op_locking.commutativity (System.log sys) y (module Bank_account));
      sys)
    account_env Atomicity.dynamic_atomic
    [
      (`Update, [ (y, Bank_account.deposit 5) ]);
      (`Update, [ (y, Bank_account.withdraw 3) ]);
      (`Update, [ (y, Bank_account.deposit 2) ]);
    ]

let test_deadlock_schedules_resolved () =
  (* Two transactions crossing two rw-locked objects: some schedules
     deadlock; every schedule must still complete with an atomic
     history. *)
  let ox = Object_id.v "ox" and oy = Object_id.v "oy" in
  let env = Spec_env.of_list [ (ox, Register.spec); (oy, Register.spec) ] in
  let histories =
    Explore.all_histories
      ~make_system:(fun () ->
        let sys = System.create () in
        let log = System.log sys in
        System.add_object sys (Op_locking.rw log ox (module Register));
        System.add_object sys (Op_locking.rw log oy (module Register));
        sys)
      [
        (`Update, [ (ox, Register.write 1); (oy, Register.write 1) ]);
        (`Update, [ (oy, Register.write 2); (ox, Register.write 2) ]);
      ]
  in
  let with_abort =
    List.filter
      (fun h -> not (Activity.Set.is_empty (History.aborted h)))
      histories
  in
  check_bool "some schedules deadlock (and abort a victim)" true
    (with_abort <> []);
  List.iteri
    (fun i h ->
      check_bool (Fmt.str "history %d atomic" i) true (Atomicity.atomic env h))
    histories

let test_multi_object_transfers_exhaustive () =
  (* Cross-account transfers under escrow: some schedules deadlock on
     the balance/update claims; every schedule's history must be
     dynamic atomic across BOTH objects. *)
  let a1 = Object_id.v "a1" and a2 = Object_id.v "a2" in
  let env =
    Spec_env.of_list [ (a1, Bank_account.spec); (a2, Bank_account.spec) ]
  in
  let histories =
    Explore.all_histories ~max_schedules:200_000
      ~make_system:(fun () ->
        let sys = System.create () in
        let log = System.log sys in
        System.add_object sys (Escrow_account.make log a1);
        System.add_object sys (Escrow_account.make log a2);
        let t = System.begin_txn sys (Activity.update "seed") in
        ignore (System.invoke sys t a1 (Bank_account.deposit 5));
        ignore (System.invoke sys t a2 (Bank_account.deposit 5));
        System.commit sys t;
        sys)
      [
        (`Update,
         [ (a1, Bank_account.withdraw 4); (a2, Bank_account.deposit 4) ]);
        (`Update,
         [ (a2, Bank_account.withdraw 4); (a1, Bank_account.deposit 4) ]);
      ]
  in
  check_bool "non-trivial scope" true (List.length histories > 1);
  List.iteri
    (fun i h ->
      check_bool
        (Fmt.str "transfer history %d dynamic atomic" i)
        true
        (Atomicity.dynamic_atomic env h))
    histories

let test_schedule_counts () =
  (* Two single-op clients on independent objects: the schedule tree
     has exactly the interleavings of two 2-step clients. *)
  let ox = Object_id.v "ox" and oy = Object_id.v "oy" in
  let n =
    Explore.count_schedules
      ~make_system:(fun () ->
        let sys = System.create () in
        let log = System.log sys in
        System.add_object sys (Op_locking.rw log ox (module Register));
        System.add_object sys (Op_locking.rw log oy (module Register));
        sys)
      [
        (`Update, [ (ox, Register.write 1) ]);
        (`Update, [ (oy, Register.write 2) ]);
      ]
  in
  (* Each client takes 2 steps (op, commit): C(4,2) = 6 interleavings,
     none blocked. *)
  check_int "C(4,2) schedules" 6 n

let suite =
  [
    Alcotest.test_case "escrow exhaustive" `Quick test_escrow_exhaustive;
    Alcotest.test_case "da-set exhaustive" `Quick test_da_set_exhaustive;
    Alcotest.test_case "da-queue exhaustive" `Quick test_da_queue_exhaustive;
    Alcotest.test_case "multiversion exhaustive" `Quick
      test_multiversion_exhaustive;
    Alcotest.test_case "hybrid exhaustive" `Quick test_hybrid_exhaustive;
    Alcotest.test_case "commutativity locking exhaustive" `Quick
      test_commutativity_locking_exhaustive;
    Alcotest.test_case "deadlocking schedules resolved" `Quick
      test_deadlock_schedules_resolved;
    Alcotest.test_case "multi-object transfers exhaustive" `Quick
      test_multi_object_transfers_exhaustive;
    Alcotest.test_case "schedule counting" `Quick test_schedule_counts;
  ]
