(* Sequential semantics, commutativity tables and read/write
   classification of every abstract data type. *)

open Core
open Helpers

(* Replay a deterministic op sequence through a spec, returning the
   results. *)
let replay spec ops =
  let rec go frontier acc = function
    | [] -> List.rev acc
    | op :: rest -> (
      match Seq_spec.outcomes frontier op with
      | [] -> Alcotest.fail (Fmt.str "no outcome for %a" Operation.pp op)
      | (res, f) :: _ -> go f (res :: acc) rest)
  in
  go (Seq_spec.start spec) [] ops

let test_intset_semantics () =
  let results =
    replay Intset.spec
      [
        Intset.member 3; Intset.insert 3; Intset.member 3; Intset.insert 3;
        Intset.size; Intset.delete 3; Intset.member 3; Intset.size;
      ]
  in
  Alcotest.(check (list string))
    "set behaviour"
    [ "false"; "ok"; "true"; "ok"; "1"; "ok"; "false"; "0" ]
    (List.map Value.to_string results)

let test_intset_commutativity () =
  let open Intset in
  check_bool "insert/insert same" true (commutes (insert 1) (insert 1));
  check_bool "insert/insert diff" true (commutes (insert 1) (insert 2));
  check_bool "delete/delete" true (commutes (delete 1) (delete 1));
  check_bool "insert/delete same" false (commutes (insert 1) (delete 1));
  check_bool "insert/delete diff" true (commutes (insert 1) (delete 2));
  check_bool "member/member" true (commutes (member 1) (member 1));
  check_bool "member/insert same" false (commutes (member 1) (insert 1));
  check_bool "member/insert diff" true (commutes (member 1) (insert 2));
  check_bool "size/insert" false (commutes size (insert 1));
  check_bool "size/member" true (commutes size (member 1));
  check_bool "unknown op commutes with nothing" false
    (commutes (Operation.make "mystery" []) (member 1))

let test_intset_classify () =
  let open Intset in
  Alcotest.(check bool) "member reads" true (classify (member 1) = Adt_sig.Read);
  Alcotest.(check bool) "size reads" true (classify size = Adt_sig.Read);
  Alcotest.(check bool) "insert writes" true
    (classify (insert 1) = Adt_sig.Write);
  Alcotest.(check bool) "unknown writes" true
    (classify (Operation.make "mystery" []) = Adt_sig.Write)

let test_counter_semantics () =
  let results = replay Counter.spec [ Counter.increment; Counter.increment ] in
  Alcotest.(check (list string)) "increments count" [ "1"; "2" ]
    (List.map Value.to_string results);
  check_bool "increment never commutes" false
    (Counter.commutes Counter.increment Counter.increment)

let test_account_semantics () =
  let open Bank_account in
  let results =
    replay spec [ deposit 10; withdraw 4; withdraw 7; balance; withdraw 6 ]
  in
  Alcotest.(check (list string))
    "account behaviour"
    [ "ok"; "ok"; "insufficient_funds"; "6"; "ok" ]
    (List.map Value.to_string results)

let test_account_commutativity () =
  let open Bank_account in
  check_bool "deposit/deposit" true (commutes (deposit 1) (deposit 2));
  check_bool "withdraw/withdraw" false (commutes (withdraw 1) (withdraw 2));
  check_bool "deposit/withdraw" false (commutes (deposit 1) (withdraw 2));
  check_bool "balance/balance" true (commutes balance balance);
  check_bool "balance/deposit" false (commutes balance (deposit 1))

let test_account_invalid_amount () =
  Alcotest.check_raises "negative deposit"
    (Invalid_argument "Bank_account: negative amount") (fun () ->
      ignore (Bank_account.deposit (-1)));
  Alcotest.check_raises "negative withdrawal"
    (Invalid_argument "Bank_account: negative amount") (fun () ->
      ignore (Bank_account.withdraw (-5)))

let test_queue_semantics () =
  let open Fifo_queue in
  let results = replay spec [ dequeue; enqueue 1; enqueue 2; dequeue; dequeue; dequeue ] in
  Alcotest.(check (list string))
    "queue behaviour"
    [ "empty"; "ok"; "ok"; "1"; "2"; "empty" ]
    (List.map Value.to_string results)

let test_queue_commutativity () =
  let open Fifo_queue in
  check_bool "enqueue same value" true (commutes (enqueue 1) (enqueue 1));
  check_bool "enqueue diff values" false (commutes (enqueue 1) (enqueue 2));
  check_bool "dequeue/dequeue" false (commutes dequeue dequeue);
  check_bool "enqueue/dequeue" false (commutes (enqueue 1) dequeue)

let test_register_semantics () =
  let open Register in
  let results = replay spec [ read; write 7; read; write 7; read ] in
  Alcotest.(check (list string))
    "register behaviour" [ "0"; "ok"; "7"; "ok"; "7" ]
    (List.map Value.to_string results);
  check_bool "read/read" true (commutes read read);
  check_bool "blind same writes" true (commutes (write 1) (write 1));
  check_bool "different writes" false (commutes (write 1) (write 2));
  check_bool "read/write" false (commutes read (write 1))

let test_kv_map_semantics () =
  let open Kv_map in
  let results =
    replay spec [ get 1; put 1 10; get 1; put 1 20; get 1; size; remove 1; get 1 ]
  in
  Alcotest.(check (list string))
    "map behaviour"
    [ "none"; "ok"; "10"; "ok"; "20"; "1"; "ok"; "none" ]
    (List.map Value.to_string results)

let test_kv_map_commutativity () =
  let open Kv_map in
  check_bool "puts on distinct keys" true (commutes (put 1 5) (put 2 6));
  check_bool "identical puts" true (commutes (put 1 5) (put 1 5));
  check_bool "conflicting puts" false (commutes (put 1 5) (put 1 6));
  check_bool "get/put same key" false (commutes (get 1) (put 1 5));
  check_bool "get/put distinct keys" true (commutes (get 1) (put 2 5));
  check_bool "get/get same key" true (commutes (get 1) (get 1));
  check_bool "size/put" false (commutes size (put 1 5));
  check_bool "remove/remove same key" true (commutes (remove 1) (remove 1))

let test_semiqueue_semantics () =
  (* deq is genuinely non-deterministic: outcomes lists every element. *)
  let f = Seq_spec.start Semiqueue.spec in
  let f = Option.get (Seq_spec.advance f (Semiqueue.enq 1) Value.ok) in
  let f = Option.get (Seq_spec.advance f (Semiqueue.enq 2) Value.ok) in
  let outcomes = Seq_spec.outcomes f Semiqueue.deq in
  check_int "two possible answers" 2 (List.length outcomes);
  check_bool "determined is None for ambiguous deq" true
    (Option.is_none (Seq_spec.determined f Semiqueue.deq))

let test_frontier_api () =
  let f = Seq_spec.start Intset.spec in
  check_bool "determined result" true
    (match Seq_spec.determined f (Intset.member 5) with
    | Some (Value.Bool false) -> true
    | _ -> false);
  check_bool "advance on impossible result" true
    (Option.is_none (Seq_spec.advance f (Intset.member 5) (Value.Bool true)));
  check_bool "spec_of round-trips" true
    (String.equal (Seq_spec.type_name (Seq_spec.spec_of f)) "intset")

let suite =
  [
    Alcotest.test_case "intset semantics" `Quick test_intset_semantics;
    Alcotest.test_case "intset commutativity" `Quick test_intset_commutativity;
    Alcotest.test_case "intset classification" `Quick test_intset_classify;
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "account semantics" `Quick test_account_semantics;
    Alcotest.test_case "account commutativity" `Quick
      test_account_commutativity;
    Alcotest.test_case "account argument validation" `Quick
      test_account_invalid_amount;
    Alcotest.test_case "queue semantics" `Quick test_queue_semantics;
    Alcotest.test_case "queue commutativity" `Quick test_queue_commutativity;
    Alcotest.test_case "register" `Quick test_register_semantics;
    Alcotest.test_case "kv map semantics" `Quick test_kv_map_semantics;
    Alcotest.test_case "kv map commutativity" `Quick test_kv_map_commutativity;
    Alcotest.test_case "semiqueue non-determinism" `Quick
      test_semiqueue_semantics;
    Alcotest.test_case "frontier API" `Quick test_frontier_api;
  ]
