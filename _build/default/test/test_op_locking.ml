(* The scheduler-model baselines: read/write locking and
   state-independent commutativity locking. *)

open Core
open Helpers

let granted = function
  | Atomic_object.Granted v -> v
  | other ->
    Alcotest.fail (Fmt.str "expected grant, got %a" Atomic_object.pp_invoke_result other)

let expect_wait name = function
  | Atomic_object.Wait blockers ->
    check_bool (name ^ ": non-empty blockers") true (blockers <> [])
  | other ->
    Alcotest.fail
      (Fmt.str "%s: expected wait, got %a" name Atomic_object.pp_invoke_result
         other)

let account_system make_obj =
  let sys = System.create () in
  System.add_object sys (make_obj (System.log sys) y);
  sys

let test_commutativity_blocks_withdrawals () =
  let sys =
    account_system (fun log id ->
        Op_locking.commutativity log id (module Bank_account))
  in
  let t0 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t0 y (Bank_account.deposit 10)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "b") in
  let t2 = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys t1 y (Bank_account.withdraw 4)));
  (* Section 5.1: the locking protocols must serialize the second
     withdrawal even though the balance covers both. *)
  expect_wait "second withdrawal"
    (System.invoke sys t2 y (Bank_account.withdraw 3));
  System.commit sys t1;
  ignore (granted (System.invoke sys t2 y (Bank_account.withdraw 3)));
  System.commit sys t2;
  let h = System.history sys in
  check_bool "generated history is dynamic atomic" true
    (Atomicity.dynamic_atomic account_env h);
  check_bool "well-formed" true (Wellformed.is_well_formed Wellformed.Base h)

let test_commutativity_allows_deposits () =
  let sys =
    account_system (fun log id ->
        Op_locking.commutativity log id (module Bank_account))
  in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 y (Bank_account.deposit 5)));
  ignore (granted (System.invoke sys t2 y (Bank_account.deposit 7)));
  System.commit sys t2;
  System.commit sys t1;
  let t3 = System.begin_txn sys (Activity.update "c") in
  (match granted (System.invoke sys t3 y Bank_account.balance) with
  | Value.Int 12 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 12, got %a" Value.pp v));
  System.commit sys t3;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic account_env (System.history sys))

let test_rw_locking () =
  let sys =
    let s = System.create () in
    System.add_object s (Op_locking.rw (System.log s) x (module Intset));
    s
  in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  (* Two readers share. *)
  ignore (granted (System.invoke sys t1 x (Intset.member 1)));
  ignore (granted (System.invoke sys t2 x (Intset.member 2)));
  (* A writer waits behind a reader, even on a different element —
     read/write locking is the coarsest discipline. *)
  let t3 = System.begin_txn sys (Activity.update "c") in
  expect_wait "writer behind readers"
    (System.invoke sys t3 x (Intset.insert 9));
  System.commit sys t1;
  System.commit sys t2;
  ignore (granted (System.invoke sys t3 x (Intset.insert 9)));
  System.commit sys t3;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic set_env (System.history sys))

let test_abort_discards_intentions () =
  let sys =
    account_system (fun log id ->
        Op_locking.commutativity log id (module Bank_account))
  in
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 y (Bank_account.deposit 100)));
  System.abort sys t1;
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 y Bank_account.balance) with
  | Value.Int 0 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 0 after abort, got %a" Value.pp v));
  System.commit sys t2;
  let h = System.history sys in
  check_bool "atomic despite the abort" true (Atomicity.atomic account_env h)

let test_deadlock_detected () =
  let sys = System.create () in
  let log = System.log sys in
  System.add_object sys (Op_locking.rw log x (module Register));
  System.add_object sys (Op_locking.rw log y (module Register));
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 x (Register.write 1)));
  ignore (granted (System.invoke sys t2 y (Register.write 2)));
  expect_wait "t1 blocked on t2" (System.invoke sys t1 y (Register.write 3));
  check_bool "no cycle yet" true (Option.is_none (System.find_deadlock sys));
  expect_wait "t2 blocked on t1" (System.invoke sys t2 x (Register.write 4));
  (match System.find_deadlock sys with
  | Some cycle ->
    check_int "two-transaction cycle" 2 (List.length cycle);
    let victim = Waits_for.victim cycle in
    check_bool "youngest is the victim" true (Txn.equal victim t2);
    System.abort sys victim
  | None -> Alcotest.fail "expected a deadlock");
  (* After aborting the victim, the survivor can proceed. *)
  ignore (granted (System.invoke sys t1 y (Register.write 3)));
  System.commit sys t1;
  check_bool "atomic after resolution" true
    (Atomicity.atomic
       (Spec_env.of_list [ (x, Register.spec); (y, Register.spec) ])
       (System.history sys))

let test_random_schedules_are_dynamic_atomic () =
  (* Randomized schedules over the commutativity-locked set: every
     generated history must be dynamic atomic (and hence atomic). *)
  for seed = 1 to 25 do
    let sys = System.create () in
    System.add_object sys
      (Op_locking.commutativity (System.log sys) x (module Intset));
    let scripts =
      [
        (`Update, [ (x, Intset.insert 1); (x, Intset.member 2) ]);
        (`Update, [ (x, Intset.insert 2); (x, Intset.delete 1) ]);
        (`Update, [ (x, Intset.member 1); (x, Intset.insert 3) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed" seed)
      true
      (Wellformed.is_well_formed Wellformed.Base h);
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic set_env h)
  done

let suite =
  [
    Alcotest.test_case "commutativity: withdrawals serialize" `Quick
      test_commutativity_blocks_withdrawals;
    Alcotest.test_case "commutativity: deposits interleave" `Quick
      test_commutativity_allows_deposits;
    Alcotest.test_case "read/write locking" `Quick test_rw_locking;
    Alcotest.test_case "abort discards intentions" `Quick
      test_abort_discards_intentions;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules_are_dynamic_atomic;
  ]
