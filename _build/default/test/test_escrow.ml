(* The escrow bank account: data-dependent dynamic atomicity
   (Section 5.1's extra concurrency, realized online). *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let make () =
  let sys = System.create () in
  System.add_object sys (Escrow_account.make (System.log sys) y);
  sys

let seed_balance sys n =
  let t = System.begin_txn sys (Activity.update "seed") in
  ignore (granted (System.invoke sys t y (Bank_account.deposit n)));
  System.commit sys t

let test_concurrent_withdrawals () =
  (* The paper's first Section 5.1 interleaving, executed live. *)
  let sys = make () in
  seed_balance sys 10;
  let b' = System.begin_txn sys (Activity.update "b") in
  let c' = System.begin_txn sys (Activity.update "c") in
  (match System.invoke sys b' y (Bank_account.withdraw 4) with
  | Atomic_object.Granted v -> check_bool "b ok" true (Value.equal v Value.ok)
  | other ->
    Alcotest.fail (Fmt.str "b: %a" Atomic_object.pp_invoke_result other));
  (match System.invoke sys c' y (Bank_account.withdraw 3) with
  | Atomic_object.Granted v -> check_bool "c ok" true (Value.equal v Value.ok)
  | other ->
    Alcotest.fail (Fmt.str "c: %a" Atomic_object.pp_invoke_result other));
  System.commit sys c';
  System.commit sys b';
  let h = System.history sys in
  check_bool "dynamic atomic" true (Atomicity.dynamic_atomic account_env h);
  check_bool "well-formed" true (Wellformed.is_well_formed Wellformed.Base h)

let test_withdraw_concurrent_with_deposit () =
  (* The second Section 5.1 interleaving: the deposit is not needed to
     cover the withdrawal. *)
  let sys = make () in
  seed_balance sys 10;
  let b' = System.begin_txn sys (Activity.update "b") in
  let c' = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys b' y (Bank_account.withdraw 5)));
  ignore (granted (System.invoke sys c' y (Bank_account.deposit 3)));
  System.commit sys c';
  System.commit sys b';
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic account_env (System.history sys))

let test_uncovered_withdrawal_waits () =
  (* The outcome depends on which active transactions commit: wait. *)
  let sys = make () in
  seed_balance sys 5;
  let b' = System.begin_txn sys (Activity.update "b") in
  let c' = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys b' y (Bank_account.withdraw 4)));
  expect_wait "contended withdrawal"
    (System.invoke sys c' y (Bank_account.withdraw 4));
  (* b aborting returns the escrowed funds. *)
  System.abort sys b';
  ignore (granted (System.invoke sys c' y (Bank_account.withdraw 4)));
  System.commit sys c';
  check_bool "dynamic atomic with the abort" true
    (Atomicity.dynamic_atomic account_env (System.history sys))

let test_insufficient_in_every_order () =
  let sys = make () in
  seed_balance sys 5;
  let b' = System.begin_txn sys (Activity.update "b") in
  (match System.invoke sys b' y (Bank_account.withdraw 10) with
  | Atomic_object.Granted v ->
    check_bool "insufficient_funds" true
      (Value.equal v Value.insufficient_funds)
  | other ->
    Alcotest.fail (Fmt.str "got %a" Atomic_object.pp_invoke_result other));
  (* The answer constrains future deposits until b completes. *)
  let c' = System.begin_txn sys (Activity.update "c") in
  expect_wait "deposit behind insufficient-funds answer"
    (System.invoke sys c' y (Bank_account.deposit 100));
  System.commit sys b';
  ignore (granted (System.invoke sys c' y (Bank_account.deposit 100)));
  System.commit sys c';
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic account_env (System.history sys))

let test_balance_quiesces () =
  let sys = make () in
  seed_balance sys 8;
  let b' = System.begin_txn sys (Activity.update "b") in
  let c' = System.begin_txn sys (Activity.update "c") in
  ignore (granted (System.invoke sys b' y (Bank_account.deposit 2)));
  expect_wait "balance waits for pending updates"
    (System.invoke sys c' y Bank_account.balance);
  System.commit sys b';
  (match granted (System.invoke sys c' y Bank_account.balance) with
  | Value.Int 10 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 10, got %a" Value.pp v));
  (* And while c holds its balance answer, updates by others wait. *)
  let d' = System.begin_txn sys (Activity.update "d") in
  let e' = System.begin_txn sys (Activity.update "e") in
  expect_wait "withdrawal behind balance reader"
    (System.invoke sys d' y (Bank_account.withdraw 1));
  expect_wait "deposit behind balance reader"
    (System.invoke sys e' y (Bank_account.deposit 1));
  System.commit sys c';
  ignore (granted (System.invoke sys d' y (Bank_account.withdraw 1)));
  ignore (granted (System.invoke sys e' y (Bank_account.deposit 1)));
  System.commit sys d';
  System.commit sys e';
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic account_env (System.history sys))

let test_own_updates_visible () =
  let sys = make () in
  let t = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t y (Bank_account.deposit 7)));
  (match granted (System.invoke sys t y Bank_account.balance) with
  | Value.Int 7 -> ()
  | v -> Alcotest.fail (Fmt.str "expected own deposit visible, got %a" Value.pp v));
  ignore (granted (System.invoke sys t y (Bank_account.withdraw 3)));
  (match granted (System.invoke sys t y Bank_account.balance) with
  | Value.Int 4 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 4, got %a" Value.pp v));
  System.commit sys t;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic account_env (System.history sys))

let test_unknown_operation_refused () =
  let sys = make () in
  let t = System.begin_txn sys (Activity.update "a") in
  (match System.invoke sys t y (Operation.make "mystery" []) with
  | Atomic_object.Refused _ -> ()
  | other ->
    Alcotest.fail (Fmt.str "got %a" Atomic_object.pp_invoke_result other));
  System.abort sys t

let test_random_schedules () =
  for seed = 1 to 25 do
    let sys = make () in
    seed_balance sys 12;
    let scripts =
      [
        (`Update, [ (y, Bank_account.withdraw 4); (y, Bank_account.deposit 1) ]);
        (`Update, [ (y, Bank_account.withdraw 5) ]);
        (`Update, [ (y, Bank_account.deposit 6); (y, Bank_account.withdraw 2) ]);
        (`Update, [ (y, Bank_account.balance) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d well-formed" seed)
      true
      (Wellformed.is_well_formed Wellformed.Base h);
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic account_env h)
  done

let suite =
  [
    Alcotest.test_case "concurrent withdrawals (5.1)" `Quick
      test_concurrent_withdrawals;
    Alcotest.test_case "withdraw with unneeded deposit (5.1)" `Quick
      test_withdraw_concurrent_with_deposit;
    Alcotest.test_case "uncovered withdrawal waits" `Quick
      test_uncovered_withdrawal_waits;
    Alcotest.test_case "insufficient funds in every order" `Quick
      test_insufficient_in_every_order;
    Alcotest.test_case "balance quiesces" `Quick test_balance_quiesces;
    Alcotest.test_case "own updates visible" `Quick test_own_updates_visible;
    Alcotest.test_case "unknown operation refused" `Quick
      test_unknown_operation_refused;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
  ]
