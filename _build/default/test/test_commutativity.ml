(* Mechanical verification of the hand-written commutativity tables
   against the specifications. *)

open Core
open Helpers

let verify_table name spec hand gen_ops alphabet =
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          match
            Commutativity_check.commute_on_reachable spec ~gen_ops p q
          with
          | Some derived ->
            check_bool
              (Fmt.str "%s: %a vs %a" name Operation.pp p Operation.pp q)
              derived (hand p q)
          | None -> () (* non-deterministic: not comparable *))
        alphabet)
    alphabet

let test_intset_table () =
  let alphabet =
    Intset.[ insert 1; insert 2; delete 1; delete 2; member 1; member 2; size ]
  in
  verify_table "intset" Intset.spec Intset.commutes alphabet alphabet

let test_account_table () =
  let alphabet =
    Bank_account.[ deposit 5; deposit 2; withdraw 3; withdraw 6; balance ]
  in
  verify_table "account" Bank_account.spec Bank_account.commutes alphabet
    alphabet

let test_register_table () =
  let alphabet = Register.[ read; write 1; write 2 ] in
  verify_table "register" Register.spec Register.commutes alphabet alphabet

let test_queue_table () =
  let alphabet = Fifo_queue.[ enqueue 1; enqueue 2; dequeue ] in
  verify_table "queue" Fifo_queue.spec Fifo_queue.commutes alphabet alphabet

let test_counter_table () =
  let alphabet = [ Counter.increment ] in
  verify_table "counter" Counter.spec Counter.commutes alphabet alphabet

let test_blind_counter_table () =
  let alphabet = Blind_counter.[ bump 1; bump 2; read ] in
  verify_table "blind counter" Blind_counter.spec Blind_counter.commutes
    alphabet alphabet

let test_stack_table () =
  let alphabet = Stack.[ push 1; push 2; pop ] in
  verify_table "stack" Stack.spec Stack.commutes alphabet alphabet

let test_append_log_table () =
  let alphabet = Append_log.[ append 1; append 2; size; read 0 ] in
  verify_table "append log" Append_log.spec Append_log.commutes alphabet
    alphabet

let test_kv_map_table () =
  let alphabet =
    Kv_map.[ put 1 10; put 1 20; put 2 10; get 1; get 2; remove 1; size ]
  in
  verify_table "kv map" Kv_map.spec Kv_map.commutes alphabet alphabet

let test_priority_queue_table () =
  let alphabet =
    Priority_queue.[ add 1; add 5; extract_min; find_min ]
  in
  verify_table "priority queue" Priority_queue.spec Priority_queue.commutes
    alphabet alphabet

let test_observational_equality () =
  let f = Seq_spec.start Intset.spec in
  let advance frontier op res = Option.get (Seq_spec.advance frontier op res) in
  let f1 = advance f (Intset.insert 1) Value.ok in
  let f2 = advance f1 (Intset.insert 1) Value.ok in
  let probes = Intset.[ member 1; member 2; size ] in
  check_bool "idempotent insert: same state" true
    (Commutativity_check.observationally_equal ~probes ~depth:2 f1 f2);
  let g = advance f (Intset.insert 2) Value.ok in
  check_bool "different elements: different states" false
    (Commutativity_check.observationally_equal ~probes ~depth:2 f1 g)

let suite =
  [
    Alcotest.test_case "intset table verified" `Quick test_intset_table;
    Alcotest.test_case "account table verified" `Quick test_account_table;
    Alcotest.test_case "register table verified" `Quick test_register_table;
    Alcotest.test_case "queue table verified" `Quick test_queue_table;
    Alcotest.test_case "counter table verified" `Quick test_counter_table;
    Alcotest.test_case "blind counter table verified" `Quick
      test_blind_counter_table;
    Alcotest.test_case "stack table verified" `Quick test_stack_table;
    Alcotest.test_case "append log table verified" `Quick
      test_append_log_table;
    Alcotest.test_case "kv map table verified" `Quick test_kv_map_table;
    Alcotest.test_case "priority queue table verified" `Quick
      test_priority_queue_table;
    Alcotest.test_case "observational equality" `Quick
      test_observational_equality;
  ]
