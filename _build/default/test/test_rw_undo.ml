(* Before-image recovery under strict 2PL. *)

open Core
open Helpers

let granted = Test_op_locking.granted
let expect_wait = Test_op_locking.expect_wait

let o = Object_id.v "obj"
let env = Spec_env.of_list [ (o, Intset.spec) ]

let make () =
  let sys = System.create () in
  System.add_object sys (Rw_undo.make (System.log sys) o (module Intset));
  sys

let test_same_answers_as_rw_locking () =
  (* Functional equivalence with the intentions-based rw object on a
     deterministic interleaving. *)
  let run make_obj =
    let sys = System.create () in
    System.add_object sys (make_obj (System.log sys) o);
    let t1 = System.begin_txn sys (Activity.update "a") in
    ignore (granted (System.invoke sys t1 o (Intset.insert 1)));
    ignore (granted (System.invoke sys t1 o (Intset.member 1)));
    System.commit sys t1;
    let t2 = System.begin_txn sys (Activity.update "b") in
    let res = granted (System.invoke sys t2 o Intset.size) in
    System.commit sys t2;
    (res, System.history sys)
  in
  let r1, h1 = run (fun log id -> Rw_undo.make log id (module Intset)) in
  let r2, h2 = run (fun log id -> Op_locking.rw log id (module Intset)) in
  check_bool "same result" true (Value.equal r1 r2);
  Alcotest.check history "same histories" h1 h2

let test_abort_restores_before_image () =
  let sys = make () in
  let t0 = System.begin_txn sys (Activity.update "init") in
  ignore (granted (System.invoke sys t0 o (Intset.insert 1)));
  System.commit sys t0;
  let t1 = System.begin_txn sys (Activity.update "a") in
  ignore (granted (System.invoke sys t1 o (Intset.insert 2)));
  ignore (granted (System.invoke sys t1 o (Intset.delete 1)));
  System.abort sys t1;
  let t2 = System.begin_txn sys (Activity.update "b") in
  (match granted (System.invoke sys t2 o Intset.size) with
  | Value.Int 1 -> ()
  | v -> Alcotest.fail (Fmt.str "expected 1, got %a" Value.pp v));
  (match granted (System.invoke sys t2 o (Intset.member 1)) with
  | Value.Bool true -> ()
  | v -> Alcotest.fail (Fmt.str "expected true, got %a" Value.pp v));
  System.commit sys t2;
  check_bool "atomic" true (Atomicity.atomic env (System.history sys))

let test_locking_discipline () =
  let sys = make () in
  let t1 = System.begin_txn sys (Activity.update "a") in
  let t2 = System.begin_txn sys (Activity.update "b") in
  ignore (granted (System.invoke sys t1 o (Intset.member 1)));
  ignore (granted (System.invoke sys t2 o (Intset.member 2)));
  let t3 = System.begin_txn sys (Activity.update "c") in
  expect_wait "writer behind readers" (System.invoke sys t3 o (Intset.insert 1));
  System.commit sys t1;
  System.commit sys t2;
  ignore (granted (System.invoke sys t3 o (Intset.insert 1)));
  (* The writer now excludes readers. *)
  let t4 = System.begin_txn sys (Activity.update "d") in
  expect_wait "reader behind writer" (System.invoke sys t4 o (Intset.member 1));
  System.commit sys t3;
  ignore (granted (System.invoke sys t4 o (Intset.member 1)));
  System.commit sys t4;
  check_bool "dynamic atomic" true
    (Atomicity.dynamic_atomic env (System.history sys))

let test_random_schedules () =
  for seed = 1 to 20 do
    let sys = make () in
    let scripts =
      [
        (`Update, [ (o, Intset.insert 1); (o, Intset.member 2) ]);
        (`Update, [ (o, Intset.insert 2) ]);
        (`Update, [ (o, Intset.member 1); (o, Intset.delete 2) ]);
      ]
    in
    let h = run_scripts ~seed sys scripts in
    check_bool
      (Fmt.str "seed %d dynamic atomic" seed)
      true
      (Atomicity.dynamic_atomic env h)
  done

let suite =
  [
    Alcotest.test_case "matches intentions-based rw object" `Quick
      test_same_answers_as_rw_locking;
    Alcotest.test_case "abort restores before-image" `Quick
      test_abort_restores_before_image;
    Alcotest.test_case "locking discipline" `Quick test_locking_discipline;
    Alcotest.test_case "random schedules dynamic atomic" `Quick
      test_random_schedules;
  ]
