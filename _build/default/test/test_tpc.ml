(* Two-phase commit with commit-timestamp generation (the distributed
   implementation route for hybrid atomicity, Section 4.3.3). *)

open Core
open Helpers

let run cfg = Tpc.run cfg

let all_committed o =
  List.for_all
    (function Tpc.Committed _ -> true | _ -> false)
    o.Tpc.statuses

let all_aborted o =
  List.for_all (( = ) Tpc.Aborted) o.Tpc.statuses

let test_happy_path () =
  let o = run Tpc.default_config in
  check_bool "all committed" true (all_committed o);
  check_bool "atomic commitment" true (Tpc.atomic_commitment o);
  match o.Tpc.commit_ts with
  | Some ts -> check_bool "timestamp positive" true (ts > 0)
  | None -> Alcotest.fail "expected a commit timestamp"

let test_timestamp_exceeds_site_clocks () =
  (* The hybrid requirement: the chosen timestamp must exceed every
     timestamp any participant has observed. *)
  let cfg = { Tpc.default_config with site_clocks = [ 7; 42; 13 ] } in
  let o = run cfg in
  check_bool "all committed" true (all_committed o);
  match o.Tpc.commit_ts with
  | Some ts -> check_bool "ts > max clock" true (ts > 42)
  | None -> Alcotest.fail "expected a commit timestamp"

let test_no_vote_aborts_everywhere () =
  let cfg = { Tpc.default_config with votes = [ Tpc.Yes; Tpc.No; Tpc.Yes ] } in
  let o = run cfg in
  check_bool "all aborted" true (all_aborted o);
  check_bool "no timestamp issued" true (Option.is_none o.Tpc.commit_ts);
  check_bool "atomic commitment" true (Tpc.atomic_commitment o)

let test_coordinator_crash_before_prepare () =
  let cfg = { Tpc.default_config with coordinator_crash = Tpc.Before_prepare } in
  let o = run cfg in
  (* Nobody ever voted: presumed abort everywhere. *)
  check_bool "all aborted" true (all_aborted o);
  check_bool "atomic commitment" true (Tpc.atomic_commitment o)

let test_coordinator_crash_after_prepare_blocks () =
  (* Every participant prepared, none can learn the decision: the
     classical 2PC blocking window. *)
  let cfg = { Tpc.default_config with coordinator_crash = Tpc.After_prepare } in
  let o = run cfg in
  check_bool "all blocked" true
    (List.for_all (( = ) Tpc.Blocked) o.Tpc.statuses);
  check_bool "atomic commitment (vacuous)" true (Tpc.atomic_commitment o)

let test_mid_decision_crash_recovers_via_peers () =
  (* The coordinator dies after telling only the first participant;
     cooperative termination spreads the decision. *)
  let cfg =
    { Tpc.default_config with coordinator_crash = Tpc.Mid_decision 1 }
  in
  let o = run cfg in
  check_bool "all committed eventually" true (all_committed o);
  check_bool "atomic commitment" true (Tpc.atomic_commitment o)

let test_participant_crash_before_vote () =
  (* A dead participant never votes; the survivors learn the outcome
     through the termination protocol (the idle peer refuses).  The
     coordinator never decides commit, so atomicity holds. *)
  let cfg =
    { Tpc.default_config with participant_crash = Some (1, `Before_vote) }
  in
  let o = run cfg in
  check_bool "atomic commitment" true (Tpc.atomic_commitment o);
  check_bool "no commit decided" true (Option.is_none o.Tpc.commit_ts);
  List.iteri
    (fun i st ->
      if i <> 1 then
        check_bool (Fmt.str "site %d aborted or blocked" i) true
          (st = Tpc.Aborted || st = Tpc.Blocked))
    o.Tpc.statuses

let test_deterministic () =
  let o1 = run Tpc.default_config and o2 = run Tpc.default_config in
  check_bool "same statuses" true (o1.Tpc.statuses = o2.Tpc.statuses);
  check_int "same message count" o1.Tpc.messages o2.Tpc.messages

let test_many_seeds_atomic () =
  (* Sweep delays/seeds and crash points: atomic commitment must hold
     in every run. *)
  let crash_points =
    [ Tpc.No_crash; Tpc.Before_prepare; Tpc.After_prepare;
      Tpc.Mid_decision 1; Tpc.Mid_decision 2 ]
  in
  List.iter
    (fun crash ->
      for seed = 1 to 20 do
        let cfg =
          {
            Tpc.default_config with
            participants = 4;
            site_clocks = [ 3; 1; 4; 1 ];
            votes = [ Tpc.Yes; Tpc.Yes; Tpc.Yes; Tpc.Yes ];
            coordinator_crash = crash;
            seed;
          }
        in
        let o = run cfg in
        check_bool
          (Fmt.str "seed %d atomic" seed)
          true (Tpc.atomic_commitment o);
        match o.Tpc.commit_ts with
        | Some ts ->
          check_bool "ts dominates clocks" true (ts > 4)
        | None -> ()
      done)
    crash_points

let test_chained_rounds_monotone () =
  (* Run several distributed commits in sequence, feeding each round's
     final clocks into the next: the commit timestamps must strictly
     increase — the precedes-consistency hybrid atomicity needs, across
     rounds and sites. *)
  let rec go round clocks acc =
    if round = 0 then List.rev acc
    else
      let cfg =
        { Tpc.default_config with site_clocks = clocks; seed = round }
      in
      let o = run cfg in
      match o.Tpc.commit_ts with
      | Some ts -> go (round - 1) o.Tpc.final_clocks (ts :: acc)
      | None -> Alcotest.fail "expected a commit"
  in
  let stamps = go 5 [ 0; 0; 0 ] [] in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  check_int "five rounds" 5 (List.length stamps);
  check_bool "commit timestamps strictly increase" true
    (strictly_increasing stamps)

let test_config_validation () =
  Alcotest.check_raises "clock length"
    (Invalid_argument "Tpc.run: site_clocks length mismatch") (fun () ->
      ignore (run { Tpc.default_config with site_clocks = [ 1 ] }));
  Alcotest.check_raises "votes length"
    (Invalid_argument "Tpc.run: votes length mismatch") (fun () ->
      ignore (run { Tpc.default_config with votes = [ Tpc.Yes ] }))

let test_msim_basics () =
  let delivered = ref [] in
  let sim =
    Msim.create ~seed:3 ~nodes:2
      ~handler:(fun _sim ~node msg -> delivered := (node, msg) :: !delivered)
      ()
  in
  Msim.send sim ~src:0 ~dst:1 "hello"; (* dst will be dead at delivery *)
  Msim.send sim ~src:1 ~dst:0 "world"; (* sent while 1 was still alive *)
  Msim.crash sim 1;
  Msim.send sim ~src:0 ~dst:1 "lost"; (* dst crashed at delivery *)
  Msim.send sim ~src:1 ~dst:0 "silent"; (* src crashed: never sent *)
  Msim.run sim;
  check_int "only the pre-crash outbound message lands" 1
    (List.length !delivered);
  check_bool "crashed flag" true (Msim.crashed sim 1);
  check_bool "node 0 alive" false (Msim.crashed sim 0)

let suite =
  [
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "timestamp exceeds site clocks" `Quick
      test_timestamp_exceeds_site_clocks;
    Alcotest.test_case "no-vote aborts everywhere" `Quick
      test_no_vote_aborts_everywhere;
    Alcotest.test_case "coordinator crash before prepare" `Quick
      test_coordinator_crash_before_prepare;
    Alcotest.test_case "coordinator crash after prepare blocks" `Quick
      test_coordinator_crash_after_prepare_blocks;
    Alcotest.test_case "mid-decision crash recovers" `Quick
      test_mid_decision_crash_recovers_via_peers;
    Alcotest.test_case "participant crash before vote" `Quick
      test_participant_crash_before_vote;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "atomic across seeds and crashes" `Quick
      test_many_seeds_atomic;
    Alcotest.test_case "chained rounds monotone" `Quick
      test_chained_rounds_monotone;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "message simulator basics" `Quick test_msim_basics;
  ]
