(* The online validator. *)

open Core
open Helpers

let test_tracks_paper_example () =
  let v = Validator.create set_env in
  Validator.feed_history v sec41_not_dynamic;
  let r = Validator.verdicts v in
  check_bool "well-formed" true r.Validator.well_formed;
  check_bool "atomic" true (r.Validator.atomic = Some true);
  check_bool "not dynamic atomic" true
    (r.Validator.dynamic_atomic = Some false);
  check_bool "static n/a without timestamps" true
    (r.Validator.static_atomic = None)

let test_incremental_verdict_changes () =
  let v = Validator.create set_env in
  (* A member(3) -> true on the empty set is fine while a is active
     (perm is empty)... *)
  Validator.feed v (Event.invoke a x (Intset.member 3));
  Validator.feed v (Event.respond a x (Value.Bool true));
  check_bool "active-only history is atomic" true
    ((Validator.verdicts v).Validator.atomic = Some true);
  (* ...but committing it makes the history non-atomic. *)
  Validator.feed v (Event.commit a x);
  check_bool "commit flips the verdict" true
    ((Validator.verdicts v).Validator.atomic = Some false)

let test_wellformedness_flagged () =
  let v = Validator.create set_env in
  Validator.feed v (Event.invoke a x (Intset.insert 1));
  Validator.feed v (Event.invoke a x (Intset.insert 2));
  check_bool "overlap detected" false
    (Validator.verdicts v).Validator.well_formed

let test_capping () =
  let v = Validator.create ~max_activities:2 set_env in
  List.iteri
    (fun i name ->
      let act = Activity.update name in
      Validator.feed v (Event.invoke act x (Intset.insert i));
      Validator.feed v (Event.respond act x Value.ok);
      Validator.feed v (Event.commit act x))
    [ "p"; "q"; "s" ];
  let r = Validator.verdicts v in
  check_bool "still checks well-formedness" true r.Validator.well_formed;
  check_bool "atomicity not computed past the cap" true
    (r.Validator.atomic = None)

let test_static_mode () =
  let v = Validator.create ~mode:Wellformed.Static set_env in
  Validator.feed_history v sec42_static;
  let r = Validator.verdicts v in
  check_bool "well-formed (static)" true r.Validator.well_formed;
  check_bool "static atomic" true (r.Validator.static_atomic = Some true);
  check_bool "not dynamic" true (r.Validator.dynamic_atomic = Some false)

let suite =
  [
    Alcotest.test_case "tracks the paper example" `Quick
      test_tracks_paper_example;
    Alcotest.test_case "incremental verdicts" `Quick
      test_incremental_verdict_changes;
    Alcotest.test_case "well-formedness flagged" `Quick
      test_wellformedness_flagged;
    Alcotest.test_case "activity cap" `Quick test_capping;
    Alcotest.test_case "static mode" `Quick test_static_mode;
  ]
