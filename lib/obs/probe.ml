type event =
  | Txn_begin of { txn : int; name : string; read_only : bool }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Op_invoke of { txn : int; obj : string; op : string; depth : int }
  | Op_grant of { txn : int; obj : string; op : string }
  | Op_wait of { txn : int; obj : string; op : string; blockers : int list }
  | Op_refuse of { txn : int; obj : string; op : string; why : string }
  | Deadlock_victim of { victim : int; cycle : int list }
  | Gauge_set of { name : string; value : float }
  | Count of { name : string; site : int }

type sink = { emit : time:float -> event -> unit }

let noop = { emit = (fun ~time:_ _ -> ()) }

let tee sinks =
  { emit = (fun ~time ev -> List.iter (fun s -> s.emit ~time ev) sinks) }

let pp_event ppf = function
  | Txn_begin { txn; name; read_only } ->
    Fmt.pf ppf "begin t%d %s%s" txn name (if read_only then " (ro)" else "")
  | Txn_commit { txn } -> Fmt.pf ppf "commit t%d" txn
  | Txn_abort { txn; reason } -> Fmt.pf ppf "abort t%d (%s)" txn reason
  | Op_invoke { txn; obj; op; depth } ->
    Fmt.pf ppf "invoke t%d %s.%s depth=%d" txn obj op depth
  | Op_grant { txn; obj; op } -> Fmt.pf ppf "grant t%d %s.%s" txn obj op
  | Op_wait { txn; obj; op; blockers } ->
    Fmt.pf ppf "wait t%d %s.%s on %a" txn obj op
      Fmt.(list ~sep:comma int)
      blockers
  | Op_refuse { txn; obj; op; why } ->
    Fmt.pf ppf "refuse t%d %s.%s (%s)" txn obj op why
  | Deadlock_victim { victim; cycle } ->
    Fmt.pf ppf "deadlock victim t%d cycle %a" victim
      Fmt.(list ~sep:(any "->") int)
      cycle
  | Gauge_set { name; value } -> Fmt.pf ppf "gauge %s=%g" name value
  | Count { name; site } -> Fmt.pf ppf "count %s site=%d" name site
