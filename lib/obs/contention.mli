(** Per-object contention accounting, fed by {!Probe} events.

    For every object it tracks invocation attempts, grants, blocked
    attempts (waits), refusals, deadlock involvement, the largest
    queue depth seen, a histogram of wait-interval durations (first
    blocked attempt → grant/refusal/abort) and a histogram of hold
    times (first contact → commit/abort).  It also keeps the current
    waits-for graph, so a snapshot can be dumped mid-run. *)

type obj_stats = {
  invokes : int;  (** invocation attempts, retries included *)
  grants : int;
  waits : int;  (** blocked attempts *)
  refusals : int;
  max_depth : int;  (** peak concurrent holders at the object *)
  wait_time : Metrics.Histogram.t;
  hold_time : Metrics.Histogram.t;
}

type t

val create : unit -> t
val sink : t -> Probe.sink

val per_object : t -> (string * obj_stats) list
(** Sorted by object name. *)

val wait_count : t -> string -> int
(** Blocked attempts recorded against the object; 0 if unknown. *)

val deadlocks : t -> int

val waits_for_edges : t -> (int * int list) list
(** The current waits-for graph: [(waiter, blockers)], sorted by
    waiter. *)

val report : t -> string
(** A text table (one row per object) followed by a waits-for snapshot
    when any transaction is still blocked. *)
