type phase = B | E | X | I | C | S | F

let string_of_phase = function
  | B -> "B"
  | E -> "E"
  | X -> "X"
  | I -> "i"
  | C -> "C"
  | S -> "s"
  | F -> "f"

let phase_of_string = function
  | "B" -> Some B
  | "E" -> Some E
  | "X" -> Some X
  | "i" | "I" -> Some I
  | "C" -> Some C
  | "s" -> Some S
  | "f" -> Some F
  | _ -> None

let pp_phase ppf p = Fmt.string ppf (string_of_phase p)

type ev = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  dur : float option;
  pid : int;
  tid : int;
  id : int option; (* binds a flow's s/f endpoints together *)
  args : (string * Json.t) list;
}

type open_op = { oo_obj : string; oo_op : string; oo_start : float }

type open_wait = {
  ow_obj : string;
  ow_op : string;
  ow_start : float;
  ow_blockers : int list;
}

type t = {
  pid : int;
  mutable events : ev list; (* newest first *)
  txn_names : (int, string) Hashtbl.t;
  open_ops : (int, open_op) Hashtbl.t;
  open_waits : (int, open_wait) Hashtbl.t;
}

let create ?(pid = 1) () =
  {
    pid;
    events = [];
    txn_names = Hashtbl.create 64;
    open_ops = Hashtbl.create 64;
    open_waits = Hashtbl.create 64;
  }

let push t ev = t.events <- ev :: t.events
let add = push
let pid t = t.pid

let txn_name t txn =
  match Hashtbl.find_opt t.txn_names txn with
  | Some n -> Fmt.str "txn %s" n
  | None -> Fmt.str "txn #%d" txn

(* Close the transaction's wait interval, if one is open. *)
let close_wait t ~time ~outcome txn =
  match Hashtbl.find_opt t.open_waits txn with
  | None -> ()
  | Some w ->
    Hashtbl.remove t.open_waits txn;
    push t
      {
        name = Fmt.str "wait %s" w.ow_obj;
        cat = "wait";
        ph = X;
        ts = w.ow_start;
        dur = Some (time -. w.ow_start);
        pid = t.pid;
        id = None;
        tid = txn;
        args =
          [
            ("op", Json.Str w.ow_op);
            ("outcome", Json.Str outcome);
            ( "blockers",
              Json.List
                (List.map (fun b -> Json.Num (float_of_int b)) w.ow_blockers)
            );
          ];
      }

(* Close the transaction's operation span, if one is open. *)
let close_op t ~time ~outcome txn =
  match Hashtbl.find_opt t.open_ops txn with
  | None -> ()
  | Some o ->
    Hashtbl.remove t.open_ops txn;
    push t
      {
        name = Fmt.str "%s.%s" o.oo_obj o.oo_op;
        cat = "op";
        ph = X;
        ts = o.oo_start;
        dur = Some (time -. o.oo_start);
        pid = t.pid;
        id = None;
        tid = txn;
        args = [ ("outcome", Json.Str outcome) ];
      }

let finish_txn t ~time ~outcome txn =
  close_wait t ~time ~outcome txn;
  close_op t ~time ~outcome txn;
  push t
    {
      name = txn_name t txn;
      cat = "txn";
      ph = E;
      ts = time;
      dur = None;
      pid = t.pid;
      id = None;
      tid = txn;
      args = [ ("outcome", Json.Str outcome) ];
    };
  Hashtbl.remove t.txn_names txn

let on_event t ~time (ev : Probe.event) =
  match ev with
  | Probe.Txn_begin { txn; name; read_only } ->
    Hashtbl.replace t.txn_names txn name;
    push t
      {
        name = Fmt.str "txn %s" name;
        cat = "txn";
        ph = B;
        ts = time;
        dur = None;
        pid = t.pid;
        id = None;
        tid = txn;
        args = [ ("read_only", Json.Bool read_only) ];
      }
  | Probe.Txn_commit { txn } -> finish_txn t ~time ~outcome:"commit" txn
  | Probe.Txn_abort { txn; reason } -> finish_txn t ~time ~outcome:reason txn
  | Probe.Op_invoke { txn; obj; op; depth = _ } ->
    if not (Hashtbl.mem t.open_ops txn) then
      Hashtbl.replace t.open_ops txn
        { oo_obj = obj; oo_op = op; oo_start = time }
  | Probe.Op_grant { txn; _ } ->
    close_wait t ~time ~outcome:"granted" txn;
    close_op t ~time ~outcome:"granted" txn
  | Probe.Op_wait { txn; obj; op; blockers } ->
    if not (Hashtbl.mem t.open_waits txn) then
      Hashtbl.replace t.open_waits txn
        { ow_obj = obj; ow_op = op; ow_start = time; ow_blockers = blockers }
  | Probe.Op_refuse { txn; obj; op; why } ->
    close_wait t ~time ~outcome:"refused" txn;
    close_op t ~time ~outcome:"refused" txn;
    push t
      {
        name = Fmt.str "refused %s.%s" obj op;
        cat = "refuse";
        ph = I;
        ts = time;
        dur = None;
        pid = t.pid;
        id = None;
        tid = txn;
        args = [ ("why", Json.Str why) ];
      }
  | Probe.Deadlock_victim { victim; cycle } ->
    push t
      {
        name = "deadlock victim";
        cat = "deadlock";
        ph = I;
        ts = time;
        dur = None;
        pid = t.pid;
        id = None;
        tid = victim;
        args =
          [
            ( "cycle",
              Json.List (List.map (fun x -> Json.Num (float_of_int x)) cycle)
            );
          ];
      }
  | Probe.Gauge_set { name; value } ->
    push t
      {
        name;
        cat = "gauge";
        ph = C;
        ts = time;
        dur = None;
        pid = t.pid;
        id = None;
        tid = 0;
        args = [ ("value", Json.Num value) ];
      }
  | Probe.Count { name; site } ->
    push t
      {
        name;
        cat = "count";
        ph = I;
        ts = time;
        dur = None;
        pid = t.pid;
        id = None;
        tid = site;
        args = [];
      }

let sink t = { Probe.emit = (fun ~time ev -> on_event t ~time ev) }
let events t = List.rev t.events

let ev_to_json e =
  Json.Obj
    (List.concat
       [
         [
           ("name", Json.Str e.name);
           ("cat", Json.Str e.cat);
           ("ph", Json.Str (string_of_phase e.ph));
           ("ts", Json.Num e.ts);
         ];
         (match e.dur with
         | Some d -> [ ("dur", Json.Num d) ]
         | None -> []);
         (match e.ph with
         | I -> [ ("s", Json.Str "t") ] (* instant scope: thread *)
         | _ -> []);
         (match e.id with
         | Some id -> [ ("id", Json.Num (float_of_int id)) ]
         | None -> []);
         [
           ("pid", Json.Num (float_of_int e.pid));
           ("tid", Json.Num (float_of_int e.tid));
         ];
         (match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ]);
       ])

let events_to_json evs = Json.List (List.map ev_to_json evs)
let export_events evs = Json.to_string (events_to_json evs)
let to_json t = events_to_json (events t)
let export t = Json.to_string (to_json t)

let ev_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Fmt.str "trace event missing or ill-typed %S" name)
  in
  let* name = field "name" Json.to_str in
  let* ph_s = field "ph" Json.to_str in
  let* ph =
    Option.to_result
      ~none:(Fmt.str "unknown trace phase %S" ph_s)
      (phase_of_string ph_s)
  in
  let* ts = field "ts" Json.to_float in
  let* pid = field "pid" Json.to_int in
  let* tid = field "tid" Json.to_int in
  let cat =
    Option.value ~default:""
      (Option.bind (Json.member "cat" j) Json.to_str)
  in
  let dur = Option.bind (Json.member "dur" j) Json.to_float in
  let id = Option.bind (Json.member "id" j) Json.to_int in
  let args =
    match Json.member "args" j with
    | Some (Json.Obj fields) -> fields
    | _ -> []
  in
  Ok { name; cat; ph; ts; dur; pid; tid; id; args }

let parse s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok (Json.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
        match ev_of_json j with
        | Ok e -> go (e :: acc) rest
        | Error e -> Error e)
    in
    go [] items
  | Ok _ -> Error "trace file is not a JSON array"
