(** The instrumentation hook: a stream of protocol-level events.

    The transaction manager (and anything else that wants to be
    observable) emits {!event}s into an installed {!sink}.  When no
    sink is installed the instrumented code skips event construction
    entirely, so the hooks cost one branch on the hot path.

    Identifiers are plain [int]s and [string]s — the probe layer knows
    nothing about the event model, so it can sit below every other
    library in the tree. *)

type event =
  | Txn_begin of { txn : int; name : string; read_only : bool }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Op_invoke of { txn : int; obj : string; op : string; depth : int }
      (** An invocation attempt; [depth] is the number of transactions
          holding state at the object when the attempt was made. *)
  | Op_grant of { txn : int; obj : string; op : string }
  | Op_wait of { txn : int; obj : string; op : string; blockers : int list }
  | Op_refuse of { txn : int; obj : string; op : string; why : string }
  | Deadlock_victim of { victim : int; cycle : int list }
  | Gauge_set of { name : string; value : float }
      (** A sampled gauge (blocked clients, queue depth, …). *)
  | Count of { name : string; site : int }
      (** A named occurrence at a site — distributed-protocol phase
          counters. *)

type sink = { emit : time:float -> event -> unit }
(** [time] is supplied by whoever installs the sink: simulation ticks
    in the discrete-event driver, microseconds in the multicore
    runtime. *)

val noop : sink
(** Discards everything. *)

val tee : sink list -> sink
(** Fan an event out to several sinks in order. *)

val pp_event : Format.formatter -> event -> unit
