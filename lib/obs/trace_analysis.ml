type breakdown = {
  wait : float;
  wal : float;
  flight : float;
  tpc : float;
  exec : float;
}

let breakdown_total b = b.wait +. b.wal +. b.flight +. b.tpc +. b.exec

type txn = {
  name : string;
  gid : int;
  t_begin : float;
  t_end : float;
  total : float;
  fanout : int;
  phases : breakdown;
}

type stats = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type report = {
  txns : txn list;
  committed : int;
  events : int;
  cross_shard : bool;
  phase_stats : (string * stats) list;
}

(* Interval arithmetic over [(start, stop)] float pairs.  [norm] sorts,
   drops empties and coalesces overlaps, so the priority subtraction
   below never double-counts a tick. *)

let norm ivs =
  let ivs = List.filter (fun (a, b) -> b > a) ivs in
  match List.sort compare ivs with
  | [] -> []
  | hd :: tl ->
    let rec go (a, b) acc = function
      | [] -> List.rev ((a, b) :: acc)
      | (c, d) :: rest ->
        if c <= b then go (a, Float.max b d) acc rest
        else go (c, d) ((a, b) :: acc) rest
    in
    go hd [] tl

(* [subtract a b]: the parts of [a] not covered by [b].  Both inputs
   sorted and disjoint; so is the result. *)
let subtract a b =
  List.concat_map
    (fun (s, e) ->
      let rec go s acc = function
        | [] -> List.rev ((s, e) :: acc)
        | (bs, be) :: rest ->
          if be <= s then go s acc rest
          else if bs >= e then List.rev ((s, e) :: acc)
          else
            let acc = if bs > s then (s, bs) :: acc else acc in
            let s' = Float.max s be in
            if s' >= e then List.rev acc else go s' acc rest
      in
      go s [] b)
    a

let clip ~lo ~hi ivs =
  List.filter_map
    (fun (a, b) ->
      let a = Float.max a lo and b = Float.min b hi in
      if b > a then Some (a, b) else None)
    ivs

let len ivs = List.fold_left (fun s (a, b) -> s +. (b -. a)) 0. ivs

let arg_int args k =
  match List.assoc_opt k args with
  | Some (Json.Num f) -> Some (int_of_float f)
  | _ -> None

let arg_str args k =
  match List.assoc_opt k args with Some (Json.Str s) -> Some s | _ -> None

(* A matched B/E transaction pair. *)
type pair = {
  p_name : string;
  p_pid : int;
  p_tid : int;
  p_gid : int;
  p_b : float;
  p_e : float;
  p_outcome : string;
}

let stats_of xs =
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then { n = 0; mean = 0.; p50 = 0.; p95 = 0.; p99 = 0.; max = 0. }
  else
    let sum = Array.fold_left ( +. ) 0. arr in
    let pct p =
      (* nearest-rank on the sorted sample *)
      arr.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
    in
    {
      n;
      mean = sum /. float_of_int n;
      p50 = pct 0.5;
      p95 = pct 0.95;
      p99 = pct 0.99;
      max = arr.(n - 1);
    }

let analyze evs =
  let evs =
    List.stable_sort (fun (a : Trace.ev) (b : Trace.ev) -> compare a.ts b.ts) evs
  in
  let opens : (int * int, Trace.ev) Hashtbl.t = Hashtbl.create 64 in
  let pairs = ref [] in
  let waits : (int * int, (float * float) list) Hashtbl.t = Hashtbl.create 64 in
  let wal = Hashtbl.create 16 in
  let flight = Hashtbl.create 16 in
  let tpc = Hashtbl.create 16 in
  let push tbl k iv =
    Hashtbl.replace tbl k
      (iv :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  List.iter
    (fun (e : Trace.ev) ->
      match (e.ph, e.cat) with
      | Trace.B, "txn" -> Hashtbl.replace opens (e.pid, e.tid) e
      | Trace.E, "txn" -> (
        match Hashtbl.find_opt opens (e.pid, e.tid) with
        | None -> ()
        | Some b ->
          Hashtbl.remove opens (e.pid, e.tid);
          pairs :=
            {
              p_name = b.name;
              p_pid = e.pid;
              p_tid = e.tid;
              p_gid = Option.value ~default:e.tid (arg_int b.args "gid");
              p_b = b.ts;
              p_e = e.ts;
              p_outcome = Option.value ~default:"" (arg_str e.args "outcome");
            }
            :: !pairs)
      | Trace.X, "wait" ->
        let d = Option.value ~default:0. e.dur in
        push waits (e.pid, e.tid) (e.ts, e.ts +. d)
      | Trace.X, ("wal" | "flight" | "tpc" | "tpc.phase") -> (
        match arg_int e.args "gid" with
        | None -> ()
        | Some g ->
          let d = Option.value ~default:0. e.dur in
          let tbl =
            match e.cat with "wal" -> wal | "flight" -> flight | _ -> tpc
          in
          push tbl g (e.ts, e.ts +. d))
      | _ -> ())
    evs;
  let pairs = List.rev !pairs in
  let cross_shard = List.exists (fun p -> p.p_pid = 0) pairs in
  (* In a merged trace each shard leg carries the same span name as its
     coordinator transaction, so legs group by name. *)
  let legs_by_name = Hashtbl.create 64 in
  if cross_shard then
    List.iter
      (fun p -> if p.p_pid > 0 then push legs_by_name p.p_name (p.p_pid, p.p_tid))
      pairs;
  let roots =
    List.filter
      (fun p -> p.p_outcome = "commit" && ((not cross_shard) || p.p_pid = 0))
      pairs
  in
  let get tbl k = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  let txns =
    List.map
      (fun p ->
        let legs =
          if cross_shard then get legs_by_name p.p_name
          else [ (p.p_pid, p.p_tid) ]
        in
        let lo = p.p_b and hi = p.p_e in
        let wait_ivs =
          norm
            (clip ~lo ~hi
               (List.concat_map (fun l -> get waits l)
                  ((p.p_pid, p.p_tid) :: legs)))
        in
        let wal_ivs = norm (clip ~lo ~hi (get wal p.p_gid)) in
        let flight_ivs = norm (clip ~lo ~hi (get flight p.p_gid)) in
        let tpc_ivs = norm (clip ~lo ~hi (get tpc p.p_gid)) in
        (* Priority: wait > wal > flight > 2pc > execution. *)
        let wal_net = subtract wal_ivs wait_ivs in
        let flight_net = subtract (subtract flight_ivs wait_ivs) wal_ivs in
        let tpc_net =
          subtract (subtract (subtract tpc_ivs wait_ivs) wal_ivs) flight_ivs
        in
        let total = hi -. lo in
        let w = len wait_ivs
        and wl = len wal_net
        and f = len flight_net
        and tp = len tpc_net in
        let exec = Float.max 0. (total -. w -. wl -. f -. tp) in
        {
          name = p.p_name;
          gid = p.p_gid;
          t_begin = lo;
          t_end = hi;
          total;
          fanout = max 1 (List.length legs);
          phases = { wait = w; wal = wl; flight = f; tpc = tp; exec };
        })
      roots
  in
  let phase_stats =
    [
      ("wait", stats_of (List.map (fun t -> t.phases.wait) txns));
      ("wal", stats_of (List.map (fun t -> t.phases.wal) txns));
      ("flight", stats_of (List.map (fun t -> t.phases.flight) txns));
      ("2pc", stats_of (List.map (fun t -> t.phases.tpc) txns));
      ("exec", stats_of (List.map (fun t -> t.phases.exec) txns));
      ("total", stats_of (List.map (fun t -> t.total) txns));
    ]
  in
  {
    txns;
    committed = List.length txns;
    events = List.length evs;
    cross_shard;
    phase_stats;
  }

let top_slowest r k =
  let sorted =
    List.sort (fun a b -> compare (b.total, b.gid) (a.total, a.gid)) r.txns
  in
  List.filteri (fun i _ -> i < k) sorted

let pct_of part total = if total <= 0. then 0. else 100. *. part /. total

let render ?(top = 5) r =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  pf "trace analysis: %d events, %d committed transactions%s\n" r.events
    r.committed
    (if r.cross_shard then " (cross-shard)" else "");
  pf "%-8s %8s %8s %8s %8s %8s\n" "phase" "mean" "p50" "p95" "p99" "max";
  List.iter
    (fun (name, s) ->
      pf "%-8s %8.1f %8.1f %8.1f %8.1f %8.1f\n" name s.mean s.p50 s.p95 s.p99
        s.max)
    r.phase_stats;
  let slow = top_slowest r top in
  if slow <> [] then begin
    pf "slowest transactions:\n";
    List.iter
      (fun t ->
        pf
          "  %-12s gid %-4d fanout %d  total %6.1f | wait %.1f (%.0f%%)  wal \
           %.1f  flight %.1f (%.0f%%)  2pc %.1f (%.0f%%)  exec %.1f (%.0f%%)\n"
          t.name t.gid t.fanout t.total t.phases.wait
          (pct_of t.phases.wait t.total)
          t.phases.wal t.phases.flight
          (pct_of t.phases.flight t.total)
          t.phases.tpc
          (pct_of t.phases.tpc t.total)
          t.phases.exec
          (pct_of t.phases.exec t.total))
      slow
  end;
  Buffer.contents buf

let stats_to_json s =
  Json.Obj
    [
      ("n", Json.Num (float_of_int s.n));
      ("mean", Json.Num s.mean);
      ("p50", Json.Num s.p50);
      ("p95", Json.Num s.p95);
      ("p99", Json.Num s.p99);
      ("max", Json.Num s.max);
    ]

let txn_to_json t =
  Json.Obj
    [
      ("name", Json.Str t.name);
      ("gid", Json.Num (float_of_int t.gid));
      ("begin", Json.Num t.t_begin);
      ("end", Json.Num t.t_end);
      ("total", Json.Num t.total);
      ("fanout", Json.Num (float_of_int t.fanout));
      ("wait", Json.Num t.phases.wait);
      ("wal", Json.Num t.phases.wal);
      ("flight", Json.Num t.phases.flight);
      ("tpc", Json.Num t.phases.tpc);
      ("exec", Json.Num t.phases.exec);
    ]

let to_json ?(top = 5) r =
  Json.Obj
    [
      ("events", Json.Num (float_of_int r.events));
      ("committed", Json.Num (float_of_int r.committed));
      ("cross_shard", Json.Bool r.cross_shard);
      ( "phases",
        Json.Obj (List.map (fun (k, s) -> (k, stats_to_json s)) r.phase_stats)
      );
      ("slowest", Json.List (List.map txn_to_json (top_slowest r top)));
    ]
