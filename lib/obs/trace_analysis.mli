(** Critical-path analysis of exported traces.

    Feed it the events of a Chrome trace produced by this repo — a
    single-system {!Trace} or a merged cross-shard {!Shard_trace} — and
    it attributes every committed transaction's wall-clock interval
    [begin, end] to named phases:

    - {e lock wait} — ["wait"] spans of the transaction's legs;
    - {e wal sync} — ["wal"] markers of its 2PC round (zero-width in
      virtual time: durable appends are instantaneous in the
      simulator, so this phase reports 0 until the model charges them);
    - {e message flight} — ["flight"] spans of its 2PC round;
    - {e 2pc coordination} — the round's ["tpc"] span net of the
      above (vote counting, decision latching, timeout bookkeeping);
    - {e execution} — the remainder.

    Overlaps are resolved by that priority order (wait > wal > flight >
    2pc > execution), so the five phases partition the interval exactly
    and always sum to the transaction's total. *)

type breakdown = {
  wait : float;
  wal : float;
  flight : float;
  tpc : float;
  exec : float;
}

val breakdown_total : breakdown -> float

type txn = {
  name : string;  (** the span name, e.g. ["txn u5"] *)
  gid : int;  (** global id (coordinator traces) or local txn id *)
  t_begin : float;
  t_end : float;
  total : float;
  fanout : int;  (** shard legs matched to this transaction *)
  phases : breakdown;
}

type stats = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

type report = {
  txns : txn list;  (** committed transactions, in begin order *)
  committed : int;
  events : int;  (** events analyzed *)
  cross_shard : bool;
      (** true when the trace has a coordinator timeline (pid 0) *)
  phase_stats : (string * stats) list;
      (** per-phase distribution over committed transactions, in
          priority order, ending with ["total"] *)
}

val analyze : Trace.ev list -> report
(** Events may arrive in any order; aborted transactions and unmatched
    begin/end pairs are skipped. *)

val top_slowest : report -> int -> txn list
(** The k slowest committed transactions by total duration. *)

val render : ?top:int -> report -> string
(** Human-readable report: summary, per-phase percentile table and the
    [top] (default 5) slowest transactions with their breakdowns. *)

val to_json : ?top:int -> report -> Json.t
