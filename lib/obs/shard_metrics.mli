(** Per-shard contention and 2PC round metrics for the sharded runtime.

    A thin convention layer over {!Metrics}: one counter family per
    shard ([shard<i>.committed.local], [.committed.tpc], [.aborted],
    [.prepared], [.conflicts], plus an [in_doubt] gauge), and
    group-wide 2PC instruments ([tpc.rounds], [tpc.commit],
    [tpc.abort], [tpc.messages], [tpc.duration], [txn.shard_fanout]).
    All instruments live in one {!Metrics.Registry}, so the usual
    text/JSON renderers see them too. *)

type shard = {
  committed_local : Metrics.Counter.t;
      (** single-shard fast-path commits *)
  committed_tpc : Metrics.Counter.t;  (** commits decided by 2PC *)
  aborted : Metrics.Counter.t;
  prepared : Metrics.Counter.t;  (** yes-votes (prepare records) *)
  conflicts : Metrics.Counter.t;  (** operations that blocked *)
  in_doubt : Metrics.Gauge.t;  (** currently prepared, undecided *)
  mailbox_depth : Metrics.Gauge.t;
      (** queued requests in the shard's mailbox (multicore runtime);
          [max] is the high-water mark *)
}

type t

val create :
  ?registry:Metrics.Registry.t -> ?replicas:int -> shards:int -> unit -> t
(** Instruments for [shards] shards, registered in [registry] (a fresh
    one by default).  [replicas] (default 0) additionally creates the
    read-replica instruments ([replica<i>.lag.records], [.lag.vtime],
    [.applied], [.reads], plus group-wide [replication.promotions],
    [.resyncs] and [.stale_bounces]).
    @raise Invalid_argument if [shards <= 0] or [replicas < 0]. *)

val registry : t -> Metrics.Registry.t
val shard_count : t -> int

val shard : t -> int -> shard
(** @raise Invalid_argument if the index is out of range. *)

val local_commit : t -> int -> unit
val tpc_commit_at : t -> int -> unit
val abort_at : t -> int -> unit
val prepare_at : t -> int -> unit
val conflict_at : t -> int -> unit
val set_in_doubt : t -> int -> int -> unit
val set_mailbox_depth : t -> int -> int -> unit

(** {1 Read-replica instruments}

    Populated by the replica tier ({!Weihl_replica.Tier} feeds them
    when constructed with [?metrics]); all no-arg-safe only when the
    instruments exist — the per-replica calls raise on an index outside
    the [replicas] the metrics were created with. *)

val replica_count : t -> int

val set_replica_lag : t -> replica:int -> records:int -> vtime:int -> unit
(** The replica's apply lag right now: feed records not yet applied,
    and the timestamp-domain staleness (group clock minus the
    replica's oldest live-shard high-water mark). *)

val replica_applied : t -> replica:int -> records:int -> unit
(** Tick the replica's applied-records counter by one segment's worth. *)

val replica_read : t -> replica:int -> unit
(** One snapshot read served by the replica. *)

val replica_resync : t -> unit
val stale_bounce : t -> unit
val promotion : t -> unit

val replica_lag : t -> int -> int
val replica_lag_vtime : t -> int -> int
val replica_applied_count : t -> int -> int
val replica_reads : t -> int -> int
val promotion_count : t -> int
val resync_count : t -> int
val stale_bounce_count : t -> int

val tpc_round :
  t -> committed:bool -> messages:int -> duration:int -> fanout:int -> unit
(** Record one completed 2PC round: its decision, message count,
    virtual duration, and the transaction's shard fan-out. *)

val tpc_duration : t -> Metrics.Histogram.t
(** Virtual duration of completed 2PC rounds. *)

val fanout : t -> Metrics.Histogram.t
(** Shard fan-out of transactions that ran a 2PC round. *)

val wal_sync : t -> records:int -> unit
(** Record one WAL device sync that made [records] previously-appended
    records durable at once (group commit: [records] is the batch
    size).  Ticks [wal.appends] by [records], [wal.syncs] by one, and
    observes [records] in the [group_commit.batch_size] histogram. *)

val syncs_per_commit : t -> float
(** [wal.syncs / total commits] across all shards — group commit is
    paying off when this is below 1.  [0.] before any commit. *)

val group_commit_batch : t -> Metrics.Histogram.t
(** Records made durable per WAL sync ([group_commit.batch_size]). *)

val wal_sync_count : t -> int
val wal_append_count : t -> int

val mailbox_depth : t -> int -> float
(** High-water mark of shard [i]'s mailbox depth. *)

val checkpoint_written : t -> duration:float -> age:int -> unit
(** Record one checkpoint file made durable.  [duration] is the
    wall-clock cost of capture+encode+marker sync in microseconds
    ([checkpoint.write_duration]); [age] is how many records the log
    head is past the checkpoint's redo point — the tail a crash right
    now would replay ([checkpoint.age_records] gauge). *)

val recovery_done : t -> duration:float -> records:int -> unit
(** Record one completed shard recovery: wall-clock [duration] in
    microseconds ([recovery.duration]) and the number of WAL [records]
    actually replayed ([recovery.records_replayed]) — the tail behind a
    checkpoint, or the whole log when none was usable. *)

val checkpoint_count : t -> int
val checkpoint_write : t -> Metrics.Histogram.t
val checkpoint_age : t -> float
val recovery_count : t -> int
val recovery_duration : t -> Metrics.Histogram.t
val recovery_records : t -> Metrics.Histogram.t

val render : t -> string
(** A per-shard table, a 2PC summary line, full one-line histogram
    summaries (count, mean, percentiles, max) for [tpc.duration] and
    [txn.shard_fanout], and — once any sync happened — a WAL/group
    commit summary.  Checkpoint and recovery summaries appear once any
    checkpoint was written or any recovery ran. *)
