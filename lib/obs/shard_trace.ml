(* One trace per simulated process — pid 0 for the group coordinator,
   pid s+1 for shard s — merged into a single cross-shard timeline on
   export.  The flow/span id counter is shared so ids stay unique
   across the whole group. *)

type t = {
  coord : Trace.t;
  shards : Trace.t array;
  mutable now : unit -> float;
  mutable next_id : int;
}

let create ~shards =
  if shards <= 0 then invalid_arg "Shard_trace.create: shards must be positive";
  {
    coord = Trace.create ~pid:0 ();
    shards = Array.init shards (fun s -> Trace.create ~pid:(s + 1) ());
    now = (fun () -> 0.);
    next_id = 0;
  }

let shard_count t = Array.length t.shards
let set_now t f = t.now <- f
let now t = t.now ()
let coord t = t.coord

let shard t s =
  if s < 0 || s >= Array.length t.shards then
    invalid_arg "Shard_trace.shard: shard out of range";
  t.shards.(s)

let shard_sink t s = Trace.sink (shard t s)

let fresh_id t =
  let i = t.next_id in
  t.next_id <- i + 1;
  i

let num n = Json.Num (float_of_int n)

let span ?(args = []) tr ~name ~cat ~ts ~dur ~tid =
  Trace.add tr
    {
      Trace.name;
      cat;
      ph = Trace.X;
      ts;
      dur = Some dur;
      pid = Trace.pid tr;
      tid;
      id = None;
      args;
    }

let mark ?(args = []) tr ~ph ~name ~cat ~ts ~tid =
  Trace.add tr
    {
      Trace.name;
      cat;
      ph;
      ts;
      dur = None;
      pid = Trace.pid tr;
      tid;
      id = None;
      args;
    }

let begin_span ?args tr ~name ~cat ~ts ~tid =
  mark ?args tr ~ph:Trace.B ~name ~cat ~ts ~tid

let end_span ?args tr ~name ~cat ~ts ~tid =
  mark ?args tr ~ph:Trace.E ~name ~cat ~ts ~tid

let instant ?args tr ~name ~cat ~ts ~tid =
  mark ?args tr ~ph:Trace.I ~name ~cat ~ts ~tid

(* A flow arrow: an [s] event where the message leaves and an [f] event
   where it lands, bound by a fresh shared id. *)
let flow ?(args = []) t ~name ~cat ~src ~src_ts ~src_tid ~dst ~dst_ts ~dst_tid
    =
  let id = fresh_id t in
  let ev tr ph ts tid =
    Trace.add tr
      {
        Trace.name;
        cat;
        ph;
        ts;
        dur = None;
        pid = Trace.pid tr;
        tid;
        id = Some id;
        args;
      }
  in
  ev src Trace.S src_ts src_tid;
  ev dst Trace.F dst_ts dst_tid;
  id

let events t =
  let all =
    Trace.events t.coord
    :: List.map Trace.events (Array.to_list t.shards)
  in
  List.stable_sort
    (fun a b -> Float.compare a.Trace.ts b.Trace.ts)
    (List.concat all)

let to_json t = Trace.events_to_json (events t)
let export t = Json.to_string (to_json t)
