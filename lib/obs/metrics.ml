(* Instruments are domain-safe: counters are Atomic-backed and gauges,
   histograms and the registry itself are guarded by per-instance
   mutexes, so probes can tick from shard domains (lib/shard/exec.ml)
   while the coordinator reads or renders.  The locks are leaves —
   no instrument operation calls another locking operation while
   holding its own lock — so there is no ordering to get wrong. *)

module Counter = struct
  type t = { n : int Atomic.t }

  let create () = { n = Atomic.make 0 }
  let incr t = ignore (Atomic.fetch_and_add t.n 1)
  let add t k = ignore (Atomic.fetch_and_add t.n k)
  let value t = Atomic.get t.n
end

module Gauge = struct
  type t = { m : Mutex.t; mutable v : float; mutable max : float }

  let create () = { m = Mutex.create (); v = 0.; max = 0. }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let set t x =
    locked t (fun () ->
        t.v <- x;
        if x > t.max then t.max <- x)

  let add t dx =
    locked t (fun () ->
        t.v <- t.v +. dx;
        if t.v > t.max then t.max <- t.v)

  let value t = locked t (fun () -> t.v)
  let max_value t = locked t (fun () -> t.max)
end

module Histogram = struct
  type t = {
    m : Mutex.t;
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* length = Array.length bounds + 1 (overflow) *)
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let default_buckets =
    Array.init 40 (fun i -> 1.5 ** float_of_int i)

  let create ?(buckets = default_buckets) () =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Histogram.create: bounds must be strictly increasing")
      buckets;
    {
      m = Mutex.create ();
      bounds = Array.copy buckets;
      counts = Array.make (Array.length buckets + 1) 0;
      count = 0;
      sum = 0.;
      min = infinity;
      max = neg_infinity;
    }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  (* Index of the first bound >= x, or the overflow slot. *)
  let bucket_index t x =
    let lo = ref 0 and hi = ref (Array.length t.bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo

  let observe t x =
    locked t (fun () ->
        let i = bucket_index t x in
        t.counts.(i) <- t.counts.(i) + 1;
        t.count <- t.count + 1;
        t.sum <- t.sum +. x;
        if x < t.min then t.min <- x;
        if x > t.max then t.max <- x)

  let count t = locked t (fun () -> t.count)
  let sum t = locked t (fun () -> t.sum)

  let mean t =
    locked t (fun () ->
        if t.count = 0 then 0. else t.sum /. float_of_int t.count)

  let min_value t = locked t (fun () -> if t.count = 0 then 0. else t.min)
  let max_value t = locked t (fun () -> if t.count = 0 then 0. else t.max)

  let unsafe_percentile t p =
    if t.count = 0 then 0.
    else begin
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int t.count))
        |> max 1 |> min t.count
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank && !i < Array.length t.counts do
        seen := !seen + t.counts.(!i);
        if !seen < rank then incr i
      done;
      let estimate =
        if !i >= Array.length t.bounds then t.max else t.bounds.(!i)
      in
      estimate |> Float.min t.max |> Float.max t.min
    end

  let percentile t p = locked t (fun () -> unsafe_percentile t p)

  let unsafe_buckets t =
    List.init (Array.length t.counts) (fun i ->
        ( (if i < Array.length t.bounds then t.bounds.(i) else infinity),
          t.counts.(i) ))

  let buckets t = locked t (fun () -> unsafe_buckets t)

  (* A consistent copy taken under the source's lock; the copy shares no
     mutable state with the source, so merge never holds two locks. *)
  let snapshot t =
    locked t (fun () ->
        {
          m = Mutex.create ();
          bounds = t.bounds;
          counts = Array.copy t.counts;
          count = t.count;
          sum = t.sum;
          min = t.min;
          max = t.max;
        })

  (* Merging bucket counts loses nothing when the bounds agree, so a
     group-wide percentile over per-shard histograms is exactly the
     percentile of the union of observations. *)
  let merge a b =
    let a = snapshot a and b = snapshot b in
    if
      Array.length a.bounds <> Array.length b.bounds
      || not (Array.for_all2 (fun x y -> x = y) a.bounds b.bounds)
    then invalid_arg "Histogram.merge: bucket bounds differ";
    let t = create ~buckets:a.bounds () in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.count <- a.count + b.count;
    t.sum <- a.sum +. b.sum;
    t.min <- Float.min a.min b.min;
    t.max <- Float.max a.max b.max;
    t

  let merge_all = function
    | [] -> invalid_arg "Histogram.merge_all: empty list"
    | h :: rest -> List.fold_left merge h rest

  let pp ppf t =
    let t = snapshot t in
    Fmt.pf ppf "count %d mean %.1f p50 %.1f p95 %.1f p99 %.1f max %.1f"
      t.count
      (if t.count = 0 then 0. else t.sum /. float_of_int t.count)
      (unsafe_percentile t 50.) (unsafe_percentile t 95.)
      (unsafe_percentile t 99.)
      (if t.count = 0 then 0. else t.max)

  let to_json t =
    let t = snapshot t in
    Json.Obj
      [
        ("count", Json.Num (float_of_int t.count));
        ("sum", Json.Num t.sum);
        ( "mean",
          Json.Num (if t.count = 0 then 0. else t.sum /. float_of_int t.count)
        );
        ("min", Json.Num (if t.count = 0 then 0. else t.min));
        ("max", Json.Num (if t.count = 0 then 0. else t.max));
        ("p50", Json.Num (unsafe_percentile t 50.));
        ("p95", Json.Num (unsafe_percentile t 95.));
        ("p99", Json.Num (unsafe_percentile t 99.));
        ( "buckets",
          Json.List
            (List.filter_map
               (fun (ub, c) ->
                 if c = 0 then None
                 else
                   Some
                     (Json.Obj
                        [
                          ( "le",
                            if Float.is_integer ub || ub < infinity then
                              Json.Num ub
                            else Json.Str "inf" );
                          ("count", Json.Num (float_of_int c));
                        ]))
               (unsafe_buckets t)) );
      ]
end

module Registry = struct
  type instrument =
    | I_counter of Counter.t
    | I_gauge of Gauge.t
    | I_histogram of Histogram.t

  type t = {
    m : Mutex.t;
    by_name : (string, instrument) Hashtbl.t;
    mutable order : string list; (* newest first *)
  }

  let create () =
    { m = Mutex.create (); by_name = Hashtbl.create 32; order = [] }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let find_or_add t name make =
    locked t (fun () ->
        match Hashtbl.find_opt t.by_name name with
        | Some i -> i
        | None ->
          let i = make () in
          Hashtbl.replace t.by_name name i;
          t.order <- name :: t.order;
          i)

  let counter t name =
    match find_or_add t name (fun () -> I_counter (Counter.create ())) with
    | I_counter c -> c
    | _ -> invalid_arg (name ^ " is registered as a different instrument")

  let gauge t name =
    match find_or_add t name (fun () -> I_gauge (Gauge.create ())) with
    | I_gauge g -> g
    | _ -> invalid_arg (name ^ " is registered as a different instrument")

  let histogram ?buckets t name =
    match
      find_or_add t name (fun () -> I_histogram (Histogram.create ?buckets ()))
    with
    | I_histogram h -> h
    | _ -> invalid_arg (name ^ " is registered as a different instrument")

  let instruments t =
    locked t (fun () ->
        List.rev_map
          (fun name -> (name, Hashtbl.find t.by_name name))
          t.order)

  let render_text t =
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, i) ->
        (match i with
        | I_counter c ->
          Buffer.add_string buf
            (Fmt.str "%-40s %d" name (Counter.value c))
        | I_gauge g ->
          Buffer.add_string buf
            (Fmt.str "%-40s %g (max %g)" name (Gauge.value g)
               (Gauge.max_value g))
        | I_histogram h ->
          Buffer.add_string buf (Fmt.str "%-40s %a" name Histogram.pp h));
        Buffer.add_char buf '\n')
      (instruments t);
    Buffer.contents buf

  let to_json t =
    Json.Obj
      (List.map
         (fun (name, i) ->
           let v =
             match i with
             | I_counter c -> Json.Num (float_of_int (Counter.value c))
             | I_gauge g ->
               Json.Obj
                 [
                   ("value", Json.Num (Gauge.value g));
                   ("max", Json.Num (Gauge.max_value g));
                 ]
             | I_histogram h -> Histogram.to_json h
           in
           (name, v))
         (instruments t))

  let render_json t = Json.to_string (to_json t)
end
