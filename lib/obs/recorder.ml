type t = {
  registry : Metrics.Registry.t;
  trace : Trace.t;
  contention : Contention.t;
}

let create () =
  {
    registry = Metrics.Registry.create ();
    trace = Trace.create ();
    contention = Contention.create ();
  }

let metrics_sink t =
  let r = t.registry in
  let begins = Metrics.Registry.counter r "txn.begin"
  and commits = Metrics.Registry.counter r "txn.commit"
  and aborts = Metrics.Registry.counter r "txn.abort"
  and grants = Metrics.Registry.counter r "op.grant"
  and waits = Metrics.Registry.counter r "op.wait"
  and refusals = Metrics.Registry.counter r "op.refuse"
  and victims = Metrics.Registry.counter r "deadlock.victims" in
  let emit ~time:_ (ev : Probe.event) =
    match ev with
    | Probe.Txn_begin _ -> Metrics.Counter.incr begins
    | Probe.Txn_commit _ -> Metrics.Counter.incr commits
    | Probe.Txn_abort _ -> Metrics.Counter.incr aborts
    | Probe.Op_invoke _ -> ()
    | Probe.Op_grant _ -> Metrics.Counter.incr grants
    | Probe.Op_wait { obj; _ } ->
      Metrics.Counter.incr waits;
      Metrics.Counter.incr
        (Metrics.Registry.counter r (Fmt.str "obj.%s.waits" obj))
    | Probe.Op_refuse _ -> Metrics.Counter.incr refusals
    | Probe.Deadlock_victim _ -> Metrics.Counter.incr victims
    | Probe.Gauge_set { name; value } ->
      Metrics.Gauge.set (Metrics.Registry.gauge r name) value
    | Probe.Count { name; site } ->
      Metrics.Counter.incr
        (Metrics.Registry.counter r (Fmt.str "%s.site%d" name site))
  in
  { Probe.emit }

let sink t =
  Probe.tee [ metrics_sink t; Trace.sink t.trace; Contention.sink t.contention ]

let report t =
  Metrics.Registry.render_text t.registry ^ "\n" ^ Contention.report t.contention

let export_trace t = Trace.export t.trace
