(** Cheap counters, gauges and fixed-bucket histograms, with a registry
    that renders snapshots as text or JSON.

    Every instrument is a few words of mutable state; observing into a
    histogram is a binary search over its (fixed) bucket bounds.  None
    of them allocate on the update path, so they can sit on protocol
    hot paths. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float

  val max_value : t -> float
  (** Largest value ever [set]; 0. initially. *)
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Geometric bounds 1, 1.5, 1.5², … (40 buckets, up to ~1e7) —
      suited to latencies measured in simulation ticks or
      microseconds. *)

  val create : ?buckets:float array -> unit -> t
  (** [buckets] are the inclusive upper bounds of the finite buckets,
      in increasing order; an overflow bucket catches the rest.
      @raise Invalid_argument if the bounds are not strictly
      increasing. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val mean : t -> float
  (** Exact ([sum]/[count]); 0. when empty. *)

  val min_value : t -> float
  (** Exact smallest observation; 0. when empty. *)

  val max_value : t -> float
  (** Exact largest observation; 0. when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100]: nearest-rank over the
      bucket counts.  The result is the upper bound of the bucket
      containing the rank (clamped to the exact max; the exact min for
      p = 0), so it is an upper estimate no finer than the bucket
      resolution.  0. when empty. *)

  val buckets : t -> (float * int) list
  (** [(upper_bound, count)] per finite bucket, then
      [(infinity, overflow_count)]. *)

  val pp : Format.formatter -> t -> unit
  (** One-line summary: count, mean, p50/p95/p99, max. *)

  val merge : t -> t -> t
  (** A fresh histogram holding the union of both observation sets.
      Lossless: with identical bounds, summing bucket counts preserves
      every percentile exactly as if the union had been observed
      directly — how per-shard latencies aggregate group-wide.
      @raise Invalid_argument if the bucket bounds differ. *)

  val merge_all : t list -> t
  (** Fold {!merge} over a non-empty list.
      @raise Invalid_argument on an empty list or mismatched bounds. *)

  val to_json : t -> Json.t
  (** Summary object: count/sum/mean/min/max/p50/p95/p99 plus the
      non-empty buckets. *)
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Get or create; the same name always yields the same counter. *)

  val gauge : t -> string -> Gauge.t

  val histogram : ?buckets:float array -> t -> string -> Histogram.t
  (** [buckets] only applies on first creation. *)

  val render_text : t -> string
  (** One instrument per line, in registration order. *)

  val to_json : t -> Json.t
  val render_json : t -> string
end
