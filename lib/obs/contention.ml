type obj_stats = {
  invokes : int;
  grants : int;
  waits : int;
  refusals : int;
  max_depth : int;
  wait_time : Metrics.Histogram.t;
  hold_time : Metrics.Histogram.t;
}

type obj_state = {
  mutable s_invokes : int;
  mutable s_grants : int;
  mutable s_waits : int;
  mutable s_refusals : int;
  mutable s_max_depth : int;
  s_wait_time : Metrics.Histogram.t;
  s_hold_time : Metrics.Histogram.t;
}

type t = {
  objects : (string, obj_state) Hashtbl.t;
  (* txn -> (obj, start of the current wait interval) *)
  waiting_since : (int, string * float) Hashtbl.t;
  (* txn -> current blockers *)
  edges : (int, int list) Hashtbl.t;
  (* (txn, obj) -> first-contact time *)
  first_contact : (int * string, float) Hashtbl.t;
  (* txn -> objects contacted (newest first, no duplicates) *)
  touched : (int, string list) Hashtbl.t;
  mutable deadlocks : int;
}

let create () =
  {
    objects = Hashtbl.create 16;
    waiting_since = Hashtbl.create 16;
    edges = Hashtbl.create 16;
    first_contact = Hashtbl.create 64;
    touched = Hashtbl.create 64;
    deadlocks = 0;
  }

let state t obj =
  match Hashtbl.find_opt t.objects obj with
  | Some s -> s
  | None ->
    let s =
      {
        s_invokes = 0;
        s_grants = 0;
        s_waits = 0;
        s_refusals = 0;
        s_max_depth = 0;
        s_wait_time = Metrics.Histogram.create ();
        s_hold_time = Metrics.Histogram.create ();
      }
    in
    Hashtbl.replace t.objects obj s;
    s

let close_wait t ~time txn =
  (match Hashtbl.find_opt t.waiting_since txn with
  | Some (obj, since) ->
    Metrics.Histogram.observe (state t obj).s_wait_time (time -. since);
    Hashtbl.remove t.waiting_since txn
  | None -> ());
  Hashtbl.remove t.edges txn

let finish_txn t ~time txn =
  close_wait t ~time txn;
  (match Hashtbl.find_opt t.touched txn with
  | Some objs ->
    List.iter
      (fun obj ->
        match Hashtbl.find_opt t.first_contact (txn, obj) with
        | Some since ->
          Metrics.Histogram.observe (state t obj).s_hold_time (time -. since);
          Hashtbl.remove t.first_contact (txn, obj)
        | None -> ())
      objs;
    Hashtbl.remove t.touched txn
  | None -> ())

let on_event t ~time (ev : Probe.event) =
  match ev with
  | Probe.Txn_begin _ | Probe.Gauge_set _ | Probe.Count _ -> ()
  | Probe.Txn_commit { txn } | Probe.Txn_abort { txn; _ } ->
    finish_txn t ~time txn
  | Probe.Op_invoke { txn; obj; depth; _ } ->
    let s = state t obj in
    s.s_invokes <- s.s_invokes + 1;
    if depth > s.s_max_depth then s.s_max_depth <- depth;
    if not (Hashtbl.mem t.first_contact (txn, obj)) then begin
      Hashtbl.replace t.first_contact (txn, obj) time;
      let objs =
        Option.value ~default:[] (Hashtbl.find_opt t.touched txn)
      in
      Hashtbl.replace t.touched txn (obj :: objs)
    end
  | Probe.Op_grant { txn; obj; _ } ->
    let s = state t obj in
    s.s_grants <- s.s_grants + 1;
    close_wait t ~time txn
  | Probe.Op_wait { txn; obj; blockers; _ } ->
    let s = state t obj in
    s.s_waits <- s.s_waits + 1;
    if not (Hashtbl.mem t.waiting_since txn) then
      Hashtbl.replace t.waiting_since txn (obj, time);
    Hashtbl.replace t.edges txn blockers
  | Probe.Op_refuse { txn; obj; _ } ->
    let s = state t obj in
    s.s_refusals <- s.s_refusals + 1;
    close_wait t ~time txn
  | Probe.Deadlock_victim _ -> t.deadlocks <- t.deadlocks + 1

let sink t = { Probe.emit = (fun ~time ev -> on_event t ~time ev) }

let per_object t =
  Hashtbl.fold
    (fun obj s acc ->
      ( obj,
        {
          invokes = s.s_invokes;
          grants = s.s_grants;
          waits = s.s_waits;
          refusals = s.s_refusals;
          max_depth = s.s_max_depth;
          wait_time = s.s_wait_time;
          hold_time = s.s_hold_time;
        } )
      :: acc)
    t.objects []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let wait_count t obj =
  match Hashtbl.find_opt t.objects obj with
  | Some s -> s.s_waits
  | None -> 0

let deadlocks t = t.deadlocks

let waits_for_edges t =
  Hashtbl.fold (fun waiter bs acc -> (waiter, bs) :: acc) t.edges []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "%-12s %8s %8s %8s %8s %6s %10s %10s %10s\n" "object" "invokes"
       "grants" "waits" "refused" "depth" "wait-mean" "wait-p95" "hold-mean");
  List.iter
    (fun (obj, s) ->
      Buffer.add_string buf
        (Fmt.str "%-12s %8d %8d %8d %8d %6d %10.1f %10.1f %10.1f\n" obj
           s.invokes s.grants s.waits s.refusals s.max_depth
           (Metrics.Histogram.mean s.wait_time)
           (Metrics.Histogram.percentile s.wait_time 95.)
           (Metrics.Histogram.mean s.hold_time)))
    (per_object t);
  if t.deadlocks > 0 then
    Buffer.add_string buf (Fmt.str "deadlock victims: %d\n" t.deadlocks);
  (match waits_for_edges t with
  | [] -> ()
  | edges ->
    Buffer.add_string buf "waits-for (still blocked at snapshot):\n";
    List.iter
      (fun (waiter, bs) ->
        Buffer.add_string buf
          (Fmt.str "  t%d -> %a\n" waiter
             Fmt.(list ~sep:comma (fmt "t%d"))
             bs))
      edges);
  Buffer.contents buf
