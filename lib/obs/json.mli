(** A minimal JSON value, printer and parser.

    The observability layer must emit (and, for testing, re-read)
    Chrome-trace files and metrics snapshots without pulling a JSON
    dependency into the tree; this module is deliberately small.
    Numbers are represented as [float]s ([Num]); integral values print
    without a fractional part. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; object fields compare in order. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error is a human-readable
    message with a character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
