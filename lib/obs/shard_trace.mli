(** A cross-shard trace: one {!Trace} per simulated process — pid 0 is
    the group coordinator's timeline, pid [s + 1] is shard [s] — merged
    on export into a single Chrome-trace JSON array.

    The shard traces are fed from each shard's probe ({!shard_sink});
    the coordinator timeline carries the global-transaction spans, 2PC
    phase spans and WAL-sync markers the shard runtime emits by hand.
    {!flow} draws an [s]/[f] arrow pair between two timelines — how a
    2PC message's departure at the coordinator is stitched to its
    arrival at a participant shard.  All events share one id counter,
    so flow ids are unique group-wide, and a single [now] closure (the
    driver's virtual clock) timestamps every timeline consistently. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument unless [shards] is positive. *)

val shard_count : t -> int

val set_now : t -> (unit -> float) -> unit
(** Install the virtual clock (initially constant 0) — the driver
    points this at its tick counter before running. *)

val now : t -> float

val coord : t -> Trace.t
(** The coordinator timeline, pid 0. *)

val shard : t -> int -> Trace.t
(** Shard [s]'s timeline, pid [s + 1].
    @raise Invalid_argument if out of range. *)

val shard_sink : t -> int -> Probe.sink
(** Probe sink assembling shard [s]'s transaction/op/wait spans. *)

val fresh_id : t -> int
(** Next group-unique span/flow id. *)

val num : int -> Json.t
(** Shorthand for numeric args. *)

val span :
  ?args:(string * Json.t) list ->
  Trace.t -> name:string -> cat:string -> ts:float -> dur:float ->
  tid:int -> unit
(** Append a complete ([X]) slice. *)

val begin_span :
  ?args:(string * Json.t) list ->
  Trace.t -> name:string -> cat:string -> ts:float -> tid:int -> unit

val end_span :
  ?args:(string * Json.t) list ->
  Trace.t -> name:string -> cat:string -> ts:float -> tid:int -> unit

val instant :
  ?args:(string * Json.t) list ->
  Trace.t -> name:string -> cat:string -> ts:float -> tid:int -> unit

val flow :
  ?args:(string * Json.t) list ->
  t ->
  name:string -> cat:string ->
  src:Trace.t -> src_ts:float -> src_tid:int ->
  dst:Trace.t -> dst_ts:float -> dst_tid:int ->
  int
(** Emit an [s] event on [src] and an [f] event on [dst] bound by a
    fresh id (returned). *)

val events : t -> Trace.ev list
(** All timelines merged, stably sorted by timestamp. *)

val to_json : t -> Json.t

val export : t -> string
(** The merged trace as Chrome-trace JSON; {!Trace.parse} reads it
    back. *)
