module M = Metrics

type shard = {
  committed_local : M.Counter.t;
  committed_tpc : M.Counter.t;
  aborted : M.Counter.t;
  prepared : M.Counter.t;
  conflicts : M.Counter.t;
  in_doubt : M.Gauge.t;
  mailbox_depth : M.Gauge.t;
}

type replica = {
  lag_records : M.Gauge.t;
  lag_vtime : M.Gauge.t;
  applied : M.Counter.t;
  replica_reads : M.Counter.t;
}

type t = {
  registry : M.Registry.t;
  shards : shard array;
  replicas : replica array;
  promotions : M.Counter.t;
  resyncs : M.Counter.t;
  stale_bounces : M.Counter.t;
  tpc_rounds : M.Counter.t;
  tpc_commits : M.Counter.t;
  tpc_aborts : M.Counter.t;
  tpc_messages : M.Counter.t;
  tpc_duration : M.Histogram.t;
  fanout : M.Histogram.t;
  wal_appends : M.Counter.t;
  wal_syncs : M.Counter.t;
  group_commit_batch : M.Histogram.t;
  checkpoints : M.Counter.t;
  checkpoint_write : M.Histogram.t;
  checkpoint_age : M.Gauge.t;
  recoveries : M.Counter.t;
  recovery_duration : M.Histogram.t;
  recovery_records : M.Histogram.t;
}

let fanout_buckets = Array.init 16 (fun i -> float_of_int (i + 1))

(* Batch sizes: 1..16 then powers of two up to 1024. *)
let batch_buckets =
  Array.of_list
    (List.init 16 (fun i -> float_of_int (i + 1))
    @ [ 32.; 64.; 128.; 256.; 512.; 1024. ])

let create ?registry ?(replicas = 0) ~shards () =
  if shards <= 0 then invalid_arg "Shard_metrics.create: shards must be positive";
  if replicas < 0 then
    invalid_arg "Shard_metrics.create: replicas must be non-negative";
  let registry =
    match registry with Some r -> r | None -> M.Registry.create ()
  in
  let replica i =
    let name what = Fmt.str "replica%d.%s" i what in
    {
      lag_records = M.Registry.gauge registry (name "lag.records");
      lag_vtime = M.Registry.gauge registry (name "lag.vtime");
      applied = M.Registry.counter registry (name "applied");
      replica_reads = M.Registry.counter registry (name "reads");
    }
  in
  let shard i =
    let c what = M.Registry.counter registry (Fmt.str "shard%d.%s" i what) in
    {
      committed_local = c "committed.local";
      committed_tpc = c "committed.tpc";
      aborted = c "aborted";
      prepared = c "prepared";
      conflicts = c "conflicts";
      in_doubt = M.Registry.gauge registry (Fmt.str "shard%d.in_doubt" i);
      mailbox_depth =
        M.Registry.gauge registry (Fmt.str "shard%d.mailbox_depth" i);
    }
  in
  {
    registry;
    shards = Array.init shards shard;
    replicas = Array.init replicas replica;
    promotions = M.Registry.counter registry "replication.promotions";
    resyncs = M.Registry.counter registry "replication.resyncs";
    stale_bounces = M.Registry.counter registry "replication.stale_bounces";
    tpc_rounds = M.Registry.counter registry "tpc.rounds";
    tpc_commits = M.Registry.counter registry "tpc.commit";
    tpc_aborts = M.Registry.counter registry "tpc.abort";
    tpc_messages = M.Registry.counter registry "tpc.messages";
    tpc_duration = M.Registry.histogram registry "tpc.duration";
    fanout =
      M.Registry.histogram ~buckets:fanout_buckets registry "txn.shard_fanout";
    wal_appends = M.Registry.counter registry "wal.appends";
    wal_syncs = M.Registry.counter registry "wal.syncs";
    group_commit_batch =
      M.Registry.histogram ~buckets:batch_buckets registry
        "group_commit.batch_size";
    checkpoints = M.Registry.counter registry "checkpoint.writes";
    checkpoint_write =
      M.Registry.histogram registry "checkpoint.write_duration";
    checkpoint_age = M.Registry.gauge registry "checkpoint.age_records";
    recoveries = M.Registry.counter registry "recovery.count";
    recovery_duration = M.Registry.histogram registry "recovery.duration";
    recovery_records =
      M.Registry.histogram ~buckets:batch_buckets registry
        "recovery.records_replayed";
  }

let registry t = t.registry
let shard_count t = Array.length t.shards

let shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Shard_metrics.shard: index out of range";
  t.shards.(i)

let local_commit t i = M.Counter.incr (shard t i).committed_local
let tpc_commit_at t i = M.Counter.incr (shard t i).committed_tpc
let abort_at t i = M.Counter.incr (shard t i).aborted
let prepare_at t i = M.Counter.incr (shard t i).prepared
let conflict_at t i = M.Counter.incr (shard t i).conflicts
let set_in_doubt t i n = M.Gauge.set (shard t i).in_doubt (float_of_int n)

let set_mailbox_depth t i n =
  M.Gauge.set (shard t i).mailbox_depth (float_of_int n)

let replica_count t = Array.length t.replicas

let replica t i =
  if i < 0 || i >= Array.length t.replicas then
    invalid_arg "Shard_metrics.replica: index out of range";
  t.replicas.(i)

let set_replica_lag t ~replica:i ~records ~vtime =
  let r = replica t i in
  M.Gauge.set r.lag_records (float_of_int records);
  M.Gauge.set r.lag_vtime (float_of_int vtime)

let replica_applied t ~replica:i ~records =
  M.Counter.add (replica t i).applied records

let replica_read t ~replica:i = M.Counter.incr (replica t i).replica_reads
let replica_resync t = M.Counter.incr t.resyncs
let stale_bounce t = M.Counter.incr t.stale_bounces
let promotion t = M.Counter.incr t.promotions
let replica_lag t i = int_of_float (M.Gauge.value (replica t i).lag_records)
let replica_lag_vtime t i = int_of_float (M.Gauge.value (replica t i).lag_vtime)
let replica_applied_count t i = M.Counter.value (replica t i).applied
let replica_reads t i = M.Counter.value (replica t i).replica_reads
let promotion_count t = M.Counter.value t.promotions
let resync_count t = M.Counter.value t.resyncs
let stale_bounce_count t = M.Counter.value t.stale_bounces

let tpc_round t ~committed ~messages ~duration ~fanout =
  M.Counter.incr t.tpc_rounds;
  M.Counter.incr (if committed then t.tpc_commits else t.tpc_aborts);
  M.Counter.add t.tpc_messages messages;
  M.Histogram.observe t.tpc_duration (float_of_int duration);
  M.Histogram.observe t.fanout (float_of_int fanout)

(* One WAL device sync covering [records] appended records (group
   commit: batch size = records amortized by a single sync). *)
let wal_sync t ~records =
  M.Counter.add t.wal_appends records;
  M.Counter.incr t.wal_syncs;
  if records > 0 then
    M.Histogram.observe t.group_commit_batch (float_of_int records)

(* One checkpoint file made durable: [duration] is the wall-clock cost
   of capture+encode+marker sync (µs); [age] is how far behind the log
   head the redo point landed — records the fuzzy snapshot could not
   cover and recovery must still replay. *)
let checkpoint_written t ~duration ~age =
  M.Counter.incr t.checkpoints;
  M.Histogram.observe t.checkpoint_write duration;
  M.Gauge.set t.checkpoint_age (float_of_int age)

(* One shard recovery completed: [records] is the WAL work actually
   replayed — the tail behind a checkpoint, or the whole log. *)
let recovery_done t ~duration ~records =
  M.Counter.incr t.recoveries;
  M.Histogram.observe t.recovery_duration duration;
  M.Histogram.observe t.recovery_records (float_of_int records)

let syncs_per_commit t =
  let commits =
    Array.fold_left
      (fun acc s ->
        acc
        + M.Counter.value s.committed_local
        + M.Counter.value s.committed_tpc)
      0 t.shards
  in
  if commits = 0 then 0.
  else float_of_int (M.Counter.value t.wal_syncs) /. float_of_int commits

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "shard  commit(local)  commit(2pc)  aborted  prepared  conflicts  in-doubt\n";
  Array.iteri
    (fun i s ->
      Buffer.add_string buf
        (Fmt.str "%5d  %13d  %11d  %7d  %8d  %9d  %8.0f\n" i
           (M.Counter.value s.committed_local)
           (M.Counter.value s.committed_tpc)
           (M.Counter.value s.aborted)
           (M.Counter.value s.prepared)
           (M.Counter.value s.conflicts)
           (M.Gauge.value s.in_doubt)))
    t.shards;
  Buffer.add_string buf
    (Fmt.str "2pc: %d round(s), %d commit / %d abort, %d message(s)\n"
       (M.Counter.value t.tpc_rounds)
       (M.Counter.value t.tpc_commits)
       (M.Counter.value t.tpc_aborts)
       (M.Counter.value t.tpc_messages));
  Buffer.add_string buf
    (Fmt.str "tpc.duration: %a\ntxn.shard_fanout: %a\n" M.Histogram.pp
       t.tpc_duration M.Histogram.pp t.fanout);
  if M.Counter.value t.wal_syncs > 0 then
    Buffer.add_string buf
      (Fmt.str
         "wal: %d append(s), %d sync(s) (%.2f sync(s)/commit)\n\
          group_commit.batch_size: %a\n"
         (M.Counter.value t.wal_appends)
         (M.Counter.value t.wal_syncs)
         (syncs_per_commit t) M.Histogram.pp t.group_commit_batch);
  if M.Counter.value t.checkpoints > 0 then
    Buffer.add_string buf
      (Fmt.str
         "checkpoints: %d written (age %.0f record(s))\n\
          checkpoint.write_duration: %a\n"
         (M.Counter.value t.checkpoints)
         (M.Gauge.value t.checkpoint_age)
         M.Histogram.pp t.checkpoint_write);
  if M.Counter.value t.recoveries > 0 then
    Buffer.add_string buf
      (Fmt.str
         "recoveries: %d\nrecovery.duration: %a\nrecovery.records_replayed: %a\n"
         (M.Counter.value t.recoveries)
         M.Histogram.pp t.recovery_duration M.Histogram.pp t.recovery_records);
  if Array.length t.replicas > 0 then begin
    Buffer.add_string buf "replica  applied  lag(rec)  lag(vt)  reads\n";
    Array.iteri
      (fun i r ->
        Buffer.add_string buf
          (Fmt.str "%7d  %7d  %8.0f  %7.0f  %5d\n" i
             (M.Counter.value r.applied)
             (M.Gauge.value r.lag_records)
             (M.Gauge.value r.lag_vtime)
             (M.Counter.value r.replica_reads)))
      t.replicas;
    Buffer.add_string buf
      (Fmt.str
         "replication: %d promotion(s), %d resync(s), %d stale bounce(s)\n"
         (M.Counter.value t.promotions)
         (M.Counter.value t.resyncs)
         (M.Counter.value t.stale_bounces))
  end;
  Buffer.contents buf

let tpc_duration t = t.tpc_duration
let fanout t = t.fanout
let group_commit_batch t = t.group_commit_batch
let wal_sync_count t = M.Counter.value t.wal_syncs
let wal_append_count t = M.Counter.value t.wal_appends
let mailbox_depth t i = M.Gauge.max_value (shard t i).mailbox_depth
let checkpoint_count t = M.Counter.value t.checkpoints
let checkpoint_write t = t.checkpoint_write
let checkpoint_age t = M.Gauge.value t.checkpoint_age
let recovery_count t = M.Counter.value t.recoveries
let recovery_duration t = t.recovery_duration
let recovery_records t = t.recovery_records
