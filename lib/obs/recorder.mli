(** The convenience bundle used by the CLI, the benchmark harness and
    tests: one {!Probe.sink} that simultaneously

    - maintains a {!Metrics.Registry} of aggregate counters
      ([txn.begin], [txn.commit], [txn.abort], [op.grant], [op.wait],
      [op.refuse], [deadlock.victims]), latency gauges sampled from
      {!Probe.Gauge_set} events, and one wait-count counter per object
      ([obj.<name>.waits]);
    - builds a Chrome-trace {!Trace.t};
    - aggregates a {!Contention.t} report. *)

type t = {
  registry : Metrics.Registry.t;
  trace : Trace.t;
  contention : Contention.t;
}

val create : unit -> t
val sink : t -> Probe.sink

val report : t -> string
(** Metrics snapshot followed by the contention table. *)

val export_trace : t -> string
(** Chrome-trace JSON for the events recorded so far. *)
