(** A structured trace sink: spans per transaction and per operation,
    exported as Chrome-trace JSON (loadable in [chrome://tracing] and
    Perfetto).

    Feed it {!Probe} events (via {!sink}) and it assembles:

    - a [B]/[E] span per transaction (begin → commit/abort),
    - an [X] (complete) span per granted operation (first invocation
      attempt → grant),
    - an [X] span per wait interval (first blocked attempt → grant,
      refusal or abort), in category ["wait"],
    - instant events for refusals and deadlock victims,
    - counter ([C]) events for sampled gauges.

    The emitted JSON is the "JSON array format": every element carries
    at least [name], [ph], [ts], [pid] and [tid].  {!parse} reads that
    format back, so traces round-trip for testing.

    Beyond Probe assembly, a trace is also an open event buffer: {!add}
    appends an arbitrary event, including flow events ([S]/[F], bound
    by [id]) that stitch causally-related slices across processes —
    how the sharded runtime draws coordinator→participant message
    arrows. *)

type phase = B | E | X | I | C | S | F

type ev = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  dur : float option; (** only for [X] events *)
  pid : int;
  tid : int;
  id : int option; (** flow binding: an [S] and its [F] share an id *)
  args : (string * Json.t) list;
}

type t

val create : ?pid:int -> unit -> t
(** [pid] (default 1) stamps every event this trace assembles — one
    trace per simulated process, merged by concatenation. *)

val sink : t -> Probe.sink

val pid : t -> int

val add : t -> ev -> unit
(** Append a hand-built event (flow arrows, custom spans). *)

val events : t -> ev list
(** Completed events, in emission order. *)

val to_json : t -> Json.t
val export : t -> string

val events_to_json : ev list -> Json.t
val export_events : ev list -> string
(** Serialize an explicit event list — e.g. several traces' events
    merged into one cross-shard timeline. *)

val parse : string -> (ev list, string) result
(** Re-read an exported trace; fails on documents that are not an
    array of well-formed trace events. *)

val pp_phase : Format.formatter -> phase -> unit
