(** A structured trace sink: spans per transaction and per operation,
    exported as Chrome-trace JSON (loadable in [chrome://tracing] and
    Perfetto).

    Feed it {!Probe} events (via {!sink}) and it assembles:

    - a [B]/[E] span per transaction (begin → commit/abort),
    - an [X] (complete) span per granted operation (first invocation
      attempt → grant),
    - an [X] span per wait interval (first blocked attempt → grant,
      refusal or abort), in category ["wait"],
    - instant events for refusals and deadlock victims,
    - counter ([C]) events for sampled gauges.

    The emitted JSON is the "JSON array format": every element carries
    at least [name], [ph], [ts], [pid] and [tid].  {!parse} reads that
    format back, so traces round-trip for testing. *)

type phase = B | E | X | I | C

type ev = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  dur : float option; (** only for [X] events *)
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

type t

val create : unit -> t
val sink : t -> Probe.sink

val events : t -> ev list
(** Completed events, in emission order. *)

val to_json : t -> Json.t
val export : t -> string

val parse : string -> (ev list, string) result
(** Re-read an exported trace; fails on documents that are not an
    array of well-formed trace events. *)

val pp_phase : Format.formatter -> phase -> unit
