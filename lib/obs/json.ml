type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && equal v v')
         xs ys
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num x -> add_num buf x
    | Str s -> add_escaped buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (match Uchar.of_int code with
               | u -> Buffer.add_utf_8_uchar buf u
               | exception Invalid_argument _ -> fail "bad \\u codepoint")
             | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> Num x
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
