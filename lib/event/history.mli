(** Histories: finite sequences of events, the paper's computations.

    All of the paper's derived notions live here: the projections [h|x]
    and [h|a], the committed projection [perm(h)], the update
    projection [updates(h)], the [precedes(h)] relation of Section 4.1,
    and equivalence of histories.

    The representation is indexed: [append] is O(1), and the derived
    views ([project_object], [project_activity], [activities],
    [objects], [committed], [perm], [precedes], [timestamp_of]) are
    answered from lazily built per-object/per-activity indexes that
    [append] extends incrementally once built, instead of re-scanning
    the whole event list on every query.  Observable behaviour is
    identical to the naive list-scan definitions, which are retained in
    {!Reference} as an equivalence oracle. *)

type t
(** A history is an event sequence in temporal order. *)

val empty : t
val append : t -> Event.t -> t

val of_list : Event.t list -> t
val to_list : t -> Event.t list
(** [to_list h] is the event sequence in temporal order (head first). *)

val length : t -> int
val equal : t -> t -> bool

val project_object : Object_id.t -> t -> t
(** [project_object x h] is the paper's [h|x]: the subsequence of [h]
    consisting of all events in which [x] participates. *)

val project_activity : Activity.t -> t -> t
(** [project_activity a h] is the paper's [h|a]. *)

val activities : t -> Activity.t list
(** All activities participating in [h], in order of first appearance. *)

val objects : t -> Object_id.t list
(** All objects participating in [h], in order of first appearance. *)

val committed : t -> Activity.Set.t
(** Activities that commit (at some object) in [h]. *)

val aborted : t -> Activity.Set.t
(** Activities that abort (at some object) in [h]. *)

val active : t -> Activity.Set.t
(** Activities that neither commit nor abort in [h]. *)

val perm : t -> t
(** [perm h] is the subsequence of [h] consisting of all events
    involving activities that commit in [h], and no others
    (Section 3). *)

val updates : t -> t
(** [updates h] is the subsequence of [h] consisting of all events
    involving update activities (Section 4.3.2). *)

val equivalent : t -> t -> bool
(** [equivalent h k] iff every activity has the same view in both:
    [h|a = k|a] for every activity [a] (Section 3). *)

val precedes : t -> (Activity.t * Activity.t) list
(** [precedes h] is the relation of Section 4.1:
    [(a,b) ∈ precedes(h)] iff there exists an operation invoked by [b]
    that terminates after [a] commits, with [a ≠ b].  Returned as a
    duplicate-free association list. *)

val precedes_mem : t -> Activity.t -> Activity.t -> bool
(** [precedes_mem h a b] iff [(a,b) ∈ precedes(h)].  O(log n) against
    the precedes index, unlike scanning the [precedes] list. *)

val timestamp_of : t -> Activity.t -> Timestamp.t option
(** The timestamp attached to [a]'s timestamp events (initiations, or
    timestamped commits) in [h], if any.  Well-formed histories give
    each activity at most one distinct timestamp. *)

val timestamp_order : t -> Activity.t list option
(** The committed activities of [h] sorted by their timestamps;
    [None] if some committed activity lacks a timestamp. *)

val serial : t -> bool
(** Whether [h] is serial: events of different activities are not
    interleaved (Section 3). *)

val is_prefix : t -> t -> bool
(** [is_prefix p h] iff [p] is a prefix of [h]. *)

val concat_serial : Activity.t list -> t -> t
(** [concat_serial order h] builds the serial history obtained by
    concatenating the per-activity projections of [h] in the given
    activity order.  Activities of [h] absent from [order] are
    dropped. *)

val iter : (Event.t -> unit) -> t -> unit
(** Iterate over the events in temporal order. *)

val fold_left : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
(** Fold over the events in temporal order. *)

val pp : Format.formatter -> t -> unit
(** One event per line, in the paper's notation. *)

val to_string : t -> string

(** Naive list-scan implementations of the indexed queries, retained as
    an equivalence oracle (property tests check the indexed queries
    against these on random histories) and as the benchmark's naive
    arm.  Semantics are the pre-index definitions, verbatim. *)
module Reference : sig
  val project_object : Object_id.t -> t -> t
  val project_activity : Activity.t -> t -> t
  val activities : t -> Activity.t list
  val objects : t -> Object_id.t list
  val committed : t -> Activity.Set.t
  val aborted : t -> Activity.Set.t
  val active : t -> Activity.Set.t
  val perm : t -> t
  val precedes : t -> (Activity.t * Activity.t) list
  val precedes_mem : t -> Activity.t -> Activity.t -> bool
  val timestamp_of : t -> Activity.t -> Timestamp.t option
end
