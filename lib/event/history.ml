(* Indexed histories.

   The representation keeps the event sequence as a reversed prefix so
   [append] is O(1) cons instead of the former [h @ [e]].  Derived views
   — per-object and per-activity projections, first-appearance orders,
   commit/abort sets, timestamps, and the precedes relation — live in
   lazily built indexes: the first query pays one O(n log n) fold over
   the events, and [append] extends an already-built index in O(log n)
   per event, so queries on a growing history are incremental rather
   than full re-scans.  A history whose indexes were never demanded
   stays a bare list and costs nothing beyond the spine.

   Invariants:
   - [rev] is the event sequence newest-first; [len = List.length rev].
   - [fwd], when present, is [List.rev rev] (the temporal order).
   - [proj]/[prec], when present, describe exactly the events of [rev].
   - [perm_memo], when present, is [perm] of this history.
   Indexes are only ever absent or exact; they are never stale. *)

module Pair = struct
  type t = Activity.t * Activity.t

  let compare (a, b) (a', b') =
    match Activity.compare a a' with
    | 0 -> Activity.compare b b'
    | c -> c
end

module Pair_set = Set.Make (Pair)

type proj = {
  by_obj : (int * Event.t list) Object_id.Map.t;
      (* per-object projection, newest-first, with its length *)
  by_act : (int * Event.t list) Activity.Map.t;
      (* per-activity projection, newest-first, with its length *)
  objs_rev : Object_id.t list;  (* first-appearance order, reversed *)
  acts_rev : Activity.t list;  (* first-appearance order, reversed *)
  committed_set : Activity.Set.t;
  aborted_set : Activity.Set.t;
  ts_of_map : Timestamp.t Activity.Map.t;
      (* first timestamp carried by each activity's events *)
}

type prec = {
  prec_committed : Activity.Set.t;  (* committed so far, for extension *)
  pairs_rev : (Activity.t * Activity.t) list;
      (* precedes pairs, reversed discovery order *)
  pair_set : Pair_set.t;  (* same pairs, for O(log n) membership *)
}

type t = {
  rev : Event.t list;  (* newest first *)
  len : int;
  mutable fwd : Event.t list option;  (* memoized temporal order *)
  mutable proj : proj option;
  mutable prec : prec option;
  mutable perm_memo : t option;
}

let mk rev len = { rev; len; fwd = None; proj = None; prec = None; perm_memo = None }
let empty = mk [] 0

let of_list l =
  let h = mk (List.rev l) (List.length l) in
  h.fwd <- Some l;
  h

let to_list h =
  match h.fwd with
  | Some l -> l
  | None ->
    let l = List.rev h.rev in
    h.fwd <- Some l;
    l

let length h = h.len
let equal h k = h.len = k.len && List.equal Event.equal h.rev k.rev

(* --- projection / membership index ------------------------------- *)

let proj_empty =
  {
    by_obj = Object_id.Map.empty;
    by_act = Activity.Map.empty;
    objs_rev = [];
    acts_rev = [];
    committed_set = Activity.Set.empty;
    aborted_set = Activity.Set.empty;
    ts_of_map = Activity.Map.empty;
  }

let proj_add p e =
  let a = Event.activity e and x = Event.object_id e in
  let objs_rev =
    if Object_id.Map.mem x p.by_obj then p.objs_rev else x :: p.objs_rev
  in
  let acts_rev =
    if Activity.Map.mem a p.by_act then p.acts_rev else a :: p.acts_rev
  in
  let by_obj =
    Object_id.Map.update x
      (function None -> Some (1, [ e ]) | Some (n, es) -> Some (n + 1, e :: es))
      p.by_obj
  in
  let by_act =
    Activity.Map.update a
      (function None -> Some (1, [ e ]) | Some (n, es) -> Some (n + 1, e :: es))
      p.by_act
  in
  let committed_set =
    match e with
    | Event.Commit (a, _, _) -> Activity.Set.add a p.committed_set
    | _ -> p.committed_set
  in
  let aborted_set =
    match e with
    | Event.Abort (a, _) -> Activity.Set.add a p.aborted_set
    | _ -> p.aborted_set
  in
  let ts_of_map =
    match Event.timestamp e with
    | Some ts when not (Activity.Map.mem a p.ts_of_map) ->
      Activity.Map.add a ts p.ts_of_map
    | _ -> p.ts_of_map
  in
  { by_obj; by_act; objs_rev; acts_rev; committed_set; aborted_set; ts_of_map }

let proj h =
  match h.proj with
  | Some p -> p
  | None ->
    let p = List.fold_left proj_add proj_empty (to_list h) in
    h.proj <- Some p;
    p

(* --- precedes index ---------------------------------------------- *)

let prec_empty =
  { prec_committed = Activity.Set.empty; pairs_rev = []; pair_set = Pair_set.empty }

let prec_add p e =
  match e with
  | Event.Commit (a, _, _) ->
    { p with prec_committed = Activity.Set.add a p.prec_committed }
  | Event.Respond (b, _, _) ->
    Activity.Set.fold
      (fun a p ->
        if Activity.equal a b then p
        else if Pair_set.mem (a, b) p.pair_set then p
        else
          {
            p with
            pairs_rev = (a, b) :: p.pairs_rev;
            pair_set = Pair_set.add (a, b) p.pair_set;
          })
      p.prec_committed p
  | Event.Invoke _ | Event.Abort _ | Event.Initiate _ -> p

let prec h =
  match h.prec with
  | Some p -> p
  | None ->
    let p = List.fold_left prec_add prec_empty (to_list h) in
    h.prec <- Some p;
    p

(* --- construction ------------------------------------------------- *)

let append h e =
  let h' = mk (e :: h.rev) (h.len + 1) in
  (* Extend any index the parent already paid for; absent indexes stay
     absent so an append-only workload never builds them. *)
  (match h.proj with
  | Some p -> h'.proj <- Some (proj_add p e)
  | None -> ());
  (match h.prec with
  | Some p -> h'.prec <- Some (prec_add p e)
  | None -> ());
  h'

(* --- queries ------------------------------------------------------ *)

let project_object x h =
  match Object_id.Map.find_opt x (proj h).by_obj with
  | None -> empty
  | Some (n, rev) -> mk rev n

let project_activity a h =
  match Activity.Map.find_opt a (proj h).by_act with
  | None -> empty
  | Some (n, rev) -> mk rev n

(* First-appearance order, deduplicated.  Hash-set membership keyed by
   [key]; the former implementation scanned an accumulator list per
   element, which was quadratic. *)
let dedup_keep_order key xs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else (
        Hashtbl.replace seen k ();
        true))
    xs

let activities h = List.rev (proj h).acts_rev
let objects h = List.rev (proj h).objs_rev
let committed h = (proj h).committed_set
let aborted h = (proj h).aborted_set

let active h =
  let p = proj h in
  let resolved = Activity.Set.union p.committed_set p.aborted_set in
  List.fold_left
    (fun acc a ->
      if Activity.Set.mem a resolved then acc else Activity.Set.add a acc)
    Activity.Set.empty
    (List.rev p.acts_rev)

let perm h =
  match h.perm_memo with
  | Some p -> p
  | None ->
    let c = (proj h).committed_set in
    let rev =
      List.filter (fun e -> Activity.Set.mem (Event.activity e) c) h.rev
    in
    let p = mk rev (List.length rev) in
    h.perm_memo <- Some p;
    p

let updates h =
  let rev =
    List.filter
      (fun e -> not (Activity.is_read_only (Event.activity e)))
      h.rev
  in
  mk rev (List.length rev)

let equivalent h k =
  let acts = dedup_keep_order Activity.name (activities h @ activities k) in
  List.for_all
    (fun a -> equal (project_activity a h) (project_activity a k))
    acts

let precedes h = List.rev (prec h).pairs_rev
let precedes_mem h a b = Pair_set.mem (a, b) (prec h).pair_set
let timestamp_of h a = Activity.Map.find_opt a (proj h).ts_of_map

let timestamp_order h =
  let p = proj h in
  let acts = Activity.Set.elements p.committed_set in
  let stamped =
    List.map
      (fun a ->
        Option.map (fun t -> (a, t)) (Activity.Map.find_opt a p.ts_of_map))
      acts
  in
  if List.exists Option.is_none stamped then None
  else
    let stamped = List.filter_map Fun.id stamped in
    let sorted =
      List.sort (fun (_, t) (_, t') -> Timestamp.compare t t') stamped
    in
    Some (List.map fst sorted)

let serial h =
  (* No activity's events may resume after another activity's events
     have intervened. *)
  let rec go seen current = function
    | [] -> true
    | e :: rest -> (
      let a = Event.activity e in
      match current with
      | Some c when Activity.equal c a -> go seen current rest
      | _ ->
        if Activity.Set.mem a seen then false
        else go (Activity.Set.add a seen) (Some a) rest)
  in
  go Activity.Set.empty None (to_list h)

let is_prefix p h =
  let rec go p h =
    match (p, h) with
    | [], _ -> true
    | _, [] -> false
    | e :: p', f :: h' -> Event.equal e f && go p' h'
  in
  p.len <= h.len && go (to_list p) (to_list h)

let concat_serial order h =
  of_list (List.concat_map (fun a -> to_list (project_activity a h)) order)

let iter f h = List.iter f (to_list h)
let fold_left f init h = List.fold_left f init (to_list h)
let pp ppf h = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Event.pp) (to_list h)
let to_string h = Fmt.str "%a" pp h

(* --- naive reference ---------------------------------------------- *)

module Reference = struct
  (* The seed's list-scan implementations, retained verbatim (modulo
     [to_list]/[of_list] at the boundary) as an equivalence oracle for
     the indexed queries above, and as the benchmark's naive arm. *)

  let dedup_keep_order equal xs =
    let rec go seen = function
      | [] -> List.rev seen
      | x :: rest ->
        if List.exists (equal x) seen then go seen rest else go (x :: seen) rest
    in
    go [] xs

  let project_object x h =
    of_list
      (List.filter
         (fun e -> Object_id.equal (Event.object_id e) x)
         (to_list h))

  let project_activity a h =
    of_list
      (List.filter
         (fun e -> Activity.equal (Event.activity e) a)
         (to_list h))

  let activities h =
    dedup_keep_order Activity.equal (List.map Event.activity (to_list h))

  let objects h =
    dedup_keep_order Object_id.equal (List.map Event.object_id (to_list h))

  let committed h =
    List.fold_left
      (fun acc e ->
        match e with
        | Event.Commit (a, _, _) -> Activity.Set.add a acc
        | _ -> acc)
      Activity.Set.empty (to_list h)

  let aborted h =
    List.fold_left
      (fun acc e ->
        match e with
        | Event.Abort (a, _) -> Activity.Set.add a acc
        | _ -> acc)
      Activity.Set.empty (to_list h)

  let active h =
    let resolved = Activity.Set.union (committed h) (aborted h) in
    List.fold_left
      (fun acc a ->
        if Activity.Set.mem a resolved then acc else Activity.Set.add a acc)
      Activity.Set.empty (activities h)

  let perm h =
    let c = committed h in
    of_list
      (List.filter
         (fun e -> Activity.Set.mem (Event.activity e) c)
         (to_list h))

  let precedes h =
    let _, pairs =
      List.fold_left
        (fun (committed_so_far, pairs) e ->
          match e with
          | Event.Commit (a, _, _) ->
            (Activity.Set.add a committed_so_far, pairs)
          | Event.Respond (b, _, _) ->
            let pairs =
              Activity.Set.fold
                (fun a pairs ->
                  if Activity.equal a b then pairs
                  else if
                    List.exists
                      (fun (a', b') ->
                        Activity.equal a a' && Activity.equal b b')
                      pairs
                  then pairs
                  else (a, b) :: pairs)
                committed_so_far pairs
            in
            (committed_so_far, pairs)
          | Event.Invoke _ | Event.Abort _ | Event.Initiate _ ->
            (committed_so_far, pairs))
        (Activity.Set.empty, [])
        (to_list h)
    in
    List.rev pairs

  let precedes_mem h a b =
    List.exists
      (fun (a', b') -> Activity.equal a a' && Activity.equal b b')
      (precedes h)

  let timestamp_of h a =
    List.find_map
      (fun e ->
        if Activity.equal (Event.activity e) a then Event.timestamp e
        else None)
      (to_list h)
end
