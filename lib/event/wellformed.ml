type mode = Base | Static | Hybrid

type violation =
  | Overlapping_invocation of Activity.t
  | Unmatched_response of Activity.t * Object_id.t
  | Commit_and_abort of Activity.t
  | Commit_while_pending of Activity.t
  | Event_after_commit of Activity.t
  | Duplicate_completion of Activity.t * Object_id.t
  | Invoke_before_initiate of Activity.t * Object_id.t
  | Duplicate_timestamp of Activity.t * Activity.t
  | Inconsistent_timestamp of Activity.t
  | Timestamp_against_precedes of Activity.t * Activity.t

let pp_violation ppf = function
  | Overlapping_invocation a ->
    Fmt.pf ppf "%a invoked an operation while another was pending"
      Activity.pp a
  | Unmatched_response (a, x) ->
    Fmt.pf ppf "termination for %a at %a has no pending invocation"
      Activity.pp a Object_id.pp x
  | Commit_and_abort a ->
    Fmt.pf ppf "%a both commits and aborts" Activity.pp a
  | Commit_while_pending a ->
    Fmt.pf ppf "%a committed while waiting for an invocation" Activity.pp a
  | Event_after_commit a ->
    Fmt.pf ppf "%a participated in an event after committing" Activity.pp a
  | Duplicate_completion (a, x) ->
    Fmt.pf ppf "%a completed twice at %a" Activity.pp a Object_id.pp x
  | Invoke_before_initiate (a, x) ->
    Fmt.pf ppf "%a invoked an operation at %a before initiating there"
      Activity.pp a Object_id.pp x
  | Duplicate_timestamp (a, b) ->
    Fmt.pf ppf "%a and %a carry the same timestamp" Activity.pp a
      Activity.pp b
  | Inconsistent_timestamp a ->
    Fmt.pf ppf "%a carries two different timestamps" Activity.pp a
  | Timestamp_against_precedes (a, b) ->
    Fmt.pf ppf
      "%a precedes %a but was assigned the larger commit timestamp"
      Activity.pp a Activity.pp b

(* Per-activity scanning state. *)
type act_state = {
  pending : Object_id.t option; (* object of the pending invocation *)
  committed : bool;
  aborted_ : bool;
  completions : Object_id.t list; (* objects where commit/abort happened *)
  initiated : Object_id.t list;
  stamps : Timestamp.t list; (* all timestamps this activity has used *)
}

let fresh =
  {
    pending = None;
    committed = false;
    aborted_ = false;
    completions = [];
    initiated = [];
    stamps = [];
  }

let check mode h =
  let tbl : (string, act_state) Hashtbl.t = Hashtbl.create 16 in
  let get a =
    match Hashtbl.find_opt tbl (Activity.name a) with
    | Some s -> s
    | None -> fresh
  in
  let set a s = Hashtbl.replace tbl (Activity.name a) s in
  let violations = ref [] in
  let bad v = violations := v :: !violations in
  let needs_initiation a =
    match mode with
    | Base -> false
    | Static -> true
    | Hybrid -> Activity.is_read_only a
  in
  let record_stamp a t =
    let s = get a in
    if s.stamps <> [] && not (List.exists (Timestamp.equal t) s.stamps) then
      bad (Inconsistent_timestamp a);
    (* Distinctness across activities (against every timestamp any
       other activity has used). *)
    Hashtbl.iter
      (fun name s' ->
        if
          (not (String.equal name (Activity.name a)))
          && List.exists (Timestamp.equal t) s'.stamps
        then bad (Duplicate_timestamp (a, Activity.update name)))
      tbl;
    if not (List.exists (Timestamp.equal t) s.stamps) then
      set a { s with stamps = t :: s.stamps }
  in
  History.iter
    (fun e ->
      let a = Event.activity e in
      let s = get a in
      if s.committed && not (Event.is_commit e) then bad (Event_after_commit a);
      match e with
      | Event.Invoke (_, x, _) ->
        if Option.is_some s.pending then bad (Overlapping_invocation a);
        if
          needs_initiation a
          && not (List.exists (Object_id.equal x) s.initiated)
        then bad (Invoke_before_initiate (a, x));
        set a { s with pending = Some x }
      | Event.Respond (_, x, _) ->
        (match s.pending with
        | Some x' when Object_id.equal x x' -> set a { s with pending = None }
        | Some _ | None -> bad (Unmatched_response (a, x)))
      | Event.Commit (_, x, ts) ->
        if s.aborted_ then bad (Commit_and_abort a);
        if Option.is_some s.pending then bad (Commit_while_pending a);
        if List.exists (Object_id.equal x) s.completions then
          bad (Duplicate_completion (a, x));
        let s = get a in
        set a { s with committed = true; completions = x :: s.completions };
        (match mode, ts with
        | Hybrid, Some t when not (Activity.is_read_only a) -> record_stamp a t
        | _, Some t when mode = Static -> record_stamp a t
        | _ -> ())
      | Event.Abort (_, x) ->
        if s.committed then bad (Commit_and_abort a);
        if List.exists (Object_id.equal x) s.completions then
          bad (Duplicate_completion (a, x));
        set a { s with aborted_ = true; completions = x :: s.completions }
      | Event.Initiate (_, x, t) ->
        set a { (get a) with initiated = x :: (get a).initiated };
        (match mode with
        | Base -> ()
        | Static -> record_stamp a t
        | Hybrid -> if Activity.is_read_only a then record_stamp a t))
    h;
  (* Hybrid: commit timestamps of updates must be consistent with
     precedes. *)
  (if mode = Hybrid then
     let prec = History.precedes h in
     List.iter
       (fun (a, b) ->
         if not (Activity.is_read_only a || Activity.is_read_only b) then
           match (History.timestamp_of h a, History.timestamp_of h b) with
           | Some ta, Some tb when Timestamp.(tb < ta) ->
             bad (Timestamp_against_precedes (a, b))
           | _ -> ())
       prec);
  match List.rev !violations with
  | [] -> Ok ()
  | vs -> Error vs

let is_well_formed mode h = Result.is_ok (check mode h)
