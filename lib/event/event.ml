type t =
  | Invoke of Activity.t * Object_id.t * Operation.t
  | Respond of Activity.t * Object_id.t * Value.t
  | Commit of Activity.t * Object_id.t * Timestamp.t option
  | Abort of Activity.t * Object_id.t
  | Initiate of Activity.t * Object_id.t * Timestamp.t

let invoke a x op = Invoke (a, x, op)
let respond a x v = Respond (a, x, v)
let commit a x = Commit (a, x, None)
let commit_ts a x t = Commit (a, x, Some t)
let abort a x = Abort (a, x)
let initiate a x t = Initiate (a, x, t)

let activity = function
  | Invoke (a, _, _) | Respond (a, _, _) | Commit (a, _, _)
  | Abort (a, _) | Initiate (a, _, _) -> a

let object_id = function
  | Invoke (_, x, _) | Respond (_, x, _) | Commit (_, x, _)
  | Abort (_, x) | Initiate (_, x, _) -> x

let is_invoke = function Invoke _ -> true | _ -> false
let is_respond = function Respond _ -> true | _ -> false
let is_commit = function Commit _ -> true | _ -> false
let is_abort = function Abort _ -> true | _ -> false
let is_initiate = function Initiate _ -> true | _ -> false

let timestamp = function
  | Commit (_, _, ts) -> ts
  | Initiate (_, _, t) -> Some t
  | Invoke _ | Respond _ | Abort _ -> None

let equal e f =
  match e, f with
  | Invoke (a, x, op), Invoke (b, y, op') ->
    Activity.equal a b && Object_id.equal x y && Operation.equal op op'
  | Respond (a, x, v), Respond (b, y, w) ->
    Activity.equal a b && Object_id.equal x y && Value.equal v w
  | Commit (a, x, ts), Commit (b, y, ts') ->
    Activity.equal a b && Object_id.equal x y
    && Option.equal Timestamp.equal ts ts'
  | Abort (a, x), Abort (b, y) -> Activity.equal a b && Object_id.equal x y
  | Initiate (a, x, t), Initiate (b, y, t') ->
    Activity.equal a b && Object_id.equal x y && Timestamp.equal t t'
  | (Invoke _ | Respond _ | Commit _ | Abort _ | Initiate _), _ -> false

let compare e f =
  let tag = function
    | Invoke _ -> 0 | Respond _ -> 1 | Commit _ -> 2 | Abort _ -> 3
    | Initiate _ -> 4
  in
  let c = Int.compare (tag e) (tag f) in
  if c <> 0 then c
  else
    match e, f with
    | Invoke (a, x, op), Invoke (b, y, op') ->
      let c = Activity.compare a b in
      if c <> 0 then c
      else
        let c = Object_id.compare x y in
        if c <> 0 then c else Operation.compare op op'
    | Respond (a, x, v), Respond (b, y, w) ->
      let c = Activity.compare a b in
      if c <> 0 then c
      else
        let c = Object_id.compare x y in
        if c <> 0 then c else Value.compare v w
    | Commit (a, x, ts), Commit (b, y, ts') ->
      let c = Activity.compare a b in
      if c <> 0 then c
      else
        let c = Object_id.compare x y in
        if c <> 0 then c
        else Option.compare Timestamp.compare ts ts'
    | Abort (a, x), Abort (b, y) ->
      let c = Activity.compare a b in
      if c <> 0 then c else Object_id.compare x y
    | Initiate (a, x, t), Initiate (b, y, t') ->
      let c = Activity.compare a b in
      if c <> 0 then c
      else
        let c = Object_id.compare x y in
        if c <> 0 then c else Timestamp.compare t t'
    | (Invoke _ | Respond _ | Commit _ | Abort _ | Initiate _), _ ->
      assert false

(* Every case renders inside an h-box: an event is one line of the
   notation, whatever the enclosing formatter's margin. *)
let pp ppf = function
  | Invoke (a, x, op) ->
    Fmt.pf ppf "@[<h><%a,%a,%a>@]" Operation.pp op Object_id.pp x Activity.pp a
  | Respond (a, x, v) ->
    Fmt.pf ppf "<%a,%a,%a>" Value.pp v Object_id.pp x Activity.pp a
  | Commit (a, x, None) ->
    Fmt.pf ppf "<commit,%a,%a>" Object_id.pp x Activity.pp a
  | Commit (a, x, Some t) ->
    Fmt.pf ppf "<commit(%a),%a,%a>" Timestamp.pp t Object_id.pp x Activity.pp a
  | Abort (a, x) -> Fmt.pf ppf "<abort,%a,%a>" Object_id.pp x Activity.pp a
  | Initiate (a, x, t) ->
    Fmt.pf ppf "<initiate(%a),%a,%a>" Timestamp.pp t Object_id.pp x
      Activity.pp a

let to_string e = Fmt.str "%a" pp e
