type t = { name : string; args : Value.t list }

let make name args = { name; args }
let name op = op.name
let args op = op.args

let equal a b =
  String.equal a.name b.name
  && List.length a.args = List.length b.args
  && List.for_all2 Value.equal a.args b.args

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else List.compare Value.compare a.args b.args

let pp ppf op =
  match op.args with
  | [] -> Fmt.string ppf op.name
  | args ->
    (* The h-box keeps the break hints of [~sep:comma] from splitting
       the rendering across lines: an operation must print on one line
       for the notation (and the WAL built on it) to round-trip. *)
    Fmt.pf ppf "@[<h>%s(%a)@]" op.name Fmt.(list ~sep:comma Value.pp) args

let to_string op = Fmt.str "%a" pp op
