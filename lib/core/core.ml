(** Umbrella module: the full public API of the Weihl-83 reproduction.

    {1 The formal model (Section 2)}

    Events, histories and their derived notions live in [Weihl_event]:
    {!Value}, {!Operation}, {!Activity}, {!Object_id}, {!Timestamp},
    {!Event}, {!History}, {!Wellformed}.

    {1 Specifications and atomicity (Sections 3-4)}

    Sequential specifications and the four decision procedures live in
    [Weihl_spec]: {!Seq_spec}, {!Spec_env}, {!Acceptance}, {!Orders},
    {!Serializability}, {!Atomicity}.

    {1 Abstract data types}

    The paper's example objects and friends: {!Intset}, {!Counter},
    {!Bank_account}, {!Fifo_queue}, {!Register}, {!Kv_map},
    {!Semiqueue}.

    {1 Online protocols (Sections 4-5)}

    {!Op_locking} (the scheduler-model baselines), {!Escrow_account},
    {!Da_set}, {!Da_queue} (data-dependent dynamic atomicity),
    {!Multiversion} (static atomicity, Reed), {!Hybrid} (hybrid
    atomicity), coordinated by {!System}.

    {1 Simulation}

    Deterministic workload simulation: {!Rng}, {!Stats}, {!Workload},
    {!Driver}.

    {1 Static analysis}

    The spec-derived conflict certifier lives in [Weihl_analysis]:
    {!Lint} runs it (per-ADT {!Table_cert} certificates over
    {!Lint_domain} alphabets, per-protocol {!Lint_probe} certificates
    over the {!Lint_catalog} family), and {!Lint_mutation} is its
    self-test.  {!Synthesize} compiles the derived relation into
    runnable [derived_*] lock tables ({!Synthesize_table},
    {!Derived_locking}).  The [weihl lint] / [weihl synth] subcommands
    are the CLI face.

    {1 Observability}

    Metrics, Chrome-trace export and contention diagnostics live in
    [Weihl_obs], re-exported as {!Obs}: install
    [Obs.Recorder.sink] as a probe on a {!System} (directly, through
    {!Driver.run}'s [?probe], or {!Concurrent.set_probe}) and read
    back {!Obs.Recorder.report} / {!Obs.Recorder.export_trace}. *)

module Value = Weihl_event.Value
module Operation = Weihl_event.Operation
module Activity = Weihl_event.Activity
module Object_id = Weihl_event.Object_id
module Timestamp = Weihl_event.Timestamp
module Event = Weihl_event.Event
module History = Weihl_event.History
module Wellformed = Weihl_event.Wellformed
module Notation = Weihl_event.Notation

module Seq_spec = Weihl_spec.Seq_spec
module Spec_env = Weihl_spec.Spec_env
module Acceptance = Weihl_spec.Acceptance
module Orders = Weihl_spec.Orders
module Serializability = Weihl_spec.Serializability
module Atomicity = Weihl_spec.Atomicity
module Enumerate = Weihl_spec.Enumerate
module Validator = Weihl_spec.Validator
module Optimality = Weihl_theory.Optimality
module Commutativity_check = Weihl_theory.Commutativity
module Explore = Weihl_theory.Explore
module Synthesize_table = Weihl_theory.Synthesize

module Adt_sig = Weihl_adt.Adt_sig
module Intset = Weihl_adt.Intset
module Counter = Weihl_adt.Counter
module Bank_account = Weihl_adt.Bank_account
module Fifo_queue = Weihl_adt.Fifo_queue
module Register = Weihl_adt.Register
module Kv_map = Weihl_adt.Kv_map
module Semiqueue = Weihl_adt.Semiqueue
module Adt_registry = Weihl_adt.Adt_registry
module Stack = Weihl_adt.Stack
module Priority_queue = Weihl_adt.Priority_queue
module Blind_counter = Weihl_adt.Blind_counter
module Append_log = Weihl_adt.Append_log

module Txn = Weihl_cc.Txn
module Event_log = Weihl_cc.Event_log
module Atomic_object = Weihl_cc.Atomic_object
module Obj_log = Weihl_cc.Obj_log
module Intentions = Weihl_cc.Intentions
module Lamport_clock = Weihl_cc.Lamport_clock
module Op_locking = Weihl_cc.Op_locking
module Escrow_account = Weihl_cc.Escrow_account
module Da_set = Weihl_cc.Da_set
module Da_queue = Weihl_cc.Da_queue
module Da_kv = Weihl_cc.Da_kv
module Da_counter = Weihl_cc.Da_counter
module Rw_undo = Weihl_cc.Rw_undo
module Da_generic = Weihl_cc.Da_generic
module Da_semiqueue = Weihl_cc.Da_semiqueue
module Derived_locking = Weihl_cc.Derived_locking
module Multiversion = Weihl_cc.Multiversion
module Hybrid = Weihl_cc.Hybrid
module Hybrid_account = Weihl_cc.Hybrid_account
module Recovery = Weihl_cc.Recovery
module Wal = Weihl_cc.Wal
module Checkpoint = Weihl_cc.Checkpoint
module Waits_for = Weihl_cc.Waits_for
module System = Weihl_cc.System

module Concurrent = Weihl_runtime.Concurrent
module Sharded = Weihl_runtime.Sharded

module Msim = Weihl_dist.Msim
module Tpc = Weihl_dist.Tpc

module Fault_plan = Weihl_fault.Plan
module Fault_harness = Weihl_fault.Harness
module Shard_plan = Weihl_fault.Shard_plan

module Shard_router = Weihl_shard.Router
module Gtxn = Weihl_shard.Gtxn
module Shard_group = Weihl_shard.Group
module Shard_mailbox = Weihl_shard.Mailbox
module Shard_exec = Weihl_shard.Exec
module Sharded_driver = Weihl_shard.Sharded_driver
module Mcore_driver = Weihl_shard.Mcore_driver
module Shard_harness = Weihl_shard.Shard_harness

module Replica_projection = Weihl_replica.Projection
module Replica_tier = Weihl_replica.Tier
module Replica_drill = Weihl_replica.Drill

module Lint_domain = Weihl_analysis.Domain
module Lint_catalog = Weihl_analysis.Catalog
module Table_cert = Weihl_analysis.Table_cert
module Lint_probe = Weihl_analysis.Probe
module Lint_xprobe = Weihl_analysis.Xprobe
module Lint = Weihl_analysis.Certify
module Lint_mutation = Weihl_analysis.Mutation
module Synthesize = Weihl_analysis.Synthesize

module Rng = Weihl_sim.Rng
module Stats = Weihl_sim.Stats
module Pqueue = Weihl_sim.Pqueue
module Workload = Weihl_sim.Workload
module Driver = Weihl_sim.Driver

module Obs = Weihl_obs
