(** The waits-for graph used for deadlock detection.

    Locking implementations of dynamic atomicity can deadlock (the
    paper notes long read-only activities are "quite prone to
    deadlock", Section 4.2.3); the transaction manager records who
    waits on whom and aborts a victim when a cycle forms. *)

type t

val create : unit -> t

val set_waiting : t -> Txn.t -> Txn.t list -> unit
(** Replace the out-edges of the waiter. *)

val clear : t -> Txn.t -> unit
(** The transaction is no longer waiting (granted, committed or
    aborted). *)

val blockers : t -> Txn.t -> Txn.t list

val waiter_count : t -> int
(** How many transactions are currently recorded as waiting. *)

val snapshot : t -> (int * int list) list
(** The graph as [(waiter id, active blocker ids)], sorted by waiter —
    the contention report's waits-for dump. *)

val find_cycle : t -> Txn.t list option
(** Some cycle of waiting transactions, if one exists. *)

val victim : Txn.t list -> Txn.t
(** The youngest (largest-id) transaction of a cycle — the
    conventional restart-cheapest choice.
    @raise Invalid_argument on an empty cycle. *)
