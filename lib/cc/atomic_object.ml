open Weihl_event

type invoke_result =
  | Granted of Value.t
  | Wait of Txn.t list
  | Refused of string

type t = {
  id : Object_id.t;
  spec : Weihl_spec.Seq_spec.t;
  try_invoke : Txn.t -> Operation.t -> invoke_result;
  commit : Txn.t -> unit;
  abort : Txn.t -> unit;
  initiate : Txn.t -> unit;
  depth : unit -> int;
}

let pp_invoke_result ppf = function
  | Granted v -> Fmt.pf ppf "granted %a" Value.pp v
  | Wait ts -> Fmt.pf ppf "wait on %a" Fmt.(list ~sep:comma Txn.pp) ts
  | Refused why -> Fmt.pf ppf "refused (%s)" why
