open Weihl_event
module Map_adt = Weihl_adt.Kv_map

let key op =
  match Operation.args op with Value.Int k :: _ -> Some k | _ -> None

let put_value op =
  match Operation.args op with
  | [ Value.Int _; v ] -> Some v
  | _ -> None

(* May [q] invalidate the granted pair (p, rp) when serialized on the
   other side of it? *)
let one_way (p, rp) (q, _rq) =
  match (Operation.name p, Operation.name q) with
  | "get", ("put" | "remove") -> (
    match (key p, key q) with
    | Some k, Some k' when k <> k' -> true
    | _ -> (
      match Operation.name q with
      | "put" ->
        (* put(k,v) leaves a get(k)->v answer intact. *)
        Option.fold ~none:false ~some:(Value.equal rp) (put_value q)
      | _ ->
        (* remove(k) leaves a get(k)->none answer intact. *)
        Value.equal rp Map_adt.none_result))
  | "get", ("get" | "size") | "size", ("get" | "size") -> true
  | "size", ("put" | "remove") -> false
  | ("put" | "remove"), ("put" | "remove") -> (
    match (key p, key q) with
    | Some k, Some k' when k <> k' -> true
    | _ ->
      (* Same key: only identical operations commute. *)
      Operation.equal p q)
  | ("put" | "remove"), ("get" | "size") -> true
  | _ -> false

let compatible a b = one_way a b && one_way b a

let make log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let store = Intentions.create Map_adt.spec in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    match Intentions.peek store txn op with
    | None ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "kv map: operation %a has no permissible outcome"
           Operation.pp op)
    | Some res -> (
      let blockers =
        List.filter_map
          (fun (holder, held) ->
            if Txn.equal holder txn then None
            else if
              List.exists (fun hr -> not (compatible (op, res) hr)) held
            then Some holder
            else None)
          (Intentions.active store)
      in
      match blockers with
      | _ :: _ -> Atomic_object.Wait blockers
      | [] ->
        let res' = Option.get (Intentions.execute store txn op) in
        Obj_log.responded olog txn res';
        Atomic_object.Granted res')
  in
  let commit txn =
    Intentions.commit store txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    Intentions.abort store txn;
    Obj_log.aborted olog txn
  in
  { id; spec = Map_adt.spec; try_invoke; commit; abort;
    initiate = (fun _ -> ());
    depth = (fun () -> List.length (Intentions.active store)) }
