open Weihl_event

type order = Commit_order | Timestamp_order

(* Completed (op, result) pairs of one activity, in program order. *)
let completed_ops h a =
  let events = History.to_list (History.project_activity a h) in
  let rec pair = function
    | Event.Invoke (_, x, op) :: Event.Respond (_, x', res) :: rest
      when Object_id.equal x x' ->
      (x, op, res) :: pair rest
    | _ :: rest -> pair rest
    | [] -> []
  in
  pair events

let commit_position h a =
  let rec go i = function
    | [] -> None
    | Event.Commit (a', _, _) :: _ when Activity.equal a a' -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (History.to_list h)

let committed_in_order order h =
  let committed = Activity.Set.elements (History.committed h) in
  let keyed =
    match order with
    | Commit_order ->
      List.filter_map
        (fun a -> Option.map (fun i -> (i, a)) (commit_position h a))
        committed
    | Timestamp_order ->
      List.filter_map
        (fun a ->
          Option.map
            (fun ts -> (Timestamp.to_int ts, a))
            (History.timestamp_of h a))
        committed
  in
  List.sort (fun (i, _) (j, _) -> Int.compare i j) keyed
  |> List.map (fun (_, a) -> (a, completed_ops h a))

type report = { replayed : int; substituted : int; dropped_records : int }

type failure =
  | Corrupt of Wal.error
  | Divergent of string
  | Checkpoint_invalid of string

let pp_failure ppf = function
  | Corrupt e -> Wal.pp_error ppf e
  | Divergent msg -> Fmt.string ppf msg
  | Checkpoint_invalid msg -> Fmt.pf ppf "checkpoint invalid: %s" msg

(* Serial replay with a pair of specification frontiers per object:

   - [f_log] follows the {e logged} results,
   - [f_obj] follows the results the rebuilt object actually returns.

   When the two results agree (the common case, and the only case for
   deterministic specifications) the frontiers stay identical.  When
   they disagree but both are permissible outcomes, the specification
   is non-deterministic and the rebuilt object merely made a different
   legal choice — e.g. a semiqueue whose original [deq] order depended
   on commit interleavings replay cannot reproduce.  That is a
   substitution, not a divergence: both executions are correct
   behaviours of the type.  Only a result the log rules out, or a
   logged result the specification rules out, is a divergence. *)
let replay_txns_ts ~init_ts ~commit_ts sys txns =
  let frontiers = ref Object_id.Map.empty in
  let frontier_pair obj =
    match Object_id.Map.find_opt obj !frontiers with
    | Some pair -> pair
    | None -> (
      match System.find_object sys obj with
      | None ->
        Fmt.invalid_arg "Recovery.replay: unknown object %a" Object_id.pp obj
      | Some o ->
        let f = Weihl_spec.Seq_spec.start o.Atomic_object.spec in
        (f, f))
  in
  let substituted = ref 0 in
  let rec loop count = function
    | [] -> Ok { replayed = count; substituted = !substituted; dropped_records = 0 }
    | (activity, ops) :: rest -> (
      let txn = System.begin_txn ?ts:(init_ts activity) sys activity in
      let rec run = function
        | [] ->
          (match commit_ts activity with
          | Some cts ->
            (* Reinstate the logged (2PC-agreed) commit timestamp: every
               site must keep answering the same timestamp for a
               committed transaction across crashes. *)
            System.prepare sys txn;
            System.commit_prepared ~commit_ts:cts sys txn
          | None -> System.commit sys txn);
          Ok ()
        | (obj, op, expected) :: more -> (
          match System.invoke sys txn obj op with
          | Atomic_object.Granted actual ->
            let f_log, f_obj = frontier_pair obj in
            let open Weihl_spec.Seq_spec in
            (match (advance f_log op expected, advance f_obj op actual) with
            | Some f_log', Some f_obj' ->
              if not (Value.equal actual expected) then incr substituted;
              frontiers := Object_id.Map.add obj (f_log', f_obj') !frontiers;
              run more
            | None, _ ->
              Error
                (Divergent
                   (Fmt.str
                      "recovery divergence: log says %a answered %a at %a, \
                       but the specification permits no such outcome"
                      Operation.pp op Value.pp expected Object_id.pp obj))
            | _, None ->
              Error
                (Divergent
                   (Fmt.str
                      "recovery divergence: %a at %a answered %a, log says %a"
                      Operation.pp op Object_id.pp obj Value.pp actual
                      Value.pp expected)))
          | Atomic_object.Wait _ ->
            Error
              (Divergent
                 (Fmt.str
                    "recovery stalled: %a at %a blocked during serial replay"
                    Operation.pp op Object_id.pp obj))
          | Atomic_object.Refused why ->
            Error (Divergent (Fmt.str "recovery refused: %s" why)))
      in
      match run ops with
      | Ok () -> loop (count + 1) rest
      | Error _ as e ->
        (* Leave the failed transaction aborted so the system stays
           consistent. *)
        (if Txn.is_active txn then System.abort sys txn);
        e)
  in
  loop 0 txns

let no_ts _ = None
let replay_txns sys txns = replay_txns_ts ~init_ts:no_ts ~commit_ts:no_ts sys txns

(* History-based replay reinstates the logged timestamps: the initiation
   timestamp from the activity's [<initiate(t)>] event and the commit
   timestamp from its [<commit(t)>] event, when present.  A recovered
   site must answer the same timestamps it answered before the crash —
   under hybrid atomicity those were agreed cross-site at commit, and
   re-deriving them locally would break the agreement. *)
let replay order sys h =
  let init_ts a =
    List.find_map
      (function
        | Event.Initiate (a', _, ts) when Activity.equal a a' -> Some ts
        | _ -> None)
      (History.to_list h)
  in
  let commit_ts a =
    List.find_map
      (function
        | Event.Commit (a', _, (Some _ as ts)) when Activity.equal a a' -> ts
        | _ -> None)
      (History.to_list h)
  in
  replay_txns_ts ~init_ts ~commit_ts sys (committed_in_order order h)

let restore order sys h =
  match replay order sys h with
  | Ok r -> Ok r.replayed
  | Error f -> Error (Fmt.str "%a" pp_failure f)

let restore_from_text order sys text =
  match Notation.history_of_string text with
  | Error e -> Error (Fmt.str "%a" Notation.pp_error e)
  | Ok h -> restore order sys h

let restore_durable order sys text =
  match Wal.decode text with
  | Error e -> Error (Corrupt e)
  | Ok (h, status) -> (
    let dropped = match status with Wal.Intact -> 0 | Wal.Torn n -> n in
    match replay order sys h with
    | Ok r -> Ok { r with dropped_records = dropped }
    | Error f -> Error f)

(* ------------------------------------------------------------------ *)
(* Sharded recovery: reinstate in-doubt (prepared, undecided)
   transactions from the WAL's control records. *)

type shard_report = {
  base : report;
  reinstated : int;
  resolved : int;
  in_doubt : (int * Txn.t) list;
}

(* Re-execute a prepared transaction's logged operations and park it in
   the [Prepared] state.  Serial context: only this transaction is
   active, so a [Wait] would mean the replayed committed state blocks an
   operation the original execution granted — a divergence. *)
let reinstate_prepared sys h gid activity =
  let ops = completed_ops h activity in
  let ts = History.timestamp_of h activity in
  let txn = System.begin_txn ?ts sys activity in
  let rec run = function
    | [] -> Ok txn
    | (obj, op, _logged) :: more -> (
      match System.invoke sys txn obj op with
      | Atomic_object.Granted _ -> run more
      | Atomic_object.Wait _ ->
        Error
          (Fmt.str "in-doubt transaction %d: %a at %a blocked during serial \
                    reinstatement" gid Operation.pp op Object_id.pp obj)
      | Atomic_object.Refused why ->
        Error (Fmt.str "in-doubt transaction %d: refused: %s" gid why))
  in
  match run ops with
  | Ok txn ->
    System.prepare sys txn;
    Ok txn
  | Error _ as e ->
    if Txn.is_active txn then System.abort sys txn;
    e

(* The sharded-recovery engine over an already-decoded record stream.
   [prelude] is a checkpoint's captured projection, replayed ahead of
   the stream's own committed transactions {e in the same}
   [replay_txns_ts] {e invocation} — the spec-validation frontier must
   carry the captured effects into the tail replay, or every tail
   answer gets checked against the initial state.  [skip] names the
   prelude's activities: their committed transactions are excluded from
   the tail replay and their prepared markers ignored (records of a
   checkpointed transaction may straddle the checkpoint's redo
   point). *)
let restore_records ?(resolve = fun _ -> `Unknown) ?skip ?prelude order sys
    records ~dropped =
  let skip_mem =
    match skip with
    | None -> fun _ -> false
    | Some names ->
      let tbl = Hashtbl.create (max 8 (List.length names)) in
      List.iter (fun n -> Hashtbl.replace tbl n ()) names;
      fun a -> Hashtbl.mem tbl (Activity.name a)
  in
  let events =
    List.filter_map
      (function Wal.Event e -> Some e | Wal.Control _ -> None)
      records
  in
  let h = History.of_list events in
  let prelude_txns, prelude_events =
    match prelude with
    | None -> ([], [])
    | Some ph -> (committed_in_order order ph, History.to_list ph)
  in
  (* Prepared records in WAL order, first occurrence per gid; decided
     records, last occurrence per gid (a re-delivered decision must
     agree, and the latest is as authoritative as any). *)
  let prepared = ref [] and decided = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Control (Wal.Prepared { gid; activity }) ->
        if not (List.mem_assoc gid !prepared) then
          prepared := (gid, activity) :: !prepared
      | Wal.Control (Wal.Decided { gid; verdict }) ->
        Hashtbl.replace decided gid verdict
      | Wal.Event _ | Wal.Control (Wal.Checkpointed _) -> ())
    records;
  let prepared = List.rev !prepared in
  (* Prelude activities and stream activities are disjoint (the [skip]
     filter below removes the overlap), so one concatenated search
     space serves both. *)
  let ts_events = prelude_events @ events in
  let init_ts a =
    List.find_map
      (function
        | Event.Initiate (a', _, ts) when Activity.equal a a' -> Some ts
        | _ -> None)
      ts_events
  in
  let commit_ts a =
    List.find_map
      (function
        | Event.Commit (a', _, (Some _ as ts)) when Activity.equal a a' -> ts
        | _ -> None)
      ts_events
  in
  let txns =
    let tail_txns =
      committed_in_order order h
      |> List.filter (fun (a, _) -> not (skip_mem a))
    in
    match (order, prelude) with
    | _, None -> tail_txns
    | Commit_order, Some _ ->
      (* Every captured transaction committed before every tail one —
         capture only takes transactions already committed at the
         snapshot — so concatenation is the global commit order. *)
      prelude_txns @ tail_txns
    | Timestamp_order, Some ph ->
      (* Concatenation is NOT enough here: a cross-shard transaction
         draws its timestamp where it initiates and may reach this
         shard only after the snapshot, so a tail timestamp can sit
         below captured ones.  Merge the two (individually sorted)
         runs into the global timestamp order. *)
      let key hist (a, _) =
        match History.timestamp_of hist a with
        | Some ts -> Timestamp.to_int ts
        | None -> max_int
      in
      let rec merge xs ys =
        match (xs, ys) with
        | [], l | l, [] -> l
        | x :: xs', y :: ys' ->
          if key ph x <= key h y then x :: merge xs' ys
          else y :: merge xs ys'
      in
      merge prelude_txns tail_txns
  in
  match replay_txns_ts ~init_ts ~commit_ts sys txns with
  | Error f -> Error f
  | Ok base ->
    let base = { base with dropped_records = dropped } in
    let committed = History.committed h and aborted = History.aborted h in
    let reinstated = ref 0 and resolved = ref 0 and in_doubt = ref [] in
    let rec go = function
      | [] ->
        Ok
          {
            base;
            reinstated = !reinstated;
            resolved = !resolved;
            in_doubt = List.rev !in_doubt;
          }
      | (gid, activity) :: rest ->
        (* A prepared transaction whose commit/abort made it into the
           log was already handled by the committed-projection replay
           (or discarded with the aborts); one the checkpoint captured
           was handled by the checkpoint replay. *)
        if
          skip_mem activity
          || Activity.Set.mem activity committed
          || Activity.Set.mem activity aborted
        then go rest
        else (
          match reinstate_prepared sys h gid activity with
          | Error m -> Error (Divergent m)
          | Ok txn ->
            incr reinstated;
            let verdict =
              match Hashtbl.find_opt decided gid with
              | Some v ->
                (v :> [ `Commit of Timestamp.t option | `Abort | `Unknown ])
              | None -> resolve gid
            in
            (match verdict with
            | `Commit commit_ts ->
              System.commit_prepared ?commit_ts sys txn;
              incr resolved
            | `Abort ->
              System.abort_prepared ~reason:"recovery decision" sys txn;
              incr resolved
            | `Unknown -> in_doubt := (gid, txn) :: !in_doubt);
            go rest)
    in
    go prepared

let dropped_of = function Wal.Intact -> 0 | Wal.Torn n -> n

let restore_shard ?resolve order sys text =
  match Wal.decode_records text with
  | Error e -> Error (Corrupt e)
  | Ok (records, status) ->
    restore_records ?resolve order sys records ~dropped:(dropped_of status)

(* ------------------------------------------------------------------ *)
(* Checkpoint-aware recovery *)

type source = Full_replay | From_checkpoint of { covered : int }

type checkpointed_report = {
  shard : shard_report;
  source : source;
  fallbacks : string list;
  wal_records : int;
  replayed_records : int;
}

let pp_source ppf = function
  | Full_replay -> Fmt.string ppf "full-log replay"
  | From_checkpoint { covered } -> Fmt.pf ppf "checkpoint @%d + tail" covered

let rec drop_n n = function
  | _ :: tl when n > 0 -> drop_n (n - 1) tl
  | l -> l

let restore_checkpointed ?resolve ?(checkpoints = []) order sys text =
  match Wal.decode_records text with
  | Error e -> Error (Corrupt e)
  | Ok (records, status) ->
    let dropped = dropped_of status in
    let base = Wal.base text in
    let total = List.length records in
    (* Checkpointed markers newest first: only a marker durable in the
       WAL makes its file official — a file whose write raced the crash
       has no synced marker and is never consulted. *)
    let markers =
      List.filter_map
        (function
          | Wal.Control (Wal.Checkpointed { seq; digest }) -> Some (seq, digest)
          | _ -> None)
        records
      |> List.rev
    in
    let notes = ref [] in
    let note fmt = Fmt.kstr (fun m -> notes := m :: !notes) fmt in
    let rec pick = function
      | [] -> None
      | (seq, digest) :: older -> (
        if seq < base then begin
          note
            "checkpoint @%d lies behind the truncated log (first surviving \
             record %d): skipped"
            seq base;
          pick older
        end
        else
          match
            List.find_opt (fun file -> Checkpoint.digest file = digest)
            checkpoints
          with
          | None ->
            note
              "checkpoint @%d: no file matches digest %08x: falling back" seq
              digest;
            pick older
          | Some file -> (
            match Checkpoint.decode file with
            | Error why ->
              note "checkpoint @%d: %s: falling back" seq why;
              pick older
            | Ok c when Checkpoint.covered c <> seq ->
              note
                "checkpoint @%d: file covers @%d (stale): falling back" seq
                (Checkpoint.covered c);
              pick older
            | Ok c -> Some (seq, c)))
    in
    (match pick markers with
    | None ->
      if base > 0 then
        Error
          (Checkpoint_invalid
             (Fmt.str
                "log truncated at record %d but no usable checkpoint covers \
                 the missing prefix%a"
                base
                Fmt.(list ~sep:nop (any "; " ++ string))
                (List.rev !notes)))
      else begin
        if markers <> [] then note "no usable checkpoint: full-log replay";
        match restore_records ?resolve order sys records ~dropped with
        | Error f -> Error f
        | Ok shard ->
          Ok
            {
              shard;
              source = Full_replay;
              fallbacks = List.rev !notes;
              wal_records = total;
              replayed_records = total;
            }
      end
    | Some (covered, ckpt) -> (
      let tail = drop_n (covered - base) records in
      let skip = Checkpoint.activity_names ckpt in
      (* One restore pass replays the captured projection and the tail
         together, so the spec-validation frontier flows from the
         snapshot's last effect into the first tail transaction. *)
      match
        restore_records ?resolve ~skip
          ~prelude:(Checkpoint.history ckpt)
          order sys tail ~dropped
      with
      | Error f -> Error f
      | Ok shard ->
        (* Every transaction in-doubt at the snapshot must still be
           reachable from the tail (the redo point is capped at its
           first record); a violation means truncation dropped live
           state and recovery must not pretend otherwise. *)
        let tail_gids = Hashtbl.create 8 in
        List.iter
          (function
            | Wal.Control (Wal.Prepared { gid; _ }) ->
              Hashtbl.replace tail_gids gid ()
            | _ -> ())
          tail;
        let missing =
          List.filter
            (fun (gid, _) -> not (Hashtbl.mem tail_gids gid))
            (Checkpoint.in_doubt ckpt)
        in
        if missing <> [] then
          Error
            (Checkpoint_invalid
               (Fmt.str
                  "in-doubt transaction(s) %a recorded at the snapshot have \
                   no Prepared record in the log tail"
                  Fmt.(list ~sep:comma int)
                  (List.map fst missing)))
        else
          Ok
            {
              shard;
              source = From_checkpoint { covered };
              fallbacks = List.rev !notes;
              wal_records = total;
              replayed_records = List.length tail;
            }))
