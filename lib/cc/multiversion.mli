(** Reed's timestamp-based multi-version protocol, generalized from
    read/write registers to arbitrary sequential specifications —
    the implementation route to static atomicity (Section 4.2).

    Every transaction carries a timestamp chosen at initiation.  The
    object keeps the full log of executed (timestamp, operation,
    result) triples; an operation with timestamp [t] executes against
    the state produced by all operations with smaller timestamps:

    - if some smaller-timestamp operation belongs to a still-active
      transaction, the invoker {e waits} (Reed: a read of an
      uncommitted version is delayed) — since waits only ever point
      from larger to smaller timestamps, this protocol is
      deadlock-free;
    - the computed answer is then checked against every
      larger-timestamp operation already executed: if inserting the new
      operation would change any of their recorded results, the invoker
      is {e refused} and must abort (Reed: a write behind a
      later-timestamp read is rejected).

    Every history this object generates is static atomic. *)

open Weihl_event

val make : ?validate_stable:bool -> Event_log.t -> Object_id.t ->
  Weihl_spec.Seq_spec.t -> Atomic_object.t
(** [validate_stable] (default [true]) keeps the second grant check:
    the new operation must also replay against only the execs that
    cannot vanish (committed transactions plus the invoker's own).
    Passing [false] reverts to the pre-fix guard that let a mutation be
    justified by an uncommitted later-timestamp exec — a known
    static-atomicity bug, kept reachable solely so the lint mutation
    self-test can prove the certifier catches it. *)
