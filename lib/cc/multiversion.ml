open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type exec = {
  txn : Txn.t;
  ts : Timestamp.t;
  seq : int; (* program order within the transaction *)
  op : Operation.t;
  result : Value.t;
  mutates : bool; (* did the operation change the state? *)
}

let exec_order a b =
  let c = Timestamp.compare a.ts b.ts in
  if c <> 0 then c else Int.compare a.seq b.seq

let make ?(validate_stable = true) log id spec : Atomic_object.t =
  let olog = Obj_log.create log id in
  let executed : exec list ref = ref [] in
  let next_seq = Hashtbl.create 8 in
  let seq_for txn =
    let n = Option.value ~default:0 (Hashtbl.find_opt next_seq (Txn.id txn)) in
    Hashtbl.replace next_seq (Txn.id txn) (n + 1);
    n
  in
  let replay execs =
    List.fold_left
      (fun f e ->
        match f with
        | None -> None
        | Some f -> Seq_spec.advance f e.op e.result)
      (Some (Seq_spec.start spec))
      execs
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    match Txn.init_ts txn with
    | None ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused "multiversion: transaction has no timestamp"
    | Some ts -> (
      let sorted = List.sort exec_order !executed in
      let earlier, later =
        List.partition (fun e -> Timestamp.compare e.ts ts <= 0) sorted
      in
      (* Smaller-timestamp *versions* (state-changing operations) by
         active transactions: wait for them to commit or be discarded.
         Pure queries by uncommitted transactions cannot affect the
         state we read, exactly as in Reed's scheme. *)
      let blockers =
        List.filter_map
          (fun e ->
            if e.mutates && (not (Txn.equal e.txn txn)) && Txn.is_live e.txn
            then Some e.txn
            else None)
          earlier
        |> List.sort_uniq Txn.compare
      in
      match blockers with
      | _ :: _ -> Atomic_object.Wait blockers
      | [] -> (
        match replay earlier with
        | None ->
          (* Recorded results must replay; a failure is a protocol
             bug. *)
          invalid_arg "Multiversion: executed log no longer replays"
        | Some frontier -> (
          match Seq_spec.outcomes frontier op with
          | [] ->
            Obj_log.dropped olog txn;
            Atomic_object.Refused
              (Fmt.str "operation %a has no permissible outcome"
                 Operation.pp op)
          | (res, _) :: _ ->
            let mutates =
              Option.value ~default:false
                (Seq_spec.advance_changes frontier op res)
            in
            let e = { txn; ts; seq = seq_for txn; op; result = res; mutates } in
            (* Would inserting this operation at its timestamp change
               any already-executed later answer?  The check must hold
               twice: over everything executed, and over the execs that
               cannot vanish (committed transactions plus our own).
               Without the second check a mutation can be justified by
               an uncommitted later-timestamp operation that happens to
               cancel it — e.g. an insert granted because an active
               transaction's delete of the same element keeps a
               committed reader's answer consistent; if that
               transaction aborts, the committed reader's answer is no
               longer serializable in timestamp order. *)
            let stable e' =
              Txn.equal e'.txn txn || not (Txn.is_live e'.txn)
            in
            let consistent l = Option.is_some (replay l) in
            if
              consistent (earlier @ [ e ] @ later)
              && ((not validate_stable)
                 || consistent
                      (List.filter stable earlier
                      @ [ e ]
                      @ List.filter stable later))
            then begin
              executed := e :: !executed;
              Obj_log.responded olog txn res;
              Atomic_object.Granted res
            end
            else begin
              Obj_log.dropped olog txn;
              Atomic_object.Refused
                (Fmt.str
                   "timestamp conflict: %a at timestamp %a invalidates a \
                    later-timestamp result"
                   Operation.pp op Timestamp.pp ts)
            end)))
  in
  let commit txn = Obj_log.committed olog txn in
  let abort txn =
    executed := List.filter (fun e -> not (Txn.equal e.txn txn)) !executed;
    Obj_log.aborted olog txn
  in
  let initiate txn = Obj_log.initiated olog txn in
  let depth () =
    List.filter_map
      (fun e -> if Txn.is_live e.txn then Some e.txn else None)
      !executed
    |> List.sort_uniq Txn.compare |> List.length
  in
  { id; spec; try_invoke; commit; abort; initiate; depth }
