type t = { edges : (int, Txn.t * Txn.t list) Hashtbl.t }

let create () = { edges = Hashtbl.create 16 }

let set_waiting t waiter blockers =
  Hashtbl.replace t.edges (Txn.id waiter) (waiter, blockers)

let clear t txn = Hashtbl.remove t.edges (Txn.id txn)

let blockers t txn =
  match Hashtbl.find_opt t.edges (Txn.id txn) with
  | Some (_, bs) -> bs
  | None -> []

let waiter_count t = Hashtbl.length t.edges

let snapshot t =
  Hashtbl.fold
    (fun waiter (_, bs) acc ->
      (waiter, List.filter_map
                 (fun b -> if Txn.is_active b then Some (Txn.id b) else None)
                 bs)
      :: acc)
    t.edges []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let find_cycle t =
  (* DFS from every waiter, tracking the path. *)
  let exception Found of Txn.t list in
  let rec dfs path visited txn =
    if List.exists (Txn.equal txn) path then begin
      (* The cycle is the path segment from the earlier occurrence of
         [txn] (path is newest-first). *)
      let rec from_txn = function
        | [] -> []
        | x :: rest -> if Txn.equal x txn then x :: rest else from_txn rest
      in
      raise (Found (from_txn (List.rev path)))
    end
    else if not (List.exists (Txn.equal txn) visited) then begin
      let visited = txn :: visited in
      List.iter
        (fun b -> if Txn.is_active b then dfs (txn :: path) visited b)
        (blockers t txn);
      ()
    end
  in
  match
    Hashtbl.iter (fun _ (waiter, _) -> dfs [] [] waiter) t.edges
  with
  | () -> None
  | exception Found cycle -> Some cycle

let victim = function
  | [] -> invalid_arg "Waits_for.victim: empty cycle"
  | first :: rest ->
    List.fold_left (fun v t -> if Txn.id t > Txn.id v then t else v) first rest
