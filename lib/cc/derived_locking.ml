open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

let make log id spec ~conflict : Atomic_object.t =
  let olog = Obj_log.create log id in
  let store = Intentions.create spec in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    (* Candidate results, validated against the committed frontier plus
       this transaction's own intentions.  The scheduler may steer a
       non-deterministic specification: the first candidate whose
       (op, result) pair conflicts with nothing held is granted, so two
       semiqueue dequeuers can be handed distinct items instead of
       colliding on the first permissible one. *)
    let candidates =
      List.map fst (Seq_spec.outcomes (Intentions.view store txn) op)
    in
    let others =
      List.filter
        (fun (holder, _) -> not (Txn.equal holder txn))
        (Intentions.active store)
    in
    let blockers res =
      List.filter_map
        (fun (holder, held) ->
          if List.exists (fun (q, rq) -> conflict (op, res) (q, rq)) held
          then Some holder
          else None)
        others
    in
    let rec grant blocked = function
      | [] -> (
        match blocked with
        | [] ->
          Obj_log.dropped olog txn;
          Atomic_object.Refused
            (Fmt.str "operation %a has no permissible outcome" Operation.pp
               op)
        | _ :: _ ->
          let unique =
            List.fold_left
              (fun acc t ->
                if List.exists (Txn.equal t) acc then acc else t :: acc)
              [] blocked
          in
          Atomic_object.Wait (List.rev unique))
      | res :: rest -> (
        match blockers res with
        | [] ->
          Intentions.record store txn op res;
          Obj_log.responded olog txn res;
          Atomic_object.Granted res
        | bs -> grant (blocked @ bs) rest)
    in
    grant [] candidates
  in
  let commit txn =
    Intentions.commit store txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    Intentions.abort store txn;
    Obj_log.aborted olog txn
  in
  {
    id;
    spec;
    try_invoke;
    commit;
    abort;
    initiate = (fun _ -> ());
    depth = (fun () -> List.length (Intentions.active store));
  }
