(** A shared, append-only event log.

    Every object of a system appends its events to the same log, so the
    log is a faithful observation (in the paper's sense, Section 2) of
    the computation the protocols produced.  Tests replay logs through
    the checkers of [Weihl_spec.Atomicity]. *)

open Weihl_event

type t

val create : unit -> t
val record : t -> Event.t -> unit
val history : t -> History.t
val length : t -> int
val clear : t -> unit

val durable : t -> string
(** The log's crash-safe on-disk form; see {!Wal.encode}. *)
