(** Intentions-list recovery (the Lampson-Sturgis technique the paper
    pairs with its locking protocols).

    Updates by an active transaction are buffered as a list of
    (operation, result) {e intentions} rather than applied to the
    committed state.  The transaction's own view replays its intentions
    on top of the committed state; commit installs the intentions;
    abort simply discards them.  Recovery is thus trivially correct and
    never disturbs other transactions' views. *)

open Weihl_event

type t

val create : Weihl_spec.Seq_spec.t -> t

val view : t -> Txn.t -> Weihl_spec.Seq_spec.frontier
(** Committed state as seen by the transaction: the committed frontier
    advanced through its own intentions. *)

val committed_frontier : t -> Weihl_spec.Seq_spec.frontier

val peek : t -> Txn.t -> Operation.t -> Value.t option
(** The result the operation would receive from the transaction's view
    (the specification's first permissible outcome), without recording
    anything.  [None] when the specification permits no outcome. *)

val execute : t -> Txn.t -> Operation.t -> Value.t option
(** Like {!peek}, but records the (operation, result) pair as an
    intention of the transaction. *)

val record : t -> Txn.t -> Operation.t -> Value.t -> unit
(** Record a {e chosen} (operation, result) intention — unlike
    {!execute}, the caller picks which permissible outcome to grant.
    Data-dependent protocols use this to steer a non-deterministic
    specification toward a result class that does not conflict with
    other holders.
    @raise Invalid_argument if the result is not permissible from the
    transaction's view. *)

val intentions : t -> Txn.t -> (Operation.t * Value.t) list
(** The transaction's recorded intentions, oldest first. *)

val active : t -> (Txn.t * (Operation.t * Value.t) list) list
(** Intentions of every transaction with recorded, uncommitted work. *)

val commit : t -> Txn.t -> unit
(** Install the transaction's intentions into the committed state.
    @raise Invalid_argument if the intentions no longer replay — a
    protocol bug, since locking must have preserved their validity. *)

val abort : t -> Txn.t -> unit
(** Discard the transaction's intentions. *)
