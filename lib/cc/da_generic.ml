open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type entry = {
  txn : Txn.t;
  mutable ops : (Operation.t * Value.t) list; (* granted, oldest first *)
  mutable last_resp : int; (* object-local logical time *)
  mutable commit_time : int option;
}

type state = {
  mutable entries : entry list;
  by_txn : (int, entry) Hashtbl.t; (* same entries, by transaction id *)
  mutable base : Seq_spec.frontier;
      (* the folded prefix: committed transactions pinned before every
         other live transaction, already applied *)
  mutable clock : int;
  max_serializations : int;
}

let tick st =
  st.clock <- st.clock + 1;
  st.clock

let find_entry st txn = Hashtbl.find_opt st.by_txn (Txn.id txn)

let drop_entry st e =
  Hashtbl.remove st.by_txn (Txn.id e.txn);
  st.entries <- List.filter (fun e' -> not (e == e')) st.entries

let entry_for st txn =
  match find_entry st txn with
  | Some e -> e
  | None ->
    let e = { txn; ops = []; last_resp = 0; commit_time = None } in
    Hashtbl.replace st.by_txn (Txn.id txn) e;
    st.entries <- e :: st.entries;
    e

let is_committed e = Option.is_some e.commit_time
let is_active e = (not (is_committed e)) && Txn.is_live e.txn

(* Object-local precedes pin: x must precede y. *)
let pinned_before x y =
  match x.commit_time with
  | Some t -> y.last_resp > t
  | None -> false

exception Too_many

(* All orders of [items] consistent with the pins, bounded.  The
   requester is additionally pinned after every committed transaction:
   the response being evaluated happens *now*, after their commits, so
   granting it puts those pairs into [precedes]. *)
let serializations limit items ~requester =
  let pinned x y =
    pinned_before x y
    || (is_committed x && Txn.equal y.txn requester)
  in
  let acc = ref [] in
  let count = ref 0 in
  let rec go prefix remaining =
    match remaining with
    | [] ->
      incr count;
      if !count > limit then raise Too_many;
      acc := List.rev prefix :: !acc
    | _ ->
      List.iter
        (fun e ->
          if
            not
              (List.exists
                 (fun e' -> (not (e == e')) && pinned e' e)
                 remaining)
          then
            go (e :: prefix) (List.filter (fun e' -> not (e == e')) remaining))
        remaining
  in
  go [] items;
  !acc

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let s = subsets rest in
    s @ List.map (fun sub -> x :: sub) s

(* Evaluate one serialization: replay every block's recorded results in
   order, with [probe] appended to the requester's block.  A candidate
   result for the probe is valid in this order only if the recorded
   results of every transaction serialized *after* the requester still
   replay on top of the probe's effect.  Returns the valid results, or
   None if the recorded results fail to replay even without the probe
   (a protocol bug for sound grants). *)
let results_in_order base order ~requester ~probe =
  let rec replay frontier = function
    | [] -> Some frontier
    | (op, res) :: rest -> (
      match Seq_spec.advance frontier op res with
      | None -> None
      | Some f -> replay f rest)
  in
  let rec split before = function
    | [] -> (List.rev before, [])
    | e :: rest ->
      if Txn.equal e.txn requester then (List.rev (e :: before), rest)
      else split (e :: before) rest
  in
  let before, after = split [] order in
  let before_ops = List.concat_map (fun e -> e.ops) before in
  let after_ops = List.concat_map (fun e -> e.ops) after in
  match replay base before_ops with
  | None -> None
  | Some frontier ->
    let valid =
      List.filter_map
        (fun (r, f') ->
          match replay f' after_ops with
          | Some _ -> Some r
          | None -> None)
        (Seq_spec.outcomes frontier probe)
    in
    Some valid

(* Fold committed transactions that are pinned before every other
   transaction with recorded work into the base frontier: they come
   first in every serialization, so their effect is settled.  This
   keeps the live-entry count proportional to the degree of
   concurrency instead of the length of the run. *)
let rec fold_settled st =
  let live_blockers e =
    List.exists
      (fun e' -> (not (e == e')) && e'.ops <> [] && not (pinned_before e e'))
      st.entries
  in
  match
    List.find_opt
      (fun e -> is_committed e && e.ops <> [] && not (live_blockers e))
      st.entries
  with
  | None -> ()
  | Some e ->
    let folded =
      List.fold_left
        (fun f (op, res) ->
          match f with
          | None -> None
          | Some f -> Seq_spec.advance f op res)
        (Some st.base) e.ops
    in
    (match folded with
    | Some f -> st.base <- f
    | None -> invalid_arg "Da_generic: settled prefix no longer replays");
    drop_entry st e;
    fold_settled st

let make ?(max_serializations = 2000) log id spec : Atomic_object.t =
  let olog = Obj_log.create log id in
  let st =
    { entries = []; by_txn = Hashtbl.create 16; base = Seq_spec.start spec;
      clock = 0; max_serializations }
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    fold_settled st;
    let own = entry_for st txn in
    let known =
      List.filter (fun e -> is_committed e || is_active e) st.entries
    in
    let committed, active = List.partition is_committed known in
    let other_active =
      List.filter (fun e -> not (Txn.equal e.txn txn)) active
    in
    (* Candidate results: those permissible in EVERY serialization of
       every subset of the other active transactions. *)
    let intersection = ref None in
    let blocked = ref false in
    (try
       List.iter
         (fun subset ->
           let items = committed @ (own :: subset) in
           List.iter
             (fun order ->
               match
                 results_in_order st.base order ~requester:txn ~probe:op
               with
               | None ->
                 (* Recorded results failed to replay in this order —
                    cannot happen for sound grants; treat as fatal. *)
                 invalid_arg "Da_generic: recorded results no longer replay"
               | Some results ->
                 let keep =
                   match !intersection with
                   | None -> results
                   | Some current ->
                     List.filter
                       (fun r -> List.exists (Value.equal r) results)
                       current
                 in
                 intersection := Some keep)
             (serializations st.max_serializations items ~requester:txn))
         (subsets other_active)
     with Too_many -> blocked := true);
    if !blocked then
      Atomic_object.Wait (List.map (fun e -> e.txn) other_active)
    else
      match !intersection with
      | Some (r :: _) ->
        own.ops <- own.ops @ [ (op, r) ];
        own.last_resp <- tick st;
        Obj_log.responded olog txn r;
        Atomic_object.Granted r
      | Some [] | None ->
        if other_active = [] then begin
          Obj_log.dropped olog txn;
          Atomic_object.Refused
            (Fmt.str
               "no result for %a is valid in every serialization order"
               Operation.pp op)
        end
        else Atomic_object.Wait (List.map (fun e -> e.txn) other_active)
  in
  let commit txn =
    (match find_entry st txn with
    | Some e -> e.commit_time <- Some (tick st)
    | None -> ());
    fold_settled st;
    Obj_log.committed olog txn
  in
  let abort txn =
    (match find_entry st txn with
    | Some e -> drop_entry st e
    | None -> ());
    fold_settled st;
    Obj_log.aborted olog txn
  in
  { id; spec; try_invoke; commit; abort; initiate = (fun _ -> ());
    depth = (fun () -> List.length (List.filter is_active st.entries)) }
