(** Crash recovery from the event log.

    The shared event log doubles as a write-ahead log: its text form
    ({!Weihl_event.Notation}) is the durable record, and the committed
    projection determines the state to rebuild.  Recovery re-executes
    the committed transactions serially against fresh objects:

    - in {e commit order} for dynamic-atomic systems — commit order is
      consistent with [precedes], so dynamic atomicity guarantees it is
      a valid serialization;
    - in {e timestamp order} for static and hybrid systems — their
      definitions make the timestamp order the valid serialization.

    Re-execution must reproduce the logged results exactly (serial
    execution of a deterministic specification); any mismatch means the
    log and the objects disagree and recovery fails loudly rather than
    silently diverging.  Aborted and in-flight transactions are
    discarded, exactly as [perm] discards them in the model. *)

open Weihl_event

type order = Commit_order | Timestamp_order

val committed_in_order :
  order -> History.t -> (Activity.t * (Object_id.t * Operation.t * Value.t) list) list
(** The committed transactions, each with its completed operations in
    program order, sorted by the recovery order.  Activities without a
    timestamp are dropped under [Timestamp_order]. *)

type report = {
  replayed : int;  (** committed transactions re-executed *)
  substituted : int;
      (** operations whose replayed result legally differed from the
          logged one — only possible under non-deterministic
          specifications (e.g. the semiqueue), where replay may make a
          different permissible choice than the original execution *)
  dropped_records : int;
      (** torn-tail records truncated by {!Wal.decode} before replay *)
}

type failure =
  | Corrupt of Wal.error  (** the durable log is damaged mid-stream *)
  | Divergent of string
      (** replay produced, or the log claims, a result the
          specification rules out *)
  | Checkpoint_invalid of string
      (** checkpoint-aware recovery could not proceed: the log was
          truncated behind a checkpoint but no usable checkpoint covers
          the missing prefix, or a checkpoint's recorded in-doubt set
          is unreachable from the log tail *)

val pp_failure : Format.formatter -> failure -> unit

val replay_txns :
  System.t ->
  (Activity.t * (Object_id.t * Operation.t * Value.t) list) list ->
  (report, failure) result
(** The replay engine on an explicit transaction list (as produced by
    {!committed_in_order}) — the sharded runtime uses it to replay a
    {e merged} cross-shard committed projection in global commit-
    timestamp order against one combined system.  Failures are always
    {!failure.Divergent} here. *)

val replay :
  order -> System.t -> History.t -> (report, failure) result
(** Re-execute the committed transactions of the history against the
    (fresh) system's objects, validating both the logged results and
    the replayed results against each object's sequential
    specification.  A disagreement where both results are permissible
    is counted as a substitution; one the specification rules out is a
    divergence.  The system's log will contain the replayed events. *)

val restore :
  order -> System.t -> History.t -> (int, string) result
(** {!replay}, reporting only the number of transactions replayed. *)

val restore_from_text :
  order -> System.t -> string -> (int, string) result
(** {!restore} after parsing the (unframed) notation text form. *)

val restore_durable :
  order -> System.t -> string -> (report, failure) result
(** Crash recovery proper: {!Wal.decode} the durable log — truncating a
    torn tail, rejecting mid-log corruption — then {!replay} the
    committed prefix.  This is the invariant the fault harness checks:
    recovery lands on exactly the state of the committed projection of
    the surviving log. *)

(** {1 Sharded recovery}

    A shard participating in two-phase commit can crash between its
    yes-vote (the durable {!Wal.control.Prepared} record) and the
    coordinator's decision.  On restart such a transaction is
    {e in-doubt}: its effects must be reinstated and held in the
    prepared state — blocking conflicting operations — until a decision
    resolves it.  It must neither commit (the coordinator may have
    aborted) nor abort (the coordinator may have committed). *)

type shard_report = {
  base : report;  (** the committed-projection replay *)
  reinstated : int;
      (** prepared-but-undecided transactions re-executed and parked in
          the prepared state *)
  resolved : int;
      (** reinstated transactions resolved immediately — by a durable
          {!Wal.control.Decided} record or by the [resolve] callback *)
  in_doubt : (int * Txn.t) list;
      (** transactions still in-doubt after recovery, as [(gid, txn)];
          resolve them later with {!System.commit_prepared} /
          {!System.abort_prepared} once the coordinator's decision is
          learned *)
}

val restore_shard :
  ?resolve:(int -> [ `Commit of Timestamp.t option | `Abort | `Unknown ]) ->
  order ->
  System.t ->
  string ->
  (shard_report, failure) result
(** {!restore_durable} for a shard WAL with control records: replay the
    committed projection, then reinstate every transaction with a
    durable [Prepared] record but no commit/abort in the surviving log,
    and resolve each from its durable [Decided] record when present,
    else via [resolve] (e.g. a query against the coordinator's decision
    log; default [`Unknown], leaving it in-doubt). *)

(** {1 Checkpoint-aware recovery}

    With fuzzy checkpoints ({!Checkpoint}) recovery no longer replays
    the whole log: it loads the newest checkpoint whose durable
    [Checkpointed] marker matches its file digest, replays the
    checkpoint's captured transactions, and then only the log tail at
    sequence numbers [>= covered].  Restart work is bounded by the tail
    length, not the log length.  A damaged, missing, or stale
    checkpoint falls back {e loudly} (a note per fallback) to the next
    older checkpoint, and finally to a full-log replay — unless the log
    was already truncated behind a checkpoint, in which case recovery
    fails with {!failure.Checkpoint_invalid} rather than silently
    recovering partial state. *)

type source = Full_replay | From_checkpoint of { covered : int }

type checkpointed_report = {
  shard : shard_report;
  source : source;  (** which path recovery actually took *)
  fallbacks : string list;
      (** one loud note per checkpoint that was skipped and why; empty
          when the newest checkpoint was used (or none existed) *)
  wal_records : int;  (** records surviving in the durable log *)
  replayed_records : int;
      (** log records recovery consumed: the tail length under
          [From_checkpoint] — the recovery-work bound the soak harness
          asserts — or [wal_records] under [Full_replay] *)
}

val pp_source : Format.formatter -> source -> unit

val restore_checkpointed :
  ?resolve:(int -> [ `Commit of Timestamp.t option | `Abort | `Unknown ]) ->
  ?checkpoints:string list ->
  order ->
  System.t ->
  string ->
  (checkpointed_report, failure) result
(** {!restore_shard} with checkpoint files: [checkpoints] holds the
    retained checkpoint file texts (any order; matched to durable
    [Checkpointed] markers by digest).  Markers are tried newest first;
    each unusable one adds a [fallbacks] note.  With no usable
    checkpoint and an untruncated log this degrades to exactly
    {!restore_shard}. *)
