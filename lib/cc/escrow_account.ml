open Weihl_event
module Account = Weihl_adt.Bank_account

type pending = {
  txn : Txn.t;
  mutable debits : int; (* sum of granted withdrawals *)
  mutable credits : int; (* sum of granted deposits *)
  mutable insufficient : bool;
      (* holds an insufficient_funds answer: the balance must not be
         raised by others until this transaction completes *)
  mutable read_balance : bool;
      (* holds a balance answer: the balance must not change at all *)
  mutable ops : (Operation.t * Value.t) list; (* newest first *)
}

type state = {
  mutable committed : int;
  mutable pendings : pending list;
}

let pending_for st txn =
  match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
  | Some p -> p
  | None ->
    let p =
      { txn; debits = 0; credits = 0; insufficient = false;
        read_balance = false; ops = [] }
    in
    st.pendings <- p :: st.pendings;
    p

let others st txn = List.filter (fun p -> not (Txn.equal p.txn txn)) st.pendings

(* Balance floor/ceiling over all completions of the *other* active
   transactions, as seen by [txn] (its own updates always apply). *)
let bounds st txn =
  let own = pending_for st txn in
  let base = st.committed - own.debits + own.credits in
  List.fold_left
    (fun (low, high) p -> (low - p.debits, high + p.credits))
    (base, base) (others st txn)

let has_updates p = p.debits > 0 || p.credits > 0

let make log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let st = { committed = 0; pendings = [] } in
  let grant txn op res update =
    let p = pending_for st txn in
    update p;
    p.ops <- (op, res) :: p.ops;
    Obj_log.responded olog txn res;
    Atomic_object.Granted res
  in
  let blockers_of pred txn =
    List.filter_map
      (fun p -> if pred p then Some p.txn else None)
      (others st txn)
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    let low, high = bounds st txn in
    match (Operation.name op, Operation.args op) with
    | "deposit", [ Value.Int n ] when n >= 0 -> (
      (* Raising the balance would invalidate an outstanding
         insufficient_funds answer; any change invalidates an
         outstanding balance answer. *)
      match blockers_of (fun p -> p.insufficient || p.read_balance) txn with
      | _ :: _ as bs -> Atomic_object.Wait bs
      | [] -> grant txn op Value.ok (fun p -> p.credits <- p.credits + n))
    | "withdraw", [ Value.Int n ] when n >= 0 ->
      if low >= n then (
        (* Covered in every completion of the other active
           transactions; only an outstanding balance answer forbids
           changing the balance. *)
        match blockers_of (fun p -> p.read_balance) txn with
        | _ :: _ as bs -> Atomic_object.Wait bs
        | [] -> grant txn op Value.ok (fun p -> p.debits <- p.debits + n))
      else if high < n then
        (* Uncovered in every completion.  The answer changes no state,
           so it cannot invalidate an outstanding balance answer; it
           does constrain future deposits (see above). *)
        grant txn op Value.insufficient_funds (fun p -> p.insufficient <- true)
      else
        (* The outcome depends on which active updates commit. *)
        Atomic_object.Wait (blockers_of has_updates txn)
    | "balance", [] -> (
      match blockers_of has_updates txn with
      | _ :: _ as bs -> Atomic_object.Wait bs
      | [] ->
        (* low = high = committed adjusted by our own updates. *)
        grant txn op (Value.Int low) (fun p -> p.read_balance <- true))
    | _ ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "escrow account: unknown operation %a" Operation.pp op)
  in
  let commit txn =
    (match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
    | Some p -> st.committed <- st.committed - p.debits + p.credits
    | None -> ());
    st.pendings <- others st txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    st.pendings <- others st txn;
    Obj_log.aborted olog txn
  in
  { id; spec = Account.spec; try_invoke; commit; abort;
    initiate = (fun _ -> ());
    depth = (fun () -> List.length st.pendings) }
