(** The durable, crash-safe form of the event log — a write-ahead log.

    {!Weihl_event.Notation} is the readable text form of a history; this
    module frames it for durability.  A WAL is a header line followed by
    one framed record per event:

    {v
      weihl-wal 1
      <crc32:8 hex> <sequence> <event in the paper's notation>
    v}

    The checksum covers the sequence number and the event text, so a
    torn write (a record cut short by a crash mid-write), a truncated
    file, or a flipped bit is detected rather than replayed.

    {!decode} applies the classical WAL recovery rule:

    - a valid prefix followed only by garbage is a {e torn tail} — the
      damaged records are dropped and the intact prefix is returned
      (with {!Torn} reporting how many trailing records were lost);
    - a damaged record followed by any well-framed record is {e mid-log
      corruption} — data demonstrably exists beyond the damage, so
      decoding fails loudly instead of silently dropping committed
      work;
    - a damaged header fails loudly (nothing can be trusted).

    CRC-32 detects every single-bit error, so no single flipped bit can
    make a record silently reparse. *)

open Weihl_event

val magic : string
(** First line of every WAL: ["weihl-wal 1"]. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3) of a string, in [0, 0xFFFFFFFF]. *)

type status =
  | Intact
  | Torn of int  (** trailing records dropped by tail truncation *)

type error = { record : int; reason : string }
(** [record] is the 0-based index of the offending record (-1 for the
    header). *)

val pp_status : Format.formatter -> status -> unit
val pp_error : Format.formatter -> error -> unit

val encode : History.t -> string
(** The durable text of a history: header plus one framed record per
    event, each line terminated by ['\n']. *)

val decode : string -> (History.t * status, error) result
(** Parse a durable text back into the history it records, truncating a
    torn tail and rejecting mid-log corruption or a damaged header. *)
