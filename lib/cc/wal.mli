(** The durable, crash-safe form of the event log — a write-ahead log.

    {!Weihl_event.Notation} is the readable text form of a history; this
    module frames it for durability.  A WAL is a header line followed by
    one framed record per event:

    {v
      weihl-wal 1
      <crc32:8 hex> <sequence> <event in the paper's notation>
    v}

    The checksum covers the sequence number and the event text, so a
    torn write (a record cut short by a crash mid-write), a truncated
    file, or a flipped bit is detected rather than replayed.

    {!decode} applies the classical WAL recovery rule:

    - a valid prefix followed only by garbage is a {e torn tail} — the
      damaged records are dropped and the intact prefix is returned
      (with {!Torn} reporting how many trailing records were lost);
    - a damaged record followed by any well-framed record is {e mid-log
      corruption} — data demonstrably exists beyond the damage, so
      decoding fails loudly instead of silently dropping committed
      work;
    - a damaged header fails loudly (nothing can be trusted).

    CRC-32 detects every single-bit error, so no single flipped bit can
    make a record silently reparse. *)

open Weihl_event

val magic : string
(** First token of every WAL header: ["weihl-wal 1"].  A header may
    carry a label after the magic (["weihl-wal 1 shard-3"]) naming the
    log — per-shard WALs use it; unlabeled logs keep the legacy
    header. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3) of a string, in [0, 0xFFFFFFFF]. *)

type status =
  | Intact
  | Torn of int  (** trailing records dropped by tail truncation *)

type error = { record : int; reason : string }
(** [record] is the 0-based index of the offending record (-1 for the
    header). *)

val pp_status : Format.formatter -> status -> unit
val pp_error : Format.formatter -> error -> unit

val encode : History.t -> string
(** The durable text of a history: header plus one framed record per
    event, each line terminated by ['\n']. *)

val decode : string -> (History.t * status, error) result
(** Parse a durable text back into the history it records, truncating a
    torn tail and rejecting mid-log corruption or a damaged header.
    Control records (below) are skipped. *)

(** {1 Control records}

    Two-phase commit writes more than events into a participant's WAL:
    a [Prepared] record marks the point of no return (after it, the
    transaction is in-doubt across a crash until a decision is known),
    and a [Decided] record makes the coordinator's decision durable.
    Control records share the event framing — same checksum, same
    sequence numbering — so torn-tail/mid-log classification treats
    them uniformly; their bodies start with ['!'], which no event
    notation does. *)

type control =
  | Prepared of { gid : int; activity : Activity.t }
      (** This participant voted yes for global transaction [gid],
          running locally as [activity]. *)
  | Decided of { gid : int; verdict : [ `Commit of Timestamp.t option | `Abort ] }
      (** The decision for [gid]; a commit carries the agreed commit
          timestamp when the policy assigns one. *)
  | Checkpointed of { seq : int; digest : int }
      (** A checkpoint covering every committed transaction whose
          records lie at sequence numbers [< seq] is durable; [digest]
          is the CRC-32 of its file ({!Checkpoint.digest}).  A
          checkpoint file without a synced marker does not count —
          recovery trusts only marked checkpoints. *)

type record = Event of Event.t | Control of control

val encode_records : ?label:string -> ?base:int -> record list -> string
(** Generalized {!encode}: frame an interleaved stream of events and
    control records, optionally labelling the header.  [base] (default
    0) is the absolute sequence number of the first record — a log
    truncated behind a checkpoint keeps its surviving records'
    original numbering and advertises the offset in the header
    (["weihl-wal 1 shard-3 @512"]).
    @raise Invalid_argument if the label contains a newline or [base]
    is negative. *)

val decode_records : string -> (record list * status, error) result
(** Generalized {!decode}: the full record stream, controls included.
    Sequence validation starts at the header's base offset, so damage
    to the base token itself surfaces as a loud sequence mismatch. *)

(** {1 Streaming segments}

    Log shipping cuts the record stream into {e segments}: each is a
    complete WAL text (header with an absolute [@base], CRC-framed
    records) covering a contiguous slice of the stream, so a replica
    can validate and splice it with the same machinery recovery uses on
    a whole log.  The difference from a durable log on disk: a segment
    travels over a network, so a torn tail is not a crash artifact to
    truncate — it is damage in flight, and the receiver must refuse the
    segment and resync rather than apply a prefix. *)

val segment : ?label:string -> base:int -> record list -> string
(** Frame a slice of a record stream for shipping; [base] is the
    absolute position of the slice's first record.  Same text format as
    {!encode_records}. *)

val decode_segment :
  expected_base:int -> string -> (record list, error) result
(** Decode a shipped segment, requiring that it decodes {!Intact} and
    starts exactly at [expected_base].  Any damage — checksum mismatch,
    torn tail, bad header, wrong base — is an error: a receiver never
    applies part of a damaged segment. *)

val records_from : pos:int -> string -> (record list, error) result
(** The records of a durable text at absolute positions [>= pos] — the
    tail a resuming replica needs.  Errors if [pos] is below the text's
    base (those records were truncated away behind a checkpoint and
    can only come from a snapshot) or the text is damaged; a torn tail
    is truncated as in {!decode_records}.  Returns [[]] when [pos] is
    at or past the end. *)

val label : string -> string option
(** The header label of a durable text, if it has one. *)

val base : string -> int
(** The first sequence number of a durable text (0 unless the log was
    truncated behind a checkpoint). *)

(** {1 Group commit}

    A {!Writer} splits the WAL's write path into its two real halves:
    {!Writer.append} buffers a framed record in volatile memory, and
    {!Writer.sync} makes {e everything} buffered durable in one device
    operation.  Concurrently-committing transactions on a shard append
    their records and a single leader syncs once for the whole batch —
    classic group commit, amortizing the device latency so that
    syncs/commit drops below 1 under load.

    The contract that makes this safe: the durable image after a crash
    is exactly {!Writer.synced_text}; records appended but not yet
    covered by a returned [sync] are {e lost}.  A commit therefore must
    not be acknowledged until the sync covering its records returns.
    Writers are domain-safe (mutex-guarded), and the device latency
    [sync_cost] is paid outside the lock so syncs on different shards'
    writers overlap in wall-clock time. *)

module Writer : sig
  type t

  val create : ?label:string -> ?sync_cost:(unit -> unit) -> unit -> t
  (** An empty log (header only).  [sync_cost] models the device sync
      latency (e.g. a 200µs sleep standing in for an fsync); it is paid
      once per {!sync}, not per record.
      @raise Invalid_argument if the label contains a newline. *)

  val append : t -> record -> unit
  (** Buffer one record.  Volatile until the next {!sync} returns. *)

  val append_list : t -> record list -> unit

  val sync : t -> int
  (** Make every buffered record durable; returns the batch size (the
      number of records this sync covered, possibly 0). *)

  val pending : t -> int
  (** Records appended but not yet durable. *)

  val synced_text : t -> string
  (** The durable image — what a crash right now would leave behind.
      Always decodes {!Intact}. *)

  val text : t -> string
  (** The full image including the unsynced tail (what a sync right now
      would make durable).  For inspection, not recovery. *)

  val synced_records : t -> int
  val appends : t -> int
  val syncs : t -> int
end
