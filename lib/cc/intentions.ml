open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type t = {
  mutable committed : Seq_spec.frontier;
  buffers : (int, Txn.t * (Operation.t * Value.t) list) Hashtbl.t;
      (* per-txn intentions, newest first *)
}

let create spec =
  { committed = Seq_spec.start spec; buffers = Hashtbl.create 8 }

let buffer t txn =
  match Hashtbl.find_opt t.buffers (Txn.id txn) with
  | Some (_, ops) -> List.rev ops
  | None -> []

let replay frontier ops =
  List.fold_left
    (fun f (op, res) ->
      match f with
      | None -> None
      | Some f -> Seq_spec.advance f op res)
    (Some frontier) ops

let view t txn =
  match replay t.committed (buffer t txn) with
  | Some f -> f
  | None ->
    (* Intentions were validated when recorded, and the committed state
       only changes by installing non-conflicting transactions; a
       failure here is a protocol bug. *)
    invalid_arg "Intentions.view: recorded intentions no longer replay"

let committed_frontier t = t.committed

let peek t txn op =
  match Seq_spec.outcomes (view t txn) op with
  | [] -> None
  | (res, _) :: _ -> Some res

let execute t txn op =
  match peek t txn op with
  | None -> None
  | Some res ->
    let prev =
      match Hashtbl.find_opt t.buffers (Txn.id txn) with
      | Some (_, ops) -> ops
      | None -> []
    in
    Hashtbl.replace t.buffers (Txn.id txn) (txn, (op, res) :: prev);
    Some res

let record t txn op res =
  match Seq_spec.advance (view t txn) op res with
  | None ->
    invalid_arg
      (Fmt.str "Intentions.record: %a->%a is not permissible from the view"
         Operation.pp op Value.pp res)
  | Some _ ->
    let prev =
      match Hashtbl.find_opt t.buffers (Txn.id txn) with
      | Some (_, ops) -> ops
      | None -> []
    in
    Hashtbl.replace t.buffers (Txn.id txn) (txn, (op, res) :: prev)

let intentions t txn = buffer t txn

let active t =
  Hashtbl.fold
    (fun _ (txn, ops) acc ->
      if Txn.is_live txn then (txn, List.rev ops) :: acc else acc)
    t.buffers []

let commit t txn =
  (match replay t.committed (buffer t txn) with
  | Some f -> t.committed <- f
  | None ->
    invalid_arg "Intentions.commit: recorded intentions no longer replay");
  Hashtbl.remove t.buffers (Txn.id txn)

let abort t txn = Hashtbl.remove t.buffers (Txn.id txn)
