open Weihl_event

let magic = "weihl-wal 1"

(* CRC-32 (IEEE 802.3), table-driven.  OCaml's 63-bit immediates hold
   the 32-bit arithmetic comfortably. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

type status = Intact | Torn of int
type error = { record : int; reason : string }

let pp_status ppf = function
  | Intact -> Fmt.string ppf "intact"
  | Torn n -> Fmt.pf ppf "torn tail (%d record(s) dropped)" n

let pp_error ppf { record; reason } =
  if record < 0 then Fmt.pf ppf "WAL header: %s" reason
  else Fmt.pf ppf "WAL record %d: %s" record reason

let encode h =
  let buf = Buffer.create (64 * (History.length h + 1)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  let seq = ref 0 in
  History.iter
    (fun e ->
      let body = Fmt.str "%d %a" !seq Event.pp e in
      Buffer.add_string buf (Printf.sprintf "%08x %s\n" (crc32 body) body);
      incr seq)
    h;
  Buffer.contents buf

(* Parse one record line.  [seq] is the index the record must carry for
   the log to be gapless. *)
let parse_record ~seq line =
  let n = String.length line in
  if n < 10 then Error "record cut short"
  else if line.[8] <> ' ' then Error "bad framing"
  else
    match int_of_string_opt ("0x" ^ String.sub line 0 8) with
    | None -> Error "unreadable checksum field"
    | Some crc ->
      let body = String.sub line 9 (n - 9) in
      if crc <> crc32 body then Error "checksum mismatch"
      else (
        match String.index_opt body ' ' with
        | None -> Error "missing sequence number"
        | Some sp -> (
          match int_of_string_opt (String.sub body 0 sp) with
          | None -> Error "unreadable sequence number"
          | Some s when s <> seq ->
            Error (Printf.sprintf "sequence gap: expected %d, found %d" seq s)
          | Some _ -> (
            let text = String.sub body (sp + 1) (String.length body - sp - 1) in
            match Notation.event_of_string text with
            | Ok e -> Ok e
            | Error m -> Error ("unparseable event: " ^ m))))

(* A line that checks out structurally (checksum over its own content,
   parseable sequence and event) regardless of where it sits.  Evidence
   that real data exists beyond a damaged record. *)
let well_framed line =
  let n = String.length line in
  n >= 10
  && line.[8] = ' '
  &&
  match int_of_string_opt ("0x" ^ String.sub line 0 8) with
  | None -> false
  | Some crc -> (
    let body = String.sub line 9 (n - 9) in
    crc = crc32 body
    &&
    match String.index_opt body ' ' with
    | None -> false
    | Some sp -> (
      int_of_string_opt (String.sub body 0 sp) <> None
      &&
      match
        Notation.event_of_string
          (String.sub body (sp + 1) (String.length body - sp - 1))
      with
      | Ok _ -> true
      | Error _ -> false))

let decode text =
  match String.split_on_char '\n' text with
  | [] -> Error { record = -1; reason = "empty" }
  | header :: rest ->
    if not (String.equal header magic) then
      Error { record = -1; reason = "bad or missing header" }
    else
      (* A final trailing newline yields one empty trailing element;
         drop exactly that one (an empty line elsewhere is damage). *)
      let lines =
        match List.rev rest with "" :: tl -> List.rev tl | _ -> rest
      in
      let rec go seq acc = function
        | [] -> Ok (History.of_list (List.rev acc), Intact)
        | line :: tl -> (
          match parse_record ~seq line with
          | Ok e -> go (seq + 1) (e :: acc) tl
          | Error reason ->
            if List.exists well_framed tl then
              Error { record = seq; reason = "mid-log corruption: " ^ reason }
            else
              Ok (History.of_list (List.rev acc), Torn (List.length tl + 1)))
      in
      go 0 [] lines
