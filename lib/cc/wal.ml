open Weihl_event

let magic = "weihl-wal 1"

(* CRC-32 (IEEE 802.3), table-driven.  OCaml's 63-bit immediates hold
   the 32-bit arithmetic comfortably.  Built eagerly at module init:
   a [lazy] here would be forced concurrently from shard domains. *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s =
  let table = crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

type status = Intact | Torn of int
type error = { record : int; reason : string }

type control =
  | Prepared of { gid : int; activity : Activity.t }
  | Decided of { gid : int; verdict : [ `Commit of Timestamp.t option | `Abort ] }
  | Checkpointed of { seq : int; digest : int }

type record = Event of Event.t | Control of control

let pp_status ppf = function
  | Intact -> Fmt.string ppf "intact"
  | Torn n -> Fmt.pf ppf "torn tail (%d record(s) dropped)" n

let pp_error ppf { record; reason } =
  if record < 0 then Fmt.pf ppf "WAL header: %s" reason
  else Fmt.pf ppf "WAL record %d: %s" record reason

let control_text = function
  | Prepared { gid; activity } ->
    Printf.sprintf "!prepared %d %s %s" gid
      (if Activity.is_read_only activity then "r" else "u")
      (Activity.name activity)
  | Decided { gid; verdict = `Commit (Some ts) } ->
    Printf.sprintf "!decided %d commit %d" gid (Timestamp.to_int ts)
  | Decided { gid; verdict = `Commit None } ->
    Printf.sprintf "!decided %d commit -" gid
  | Decided { gid; verdict = `Abort } -> Printf.sprintf "!decided %d abort" gid
  | Checkpointed { seq; digest } ->
    Printf.sprintf "!checkpointed %d %08x" seq digest

(* Control bodies start with '!' — no event notation does. *)
let control_of_text text =
  match String.split_on_char ' ' text with
  | "!prepared" :: gid :: kind :: (_ :: _ as rest) -> (
    match (int_of_string_opt gid, kind) with
    | Some gid, ("u" | "r") ->
      let name = String.concat " " rest in
      let activity =
        if String.equal kind "r" then Activity.read_only name
        else Activity.update name
      in
      Ok (Prepared { gid; activity })
    | _ -> Error "unparseable control: bad prepared record")
  | [ "!decided"; gid; "commit"; ts ] -> (
    match int_of_string_opt gid with
    | None -> Error "unparseable control: bad decided record"
    | Some gid ->
      if String.equal ts "-" then Ok (Decided { gid; verdict = `Commit None })
      else (
        match int_of_string_opt ts with
        | Some n when n >= 0 ->
          Ok (Decided { gid; verdict = `Commit (Some (Timestamp.v n)) })
        | _ -> Error "unparseable control: bad decided timestamp"))
  | [ "!decided"; gid; "abort" ] -> (
    match int_of_string_opt gid with
    | Some gid -> Ok (Decided { gid; verdict = `Abort })
    | None -> Error "unparseable control: bad decided record")
  | [ "!checkpointed"; seq; digest ] -> (
    match (int_of_string_opt seq, int_of_string_opt ("0x" ^ digest)) with
    | Some seq, Some digest when seq >= 0 -> Ok (Checkpointed { seq; digest })
    | _ -> Error "unparseable control: bad checkpointed record")
  | _ -> Error "unparseable control record"

let record_text = function
  | Event e -> Event.to_string e
  | Control c -> control_text c

let record_of_text text =
  if String.length text > 0 && text.[0] = '!' then (
    match control_of_text text with
    | Ok c -> Ok (Control c)
    | Error m -> Error m)
  else (
    match Notation.event_of_string text with
    | Ok e -> Ok (Event e)
    | Error m -> Error ("unparseable event: " ^ m))

(* A truncated log keeps the absolute sequence numbers of its surviving
   records; the header records where they start ("weihl-wal 1 shard-3
   @512").  The ['@'] prefix keeps the base token distinguishable from a
   label, which may not contain one as its last space-separated token. *)
let header_line ?(base = 0) label =
  (match label with
  | Some l when String.contains l '\n' ->
    invalid_arg "Wal.encode_records: label contains a newline"
  | _ -> ());
  if base < 0 then invalid_arg "Wal.encode_records: negative base";
  String.concat " "
    (List.concat
       [
         [ magic ];
         (match label with None -> [] | Some l -> [ l ]);
         (if base = 0 then [] else [ Printf.sprintf "@%d" base ]);
       ])

let encode_records ?label ?(base = 0) records =
  let buf = Buffer.create (64 * (List.length records + 1)) in
  Buffer.add_string buf (header_line ~base label);
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      let body = Printf.sprintf "%d %s" (base + i) (record_text r) in
      Buffer.add_string buf (Printf.sprintf "%08x %s\n" (crc32 body) body))
    records;
  Buffer.contents buf

let encode h =
  let records = ref [] in
  History.iter (fun e -> records := Event e :: !records) h;
  encode_records (List.rev !records)

(* Header tokens after the magic: an optional label (any tokens) and an
   optional trailing ["@<base>"].  Malformed trailing '@' tokens are
   treated as label text — the seq check will catch a truncated log
   whose base token was damaged. *)
let header_fields header =
  if String.equal header magic then (None, 0)
  else
    let extra =
      String.sub header
        (String.length magic + 1)
        (String.length header - String.length magic - 1)
    in
    let toks = String.split_on_char ' ' extra in
    let base, label_toks =
      match List.rev toks with
      | last :: rev_front
        when String.length last > 1
             && last.[0] = '@'
             && int_of_string_opt (String.sub last 1 (String.length last - 1))
                |> Option.fold ~none:false ~some:(fun n -> n >= 0) ->
        ( int_of_string (String.sub last 1 (String.length last - 1)),
          List.rev rev_front )
      | _ -> (0, toks)
    in
    let label =
      match label_toks with
      | [] | [ "" ] -> None
      | ts -> Some (String.concat " " ts)
    in
    (label, base)

(* Parse one record line.  [seq] is the index the record must carry for
   the log to be gapless. *)
let parse_record ~seq line =
  let n = String.length line in
  if n < 10 then Error "record cut short"
  else if line.[8] <> ' ' then Error "bad framing"
  else
    match int_of_string_opt ("0x" ^ String.sub line 0 8) with
    | None -> Error "unreadable checksum field"
    | Some crc ->
      let body = String.sub line 9 (n - 9) in
      if crc <> crc32 body then Error "checksum mismatch"
      else (
        match String.index_opt body ' ' with
        | None -> Error "missing sequence number"
        | Some sp -> (
          match int_of_string_opt (String.sub body 0 sp) with
          | None -> Error "unreadable sequence number"
          | Some s when s <> seq ->
            Error (Printf.sprintf "sequence gap: expected %d, found %d" seq s)
          | Some _ ->
            record_of_text (String.sub body (sp + 1) (String.length body - sp - 1))))

(* A line that checks out structurally (checksum over its own content,
   parseable sequence and record) regardless of where it sits.  Evidence
   that real data exists beyond a damaged record. *)
let well_framed line =
  let n = String.length line in
  n >= 10
  && line.[8] = ' '
  &&
  match int_of_string_opt ("0x" ^ String.sub line 0 8) with
  | None -> false
  | Some crc -> (
    let body = String.sub line 9 (n - 9) in
    crc = crc32 body
    &&
    match String.index_opt body ' ' with
    | None -> false
    | Some sp -> (
      int_of_string_opt (String.sub body 0 sp) <> None
      &&
      match
        record_of_text (String.sub body (sp + 1) (String.length body - sp - 1))
      with
      | Ok _ -> true
      | Error _ -> false))

let header_ok header =
  String.equal header magic
  || String.length header > String.length magic
     && String.sub header 0 (String.length magic + 1) = magic ^ " "

let label text =
  match String.index_opt text '\n' with
  | None -> None
  | Some nl ->
    let header = String.sub text 0 nl in
    if header_ok header then fst (header_fields header) else None

let base text =
  match String.index_opt text '\n' with
  | None -> 0
  | Some nl ->
    let header = String.sub text 0 nl in
    if header_ok header then snd (header_fields header) else 0

let decode_records text =
  match String.split_on_char '\n' text with
  | [] -> Error { record = -1; reason = "empty" }
  | header :: rest ->
    if not (header_ok header) then
      Error { record = -1; reason = "bad or missing header" }
    else
      let _, base = header_fields header in
      (* A final trailing newline yields one empty trailing element;
         drop exactly that one (an empty line elsewhere is damage). *)
      let lines =
        match List.rev rest with "" :: tl -> List.rev tl | _ -> rest
      in
      let rec go seq acc = function
        | [] -> Ok (List.rev acc, Intact)
        | line :: tl -> (
          match parse_record ~seq line with
          | Ok r -> go (seq + 1) (r :: acc) tl
          | Error reason ->
            if List.exists well_framed tl then
              Error { record = seq; reason = "mid-log corruption: " ^ reason }
            else Ok (List.rev acc, Torn (List.length tl + 1)))
      in
      go base [] lines

(* Streaming segments: a shipped slice of the record stream is just a
   WAL text whose header base is the slice's absolute start position.
   Unlike a log read back from disk, a segment that arrives damaged is
   refused whole — applying the intact prefix of a torn segment would
   silently diverge the replica from the stream. *)
let segment ?label ~base records = encode_records ?label ~base records

let decode_segment ~expected_base text =
  match decode_records text with
  | Error _ as e -> e
  | Ok (records, Torn n) ->
    Error
      {
        record = base text + List.length records;
        reason = Printf.sprintf "segment torn in flight (%d record(s))" n;
      }
  | Ok (records, Intact) ->
    let b = base text in
    if b <> expected_base then
      Error
        {
          record = -1;
          reason =
            Printf.sprintf "segment base mismatch: expected %d, found %d"
              expected_base b;
        }
    else Ok records

let rec drop_n n = function _ :: tl when n > 0 -> drop_n (n - 1) tl | l -> l

let records_from ~pos text =
  match decode_records text with
  | Error _ as e -> e
  | Ok (records, _) ->
    let b = base text in
    if pos < b then
      Error
        {
          record = -1;
          reason =
            Printf.sprintf
              "position %d is behind the log's base %d (truncated away)" pos b;
        }
    else Ok (drop_n (pos - b) records)

let decode text =
  match decode_records text with
  | Error e -> Error e
  | Ok (records, status) ->
    let events =
      List.filter_map (function Event e -> Some e | Control _ -> None) records
    in
    Ok (History.of_list events, status)

(* Append/sync decoupling for group commit.  [append] buffers a framed
   record in volatile memory; [sync] moves everything buffered into the
   durable image in one device operation.  The durable image after a
   crash is exactly [synced_text] — appended-but-unsynced records are
   gone, which is why a commit must not be acknowledged before the sync
   that covers it returns. *)
module Writer = struct
  type t = {
    m : Mutex.t;
    durable : Buffer.t; (* header + synced records *)
    mutable tail : record list; (* appended, unsynced (newest first) *)
    mutable next_seq : int;
    mutable synced_records : int;
    mutable appends : int;
    mutable syncs : int;
    sync_cost : unit -> unit; (* paid inside every [sync] *)
  }

  let create ?label ?(sync_cost = Fun.id) () =
    let durable = Buffer.create 256 in
    Buffer.add_string durable (header_line label);
    Buffer.add_char durable '\n';
    {
      m = Mutex.create ();
      durable;
      tail = [];
      next_seq = 0;
      synced_records = 0;
      appends = 0;
      syncs = 0;
      sync_cost;
    }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let append t r =
    locked t (fun () ->
        t.tail <- r :: t.tail;
        t.appends <- t.appends + 1)

  let append_list t rs = List.iter (append t) rs

  let sync t =
    let batch =
      locked t (fun () ->
          let batch = List.rev t.tail in
          List.iter
            (fun r ->
              let body = Printf.sprintf "%d %s" t.next_seq (record_text r) in
              Buffer.add_string t.durable
                (Printf.sprintf "%08x %s\n" (crc32 body) body);
              t.next_seq <- t.next_seq + 1)
            batch;
          t.tail <- [];
          let n = List.length batch in
          t.synced_records <- t.synced_records + n;
          t.syncs <- t.syncs + 1;
          n)
    in
    (* The device latency is paid outside the lock: syncs on different
       writers (one per shard) overlap in wall-clock time. *)
    t.sync_cost ();
    batch

  let pending t = locked t (fun () -> List.length t.tail)
  let synced_text t = locked t (fun () -> Buffer.contents t.durable)

  let text t =
    locked t (fun () ->
        let buf = Buffer.create (Buffer.length t.durable + 64) in
        Buffer.add_buffer buf t.durable;
        let seq = ref t.next_seq in
        List.iter
          (fun r ->
            let body = Printf.sprintf "%d %s" !seq (record_text r) in
            Buffer.add_string buf
              (Printf.sprintf "%08x %s\n" (crc32 body) body);
            incr seq)
          (List.rev t.tail);
        Buffer.contents buf)

  let synced_records t = locked t (fun () -> t.synced_records)
  let appends t = locked t (fun () -> t.appends)
  let syncs t = locked t (fun () -> t.syncs)
end
