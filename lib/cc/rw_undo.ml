open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type lock = Shared | Exclusive

let make log id (module A : Weihl_adt.Adt_sig.S) : Atomic_object.t =
  let olog = Obj_log.create log id in
  let current = ref (Seq_spec.start A.spec) in
  let locks : (int, Txn.t * lock) Hashtbl.t = Hashtbl.create 8 in
  let before_images : (int, Seq_spec.frontier) Hashtbl.t = Hashtbl.create 8 in
  let lock_of op =
    match A.classify op with
    | Weihl_adt.Adt_sig.Read -> Shared
    | Weihl_adt.Adt_sig.Write -> Exclusive
  in
  let conflicts a b =
    match (a, b) with Shared, Shared -> false | _ -> true
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    let wanted = lock_of op in
    let blockers =
      Hashtbl.fold
        (fun tid (holder, held) acc ->
          if tid = Txn.id txn then acc
          else if Txn.is_live holder && conflicts wanted held then
            holder :: acc
          else acc)
        locks []
    in
    match blockers with
    | _ :: _ -> Atomic_object.Wait blockers
    | [] -> (
      match Seq_spec.outcomes !current op with
      | [] ->
        Obj_log.dropped olog txn;
        Atomic_object.Refused
          (Fmt.str "operation %a has no permissible outcome" Operation.pp op)
      | (res, next) :: _ ->
        (* Acquire (or upgrade) the lock, save the before-image on the
           first write, and update in place. *)
        let held =
          match Hashtbl.find_opt locks (Txn.id txn) with
          | Some (_, l) -> Some l
          | None -> None
        in
        let new_lock =
          match (held, wanted) with
          | Some Exclusive, _ | _, Exclusive -> Exclusive
          | Some Shared, Shared | None, Shared -> Shared
        in
        Hashtbl.replace locks (Txn.id txn) (txn, new_lock);
        if wanted = Exclusive && not (Hashtbl.mem before_images (Txn.id txn))
        then Hashtbl.replace before_images (Txn.id txn) !current;
        current := next;
        Obj_log.responded olog txn res;
        Atomic_object.Granted res)
  in
  let commit txn =
    Hashtbl.remove locks (Txn.id txn);
    Hashtbl.remove before_images (Txn.id txn);
    Obj_log.committed olog txn
  in
  let abort txn =
    (match Hashtbl.find_opt before_images (Txn.id txn) with
    | Some image -> current := image
    | None -> ());
    Hashtbl.remove locks (Txn.id txn);
    Hashtbl.remove before_images (Txn.id txn);
    Obj_log.aborted olog txn
  in
  { id; spec = A.spec; try_invoke; commit; abort; initiate = (fun _ -> ());
    depth = (fun () -> Hashtbl.length locks) }
