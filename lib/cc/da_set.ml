open Weihl_event
module Set_adt = Weihl_adt.Intset

let element op =
  match Operation.args op with [ Value.Int i ] -> Some i | _ -> None

(* Compatibility of two granted (operation, result) pairs held by
   distinct active transactions: may they serialize in either order
   with both results unchanged?  The relation is symmetric; [one_way]
   checks whether [q] (held or incoming) can invalidate [p]. *)
let one_way (p, rp) (q, _rq) =
  match (Operation.name p, Operation.name q) with
  | "member", ("insert" | "delete") -> (
    match (element p, element q, rp) with
    | Some i, Some j, _ when i <> j -> true
    | _, _, Value.Bool true -> Operation.name q = "insert"
    | _, _, Value.Bool false -> Operation.name q = "delete"
    | _ -> false)
  | "member", ("member" | "size") -> true
  | "size", ("member" | "size") -> true
  | "size", ("insert" | "delete") -> false
  | "insert", "insert" | "delete", "delete" -> true
  | ("insert" | "delete"), ("insert" | "delete") -> (
    match (element p, element q) with
    | Some i, Some j -> i <> j
    | _ -> false)
  | ("insert" | "delete"), ("member" | "size") -> true
  | _ -> false

let compatible a b = one_way a b && one_way b a

let make log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let store = Intentions.create Set_adt.spec in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    match Intentions.peek store txn op with
    | None ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "intset: operation %a has no permissible outcome"
           Operation.pp op)
    | Some res -> (
      let blockers =
        List.filter_map
          (fun (holder, held) ->
            if Txn.equal holder txn then None
            else if
              List.exists (fun hr -> not (compatible (op, res) hr)) held
            then Some holder
            else None)
          (Intentions.active store)
      in
      match blockers with
      | _ :: _ -> Atomic_object.Wait blockers
      | [] ->
        let res' = Option.get (Intentions.execute store txn op) in
        Obj_log.responded olog txn res';
        Atomic_object.Granted res')
  in
  let commit txn =
    Intentions.commit store txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    Intentions.abort store txn;
    Obj_log.aborted olog txn
  in
  { id; spec = Set_adt.spec; try_invoke; commit; abort;
    initiate = (fun _ -> ());
    depth = (fun () -> List.length (Intentions.active store)) }
