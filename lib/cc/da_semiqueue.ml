open Weihl_event
module Sq = Weihl_adt.Semiqueue

type pending = {
  txn : Txn.t;
  mutable enqueued : int list; (* tentative, not yet dequeueable *)
  mutable taken : int list; (* committed elements tentatively dequeued *)
  mutable empty_claim : bool;
}

type state = {
  mutable committed : int list; (* multiset of available elements *)
  mutable pendings : pending list;
}

let pending_for st txn =
  match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
  | Some p -> p
  | None ->
    let p = { txn; enqueued = []; taken = []; empty_claim = false } in
    st.pendings <- p :: st.pendings;
    p

let others st txn = List.filter (fun p -> not (Txn.equal p.txn txn)) st.pendings

let remove_one v l =
  let rec go = function
    | [] -> []
    | w :: rest -> if w = v then rest else w :: go rest
  in
  go l

let make log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let st = { committed = []; pendings = [] } in
  let grant txn res update =
    let p = pending_for st txn in
    update p;
    Obj_log.responded olog txn res;
    Atomic_object.Granted res
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    match (Operation.name op, Operation.args op) with
    | "enq", [ Value.Int v ] -> (
      match
        List.filter (fun p -> p.empty_claim && Txn.is_live p.txn)
          (others st txn)
      with
      | _ :: _ as claimants ->
        Atomic_object.Wait (List.map (fun p -> p.txn) claimants)
      | [] -> grant txn Value.ok (fun p -> p.enqueued <- v :: p.enqueued))
    | "deq", [] -> (
      let own = pending_for st txn in
      match st.committed with
      | v :: _ ->
        (* Take a committed element; it leaves the available pool so no
           other dequeuer can also answer it. *)
        grant txn (Value.Int v) (fun p ->
            st.committed <- remove_one v st.committed;
            p.taken <- v :: p.taken)
      | [] -> (
        match own.enqueued with
        | v :: _ ->
          (* Consume one of our own tentative elements: net zero. *)
          grant txn (Value.Int v) (fun p ->
              p.enqueued <- remove_one v p.enqueued)
        | [] -> (
          (* Nothing certainly available.  If other active transactions
             hold tentative elements — or tentatively taken ones, which
             their abort would return — the outcome depends on them. *)
          match
            List.filter
              (fun p ->
                (p.enqueued <> [] || p.taken <> []) && Txn.is_live p.txn)
              (others st txn)
          with
          | _ :: _ as suppliers ->
            Atomic_object.Wait (List.map (fun p -> p.txn) suppliers)
          | [] ->
            grant txn Sq.empty_result (fun p -> p.empty_claim <- true))))
    | _ ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "semiqueue: unknown operation %a" Operation.pp op)
  in
  let commit txn =
    (match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
    | Some p ->
      (* Tentative enqueues become available; taken elements are gone
         for good. *)
      st.committed <- p.enqueued @ st.committed
    | None -> ());
    st.pendings <- others st txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    (match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
    | Some p -> st.committed <- p.taken @ st.committed
    | None -> ());
    st.pendings <- others st txn;
    Obj_log.aborted olog txn
  in
  { id; spec = Sq.spec; try_invoke; commit; abort; initiate = (fun _ -> ());
    depth = (fun () -> List.length st.pendings) }
