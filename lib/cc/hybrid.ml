open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type version = {
  cts : Timestamp.t;
  ops : (Operation.t * Value.t) list; (* the update's installed intentions *)
}

let make ?(unsafe_forget_contended_commit = false) log id spec ~conflict
    ~read_only_op : Atomic_object.t =
  let olog = Obj_log.create log id in
  let store = Intentions.create spec in
  let versions : version list ref = ref [] (* ascending cts *) in
  let frontier_before ts =
    List.fold_left
      (fun f v ->
        if Timestamp.compare v.cts ts < 0 then
          List.fold_left
            (fun f (op, res) ->
              match f with
              | None -> None
              | Some f -> Seq_spec.advance f op res)
            f v.ops
        else f)
      (Some (Seq_spec.start spec))
      !versions
  in
  let invoke_read_only txn op =
    if not (read_only_op op) then begin
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str
           "hybrid: read-only activity invoked state-changing operation %a"
           Operation.pp op)
    end
    else
      match Txn.init_ts txn with
      | None ->
        Obj_log.dropped olog txn;
        Atomic_object.Refused "hybrid: read-only transaction has no timestamp"
      | Some ts -> (
        (* A prepared 2PC leg is dangerous: its commit timestamp was
           fixed by the coordinator when the decision was logged, which
           may be *below* [ts] even though the leg has not resolved
           yet.  Serving now would miss a version that later appears
           beneath us.  Active updates are safe to skip — their
           timestamp is drawn at commit time, after ours. *)
        match
          List.filter_map
            (fun (holder, _) ->
              if Txn.is_prepared holder then Some holder else None)
            (Intentions.active store)
        with
        | _ :: _ as bs -> Atomic_object.Wait bs
        | [] -> (
        match frontier_before ts with
        | None -> invalid_arg "Hybrid: version log no longer replays"
        | Some f -> (
          match Seq_spec.outcomes f op with
          | [] ->
            Obj_log.dropped olog txn;
            Atomic_object.Refused
              (Fmt.str "operation %a has no permissible outcome"
                 Operation.pp op)
          | (res, _) :: _ ->
            Obj_log.responded olog txn res;
            Atomic_object.Granted res)))
  in
  let invoke_update txn op =
    let blockers =
      List.filter_map
        (fun (holder, held) ->
          if Txn.equal holder txn then None
          else if List.exists (fun (q, _) -> conflict op q) held then
            Some holder
          else None)
        (Intentions.active store)
    in
    match blockers with
    | _ :: _ -> Atomic_object.Wait blockers
    | [] -> (
      match Intentions.execute store txn op with
      | Some res ->
        Obj_log.responded olog txn res;
        Atomic_object.Granted res
      | None ->
        Obj_log.dropped olog txn;
        Atomic_object.Refused
          (Fmt.str "operation %a has no permissible outcome" Operation.pp op))
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    if Txn.is_read_only txn then invoke_read_only txn op
    else invoke_update txn op
  in
  let commit txn =
    if not (Txn.is_read_only txn) then begin
      let ops = Intentions.intentions store txn in
      let contended =
        List.exists
          (fun (holder, _) -> not (Txn.equal holder txn))
          (Intentions.active store)
      in
      (match Txn.commit_ts txn with
      | Some cts ->
        if
          ops <> []
          && not (unsafe_forget_contended_commit && contended)
        then versions := !versions @ [ { cts; ops } ]
      | None ->
        if ops <> [] then
          invalid_arg "Hybrid.commit: update committed without a timestamp");
      Intentions.commit store txn
    end;
    Obj_log.committed olog txn
  in
  let abort txn =
    if not (Txn.is_read_only txn) then Intentions.abort store txn;
    Obj_log.aborted olog txn
  in
  let initiate txn =
    if Txn.is_read_only txn then Obj_log.initiated olog txn
  in
  { id; spec; try_invoke; commit; abort; initiate;
    depth = (fun () -> List.length (Intentions.active store)) }

let of_adt log id (module A : Weihl_adt.Adt_sig.S) =
  make log id A.spec
    ~conflict:(fun p q -> not (A.commutes p q))
    ~read_only_op:(fun op -> A.classify op = Weihl_adt.Adt_sig.Read)
