(** Transaction records managed by the online protocols.

    A transaction executes one activity.  Its record carries the
    protocol-facing mutable state: status, the initiation timestamp (if
    the protocol assigns timestamps when the activity starts — static
    atomicity, and read-only activities under hybrid atomicity), the
    commit timestamp (hybrid updates), and the set of objects
    touched. *)

open Weihl_event

type status = Active | Prepared | Committed | Aborted
(** [Prepared] is the in-doubt state of two-phase commit: the
    transaction has voted yes and must neither commit nor abort until
    the coordinator's decision arrives (or is replayed from the
    WAL). *)

type t

val make : id:int -> Activity.t -> t
val id : t -> int
val activity : t -> Activity.t
val is_read_only : t -> bool
val status : t -> status
val is_active : t -> bool

val is_prepared : t -> bool

val is_live : t -> bool
(** [Active] or [Prepared] — the transaction still holds its effects
    pending, so its locks, intentions and claims must keep blocking
    conflicting operations.  Protocol objects test {e this}, not
    {!is_active}, when deciding whether a holder still stands in the
    way. *)

val set_status : t -> status -> unit
(** Transitions out of [Active] and [Prepared] are free; [Committed]
    and [Aborted] are final.
    @raise Invalid_argument when resurrecting a completed
    transaction. *)

val init_ts : t -> Timestamp.t option
val set_init_ts : t -> Timestamp.t -> unit
val commit_ts : t -> Timestamp.t option
val set_commit_ts : t -> Timestamp.t -> unit

val touched : t -> Object_id.t list
val touch : t -> Object_id.t -> unit

val mem_touched : t -> Object_id.t -> bool
(** O(1) membership in the touched set (hash lookup, not a list
    scan). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
