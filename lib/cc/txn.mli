(** Transaction records managed by the online protocols.

    A transaction executes one activity.  Its record carries the
    protocol-facing mutable state: status, the initiation timestamp (if
    the protocol assigns timestamps when the activity starts — static
    atomicity, and read-only activities under hybrid atomicity), the
    commit timestamp (hybrid updates), and the set of objects
    touched. *)

open Weihl_event

type status = Active | Committed | Aborted

type t

val make : id:int -> Activity.t -> t
val id : t -> int
val activity : t -> Activity.t
val is_read_only : t -> bool
val status : t -> status
val is_active : t -> bool

val set_status : t -> status -> unit
(** @raise Invalid_argument when resurrecting a completed
    transaction. *)

val init_ts : t -> Timestamp.t option
val set_init_ts : t -> Timestamp.t -> unit
val commit_ts : t -> Timestamp.t option
val set_commit_ts : t -> Timestamp.t -> unit

val touched : t -> Object_id.t list
val touch : t -> Object_id.t -> unit

val mem_touched : t -> Object_id.t -> bool
(** O(1) membership in the touched set (hash lookup, not a list
    scan). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
