open Weihl_event
module Counter = Weihl_adt.Blind_counter

type pending = {
  txn : Txn.t;
  mutable delta : int;
  mutable read_claim : bool;
  mutable bumped : bool;
}

type state = { mutable committed : int; mutable pendings : pending list }

let pending_for st txn =
  match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
  | Some p -> p
  | None ->
    let p = { txn; delta = 0; read_claim = false; bumped = false } in
    st.pendings <- p :: st.pendings;
    p

let others st txn = List.filter (fun p -> not (Txn.equal p.txn txn)) st.pendings

let make log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let st = { committed = 0; pendings = [] } in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    match (Operation.name op, Operation.args op) with
    | "bump", [ Value.Int n ] -> (
      match
        List.filter (fun p -> p.read_claim) (others st txn)
      with
      | _ :: _ as readers ->
        Atomic_object.Wait (List.map (fun p -> p.txn) readers)
      | [] ->
        let p = pending_for st txn in
        p.delta <- p.delta + n;
        p.bumped <- true;
        Obj_log.responded olog txn Value.ok;
        Atomic_object.Granted Value.ok)
    | "read", [] -> (
      match List.filter (fun p -> p.bumped) (others st txn) with
      | _ :: _ as bumpers ->
        Atomic_object.Wait (List.map (fun p -> p.txn) bumpers)
      | [] ->
        let p = pending_for st txn in
        p.read_claim <- true;
        let total = st.committed + p.delta in
        Obj_log.responded olog txn (Value.Int total);
        Atomic_object.Granted (Value.Int total))
    | _ ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "blind counter: unknown operation %a" Operation.pp op)
  in
  let commit txn =
    (match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
    | Some p -> st.committed <- st.committed + p.delta
    | None -> ());
    st.pendings <- others st txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    st.pendings <- others st txn;
    Obj_log.aborted olog txn
  in
  { id; spec = Counter.spec; try_invoke; commit; abort;
    initiate = (fun _ -> ());
    depth = (fun () -> List.length st.pendings) }
