open Weihl_event

type ts_policy = [ `None_ | `Static | `Hybrid ]

type probe = { now : unit -> float; sink : Weihl_obs.Probe.sink }

type t = {
  policy : ts_policy;
  event_log : Event_log.t;
  clock : Lamport_clock.t;
  mutable objects : Atomic_object.t Object_id.Map.t;
  mutable next_txn_id : int;
  txns : (int, Txn.t) Hashtbl.t; (* by id; completed txns are pruned *)
  mutable ts_source : (unit -> Timestamp.t) option;
  waits : Waits_for.t;
  mutable probe : probe option;
}

let create ?(policy = `None_) () =
  {
    policy;
    event_log = Event_log.create ();
    clock = Lamport_clock.create ();
    objects = Object_id.Map.empty;
    next_txn_id = 0;
    txns = Hashtbl.create 64;
    ts_source = None;
    waits = Waits_for.create ();
    probe = None;
  }

let set_probe t ~now sink = t.probe <- Some { now; sink }
let clear_probe t = t.probe <- None
let probe_installed t = Option.is_some t.probe

let emit_probe t ev =
  match t.probe with
  | None -> ()
  | Some { now; sink } -> sink.Weihl_obs.Probe.emit ~time:(now ()) ev

let policy t = t.policy
let log t = t.event_log
let durable t = Event_log.durable t.event_log
let history t = Event_log.history t.event_log
let clock t = t.clock
let set_ts_source t f = t.ts_source <- Some f

let draw_init_ts t =
  match t.ts_source with
  | Some f ->
    let ts = f () in
    Lamport_clock.observe t.clock ts;
    ts
  | None -> Lamport_clock.next t.clock

let add_object t (obj : Atomic_object.t) =
  if Object_id.Map.mem obj.id t.objects then
    invalid_arg
      (Fmt.str "System.add_object: duplicate object %a" Object_id.pp obj.id);
  t.objects <- Object_id.Map.add obj.id obj t.objects

let find_object t x = Object_id.Map.find_opt x t.objects

let find_object_exn t x =
  match find_object t x with
  | Some obj -> obj
  | None ->
    invalid_arg (Fmt.str "System: unknown object %a" Object_id.pp x)

let begin_txn ?ts t activity =
  let txn = Txn.make ~id:t.next_txn_id activity in
  t.next_txn_id <- t.next_txn_id + 1;
  (match ts with
  | Some ts -> Lamport_clock.observe t.clock ts
  | None -> ());
  (match t.policy with
  | `None_ -> ()
  | `Static ->
    Txn.set_init_ts txn
      (match ts with Some ts -> ts | None -> draw_init_ts t)
  | `Hybrid ->
    if Activity.is_read_only activity then
      Txn.set_init_ts txn
        (match ts with Some ts -> ts | None -> Lamport_clock.next t.clock));
  Hashtbl.replace t.txns (Txn.id txn) txn;
  if t.probe <> None then
    emit_probe t
      (Weihl_obs.Probe.Txn_begin
         {
           txn = Txn.id txn;
           name = Activity.name activity;
           read_only = Activity.is_read_only activity;
         });
  txn

let require_active txn =
  if not (Txn.is_active txn) then
    invalid_arg (Fmt.str "System: transaction %a is not active" Txn.pp txn)

let invoke t txn x op =
  require_active txn;
  let obj = find_object_exn t x in
  if not (Txn.mem_touched txn x) then begin
    obj.initiate txn;
    Txn.touch txn x
  end;
  (* Event construction (and the object's depth walk) only happens with
     a probe installed; the uninstrumented path pays one branch. *)
  if t.probe <> None then
    emit_probe t
      (Weihl_obs.Probe.Op_invoke
         {
           txn = Txn.id txn;
           obj = Object_id.name x;
           op = Operation.name op;
           depth = obj.depth ();
         });
  let result = obj.try_invoke txn op in
  (match result with
  | Atomic_object.Wait blockers -> Waits_for.set_waiting t.waits txn blockers
  | Atomic_object.Granted _ | Atomic_object.Refused _ ->
    Waits_for.clear t.waits txn);
  if t.probe <> None then
    emit_probe t
      (let txn_id = Txn.id txn
       and obj_s = Object_id.name x
       and op_s = Operation.name op in
       match result with
       | Atomic_object.Granted _ ->
         Weihl_obs.Probe.Op_grant { txn = txn_id; obj = obj_s; op = op_s }
       | Atomic_object.Wait blockers ->
         Weihl_obs.Probe.Op_wait
           {
             txn = txn_id;
             obj = obj_s;
             op = op_s;
             blockers = List.map Txn.id blockers;
           }
       | Atomic_object.Refused why ->
         Weihl_obs.Probe.Op_refuse
           { txn = txn_id; obj = obj_s; op = op_s; why });
  result

let require_prepared txn =
  if not (Txn.is_prepared txn) then
    invalid_arg (Fmt.str "System: transaction %a is not prepared" Txn.pp txn)

let do_commit ?commit_ts t txn =
  (match commit_ts with
  | Some ts -> Lamport_clock.observe t.clock ts
  | None -> ());
  (match t.policy with
  | `Hybrid when not (Txn.is_read_only txn) ->
    let ts =
      match commit_ts with
      | Some ts -> ts
      | None -> Lamport_clock.next t.clock
    in
    Txn.set_commit_ts txn ts
  | `None_ | `Static | `Hybrid -> ());
  List.iter
    (fun x -> (find_object_exn t x).commit txn)
    (List.rev (Txn.touched txn));
  Txn.set_status txn Txn.Committed;
  Hashtbl.remove t.txns (Txn.id txn);
  Waits_for.clear t.waits txn;
  if t.probe <> None then
    emit_probe t (Weihl_obs.Probe.Txn_commit { txn = Txn.id txn })

let do_abort ~reason t txn =
  List.iter
    (fun x -> (find_object_exn t x).abort txn)
    (List.rev (Txn.touched txn));
  Txn.set_status txn Txn.Aborted;
  Hashtbl.remove t.txns (Txn.id txn);
  Waits_for.clear t.waits txn;
  if t.probe <> None then
    emit_probe t (Weihl_obs.Probe.Txn_abort { txn = Txn.id txn; reason })

let commit t txn =
  require_active txn;
  do_commit t txn

let abort ?(reason = "abort") t txn =
  require_active txn;
  do_abort ~reason t txn

let prepare t txn =
  require_active txn;
  Txn.set_status txn Txn.Prepared;
  Waits_for.clear t.waits txn

let commit_prepared ?commit_ts t txn =
  require_prepared txn;
  do_commit ?commit_ts t txn

let abort_prepared ?(reason = "2pc abort") t txn =
  require_prepared txn;
  do_abort ~reason t txn

let waiting t txn = Waits_for.blockers t.waits txn
let waiters t = Waits_for.waiter_count t.waits
let waits_snapshot t = Waits_for.snapshot t.waits
let find_deadlock t = Waits_for.find_cycle t.waits
let active_txns t =
  (* Completed transactions are removed at commit/abort, so the table
     holds (at most) the live ones; sort newest-first to match the
     former list order. *)
  Hashtbl.fold (fun _ txn acc -> if Txn.is_active txn then txn :: acc else acc)
    t.txns []
  |> List.sort (fun a b -> Int.compare (Txn.id b) (Txn.id a))

let prepared_txns t =
  Hashtbl.fold
    (fun _ txn acc -> if Txn.is_prepared txn then txn :: acc else acc)
    t.txns []
  |> List.sort (fun a b -> Int.compare (Txn.id a) (Txn.id b))
