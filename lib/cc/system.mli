(** The transaction manager: objects, transactions, timestamps,
    waits-for tracking, commit and abort fan-out.

    A [System.t] owns the shared event log, a Lamport clock, and the
    set of protocol objects; its timestamp policy says which events
    carry timestamps:

    - [`None_] — dynamic atomicity: no timestamp events;
    - [`Static] — every transaction draws a timestamp when it begins
      (Section 4.2.1) and objects record initiation events;
    - [`Hybrid] — read-only transactions draw timestamps when they
      begin; update transactions draw them as they commit
      (Section 4.3.1). *)

open Weihl_event

type ts_policy = [ `None_ | `Static | `Hybrid ]

type t

val create : ?policy:ts_policy -> unit -> t
(** Default policy [`None_]. *)

val policy : t -> ts_policy
val log : t -> Event_log.t

val durable : t -> string
(** The crash-safe WAL form of the shared event log; see {!Wal}. *)

val history : t -> History.t
(** The computation observed so far. *)

val clock : t -> Lamport_clock.t

val set_ts_source : t -> (unit -> Timestamp.t) -> unit
(** Override how initiation timestamps are drawn under the [`Static]
    policy (commit timestamps of the [`Hybrid] policy always come from
    the monotone clock, as correctness requires).  The source must
    return unique timestamps; use it to model unsynchronized clocks —
    the skew experiments of Section 4.2.3. *)

val add_object : t -> Atomic_object.t -> unit
(** @raise Invalid_argument on a duplicate object id. *)

val find_object : t -> Object_id.t -> Atomic_object.t option

val begin_txn : ?ts:Timestamp.t -> t -> Activity.t -> Txn.t
(** Create a transaction for the activity, drawing an initiation
    timestamp when the policy requires one.  [?ts] overrides the drawn
    timestamp (and is observed into the local clock): a sharded runtime
    uses it to give every shard-local leg of a global transaction the
    same globally-unique initiation timestamp. *)

val invoke :
  t -> Txn.t -> Object_id.t -> Operation.t -> Atomic_object.invoke_result
(** Route the operation to the object (initiating there first if this
    is the transaction's first contact); record waits-for edges on
    [Wait], and clear them on any other outcome.
    @raise Invalid_argument if the object or transaction is unknown or
    the transaction is not active. *)

val commit : t -> Txn.t -> unit
(** Commit at every touched object.  Under the [`Hybrid] policy an
    update transaction draws its commit timestamp here, immediately
    before the per-object commits — the monotone clock makes the
    timestamp order of updates consistent with [precedes].
    @raise Invalid_argument if the transaction is not active. *)

val abort : ?reason:string -> t -> Txn.t -> unit
(** Abort at every touched object, discarding the transaction's
    effects.  [reason] only annotates the probe event (default
    ["abort"]).  @raise Invalid_argument if the transaction is not
    active. *)

(** {1 Two-phase commit hooks}

    The sharded runtime drives each local leg of a distributed
    transaction through [prepare] and then exactly one of
    [commit_prepared] / [abort_prepared].  A prepared transaction is
    in-doubt: it holds its locks/intentions and blocks conflicting
    operations until the coordinator's decision arrives. *)

val prepare : t -> Txn.t -> unit
(** Move an active transaction to {!Txn.status.Prepared} (the yes-vote
    of 2PC).  Its effects stay pending at every touched object and its
    waits-for edges are cleared — a prepared transaction no longer
    waits, it only blocks others.
    @raise Invalid_argument if the transaction is not active. *)

val commit_prepared : ?commit_ts:Timestamp.t -> t -> Txn.t -> unit
(** Commit a prepared transaction.  [?commit_ts] is the coordinator's
    agreed commit timestamp: it is observed into the local clock and —
    under the [`Hybrid] policy, for updates — recorded as the
    transaction's commit timestamp, implementing the max-of-sites
    agreement rule.
    @raise Invalid_argument if the transaction is not prepared. *)

val abort_prepared : ?reason:string -> t -> Txn.t -> unit
(** Abort a prepared transaction (the coordinator decided abort, or
    presumed abort after recovery).
    @raise Invalid_argument if the transaction is not prepared. *)

val prepared_txns : t -> Txn.t list
(** In-doubt transactions, oldest first. *)

val waiting : t -> Txn.t -> Txn.t list
(** Whom the transaction is currently recorded as waiting for. *)

val waiters : t -> int
(** How many transactions are currently recorded as waiting. *)

val waits_snapshot : t -> (int * int list) list
(** The waits-for graph as [(waiter id, active blocker ids)]. *)

val find_deadlock : t -> Txn.t list option
(** A cycle of waiting transactions, if any. *)

val active_txns : t -> Txn.t list
(** Live transactions, newest first.  The system drops transactions
    from its tracking table as they commit or abort, so this is O(live)
    rather than O(ever started). *)

(** {1 Instrumentation}

    A probe receives a {!Weihl_obs.Probe.event} for every transaction
    begin/commit/abort and every operation invoke/grant/wait/refuse.
    With no probe installed (the default) the instrumented paths cost
    one branch each; event payloads — including the object's queue
    depth — are only computed once a sink is in place.  The installer
    supplies the clock: the simulator passes its tick counter, the
    concurrent runtime passes real time. *)

val set_probe : t -> now:(unit -> float) -> Weihl_obs.Probe.sink -> unit
val clear_probe : t -> unit
val probe_installed : t -> bool

val emit_probe : t -> Weihl_obs.Probe.event -> unit
(** Emit an event through the installed probe, if any — for layers
    above the system (the simulator's deadlock victim events). *)
