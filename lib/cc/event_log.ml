open Weihl_event

(* Backed directly by a history: [record] is an O(1) [History.append],
   and [history] an O(1) snapshot.  Because [append] extends any index
   its argument has already built, analyses that query successive
   snapshots of a growing log get incremental index maintenance for
   free instead of a rebuild per snapshot. *)
type t = { mutable h : History.t }

let create () = { h = History.empty }
let record t e = t.h <- History.append t.h e
let history t = t.h
let length t = History.length t.h
let clear t = t.h <- History.empty
let durable t = Wal.encode t.h
