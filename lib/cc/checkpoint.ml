open Weihl_event

let magic = "weihl-ckpt 1"

type t = {
  covered : int;
  label : string option;
  records : Wal.record list;
      (* captured transactions' events in serialization order, then one
         Prepared control per in-doubt transaction at the snapshot *)
}

let covered t = t.covered
let label t = t.label
let records t = t.records

let history t =
  History.of_list
    (List.filter_map
       (function Wal.Event e -> Some e | Wal.Control _ -> None)
       t.records)

let in_doubt t =
  List.filter_map
    (function
      | Wal.Control (Wal.Prepared { gid; activity }) -> Some (gid, activity)
      | _ -> None)
    t.records

let txn_count t = Activity.Set.cardinal (History.committed (history t))

let activity_names t =
  Activity.Set.elements (History.committed (history t))
  |> List.map Activity.name

(* ------------------------------------------------------------------ *)
(* Capture *)

let capture ~ts_ordered ?label records =
  let events =
    List.filter_map
      (function Wal.Event e -> Some e | Wal.Control _ -> None)
      records
  in
  let h = History.of_list events in
  let committed = History.committed h and aborted = History.aborted h in
  (* The timestamp frontier: the smallest timestamp a live (active or
     prepared) transaction has already drawn.  Committed transactions
     below it precede every live and every future transaction in
     timestamp order — all timestamps come from one monotone clock, so
     anything stamped later exceeds every timestamp drawn so far. *)
  let frontier =
    if not ts_ordered then None
    else
      Activity.Set.fold
        (fun a acc ->
          match History.timestamp_of h a with
          | None -> acc
          | Some ts -> (
            match acc with
            | None -> Some ts
            | Some m -> if Timestamp.compare ts m < 0 then Some ts else Some m))
        (History.active h) None
  in
  let eligible a =
    Activity.Set.mem a committed
    && ((not ts_ordered)
       ||
       match History.timestamp_of h a with
       | None -> false (* unstamped: committed_in_order would drop it *)
       | Some ts -> (
         match frontier with
         | None -> true
         | Some f -> Timestamp.compare ts f < 0))
  in
  (* Attribute control records to transactions: Prepared carries the
     activity, Decided only the gid. *)
  let prep_act = Hashtbl.create 8 and decided = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Control (Wal.Prepared { gid; activity }) ->
        if not (Hashtbl.mem prep_act gid) then Hashtbl.add prep_act gid activity
      | Wal.Control (Wal.Decided { gid; _ }) -> Hashtbl.replace decided gid ()
      | Wal.Event _ | Wal.Control (Wal.Checkpointed _) -> ())
    records;
  (* The redo point: everything recovery still needs lives at
     [>= covered].  Aborted transactions are discarded by replay, so
     their records do not hold the point back; old Checkpointed markers
     belong to no transaction. *)
  let covered = ref (List.length records) in
  List.iteri
    (fun seq r ->
      let owner =
        match r with
        | Wal.Event e -> Some (Event.activity e)
        | Wal.Control (Wal.Prepared { activity; _ }) -> Some activity
        | Wal.Control (Wal.Decided { gid; _ }) -> Hashtbl.find_opt prep_act gid
        | Wal.Control (Wal.Checkpointed _) -> None
      in
      match owner with
      | Some a when (not (eligible a)) && not (Activity.Set.mem a aborted) ->
        if seq < !covered then covered := seq
      | _ -> ())
    records;
  (* Captured transactions in serialization order.  Commit position
     orders them correctly for both recovery orders: it is the
     serialization order under commit-order recovery, and replay
     re-sorts by the embedded timestamps under timestamp order. *)
  let commit_pos = Hashtbl.create 16 in
  List.iteri
    (fun i e ->
      match e with
      | Event.Commit (a, _, _) when not (Hashtbl.mem commit_pos (Activity.name a))
        ->
        Hashtbl.add commit_pos (Activity.name a) i
      | _ -> ())
    events;
  let blocks =
    Activity.Set.elements committed
    |> List.filter eligible
    |> List.filter_map (fun a ->
           Option.map
             (fun i -> (i, a))
             (Hashtbl.find_opt commit_pos (Activity.name a)))
    |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
    |> List.concat_map (fun (_, a) ->
           History.to_list (History.project_activity a h)
           |> List.map (fun e -> Wal.Event e))
  in
  let in_doubt =
    Hashtbl.fold
      (fun gid a acc ->
        if
          Hashtbl.mem decided gid
          || Activity.Set.mem a committed
          || Activity.Set.mem a aborted
        then acc
        else (gid, a) :: acc)
      prep_act []
    |> List.sort (fun (g, _) (g', _) -> Int.compare g g')
    |> List.map (fun (gid, activity) ->
           Wal.Control (Wal.Prepared { gid; activity }))
  in
  { covered = !covered; label; records = blocks @ in_doubt }

(* ------------------------------------------------------------------ *)
(* The durable file *)

let digest = Wal.crc32

let encode t =
  let header =
    match t.label with
    | None -> Printf.sprintf "%s @%d" magic t.covered
    | Some l ->
      if String.contains l '\n' then
        invalid_arg "Checkpoint.encode: label contains a newline";
      Printf.sprintf "%s @%d %s" magic t.covered l
  in
  header ^ "\n" ^ Wal.encode_records t.records

let decode text =
  match String.index_opt text '\n' with
  | None -> Error "cut short: no header line"
  | Some nl -> (
    let header = String.sub text 0 nl in
    let body = String.sub text (nl + 1) (String.length text - nl - 1) in
    match String.split_on_char ' ' header with
    | "weihl-ckpt" :: "1" :: at :: label_toks
      when String.length at > 1 && at.[0] = '@' -> (
      match int_of_string_opt (String.sub at 1 (String.length at - 1)) with
      | Some covered when covered >= 0 -> (
        let label =
          match label_toks with
          | [] -> None
          | ts -> Some (String.concat " " ts)
        in
        match Wal.decode_records body with
        | Error e -> Error (Fmt.str "damaged payload: %a" Wal.pp_error e)
        | Ok (_, Wal.Torn n) ->
          Error (Fmt.str "torn payload: %d record(s) missing" n)
        | Ok (records, Wal.Intact) -> Ok { covered; label; records })
      | _ -> Error "bad covered sequence number")
    | _ -> Error "bad or missing header")
