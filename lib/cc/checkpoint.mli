(** Fuzzy checkpoints: a durable prefix of the recovery replay.

    Recovery re-executes the committed projection of the WAL in the
    serialization order ({!Recovery}).  A checkpoint makes a prefix of
    that replay persistent: it stores, per committed transaction, the
    transaction's own events (initiation timestamp, operations with
    their logged results, commit timestamp) in serialization order,
    plus the 2PC in-doubt set at the snapshot, plus the WAL sequence
    number it {e covers}.  Restart then replays the checkpoint and only
    the log tail at sequence numbers [>= covered] — bounded work — and
    the WAL prefix behind a durable checkpoint may be truncated or
    archived.

    {2 Fuzziness and consistency}

    The snapshot is taken between commit waves on the shard's own
    domain, without stopping traffic, so live transactions exist while
    it is written.  Two rules keep it consistent by construction:

    - {e prefix rule} — only committed transactions that are
      guaranteed to precede every live transaction in the eventual
      serialization order are captured.  Under commit-order recovery
      that is every committed transaction (future commits serialize
      later).  Under timestamp-order recovery it is those whose
      timestamp lies below the {e timestamp frontier}: the minimum
      timestamp already drawn by a live (active or prepared)
      transaction.  Transactions stamped in the future always exceed
      the frontier, because all timestamps come from one monotone
      group clock.
    - {e redo point} — [covered] is capped at the first WAL record of
      any transaction {e not} captured (and not aborted), so the tail
      at [>= covered] contains every record recovery still needs:
      un-captured committed transactions in full, the events and
      [Prepared] markers of every in-doubt transaction, and nothing a
      captured transaction needs (records of captured transactions
      that straddle [covered] are skipped by activity name at
      replay).

    {2 Durability and damage}

    A checkpoint file only {e counts} once a {!Wal.control.Checkpointed}
    marker carrying its CRC-32 digest is durable in the WAL — a file
    whose write raced a crash has no synced marker and is ignored.
    Every record line carries its own CRC (the {!Wal} framing), the
    file must decode [Intact] (a torn tail is damage here, not
    truncation), and the digest ties the file to its marker.  Any
    mismatch makes recovery fall back loudly to an older checkpoint or
    a full-log replay ({!Recovery.restore_checkpointed}) — never
    silently diverge. *)

open Weihl_event

val magic : string
(** First token of every checkpoint header: ["weihl-ckpt 1"]. *)

type t

val covered : t -> int
(** The WAL sequence number this checkpoint covers: recovery replays
    only records at [>= covered]. *)

val label : t -> string option
(** The shard label, mirroring the WAL header's. *)

val records : t -> Wal.record list
(** The payload: each captured transaction's events in serialization
    order, then one [Prepared] control per transaction in-doubt at the
    snapshot. *)

val history : t -> History.t
(** The captured transactions' events as a replayable history — its
    committed projection in {!Recovery.committed_in_order} is exactly
    the checkpointed replay prefix. *)

val in_doubt : t -> (int * Activity.t) list
(** The 2PC in-doubt set at the snapshot, as [(gid, activity)].  Every
    such transaction's records lie in the tail at [>= covered];
    recovery cross-checks this and fails loudly if truncation ever
    violated it. *)

val txn_count : t -> int
(** Captured committed transactions. *)

val activity_names : t -> string list
(** Names of the captured transactions' activities — the tail-replay
    skip set. *)

val capture : ts_ordered:bool -> ?label:string -> Wal.record list -> t
(** Snapshot the committed projection of a full record stream (absolute
    sequence numbers starting at 0 — the shard's in-memory log, {e not}
    a truncated durable image; only synced records may be passed, or a
    crash could leave the checkpoint claiming more than the log).
    [ts_ordered] selects the timestamp-frontier prefix rule (static /
    hybrid policies) over the commit-order rule. *)

val digest : string -> int
(** CRC-32 of an encoded checkpoint file — the value carried by its
    {!Wal.control.Checkpointed} marker. *)

val encode : t -> string
(** The durable file: a ["weihl-ckpt 1 @<covered> [label]"] header line
    followed by the payload in {!Wal.encode_records} framing. *)

val decode : string -> (t, string) result
(** Parse and validate a checkpoint file.  Fails on a damaged header,
    any record-level damage, or a torn tail — a checkpoint is
    all-or-nothing, so every failure here is a loud reason to fall
    back, never a prefix to salvage. *)
