open Weihl_event

let make log id spec ~conflict : Atomic_object.t =
  let olog = Obj_log.create log id in
  let store = Intentions.create spec in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    let blockers =
      List.filter_map
        (fun (holder, held) ->
          if Txn.equal holder txn then None
          else if List.exists (fun (q, _) -> conflict op q) held then
            Some holder
          else None)
        (Intentions.active store)
    in
    match blockers with
    | _ :: _ -> Atomic_object.Wait blockers
    | [] -> (
      match Intentions.execute store txn op with
      | Some res ->
        Obj_log.responded olog txn res;
        Atomic_object.Granted res
      | None ->
        Obj_log.dropped olog txn;
        Atomic_object.Refused
          (Fmt.str "operation %a has no permissible outcome" Operation.pp op))
  in
  let commit txn =
    Intentions.commit store txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    Intentions.abort store txn;
    Obj_log.aborted olog txn
  in
  { id; spec; try_invoke; commit; abort; initiate = (fun _ -> ());
    depth = (fun () -> List.length (Intentions.active store)) }

let rw log id (module A : Weihl_adt.Adt_sig.S) =
  let conflict p q =
    not (A.classify p = Weihl_adt.Adt_sig.Read
         && A.classify q = Weihl_adt.Adt_sig.Read)
  in
  make log id A.spec ~conflict

let commutativity log id (module A : Weihl_adt.Adt_sig.S) =
  make log id A.spec ~conflict:(fun p q -> not (A.commutes p q))
