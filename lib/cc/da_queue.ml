open Weihl_event
module Queue_spec = Weihl_adt.Fifo_queue

(* Per-transaction bookkeeping.  [clock] times are object-local logical
   instants used to compute the pins of the local precedes relation:
   transaction [y] is pinned after [x] iff [x] committed before some
   response of [y] at this object. *)
type entry = {
  txn : Txn.t;
  mutable enq : int list; (* granted enqueues, oldest first *)
  mutable deq : int; (* granted (tentative) dequeues *)
  mutable last_resp : int; (* local time of latest response *)
  mutable commit_time : int option;
  mutable empty_claim : bool;
  mutable deq_fragile : bool;
      (* some granted dequeue answer drew on a tentative (uncommitted)
         enqueue — a later enqueuer could serialize ahead of it and
         change the front, so enqueues must wait for us to resolve *)
}

type state = {
  mutable entries : entry list; (* committed and active *)
  mutable consumed : int; (* dequeues installed by committed txns *)
  mutable clock : int;
  max_extensions : int;
}

let tick st =
  st.clock <- st.clock + 1;
  st.clock

let entry_for st txn =
  match List.find_opt (fun e -> Txn.equal e.txn txn) st.entries with
  | Some e -> e
  | None ->
    let e =
      { txn; enq = []; deq = 0; last_resp = 0; commit_time = None;
        empty_claim = false; deq_fragile = false }
    in
    st.entries <- e :: st.entries;
    e

let others st txn = List.filter (fun e -> not (Txn.equal e.txn txn)) st.entries
let is_committed e = Option.is_some e.commit_time
let is_active e = (not (is_committed e)) && Txn.is_live e.txn

(* [pinned_before x y]: must x precede y in every serialization?  True
   iff x committed before some response of y. *)
let pinned_before x y =
  match x.commit_time with
  | Some t -> y.last_resp > t
  | None -> false

(* All flattened value sequences reachable by serializing [items]
   (each an entry with a nonempty enqueue list) consistently with the
   pins.  Bounded by [limit]; [None] when the bound is hit. *)
let flatten_extensions limit items =
  let exception Too_many in
  let acc = ref [] in
  let count = ref 0 in
  let rec go prefix remaining =
    match remaining with
    | [] ->
      incr count;
      if !count > limit then raise Too_many;
      acc := List.rev prefix :: !acc
    | _ ->
      let minimal =
        List.filter
          (fun e ->
            not
              (List.exists
                 (fun e' -> (not (e == e')) && pinned_before e' e)
                 remaining))
          remaining
      in
      List.iter
        (fun e ->
          let rest = List.filter (fun e' -> not (e == e')) remaining in
          go (List.rev_append e.enq prefix) rest)
        minimal
  in
  match go [] items with
  | () -> Some !acc
  | exception Too_many -> None

(* Enumerate the subsets of [active] items (active transactions may yet
   abort, removing their elements from every serialization). *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let s = subsets rest in
    s @ List.map (fun sub -> x :: sub) s

let nth_opt_all sequences idx =
  (* If every sequence agrees on positions 0..idx, return that common
     value ([Some (Some v)]); if every sequence ends at or before idx
     (and they agree on the shorter prefix... emptiness), return
     [Some None]; on any disagreement, [None]. *)
  let prefix seq = List.filteri (fun i _ -> i <= idx) seq in
  match sequences with
  | [] -> Some None
  | first :: rest ->
    let p0 = prefix first in
    if List.for_all (fun s -> List.equal Int.equal (prefix s) p0) rest then
      if List.length p0 > idx then Some (List.nth_opt p0 idx)
      else Some None
    else None

let make ?(max_extensions = 500) log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let st =
    { entries = []; consumed = 0; clock = 0; max_extensions }
  in
  let grant txn res finish =
    let e = entry_for st txn in
    finish e;
    e.last_resp <- tick st;
    Obj_log.responded olog txn res;
    Atomic_object.Granted res
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    match (Operation.name op, Operation.args op) with
    | "enqueue", [ Value.Int v ] -> (
      (* A new enqueue is pinned after every already-committed item, so
         it can never disturb a dequeue answer backed entirely by the
         committed prefix — but it CAN serialize ahead of another active
         transaction's tentative items, invalidating a dequeue that
         consumed them ([deq_fragile]), and it invalidates any claimed
         emptiness. *)
      match
        List.filter
          (fun e -> is_active e && (e.empty_claim || e.deq_fragile))
          (others st txn)
      with
      | _ :: _ as claimants ->
        Atomic_object.Wait (List.map (fun e -> e.txn) claimants)
      | [] -> grant txn Value.ok (fun e -> e.enq <- e.enq @ [ v ]))
    | "dequeue", [] -> (
      (* One tentative dequeuer at a time: another's tentative
         consumption makes our position ambiguous until it resolves. *)
      match
        List.filter (fun e -> is_active e && e.deq > 0) (others st txn)
      with
      | _ :: _ as dequeuers ->
        Atomic_object.Wait (List.map (fun e -> e.txn) dequeuers)
      | [] -> (
        let own = entry_for st txn in
        let idx = st.consumed + own.deq in
        let items =
          List.filter
            (fun e ->
              e.enq <> [] && (is_committed e || is_active e))
            st.entries
        in
        let committed_items, active_items =
          List.partition is_committed items
        in
        (* Our own tentative enqueues are always present in our
           serializations. *)
        let own_items, other_active =
          List.partition (fun e -> Txn.equal e.txn txn) active_items
        in
        let candidate_sequences =
          List.fold_left
            (fun acc subset ->
              match acc with
              | None -> None
              | Some seqs -> (
                match
                  flatten_extensions st.max_extensions
                    (committed_items @ own_items @ subset)
                with
                | None -> None
                | Some s -> Some (List.rev_append s seqs)))
            (Some []) (subsets other_active)
        in
        match candidate_sequences with
        | None ->
          (* Bound exceeded: wait for the active transactions to
             resolve. *)
          Atomic_object.Wait
            (List.map (fun e -> e.txn) other_active)
        | Some seqs -> (
          match nth_opt_all seqs idx with
          | Some (Some v) ->
            (* Is the answer immune to future enqueuers?  A later
               enqueue is pinned after every currently-committed item
               (its response postdates their commits), so if position
               [idx] is already determined by the committed items alone
               — at least [idx + 1] committed items, agreeing on the
               prefix — no future item can reach a position <= [idx].
               Otherwise the answer leans on tentative enqueues and a
               later enqueuer could serialize ahead of them: mark the
               entry fragile so enqueues wait until we resolve. *)
            let committed_backed =
              match
                flatten_extensions st.max_extensions committed_items
              with
              | Some cseqs -> (
                match nth_opt_all cseqs idx with
                | Some (Some v') -> v' = v
                | Some None | None -> false)
              | None -> false
            in
            grant txn (Value.Int v) (fun e ->
                e.deq <- e.deq + 1;
                if not committed_backed then e.deq_fragile <- true)
          | Some None ->
            (* Empty in every serialization; claim emptiness so later
               enqueuers cannot invalidate the answer. *)
            grant txn Queue_spec.empty_result (fun e ->
                e.empty_claim <- true)
          | None ->
            if other_active = [] then
              Atomic_object.Refused
                "dequeue: front value differs across serialization orders"
            else
              Atomic_object.Wait
                (List.map (fun e -> e.txn) other_active))))
    | _ ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "fifo queue: unknown operation %a" Operation.pp op)
  in
  let commit txn =
    (match List.find_opt (fun e -> Txn.equal e.txn txn) st.entries with
    | Some e ->
      e.commit_time <- Some (tick st);
      e.empty_claim <- false;
      (* Committed: later enqueuers are pinned after us, so our dequeue
         answers can no longer be disturbed. *)
      e.deq_fragile <- false;
      st.consumed <- st.consumed + e.deq;
      e.deq <- 0
    | None -> ());
    Obj_log.committed olog txn
  in
  let abort txn =
    st.entries <- others st txn;
    Obj_log.aborted olog txn
  in
  { id; spec = Queue_spec.spec; try_invoke; commit; abort;
    initiate = (fun _ -> ());
    depth = (fun () -> List.length (List.filter is_active st.entries)) }
