open Weihl_event

type status = Active | Prepared | Committed | Aborted

type t = {
  id : int;
  activity : Activity.t;
  mutable status : status;
  mutable init_ts : Timestamp.t option;
  mutable commit_ts : Timestamp.t option;
  mutable touched : Object_id.t list; (* newest first *)
  touched_set : (string, unit) Hashtbl.t; (* same objects, by name *)
}

let make ~id activity =
  { id; activity; status = Active; init_ts = None; commit_ts = None;
    touched = []; touched_set = Hashtbl.create 8 }

let id t = t.id
let activity t = t.activity
let is_read_only t = Activity.is_read_only t.activity
let status t = t.status
let is_active t = t.status = Active
let is_prepared t = t.status = Prepared
let is_live t = t.status = Active || t.status = Prepared

let set_status t s =
  (match t.status, s with
  | (Active | Prepared), _ -> ()
  | (Committed | Aborted), s when s = t.status -> ()
  | (Committed | Aborted), _ ->
      invalid_arg "Txn.set_status: transaction already completed");
  t.status <- s

let init_ts t = t.init_ts
let set_init_ts t ts = t.init_ts <- Some ts
let commit_ts t = t.commit_ts
let set_commit_ts t ts = t.commit_ts <- Some ts
let touched t = t.touched

let mem_touched t x = Hashtbl.mem t.touched_set (Object_id.name x)

let touch t x =
  if not (mem_touched t x) then begin
    Hashtbl.replace t.touched_set (Object_id.name x) ();
    t.touched <- x :: t.touched
  end

let equal a b = Int.equal a.id b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Fmt.pf ppf "%a#%d" Activity.pp t.activity t.id
