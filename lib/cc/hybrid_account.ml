open Weihl_event
module Account = Weihl_adt.Bank_account

type pending = {
  txn : Txn.t;
  mutable debits : int;
  mutable credits : int;
  mutable insufficient : bool;
  mutable read_balance : bool;
}

type state = {
  mutable committed : int;
  mutable pendings : pending list;
  mutable versions : (Timestamp.t * int) list; (* commit ts, net delta *)
}

let pending_for st txn =
  match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
  | Some p -> p
  | None ->
    let p =
      { txn; debits = 0; credits = 0; insufficient = false;
        read_balance = false }
    in
    st.pendings <- p :: st.pendings;
    p

let others st txn = List.filter (fun p -> not (Txn.equal p.txn txn)) st.pendings

let bounds st txn =
  let own = pending_for st txn in
  let base = st.committed - own.debits + own.credits in
  List.fold_left
    (fun (low, high) p -> (low - p.debits, high + p.credits))
    (base, base) (others st txn)

let has_updates p = p.debits > 0 || p.credits > 0

let balance_before st ts =
  List.fold_left
    (fun acc (cts, delta) ->
      if Timestamp.compare cts ts < 0 then acc + delta else acc)
    0 st.versions

let make log id : Atomic_object.t =
  let olog = Obj_log.create log id in
  let st = { committed = 0; pendings = []; versions = [] } in
  let grant txn res update =
    let p = pending_for st txn in
    update p;
    Obj_log.responded olog txn res;
    Atomic_object.Granted res
  in
  let blockers_of pred txn =
    List.filter_map
      (fun p -> if pred p then Some p.txn else None)
      (others st txn)
  in
  let invoke_update txn op =
    let low, high = bounds st txn in
    match (Operation.name op, Operation.args op) with
    | "deposit", [ Value.Int n ] when n >= 0 -> (
      match blockers_of (fun p -> p.insufficient || p.read_balance) txn with
      | _ :: _ as bs -> Atomic_object.Wait bs
      | [] -> grant txn Value.ok (fun p -> p.credits <- p.credits + n))
    | "withdraw", [ Value.Int n ] when n >= 0 ->
      if low >= n then (
        match blockers_of (fun p -> p.read_balance) txn with
        | _ :: _ as bs -> Atomic_object.Wait bs
        | [] -> grant txn Value.ok (fun p -> p.debits <- p.debits + n))
      else if high < n then
        grant txn Value.insufficient_funds (fun p -> p.insufficient <- true)
      else Atomic_object.Wait (blockers_of has_updates txn)
    | "balance", [] -> (
      match blockers_of has_updates txn with
      | _ :: _ as bs -> Atomic_object.Wait bs
      | [] -> grant txn (Value.Int low) (fun p -> p.read_balance <- true))
    | _ ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str "hybrid account: unknown operation %a" Operation.pp op)
  in
  let invoke_read_only txn op =
    match (Operation.name op, Operation.args op) with
    | "balance", [] -> (
      match Txn.init_ts txn with
      | None ->
        Obj_log.dropped olog txn;
        Atomic_object.Refused
          "hybrid account: read-only transaction has no timestamp"
      | Some ts -> (
        (* A prepared 2PC leg may already carry a decision timestamp
           below [ts]; serving past it would miss the version it will
           install.  Active updates commit with a later timestamp than
           ours, so only prepared pendings block us. *)
        match
          List.filter_map
            (fun p ->
              if has_updates p && Txn.is_prepared p.txn then Some p.txn
              else None)
            st.pendings
        with
        | _ :: _ as bs -> Atomic_object.Wait bs
        | [] ->
          let v = balance_before st ts in
          Obj_log.responded olog txn (Value.Int v);
          Atomic_object.Granted (Value.Int v)))
    | _ ->
      Obj_log.dropped olog txn;
      Atomic_object.Refused
        (Fmt.str
           "hybrid account: read-only activity invoked %a (balance only)"
           Operation.pp op)
  in
  let try_invoke txn op =
    Obj_log.invoked olog txn op;
    if Txn.is_read_only txn then invoke_read_only txn op
    else invoke_update txn op
  in
  let commit txn =
    (if not (Txn.is_read_only txn) then
       match List.find_opt (fun p -> Txn.equal p.txn txn) st.pendings with
       | Some p ->
         let delta = p.credits - p.debits in
         st.committed <- st.committed + delta;
         (match Txn.commit_ts txn with
         | Some cts -> if delta <> 0 then st.versions <- (cts, delta) :: st.versions
         | None ->
           if delta <> 0 then
             invalid_arg "Hybrid_account: update committed without a timestamp")
       | None -> ());
    st.pendings <- others st txn;
    Obj_log.committed olog txn
  in
  let abort txn =
    st.pendings <- others st txn;
    Obj_log.aborted olog txn
  in
  let initiate txn =
    if Txn.is_read_only txn then Obj_log.initiated olog txn
  in
  { id; spec = Account.spec; try_invoke; commit; abort; initiate;
    depth = (fun () -> List.length st.pendings) }
