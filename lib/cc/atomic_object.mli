(** The interface between transactions and protocol-managed objects.

    Each local atomicity property is realised by objects implementing
    this interface; the protocol lives entirely inside the object, as
    the paper's modularity argument demands (Section 1: synchronization
    and recovery "should be encapsulated within the implementation of
    each data object").

    Invocations are non-blocking at the interface: an operation either
    terminates ([Granted]), must wait ([Wait], naming the transactions
    blocking it so the caller can build a waits-for graph), or requires
    the invoking transaction to abort ([Refused] — e.g. a timestamp
    conflict under Reed's protocol).  Callers retry [Wait]ed
    invocations after some blocking transaction completes. *)

open Weihl_event

type invoke_result =
  | Granted of Value.t
  | Wait of Txn.t list
      (** Blocked on the listed (active) transactions. *)
  | Refused of string
      (** The protocol requires the invoker to abort; the string
          explains why. *)

type t = {
  id : Object_id.t;
  spec : Weihl_spec.Seq_spec.t;
  try_invoke : Txn.t -> Weihl_event.Operation.t -> invoke_result;
      (** Attempt (or re-attempt) the transaction's pending operation.
          The first attempt logs the invocation event; the granting
          attempt logs the termination event. *)
  commit : Txn.t -> unit;
      (** Commit the transaction at this object; logs the commit event
          (with the transaction's commit timestamp, if set). *)
  abort : Txn.t -> unit;
      (** Abort the transaction at this object, discarding its effects;
          logs the abort event. *)
  initiate : Txn.t -> unit;
      (** Called once before the transaction's first invocation at this
          object; protocols that timestamp initiations log the
          initiation event here (others ignore it). *)
  depth : unit -> int;
      (** How many transactions currently hold protocol state (locks,
          intentions, pending escrow, uncommitted versions) at this
          object — the instrumentation layer's queue-depth probe.  Only
          consulted when a probe sink is installed, so it may walk the
          object's internal structures. *)
}

val pp_invoke_result : Format.formatter -> invoke_result -> unit
