(** Data-dependent locking driven by a synthesized conflict table.

    The protocol family the synthesis pass plugs into the runtime: one
    instance per ADT, parameterized by the compiled (operation, result
    class) conflict relation ([Weihl_theory.Synthesize] builds it; this
    module only consumes a closure, keeping the dependency direction
    cc <- theory).

    Locking discipline: an invocation is granted a {e specific} result
    — the first candidate permissible from the transaction's view
    (committed frontier plus own intentions) whose (op, result) pair
    conflicts with no (op, result) pair held by another active
    transaction.  All candidates blocked means [Wait] on the union of
    blockers; no candidate at all means [Refused].  Commit installs the
    intentions; abort discards them — the same intentions-list recovery
    as [Op_locking], so recoverability is inherited and the conflict
    relation (result-aware forward commutativity) is exactly the one
    that makes every commit-order replay of granted pairs
    permissible. *)

open Weihl_event

val make :
  Event_log.t ->
  Object_id.t ->
  Weihl_spec.Seq_spec.t ->
  conflict:(Operation.t * Value.t -> Operation.t * Value.t -> bool) ->
  Atomic_object.t
(** [make log id spec ~conflict] builds the object.  [conflict] must be
    symmetric and conservative: [true] whenever the two granted pairs
    cannot be reordered freely (unknown cells included). *)
