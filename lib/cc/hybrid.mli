(** The hybrid atomicity protocol (Section 4.3): updates run under a
    locking discipline and draw timestamps at commit; read-only
    activities draw timestamps at initiation and query versions.

    Updates are processed exactly as by {!Op_locking} (conflict
    relation supplied per object, intentions-list recovery).  When an
    update commits, the transaction manager has already assigned it a
    commit timestamp from a monotone Lamport clock — guaranteeing the
    timestamp order of updates is consistent with [precedes] — and the
    object archives the update's intentions as a version stamped with
    that timestamp.

    A read-only transaction with initiation timestamp [t] evaluates its
    queries against the state produced by exactly the committed updates
    with commit timestamps less than [t].  Because the clock is
    monotone, every such update has already committed, so read-only
    transactions {e never wait and never abort}, and they hold nothing
    that could delay an update — the promised solution to Lamport's
    audit problem (Section 4.3.3).

    Every history this object generates is hybrid atomic. *)

open Weihl_event

val make :
  ?unsafe_forget_contended_commit:bool ->
  Event_log.t ->
  Object_id.t ->
  Weihl_spec.Seq_spec.t ->
  conflict:(Operation.t -> Operation.t -> bool) ->
  read_only_op:(Operation.t -> bool) ->
  Atomic_object.t
(** [read_only_op] tells queries from state-changing operations; a
    read-only transaction invoking a state-changing operation is
    refused.

    [unsafe_forget_contended_commit] exists for the lint self-test
    only: it drops the version archive when an update commits while
    another update's intentions are outstanding.  No two-transaction
    schedule can observe the loss — it takes a {e later} reader after
    a {e contended} commit, which is exactly the three-transaction
    shape the certifier's hybrid triple probes build. *)

val of_adt :
  Event_log.t -> Object_id.t -> (module Weihl_adt.Adt_sig.S) ->
  Atomic_object.t
(** Updates locked by the ADT's commutativity relation; operations
    classified [Read] are permitted to read-only transactions. *)
