(** The seeded failover drill: one replica tier under traffic, faults
    and a forced promotion, checked for lost commits and stale reads.

    One schedule = one {!Weihl_fault.Shard_plan.t} applied to a
    timestamp-policy banking protocol (hybrid or multiversion — the
    tier's snapshot reads need initiation timestamps) over a fresh
    group with a replica tier on top:

    + slice 1 — seeded multi-client traffic with the plan's 2PC fault
      injected at its chosen commit round, the shipping channel running
      under the plan's [ship] message faults; any shard the fault took
      down is brought back by {e promotion} ({!Tier.fail_over}), not
      plain recovery, and the blocking window is resolved from the
      decision log;
    + snapshot reads through the tier between slices, every outcome
      recorded;
    + the plan's replica fault is staged (lag, crash, partition, or
      in-flight segment damage) and slice 2 runs under it;
    + a seeded live shard is then crashed and failed over — its
      pre-crash committed projection captured first, so lost commits
      are counted against an independent record;
    + faults are lifted, slice 3 runs clean, the tier syncs, and the
      run is judged.

    The verdict checks, in order: every promotion's zero-lost-commits
    verification, the pre-crash committed set's survival, the group's
    own global-atomicity checks ({!Weihl_shard.Shard_harness.run_checks}),
    every replica's final projection against its shard's primary, and
    every replica-served read re-executed against the final as-of state
    — a replica that ever served a stale value is caught here even if
    nothing else noticed. *)

module Shard_plan = Weihl_fault.Shard_plan
module Fh = Weihl_fault.Harness

val protocols : Fh.protocol list
(** The timestamp-policy banking protocols (hybrid, multiversion). *)

type schedule_report = {
  d_plan : Shard_plan.t;
  d_protocol : string;
  d_committed : int;  (** update commits across all traffic slices *)
  d_reads : int;  (** snapshot reads issued through the tier *)
  d_replica_served : int;
  d_bounced : int;  (** stale-detected reads the primary answered *)
  d_unavailable : int;
      (** reads no one could serve (primary down, replica behind) *)
  d_lost : int;  (** committed transactions missing after a promotion *)
  d_stale : int;  (** replica-served reads that returned early state *)
  d_promotions : int;
  d_resyncs : int;
  d_damaged : int;  (** damaged segments detected on the channel *)
  d_diverged : string option;  (** first failed check, if any *)
}

type report = {
  schedules : int;
  r_committed : int;
  r_reads : int;
  r_replica_served : int;
  r_bounced : int;
  r_unavailable : int;
  r_lost : int;
  r_stale : int;
  r_promotions : int;
  r_resyncs : int;
  r_damaged : int;
  r_diverged : int;
  results : schedule_report list;  (** in run order *)
}

val run_schedule :
  ?quick:bool ->
  ?shards:int ->
  ?replicas:int ->
  Shard_plan.t ->
  Fh.protocol ->
  schedule_report
(** One schedule; defaults 3 shards, 3 replicas.  [quick] shortens the
    traffic slices and the read batches. *)

val run_many :
  ?quick:bool -> ?shards:int -> ?replicas:int -> seeds:int list -> unit -> report
(** One schedule per seed, protocols assigned round-robin. *)

val divergences : report -> schedule_report list
(** Schedules that lost a commit, served stale, or failed a check. *)

val clean : report -> bool
(** Zero lost, zero stale served, zero divergences. *)

val pp_schedule : Format.formatter -> schedule_report -> unit
val pp_report : Format.formatter -> report -> unit
