(** A read-replica tier over a shard {!Weihl_shard.Group}.

    Hybrid atomicity (§4.3) hands every read-only activity a timestamp
    at initiation and promises the committed state {e as of} that
    timestamp — a contract a log-shipping replica can serve without
    ever touching the primary's lock tables.  The tier ships each
    shard's WAL record stream to [replicas] replicas over a seeded
    {!Weihl_dist.Msim} channel and routes read-only transactions to
    them at their initiation timestamp.

    {2 The shipping protocol}

    Node 0 of the channel is the primary feed; nodes [1..replicas] are
    the replicas.  Each {!pump} round cuts, per live shard and replica,
    one CRC-framed segment ({!Weihl_cc.Wal.segment}) starting at the
    replica's last {e acked} position — unacknowledged data is simply
    re-sent, so a dropped segment or ack heals on the next round.  The
    segment carries the shard's {e watermark}: the group clock reading
    taken before the cut, so every commit with timestamp [<= watermark]
    is inside the shipped prefix.  A replica applies a segment only
    when it splices exactly at its applied position (overlaps are
    trimmed, pure duplicates acked away); a damaged segment — torn,
    checksum-caught, or mis-based — is refused whole and answered with
    a resync request from the last applied position, never applied in
    part.  Each applied segment advances the replica's {e high-water
    mark} to the watermark.

    {2 The high-water-mark rule}

    A read at initiation timestamp [T] may be served by a replica only
    if [T <= hwm] on every shard the read touches: below the mark the
    shipped prefix provably contains every commit the read must
    observe; above it the read blocks (pumping, under [`Wait]) or
    bounces to the primary.  Staleness is detected, never silent.

    {2 Failover}

    {!fail_over} promotes the most-advanced replica by applied log
    position: the old primary is fenced by bumping the shard's epoch
    (in-flight old-epoch segments are refused), the promoted replica
    catches up from the durable WAL tail, the primary incarnation is
    rebuilt from the same durable log ({!Weihl_shard.Group.recover_shard},
    in-doubt legs resolved against the decision log), and the promoted
    replica's committed projection is verified against the recovered
    state — zero lost committed transactions, by check rather than by
    assumption.  Replicas then resync from position zero on the new
    epoch; until their marks recover, reads bounce to the primary. *)

open Weihl_event
module Cc = Weihl_cc
module Msim = Weihl_dist.Msim
module Group = Weihl_shard.Group

type t

type stale_policy =
  [ `Bounce  (** stale reads go straight to the primary *)
  | `Wait of int
    (** pump up to this many rounds for the mark to catch up, then
        bounce *) ]

val create :
  ?faults:Msim.faults ->
  ?stale:stale_policy ->
  ?segment_records:int ->
  ?seed:int ->
  ?metrics:Weihl_obs.Shard_metrics.t ->
  replicas:int ->
  make_object:(Cc.Event_log.t -> Object_id.t -> Cc.Atomic_object.t) ->
  Group.t ->
  t
(** A tier of [replicas] replicas over the group.  [faults] (default
    none) injects drop/duplicate/reorder on the shipping channel;
    [stale] (default [`Wait 4]) picks the stale-read policy;
    [segment_records] (default 64) caps records per shipped segment;
    [seed] (default the group's seed is not visible, so 1) drives the
    channel's delays and faults.  [make_object] rebuilds objects for
    snapshot systems — the same constructor registered with the group.
    @raise Invalid_argument if [replicas <= 0] or the group runs more
    than one domain (the tier's watermark cut relies on the
    deterministic sequential mode). *)

val group : t -> Group.t
val replica_count : t -> int

(** {1 Shipping} *)

val pump : t -> unit
(** One shipping round: per live shard and live replica, cut one
    segment from the replica's acked position and deliver the channel
    to quiescence (acks, resyncs and retransmit responses included). *)

val sync : t -> unit
(** Pump until every live, unpartitioned replica has applied the full
    feed of every live shard, or no round makes progress. *)

val feed_pos : t -> shard:int -> int
(** Records in the shard's feed (0 for a crashed shard). *)

val applied_pos : t -> replica:int -> shard:int -> int
val hwm : t -> replica:int -> shard:int -> int
(** The replica's high-water mark for the shard; [-1] before the first
    applied segment of the current epoch. *)

val lag_records : t -> replica:int -> int
(** Feed records not yet applied by the replica, summed over live
    shards. *)

val replica_events : t -> replica:int -> shard:int -> Event.t list
(** The replica's applied event stream for the shard, in apply order —
    what its snapshots are built from.  For checks and drills. *)

val epoch : t -> shard:int -> int

(** {1 Replica faults} *)

val set_lag : t -> replica:int -> int -> unit
(** Skip the replica for the next [n] pump rounds — an apply-lag
    schedule. *)

val crash_replica : t -> int -> unit
(** The replica stops receiving and serving.  Its applied records are
    its durable local log and survive; its high-water mark does not
    (it is segment metadata), so after {!restart_replica} the replica
    acks its old position, resumes from it, and serves no read until a
    fresh segment re-establishes the mark. *)

val restart_replica : t -> int -> unit
val replica_down : t -> int -> bool

val partition_replica : t -> int -> unit
(** Cut the channel link between the feed and the replica. *)

val heal_replica : t -> int -> unit

val damage_next_segments : t -> int -> unit
(** Corrupt the text of the next [n] segments cut — the receiver must
    detect each (CRC or framing) and resync rather than apply. *)

(** {1 Snapshot reads} *)

type serve = Served_replica of int | Served_primary

type read_outcome = {
  read_ts : int;  (** the initiation timestamp, from the group clock *)
  values : (Object_id.t * Operation.t * Value.t) list;
  serve : serve;
  bounced : bool;
      (** the chosen replica was below the mark (or down) and the read
          fell back to the primary *)
  waited : int;  (** pump rounds spent waiting for the mark *)
}

val read :
  ?replica:int ->
  t ->
  (Object_id.t * Operation.t) list ->
  (read_outcome, string) result
(** Run a read-only transaction against the tier at a fresh initiation
    timestamp.  [replica] pins the serving replica (default:
    round-robin).  Every operation must be granted — a snapshot has no
    concurrency to wait on — and a replay divergence is an error, not
    a wrong answer.  Errors also cover total unavailability (replica
    cannot serve and the primary shard is down).
    @raise Invalid_argument under the [`None_] timestamp policy —
    snapshot reads need initiation timestamps. *)

(** {1 Failover} *)

type promotion = {
  shard : int;
  promoted : int;  (** the most-advanced replica by applied position *)
  promoted_pos : int;  (** its position before catch-up *)
  caught_up : int;  (** records applied from the durable WAL tail *)
  new_epoch : int;
  verified : string option;
      (** [None] when the promoted replica's committed projection
          matches the recovered primary's — the zero-lost-commits
          check; [Some msg] describes the divergence *)
}

val crash_primary : t -> int -> unit
(** Crash the shard's primary, retaining its durable WAL for
    {!fail_over}.  Idempotent per incarnation. *)

val fail_over : t -> int -> (promotion, string) result
(** Promote over the shard: fence the old incarnation (epoch bump),
    catch the most-advanced replica up from the durable tail, rebuild
    the primary from the durable WAL, verify the promoted projection
    against it, and re-point the shipping feed at the new epoch (all
    replicas resync from zero).  Crashes the primary first if it is
    still up.  [Error] reports an unrecoverable WAL or a verification
    failure. *)

(** {1 Introspection} *)

val promotions : t -> int
val resyncs : t -> int
val fenced_segments : t -> int
val damaged_segments : t -> int
val segments_shipped : t -> int
val stale_bounced : t -> int
val reads_at : t -> replica:int -> int
val reads_primary : t -> int
val reads_waited : t -> int
val channel_now : t -> int
(** Virtual time of the shipping channel. *)

val channel_dropped : t -> int
val channel_duplicated : t -> int
val channel_reordered : t -> int

val render : t -> string
(** A per-replica table (position, lag, mark, resyncs, reads) plus a
    channel summary — the body of [weihl replica]. *)
