open Weihl_event
module Cc = Weihl_cc

type txn = {
  activity : Activity.t;
  ts : Timestamp.t option;
  ops : (Object_id.t * Operation.t * Value.t) list;
}

let committed order events =
  let h = History.of_list events in
  Cc.Recovery.committed_in_order order h
  |> List.map (fun (activity, ops) ->
         let ts =
           match order with
           | Cc.Recovery.Commit_order -> None
           | Cc.Recovery.Timestamp_order -> History.timestamp_of h activity
         in
         { activity; ts; ops })

let as_of t txns =
  List.filter
    (fun txn ->
      match txn.ts with Some ts -> Timestamp.to_int ts <= t | None -> false)
    txns

(* The snapshot sub-history: every event of a kept committed update
   transaction, in stream order.  Replaying it with [Recovery.replay]
   reinstates the logged initiation and commit timestamps, so a
   timestamped read executed on top sits correctly relative to the
   updates it must observe. *)
let updates_history ~keep events =
  let kept =
    committed Cc.Recovery.Timestamp_order events
    |> List.filter (fun txn ->
           (not (Activity.is_read_only txn.activity)) && keep txn)
    |> List.fold_left
         (fun acc txn -> Activity.Set.add txn.activity acc)
         Activity.Set.empty
  in
  History.of_list
    (List.filter (fun e -> Activity.Set.mem (Event.activity e) kept) events)

let equal_txn a b =
  Activity.equal a.activity b.activity
  && Option.equal (fun x y -> Timestamp.compare x y = 0) a.ts b.ts
  && List.length a.ops = List.length b.ops
  && List.for_all2
       (fun (x, op, v) (x', op', v') ->
         Object_id.equal x x' && Operation.equal op op' && Value.equal v v')
       a.ops b.ops

let pp_txn ppf t =
  Fmt.pf ppf "%a%a(%d op(s))" Activity.pp t.activity
    Fmt.(option (any "@" ++ Timestamp.pp ++ any " "))
    t.ts (List.length t.ops)

let diff xs ys =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: _, [] -> Some (Fmt.str "txn %d missing: %a" i pp_txn x)
    | [], y :: _ -> Some (Fmt.str "txn %d extra: %a" i pp_txn y)
    | x :: xs, y :: ys ->
      if equal_txn x y then go (i + 1) xs ys
      else Some (Fmt.str "txn %d differs: %a vs %a" i pp_txn x pp_txn y)
  in
  go 0 xs ys
