open Weihl_event
module Cc = Weihl_cc
module Msim = Weihl_dist.Msim
module Group = Weihl_shard.Group
module Sm = Weihl_obs.Shard_metrics
module St = Weihl_obs.Shard_trace

type stale_policy = [ `Bounce | `Wait of int ]

(* The wire protocol of the shipping channel.  Node 0 is the primary
   feed; node [r + 1] is replica [r].  Segments carry the epoch of the
   primary incarnation that cut them: a promotion bumps the epoch, so
   segments from a fenced incarnation are refused on arrival. *)
type msg =
  | Segment of { shard : int; epoch : int; watermark : int; text : string }
  | Ack of { replica : int; shard : int; epoch : int; pos : int }
  | Resync of { replica : int; shard : int; epoch : int; from_pos : int }

(* Per-replica, per-shard apply state.  [events_rev] is the replica's
   durable local log (survives a replica crash); [hwm] is segment
   metadata and does not (a restarted replica serves nothing until a
   fresh segment re-establishes the mark). *)
type rstate = {
  mutable pos : int;  (** next expected absolute record position *)
  mutable events_rev : Event.t list;  (** applied events, newest first *)
  mutable hwm : int;  (** high-water mark; -1 = no mark this epoch *)
  mutable repoch : int;
  mutable applied_segments : int;
}

type serve = Served_replica of int | Served_primary

type read_outcome = {
  read_ts : int;
  values : (Object_id.t * Operation.t * Value.t) list;
  serve : serve;
  bounced : bool;
  waited : int;
}

type promotion = {
  shard : int;
  promoted : int;
  promoted_pos : int;
  caught_up : int;
  new_epoch : int;
  verified : string option;
}

type t = {
  group : Group.t;
  make_object : Cc.Event_log.t -> Object_id.t -> Cc.Atomic_object.t;
  replicas : int;
  stale : stale_policy;
  segment_records : int;
  mutable sim : msg Msim.t;
  states : rstate array array;  (** [replica].[shard] *)
  acked : int array array;  (** [replica].[shard] feed-side resume point *)
  epochs : int array;  (** per shard *)
  down : bool array;  (** per replica *)
  lag : int array;  (** per replica: pump rounds left to skip *)
  crash_texts : string option array;  (** durable WAL held for failover *)
  mutable damage_pending : int;
  mutable rr : int;
  mutable read_seq : int;
  mutable n_promotions : int;
  mutable n_resyncs : int;
  mutable n_fenced : int;
  mutable n_damaged : int;
  mutable n_shipped : int;
  mutable n_stale_bounced : int;
  n_reads_at : int array;
  mutable n_reads_primary : int;
  mutable n_reads_waited : int;
  metrics : Sm.t option;
}

let group t = t.group
let replica_count t = t.replicas

let fresh_state epoch =
  { pos = 0; events_rev = []; hwm = -1; repoch = epoch; applied_segments = 0 }

let state t ~replica ~shard =
  if replica < 0 || replica >= t.replicas then
    invalid_arg "Tier: replica out of range";
  t.states.(replica).(shard)

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let rec drop_n n = function
  | _ :: tl when n > 0 -> drop_n (n - 1) tl
  | l -> l

let recovery_order t =
  match Group.policy t.group with
  | `None_ -> Cc.Recovery.Commit_order
  | `Static | `Hybrid -> Cc.Recovery.Timestamp_order

(* ------------------------------------------------------------------ *)
(* The feed side *)

(* The watermark certifying a segment that reaches the feed's end: the
   group clock reading — every commit with a timestamp at or below it
   has already appended its records (timestamps are drawn monotonically
   and records append synchronously in the sequential mode) — clamped
   below any in-doubt leg on this shard whose recorded decision is a
   commit.  Such a leg will commit with its agreed timestamp only when
   resolution reaches it; until then a read above that timestamp must
   not be declared servable, or it would miss the late commit. *)
let watermark t s =
  let w = Timestamp.to_int (Cc.Lamport_clock.now (Group.clock t.group)) in
  List.fold_left
    (fun w (gid, s') ->
      if s' = s && gid >= 0 then
        match Group.decision_of t.group gid with
        | Some (`Commit ts) -> min w (ts - 1)
        | Some `Abort | None -> w
      else w)
    w (Group.in_doubt t.group)

let shard_label s = Fmt.str "shard-%d" s

(* Flip one byte of a segment in flight — fault injection; the CRC (or
   the header check) must catch it on arrival. *)
let corrupt_text text =
  if String.length text = 0 then text
  else begin
    let b = Bytes.of_string text in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
    Bytes.to_string b
  end

(* Cut and send one segment to replica [i] for shard [s], resuming from
   the feed's acked position.  Unacked data is simply re-sent each
   round; the replica trims overlaps, so lost segments and lost acks
   both heal without extra bookkeeping.  The watermark rides only on
   segments that reach the feed's current end — a capped mid-stream
   slice proves nothing about commits beyond its last record. *)
let send_to t i s =
  if not (Group.shard_crashed t.group s) then begin
    let w = watermark t s in
    let records = Group.shard_records t.group s in
    let len = List.length records in
    let from = min t.acked.(i).(s) len in
    let slice = take t.segment_records (drop_n from records) in
    let reaches_end = from + List.length slice = len in
    let text = Cc.Wal.segment ~label:(shard_label s) ~base:from slice in
    let text =
      if t.damage_pending > 0 then begin
        t.damage_pending <- t.damage_pending - 1;
        corrupt_text text
      end
      else text
    in
    t.n_shipped <- t.n_shipped + 1;
    Msim.send t.sim ~src:0 ~dst:(i + 1)
      (Segment
         {
           shard = s;
           epoch = t.epochs.(s);
           watermark = (if reaches_end then w else -1);
           text;
         })
  end

let on_primary t = function
  | Ack { replica; shard; epoch; pos } ->
    if epoch = t.epochs.(shard) then
      t.acked.(replica).(shard) <- max t.acked.(replica).(shard) pos
  | Resync { replica; shard; epoch; from_pos = _ } ->
    (* The resume point is the acked position, which the replica's
       request can only confirm (its applied position never runs behind
       its own acks).  Answer with an immediate retransmit. *)
    if epoch = t.epochs.(shard) then send_to t replica shard
  | Segment _ -> ()

(* ------------------------------------------------------------------ *)
(* The replica side *)

let trace_apply t ~replica ~shard ~records ~hwm =
  match Group.tracer t.group with
  | None -> ()
  | Some st ->
    St.span (St.coord st) ~name:"replica.apply" ~cat:"replication"
      ~ts:(St.now st) ~dur:0. ~tid:(100 + replica)
      ~args:
        [
          ("shard", St.num shard);
          ("records", St.num records);
          ("hwm", St.num hwm);
        ]

let apply_records st records =
  List.iter
    (function
      | Cc.Wal.Event e -> st.events_rev <- e :: st.events_rev
      | Cc.Wal.Control _ -> ())
    records;
  st.pos <- st.pos + List.length records

let request_resync t i s st =
  t.n_resyncs <- t.n_resyncs + 1;
  (match t.metrics with None -> () | Some m -> Sm.replica_resync m);
  Msim.send t.sim ~src:(i + 1) ~dst:0
    (Resync { replica = i; shard = s; epoch = st.repoch; from_pos = st.pos })

let ack t i s st =
  Msim.send t.sim ~src:(i + 1) ~dst:0
    (Ack { replica = i; shard = s; epoch = st.repoch; pos = st.pos })

let on_replica t i = function
  | Segment { shard = s; epoch; watermark; text } ->
    let st = t.states.(i).(s) in
    if epoch < st.repoch then t.n_fenced <- t.n_fenced + 1
    else begin
      (* A segment from a newer incarnation: the old stream is gone —
         adopt the epoch and resync from zero. *)
      if epoch > st.repoch then begin
        st.repoch <- epoch;
        st.pos <- 0;
        st.events_rev <- [];
        st.hwm <- -1;
        st.applied_segments <- 0
      end;
      let advance_hwm ~upto =
        (* [upto] is the feed's end at cut time: once the replica holds
           that prefix, the watermark's certificate transfers to it. *)
        if watermark >= 0 && upto <= st.pos && watermark > st.hwm then
          st.hwm <- watermark
      in
      let applied n upto =
        st.applied_segments <- st.applied_segments + 1;
        advance_hwm ~upto;
        (match t.metrics with
        | None -> ()
        | Some m -> Sm.replica_applied m ~replica:i ~records:n);
        trace_apply t ~replica:i ~shard:s ~records:n ~hwm:st.hwm;
        ack t i s st
      in
      match Cc.Wal.decode_segment ~expected_base:st.pos text with
      | Ok records ->
        apply_records st records;
        applied (List.length records) st.pos
      | Error _ -> (
        (* Not an exact splice.  An intact segment may still be a pure
           duplicate or an overlap to trim; anything else — a gap ahead
           of us, a torn tail, a checksum or header failure — is never
           applied, even in part: resync from the applied position. *)
        match Cc.Wal.decode_records text with
        | Ok (records, Cc.Wal.Intact) ->
          let b = Cc.Wal.base text in
          let e = b + List.length records in
          if b > st.pos then request_resync t i s st
          else if e <= st.pos then begin
            (* Duplicate of an already-applied slice; its watermark is
               still a valid certificate for the prefix it covered. *)
            advance_hwm ~upto:e;
            ack t i s st
          end
          else begin
            apply_records st (drop_n (st.pos - b) records);
            applied (e - b) st.pos
          end
        | Ok (_, Cc.Wal.Torn _) | Error _ ->
          t.n_damaged <- t.n_damaged + 1;
          request_resync t i s st)
    end
  | Ack _ | Resync _ -> ()

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ?(faults = Msim.no_faults) ?(stale = `Wait 4) ?(segment_records = 64)
    ?(seed = 1) ?metrics ~replicas ~make_object group =
  if replicas <= 0 then invalid_arg "Tier.create: replicas must be positive";
  if Group.domain_count group > 1 then
    invalid_arg
      "Tier.create: the replica tier requires the sequential (domains = 1) \
       execution mode";
  let shards = Group.shard_count group in
  let handler = ref (fun _ ~node:_ _ -> ()) in
  let sim =
    Msim.create ~faults ~seed:((seed * 53) + 17) ~nodes:(replicas + 1)
      ~handler:(fun sim ~node msg -> !handler sim ~node msg)
      ()
  in
  let t =
    {
      group;
      make_object;
      replicas;
      stale;
      segment_records;
      sim;
      states =
        Array.init replicas (fun _ -> Array.init shards (fun _ -> fresh_state 0));
      acked = Array.make_matrix replicas shards 0;
      epochs = Array.make shards 0;
      down = Array.make replicas false;
      lag = Array.make replicas 0;
      crash_texts = Array.make shards None;
      damage_pending = 0;
      rr = 0;
      read_seq = 0;
      n_promotions = 0;
      n_resyncs = 0;
      n_fenced = 0;
      n_damaged = 0;
      n_shipped = 0;
      n_stale_bounced = 0;
      n_reads_at = Array.make replicas 0;
      n_reads_primary = 0;
      n_reads_waited = 0;
      metrics;
    }
  in
  (handler :=
     fun _sim ~node msg ->
       if node = 0 then on_primary t msg
       else if not t.down.(node - 1) then on_replica t (node - 1) msg);
  t

(* ------------------------------------------------------------------ *)
(* Pumping *)

let feed_pos t ~shard =
  if Group.shard_crashed t.group shard then 0
  else List.length (Group.shard_records t.group shard)

let applied_pos t ~replica ~shard = (state t ~replica ~shard).pos
let hwm t ~replica ~shard = (state t ~replica ~shard).hwm
let epoch t ~shard = t.epochs.(shard)

let lag_records t ~replica =
  let shards = Group.shard_count t.group in
  let total = ref 0 in
  for s = 0 to shards - 1 do
    if not (Group.shard_crashed t.group s) then
      total := !total + max 0 (feed_pos t ~shard:s - t.states.(replica).(s).pos)
  done;
  !total

let update_lag_metrics t =
  match t.metrics with
  | None -> ()
  | Some m ->
    let shards = Group.shard_count t.group in
    let clock = Timestamp.to_int (Cc.Lamport_clock.now (Group.clock t.group)) in
    for i = 0 to t.replicas - 1 do
      (* Timestamp-domain staleness: how far the group clock has run
         past the replica's oldest live-shard mark.  A markless shard
         counts as the full clock — nothing is servable there. *)
      let vtime = ref 0 in
      for s = 0 to shards - 1 do
        if not (Group.shard_crashed t.group s) then begin
          let h = t.states.(i).(s).hwm in
          let behind = if h < 0 then clock else max 0 (clock - h) in
          if behind > !vtime then vtime := behind
        end
      done;
      Sm.set_replica_lag m ~replica:i
        ~records:(lag_records t ~replica:i)
        ~vtime:!vtime
    done

let pump t =
  let shards = Group.shard_count t.group in
  for i = 0 to t.replicas - 1 do
    if t.lag.(i) > 0 then t.lag.(i) <- t.lag.(i) - 1
    else if not t.down.(i) then
      for s = 0 to shards - 1 do
        send_to t i s
      done
  done;
  Msim.run ~until:(Msim.now t.sim + 10_000) t.sim;
  update_lag_metrics t

let caught_up t =
  let shards = Group.shard_count t.group in
  let ok = ref true in
  for i = 0 to t.replicas - 1 do
    if (not t.down.(i)) && not (Msim.partitioned t.sim 0 (i + 1)) then
      for s = 0 to shards - 1 do
        if
          (not (Group.shard_crashed t.group s))
          && (t.states.(i).(s).pos < feed_pos t ~shard:s
             || t.states.(i).(s).repoch < t.epochs.(s))
        then ok := false
      done
  done;
  !ok

let sync t =
  (* The progress snapshot covers replica state, remaining lag, and
     the channel itself: a round whose only effect was delivering (or
     dropping, or queueing past the pump's horizon — visible as time
     advancing) messages still counts, because the retransmit it set
     up lands next round.  The no-progress exit then only fires for
     replicas nothing can reach at all. *)
  let progress () =
    ( Array.to_list t.lag,
      Msim.now t.sim,
      Msim.messages_delivered t.sim + Msim.messages_dropped t.sim,
      Array.to_list t.states
      |> List.concat_map Array.to_list
      |> List.map (fun st -> (st.pos, st.repoch, st.hwm)) )
  in
  let rec go last n =
    if (not (caught_up t)) && n > 0 then begin
      pump t;
      let now = progress () in
      if now <> last then go now (n - 1)
    end
  in
  (* The round budget is the real terminator: enough rounds to ship
     every live feed from zero at one segment per round, tripled for
     fault-churn (resyncs, reordering), plus the lag budgets. *)
  let feed_rounds =
    let shards = Group.shard_count t.group in
    let total = ref 0 in
    for s = 0 to shards - 1 do
      total := !total + feed_pos t ~shard:s
    done;
    (3 * !total / t.segment_records) + 8
  in
  go (progress ()) (64 + feed_rounds + Array.fold_left ( + ) 0 t.lag)

(* ------------------------------------------------------------------ *)
(* Replica faults *)

let set_lag t ~replica n =
  if replica < 0 || replica >= t.replicas then
    invalid_arg "Tier.set_lag: replica out of range";
  t.lag.(replica) <- max 0 n

let crash_replica t i =
  if i < 0 || i >= t.replicas then
    invalid_arg "Tier.crash_replica: replica out of range";
  t.down.(i) <- true;
  (* The mark is volatile; the applied log is the replica's durable
     store and survives into the restart. *)
  Array.iter (fun st -> st.hwm <- -1) t.states.(i)

let restart_replica t i =
  if i < 0 || i >= t.replicas then
    invalid_arg "Tier.restart_replica: replica out of range";
  t.down.(i) <- false

let replica_down t i = t.down.(i)
let partition_replica t i = Msim.partition t.sim 0 (i + 1)
let heal_replica t i = Msim.heal t.sim 0 (i + 1)

let damage_next_segments t n = t.damage_pending <- t.damage_pending + max 0 n

(* ------------------------------------------------------------------ *)
(* Snapshot reads *)

(* Build a fresh system holding every registered object and replay the
   committed updates with serialization timestamp <= [upto] out of the
   given event streams (one per touched shard, concatenated — the
   per-shard streams are independent, and the replay orders the merged
   transaction list by timestamp).  Logged timestamps are reinstated,
   so the read executed on top observes exactly the as-of state. *)
let snapshot t ~upto events =
  let sys = Cc.System.create ~policy:(Group.policy t.group) () in
  List.iter
    (fun (x, _) -> Cc.System.add_object sys (t.make_object (Cc.System.log sys) x))
    (Group.objects t.group);
  let keep (txn : Projection.txn) =
    match txn.Projection.ts with
    | Some ts -> Timestamp.to_int ts <= upto
    | None -> false
  in
  let h = Projection.updates_history ~keep events in
  match Cc.Recovery.replay Cc.Recovery.Timestamp_order sys h with
  | Ok _ -> Ok sys
  | Error f -> Error (Fmt.str "snapshot replay: %a" Cc.Recovery.pp_failure f)

let exec_read t sys ~ts steps =
  t.read_seq <- t.read_seq + 1;
  let a = Activity.read_only (Fmt.str "tier_read%d" t.read_seq) in
  let txn = Cc.System.begin_txn ~ts:(Timestamp.v ts) sys a in
  let rec go acc = function
    | [] ->
      Cc.System.commit sys txn;
      Ok (List.rev acc)
    | (x, op) :: more -> (
      match Cc.System.invoke sys txn x op with
      | Cc.Atomic_object.Granted v -> go ((x, op, v) :: acc) more
      | Cc.Atomic_object.Wait _ ->
        Cc.System.abort sys txn;
        Error "snapshot read blocked (impossible on an immutable snapshot)"
      | Cc.Atomic_object.Refused why ->
        Cc.System.abort sys txn;
        Error ("snapshot read refused: " ^ why))
  in
  go [] steps

let replica_events t ~replica ~shard =
  List.rev (state t ~replica ~shard).events_rev

let touched_shards t steps =
  List.sort_uniq compare (List.map (fun (x, _) -> Group.shard_of t.group x) steps)

let serve_replica t i ~ts ~shards steps =
  let events =
    List.concat_map (fun s -> List.rev t.states.(i).(s).events_rev) shards
  in
  match snapshot t ~upto:ts events with
  | Error _ as e -> e
  | Ok sys -> exec_read t sys ~ts steps

let serve_primary t ~ts ~shards steps =
  if List.exists (fun s -> Group.shard_crashed t.group s) shards then
    Error "unavailable: primary shard down and no replica can serve"
  else
    let events =
      List.concat_map
        (fun s -> History.to_list (Cc.System.history (Group.system t.group s)))
        shards
    in
    match snapshot t ~upto:ts events with
    | Error _ as e -> e
    | Ok sys -> exec_read t sys ~ts steps

let can_serve t i ~ts ~shards =
  (not t.down.(i)) && List.for_all (fun s -> t.states.(i).(s).hwm >= ts) shards

let read ?replica t steps =
  (match Group.policy t.group with
  | `None_ ->
    invalid_arg "Tier.read: snapshot reads need a timestamp policy"
  | `Static | `Hybrid -> ());
  let ts = Timestamp.to_int (Cc.Lamport_clock.next (Group.clock t.group)) in
  let shards = touched_shards t steps in
  let i =
    match replica with
    | Some i ->
      if i < 0 || i >= t.replicas then invalid_arg "Tier.read: replica out of range";
      i
    | None ->
      t.rr <- (t.rr + 1) mod t.replicas;
      t.rr
  in
  let budget = match t.stale with `Bounce -> 0 | `Wait n -> max 0 n in
  let rec wait waited =
    if can_serve t i ~ts ~shards then (true, waited)
    else if waited >= budget then (false, waited)
    else begin
      pump t;
      wait (waited + 1)
    end
  in
  let servable, waited = wait 0 in
  t.n_reads_waited <- t.n_reads_waited + waited;
  if servable then
    match serve_replica t i ~ts ~shards steps with
    | Ok values ->
      t.n_reads_at.(i) <- t.n_reads_at.(i) + 1;
      (match t.metrics with None -> () | Some m -> Sm.replica_read m ~replica:i);
      Ok { read_ts = ts; values; serve = Served_replica i; bounced = false; waited }
    | Error _ as e -> e
  else begin
    (* Below the mark (or the replica is down): detected staleness —
       bounce to the primary, never serve the early state. *)
    t.n_stale_bounced <- t.n_stale_bounced + 1;
    (match t.metrics with None -> () | Some m -> Sm.stale_bounce m);
    match serve_primary t ~ts ~shards steps with
    | Ok values ->
      t.n_reads_primary <- t.n_reads_primary + 1;
      Ok { read_ts = ts; values; serve = Served_primary; bounced = true; waited }
    | Error _ as e -> e
  end

(* ------------------------------------------------------------------ *)
(* Failover *)

let crash_primary t s =
  if not (Group.shard_crashed t.group s) then
    t.crash_texts.(s) <- Some (Group.crash_shard t.group s)

(* The zero-lost-commits check behind a promotion: every transaction
   the caught-up replica saw commit must exist, with the same
   timestamp, in the recovered primary's history.  (The recovered side
   may hold strictly more: in-doubt legs later resolved to commit.) *)
let verify_promotion t s ~replica_evs =
  let order = recovery_order t in
  let recovered =
    Projection.committed order
      (History.to_list (Cc.System.history (Group.system t.group s)))
  in
  let have =
    List.map
      (fun (txn : Projection.txn) -> (Activity.name txn.Projection.activity, txn.Projection.ts))
      recovered
  in
  let missing =
    List.filter
      (fun (txn : Projection.txn) ->
        not
          (List.exists
             (fun (n, ts) ->
               String.equal n (Activity.name txn.Projection.activity)
               && Option.equal
                    (fun a b -> Timestamp.compare a b = 0)
                    ts txn.Projection.ts)
             have))
      (Projection.committed order replica_evs)
  in
  match missing with
  | [] -> None
  | txn :: _ ->
    Some
      (Fmt.str "lost committed transaction %a after promotion"
         Projection.pp_txn txn)

let fail_over t s =
  crash_primary t s;
  let text =
    match t.crash_texts.(s) with
    | Some text -> Some text
    | None ->
      (* Crashed by someone else — a faulty 2PC round, say; the durable
         WAL is still readable. *)
      if Group.shard_crashed t.group s then Some (Group.durable_shard t.group s)
      else None
  in
  match text with
  | None -> Error "fail_over: no durable WAL for the crashed primary"
  | Some text -> (
    (* Fence the old incarnation first: anything it still has in
       flight arrives with a stale epoch and is refused. *)
    t.epochs.(s) <- t.epochs.(s) + 1;
    let new_epoch = t.epochs.(s) in
    (* Most-advanced live replica by applied log position. *)
    let promoted = ref 0 and best = ref (-1) in
    for i = 0 to t.replicas - 1 do
      if (not t.down.(i)) && t.states.(i).(s).pos > !best then begin
        best := t.states.(i).(s).pos;
        promoted := i
      end
    done;
    let promoted = !promoted in
    let st = t.states.(promoted).(s) in
    let promoted_pos = st.pos in
    (* Catch the promoted replica up from the durable tail; behind a
       checkpoint-truncated log the prefix is gone and the check below
       simply covers the shorter view. *)
    let caught_up =
      match Cc.Wal.records_from ~pos:st.pos text with
      | Ok records ->
        apply_records st records;
        List.length records
      | Error _ -> 0
    in
    let replica_evs = List.rev st.events_rev in
    match Group.recover_shard t.group s text with
    | Error f -> Error (Fmt.str "fail_over: %a" Cc.Recovery.pp_failure f)
    | Ok _ ->
      let verified = verify_promotion t s ~replica_evs in
      (* Re-point the feed: the new incarnation's stream starts at
         record zero on the new epoch, and every replica — promoted
         one included — resyncs onto it. *)
      for i = 0 to t.replicas - 1 do
        t.states.(i).(s) <- fresh_state new_epoch;
        t.acked.(i).(s) <- 0
      done;
      t.crash_texts.(s) <- None;
      t.n_promotions <- t.n_promotions + 1;
      (match t.metrics with None -> () | Some m -> Sm.promotion m);
      Ok
        {
          shard = s;
          promoted;
          promoted_pos;
          caught_up;
          new_epoch;
          verified;
        })

(* ------------------------------------------------------------------ *)
(* Introspection *)

let promotions t = t.n_promotions
let resyncs t = t.n_resyncs
let fenced_segments t = t.n_fenced
let damaged_segments t = t.n_damaged
let segments_shipped t = t.n_shipped
let stale_bounced t = t.n_stale_bounced
let reads_at t ~replica = t.n_reads_at.(replica)
let reads_primary t = t.n_reads_primary
let reads_waited t = t.n_reads_waited
let channel_now t = Msim.now t.sim
let channel_dropped t = Msim.messages_dropped t.sim
let channel_duplicated t = Msim.messages_duplicated t.sim
let channel_reordered t = Msim.messages_reordered t.sim

let render t =
  let buf = Buffer.create 512 in
  let shards = Group.shard_count t.group in
  Buffer.add_string buf
    "replica  state  applied  lag(rec)  min-hwm  reads  resyncs\n";
  for i = 0 to t.replicas - 1 do
    let applied = Array.fold_left (fun a st -> a + st.pos) 0 t.states.(i) in
    let min_hwm =
      Array.fold_left (fun a st -> min a st.hwm) max_int t.states.(i)
    in
    Buffer.add_string buf
      (Fmt.str "%7d  %5s  %7d  %8d  %7d  %5d  %7d\n" i
         (if t.down.(i) then "down"
          else if Msim.partitioned t.sim 0 (i + 1) then "part"
          else "up")
         applied
         (lag_records t ~replica:i)
         (if min_hwm = max_int then -1 else min_hwm)
         t.n_reads_at.(i) 0)
  done;
  Buffer.add_string buf
    (Fmt.str
       "epochs: %a\n\
        reads: %d replica / %d primary (%d bounced stale, %d waits)\n\
        channel: %d segment(s) shipped, %d resync(s), %d damaged, %d fenced\n\
        msim: %d delivered, %d dropped, %d duplicated, %d reordered, t=%d\n\
        promotions: %d\n"
       Fmt.(array ~sep:(any " ") int)
       t.epochs
       (Array.fold_left ( + ) 0 t.n_reads_at)
       t.n_reads_primary t.n_stale_bounced t.n_reads_waited t.n_shipped
       t.n_resyncs t.n_damaged t.n_fenced
       (Msim.messages_delivered t.sim)
       (Msim.messages_dropped t.sim)
       (Msim.messages_duplicated t.sim)
       (Msim.messages_reordered t.sim)
       (Msim.now t.sim) t.n_promotions);
  ignore shards;
  Buffer.contents buf
