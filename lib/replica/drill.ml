open Weihl_event
module Cc = Weihl_cc
module Rng = Weihl_sim.Rng
module Workload = Weihl_sim.Workload
module Shard_plan = Weihl_fault.Shard_plan
module Fh = Weihl_fault.Harness
module Group = Weihl_shard.Group
module Gtxn = Weihl_shard.Gtxn
module Sharded_driver = Weihl_shard.Sharded_driver
module Shard_harness = Weihl_shard.Shard_harness

(* Snapshot reads need initiation timestamps, so the drill runs the
   timestamp-policy banking protocols only.  The commit-order protocols
   are covered by the equivalence property instead. *)
let protocols = List.filter_map Fh.find_protocol [ "hybrid"; "multiversion" ]

type schedule_report = {
  d_plan : Shard_plan.t;
  d_protocol : string;
  d_committed : int;
  d_reads : int;
  d_replica_served : int;
  d_bounced : int;
  d_unavailable : int;
  d_lost : int;
  d_stale : int;
  d_promotions : int;
  d_resyncs : int;
  d_damaged : int;
  d_diverged : string option;
}

type report = {
  schedules : int;
  r_committed : int;
  r_reads : int;
  r_replica_served : int;
  r_bounced : int;
  r_unavailable : int;
  r_lost : int;
  r_stale : int;
  r_promotions : int;
  r_resyncs : int;
  r_damaged : int;
  r_diverged : int;
  results : schedule_report list;
}

(* A replica-served read retained for the end-of-run audit. *)
type recorded_read = {
  r_ts : int;
  r_steps : (Object_id.t * Operation.t) list;
  r_values : (Object_id.t * Operation.t * Value.t) list;
  r_replica : int;
}

let is_update (txn : Projection.txn) =
  not (Activity.is_read_only txn.Projection.activity)

(* The committed update transactions of a live shard, for pre-crash
   capture and final replica/primary comparison. *)
let shard_committed group s =
  Projection.committed Cc.Recovery.Timestamp_order
    (History.to_list (Cc.System.history (Group.system group s)))
  |> List.filter is_update

(* ------------------------------------------------------------------ *)
(* The independent stale-read auditor.

   A replica-served read at timestamp T claimed the committed state as
   of T.  The as-of-T projection is time-invariant — every later commit
   draws a later timestamp, and in-doubt legs with an agreed earlier
   timestamp are excluded from the serving mark — so re-executing the
   read against the final primary state filtered to [ts <= T] must
   reproduce the recorded values exactly.  This auditor shares no code
   with the tier's serving path beyond {!Projection}. *)

let audit_read group (proto : Fh.protocol) seq (r : recorded_read) =
  let shards =
    List.sort_uniq compare
      (List.map (fun (x, _) -> Group.shard_of group x) r.r_steps)
  in
  let events =
    List.concat_map
      (fun s -> History.to_list (Cc.System.history (Group.system group s)))
      shards
  in
  let sys = Cc.System.create ~policy:(Group.policy group) () in
  List.iter
    (fun (x, _) ->
      Cc.System.add_object sys (proto.Fh.make_object (Cc.System.log sys) x))
    (Group.objects group);
  let keep (txn : Projection.txn) =
    match txn.Projection.ts with
    | Some ts -> Timestamp.to_int ts <= r.r_ts
    | None -> false
  in
  let h = Projection.updates_history ~keep events in
  match Cc.Recovery.replay Cc.Recovery.Timestamp_order sys h with
  | Error f -> Some (Fmt.str "audit replay: %a" Cc.Recovery.pp_failure f)
  | Ok _ -> (
    let a = Activity.read_only (Fmt.str "audit%d" seq) in
    let txn = Cc.System.begin_txn ~ts:(Timestamp.v r.r_ts) sys a in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (x, op) :: more -> (
        match Cc.System.invoke sys txn x op with
        | Cc.Atomic_object.Granted v -> go ((x, op, v) :: acc) more
        | Cc.Atomic_object.Wait _ | Cc.Atomic_object.Refused _ ->
          Error "audit read did not run to completion")
    in
    match go [] r.r_steps with
    | Error msg -> Some msg
    | Ok expected ->
      Cc.System.commit sys txn;
      if
        List.length expected = List.length r.r_values
        && List.for_all2
             (fun (x, op, v) (x', op', v') ->
               Object_id.equal x x' && Operation.equal op op'
               && Value.equal v v')
             expected r.r_values
      then None
      else
        Some
          (Fmt.str "replica %d served stale state at ts %d" r.r_replica
             r.r_ts))

(* ------------------------------------------------------------------ *)

(* Draw read-only scripts out of the workload until one appears; the
   banking workloads mix audits in, so this terminates fast. *)
let read_steps w rng =
  let rec go n =
    if n = 0 then None
    else
      let s = w.Workload.generate rng in
      if s.Workload.kind = `Read_only then
        Some
          (List.map
             (fun st -> (st.Workload.obj, st.Workload.op))
             s.Workload.steps)
      else go (n - 1)
  in
  go 100

let run_schedule ?(quick = false) ?(shards = 3) ?(replicas = 3)
    (plan : Shard_plan.t) (proto : Fh.protocol) =
  let group = Group.create ~policy:proto.Fh.policy ~seed:plan.Shard_plan.seed ~shards () in
  let w = proto.Fh.workload () in
  List.iter
    (fun id -> Group.add_object group id proto.Fh.make_object)
    w.Workload.objects;
  let tier =
    Tier.create ~faults:plan.Shard_plan.ship ~seed:plan.Shard_plan.seed
      ~replicas ~make_object:proto.Fh.make_object group
  in
  let rng = Rng.create ((plan.Shard_plan.seed * 73) + 29) in
  let recorded = ref [] in
  let reads = ref 0 and bounced = ref 0 and unavailable = ref 0 in
  let lost = ref 0 and stale = ref 0 in
  let diverged = ref None in
  let note msg = if !diverged = None then diverged := Some msg in
  let read_batch n =
    for _ = 1 to n do
      match read_steps w rng with
      | None -> ()
      | Some steps -> (
        incr reads;
        match Tier.read tier steps with
        | Ok o ->
          if o.Tier.bounced then incr bounced;
          (match o.Tier.serve with
          | Tier.Served_replica i ->
            recorded :=
              {
                r_ts = o.Tier.read_ts;
                r_steps = steps;
                r_values = o.Tier.values;
                r_replica = i;
              }
              :: !recorded
          | Tier.Served_primary -> ())
        | Error msg ->
          if
            String.length msg >= 11 && String.sub msg 0 11 = "unavailable"
          then incr unavailable
          else note (Fmt.str "read failed: %s" msg))
    done
  in
  (* Promote over every shard a fault took down; the promotion's own
     verification is the zero-lost-commits check for these crashes. *)
  let fail_over_crashed () =
    List.iter
      (fun s ->
        if Group.shard_crashed group s then
          match Tier.fail_over tier s with
          | Error msg -> note (Fmt.str "failover of shard %d: %s" s msg)
          | Ok p -> (
            match p.Tier.verified with
            | Some msg ->
              incr lost;
              note (Fmt.str "shard %d: %s" s msg)
            | None -> ()))
      (List.init shards Fun.id)
  in
  (* Slice 1: traffic with the plan's 2PC fault at its chosen round. *)
  let injected = ref false in
  let on_commit group g ~nth_multi =
    if (not !injected) && nth_multi = plan.Shard_plan.fault_at_commit then begin
      injected := true;
      let fault, votes_no =
        Shard_harness.tpc_fault_of plan ~fanout:(Gtxn.fanout g)
      in
      Group.commit ~fault ~votes_no group g
    end
    else Group.commit group g
  in
  let slice ?on_commit ~duration ~base seed =
    let config =
      {
        Sharded_driver.default_config with
        clients = 4;
        duration;
        activity_base = base;
        seed;
      }
    in
    let o = Sharded_driver.run ~config ?on_commit group w in
    o.Sharded_driver.committed - o.Sharded_driver.committed_read_only
  in
  let d1 = if quick then 150 else 300 in
  let d2 = if quick then 100 else 200 in
  let batch = if quick then 4 else 8 in
  let committed = ref 0 in
  committed := !committed + slice ~on_commit ~duration:d1 ~base:0 plan.Shard_plan.seed;
  fail_over_crashed ();
  ignore (Group.resolve_in_doubt group);
  Tier.sync tier;
  read_batch batch;
  (* Stage the plan's replica fault and run slice 2 under it. *)
  (match plan.Shard_plan.replica with
  | Shard_plan.Replica_healthy -> ()
  | Shard_plan.Replica_lag (i, n) -> Tier.set_lag tier ~replica:(i mod replicas) n
  | Shard_plan.Replica_crash i -> Tier.crash_replica tier (i mod replicas)
  | Shard_plan.Replica_partition i -> Tier.partition_replica tier (i mod replicas)
  | Shard_plan.Replica_damage (_, n) -> Tier.damage_next_segments tier n);
  committed :=
    !committed
    + slice ~duration:d2 ~base:100_000 ((plan.Shard_plan.seed * 31) + 7);
  Tier.pump tier;
  read_batch batch;
  (* The staged failover: capture the victim's committed projection,
     crash it, promote, resolve the blocking window. *)
  let victim =
    let v = Rng.int rng shards in
    let rec live k v =
      if k = 0 then None
      else if Group.shard_crashed group v then live (k - 1) ((v + 1) mod shards)
      else Some v
    in
    live shards v
  in
  (match victim with
  | None -> note "no live shard left to fail over"
  | Some v -> (
    let pre = shard_committed group v in
    Tier.crash_primary tier v;
    match Tier.fail_over tier v with
    | Error msg -> note (Fmt.str "failover of shard %d: %s" v msg)
    | Ok p ->
      (match p.Tier.verified with
      | Some msg ->
        incr lost;
        note (Fmt.str "shard %d: %s" v msg)
      | None -> ());
      (* The independent count: everything committed before the crash
         must be in the recovered incarnation, same timestamps. *)
      let after = shard_committed group v in
      List.iter
        (fun (txn : Projection.txn) ->
          if not (List.exists (Projection.equal_txn txn) after) then begin
            incr lost;
            note
              (Fmt.str "shard %d lost %a across failover" v Projection.pp_txn
                 txn)
          end)
        pre));
  ignore (Group.resolve_in_doubt group);
  (* Lift the replica faults and finish with clean traffic. *)
  for i = 0 to replicas - 1 do
    if Tier.replica_down tier i then Tier.restart_replica tier i;
    Tier.heal_replica tier i;
    Tier.set_lag tier ~replica:i 0
  done;
  committed :=
    !committed
    + slice ~duration:d2 ~base:200_000 ((plan.Shard_plan.seed * 131) + 3);
  Tier.sync tier;
  read_batch batch;
  ignore (Group.resolve_in_doubt group);
  Tier.sync tier;
  (* Judgement. *)
  (match Shard_harness.run_checks proto group with
  | Some msg -> note msg
  | None -> ());
  for i = 0 to replicas - 1 do
    for s = 0 to shards - 1 do
      if not (Group.shard_crashed group s) then
        let rep =
          Projection.committed Cc.Recovery.Timestamp_order
            (Tier.replica_events tier ~replica:i ~shard:s)
          |> List.filter is_update
        in
        match Projection.diff rep (shard_committed group s) with
        | None -> ()
        | Some msg ->
          note (Fmt.str "replica %d diverges from shard %d: %s" i s msg)
    done
  done;
  List.iteri
    (fun seq r ->
      match audit_read group proto seq r with
      | None -> ()
      | Some msg ->
        incr stale;
        note msg)
    (List.rev !recorded);
  {
    d_plan = plan;
    d_protocol = proto.Fh.name;
    d_committed = !committed;
    d_reads = !reads;
    d_replica_served = List.length !recorded;
    d_bounced = !bounced;
    d_unavailable = !unavailable;
    d_lost = !lost;
    d_stale = !stale;
    d_promotions = Tier.promotions tier;
    d_resyncs = Tier.resyncs tier;
    d_damaged = Tier.damaged_segments tier;
    d_diverged = !diverged;
  }

let run_many ?quick ?shards ?replicas ~seeds () =
  let n = List.length protocols in
  let results =
    List.mapi
      (fun i seed ->
        let proto = List.nth protocols (i mod n) in
        run_schedule ?quick ?shards ?replicas (Shard_plan.generate ~seed) proto)
      seeds
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 results in
  {
    schedules = List.length results;
    r_committed = sum (fun r -> r.d_committed);
    r_reads = sum (fun r -> r.d_reads);
    r_replica_served = sum (fun r -> r.d_replica_served);
    r_bounced = sum (fun r -> r.d_bounced);
    r_unavailable = sum (fun r -> r.d_unavailable);
    r_lost = sum (fun r -> r.d_lost);
    r_stale = sum (fun r -> r.d_stale);
    r_promotions = sum (fun r -> r.d_promotions);
    r_resyncs = sum (fun r -> r.d_resyncs);
    r_damaged = sum (fun r -> r.d_damaged);
    r_diverged =
      List.length (List.filter (fun r -> r.d_diverged <> None) results);
    results;
  }

let divergences r =
  List.filter
    (fun d -> d.d_diverged <> None || d.d_lost > 0 || d.d_stale > 0)
    r.results

let clean r = r.r_lost = 0 && r.r_stale = 0 && r.r_diverged = 0

let pp_schedule ppf d =
  Fmt.pf ppf
    "@[<h>%-12s %a → %s (committed %d, reads %d: %d replica / %d bounced / \
     %d unavailable; promotions %d, resyncs %d, damaged %d)@]"
    d.d_protocol Shard_plan.pp d.d_plan
    (match d.d_diverged with
    | None -> "ok"
    | Some msg -> Fmt.str "DIVERGED: %s" msg)
    d.d_committed d.d_reads d.d_replica_served d.d_bounced d.d_unavailable
    d.d_promotions d.d_resyncs d.d_damaged

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>schedules: %d@,committed: %d@,reads: %d (%d replica-served, %d \
     bounced, %d unavailable)@,lost commits: %d@,stale served: %d@,\
     diverged: %d@,promotions: %d@,resyncs: %d@,damaged segments: %d@]"
    r.schedules r.r_committed r.r_reads r.r_replica_served r.r_bounced
    r.r_unavailable r.r_lost r.r_stale r.r_diverged r.r_promotions r.r_resyncs
    r.r_damaged
