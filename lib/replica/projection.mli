(** Committed projections reconstructed from a shipped event stream.

    A replica holds nothing but the records its shard's WAL shipped; to
    answer anything it must turn that stream back into "which
    transactions committed, with which operations, as of which
    timestamp".  This module is that reconstruction, shared by the
    apply loop (snapshot serving), the failover drill (lost-commit
    accounting) and the equivalence property.

    The timestamp attached to each transaction is its {e serialization}
    timestamp — the commit timestamp for updates, the initiation
    timestamp for read-only transactions (hybrid atomicity, §4.3), and
    [None] under a commit-order policy. *)

open Weihl_event
module Cc = Weihl_cc

type txn = {
  activity : Activity.t;
  ts : Timestamp.t option;
  ops : (Object_id.t * Operation.t * Value.t) list;
      (** granted operations in program order *)
}

val committed : Cc.Recovery.order -> Event.t list -> txn list
(** The committed transactions of an event stream, sorted by the
    recovery order ([Timestamp_order] sorts by serialization timestamp;
    [Commit_order] keeps local commit order, with [ts = None]). *)

val as_of : int -> txn list -> txn list
(** The prefix with serialization timestamp [<= t].  Transactions
    without a timestamp are dropped — an as-of query is only meaningful
    under a timestamp policy. *)

val updates_history : keep:(txn -> bool) -> Event.t list -> History.t
(** The sub-history containing exactly the events of the committed
    update transactions selected by [keep] — what
    {!Cc.Recovery.replay} rebuilds a snapshot from, with every logged
    timestamp reinstated. *)

val equal_txn : txn -> txn -> bool

val pp_txn : Format.formatter -> txn -> unit

val diff : txn list -> txn list -> string option
(** [None] when the projections agree; otherwise a one-line description
    of the first disagreement (missing, extra or differing
    transaction), for divergence reports. *)
