open Weihl_event

let object_accepts spec h =
  let events = History.to_list h in
  let rec go frontier pending = function
    | [] -> true
    | e :: rest -> (
      match (e : Event.t) with
      | Invoke (a, _, op) -> go frontier (Some (a, op)) rest
      | Respond (a, _, res) -> (
        match pending with
        | Some (a', op) when Activity.equal a a' -> (
          match Seq_spec.advance frontier op res with
          | None -> false
          | Some frontier' -> go frontier' None rest)
        | Some _ | None ->
          (* A response with no pending invocation: not well-formed,
             hence not acceptable. *)
          false)
      | Abort (a, _) ->
        if
          List.exists
            (fun e' ->
              Activity.equal (Event.activity e') a
              && (Event.is_invoke e' || Event.is_respond e'))
            events
        then
          invalid_arg
            "Acceptance.object_accepts: aborted activity with operation \
             events; check perm-projections instead"
        else go frontier pending rest
      | Commit _ | Initiate _ -> go frontier pending rest)
  in
  go (Seq_spec.start spec) None events

let accepts env h =
  List.for_all
    (fun x -> object_accepts (Spec_env.find_exn env x) (History.project_object x h))
    (History.objects h)

let serial_and_accepts env h = History.serial h && accepts env h
