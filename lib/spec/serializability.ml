open Weihl_event

let in_order env h order =
  let acts = History.activities h in
  let covered =
    List.for_all (fun a -> List.exists (Activity.equal a) order) acts
  in
  covered
  &&
  let order = List.filter (fun a -> List.exists (Activity.equal a) acts) order in
  Acceptance.accepts env (History.concat_serial order h)

let serializable_naive env h =
  let acts = History.activities h in
  Seq.find (fun order -> in_order env h order) (Orders.permutations acts)

(* --- shared block machinery ---------------------------------------

   A serial order is checked one whole activity at a time: each
   activity contributes a block of (object, operation, result) triples
   in program order, and a candidate prefix is acceptable iff folding
   those triples through one specification frontier per object never
   gets stuck.  The blocks depend only on the history, so they are
   computed once per check, not per search node; likewise the start
   frontiers are created once per check so that frontier states reached
   by different placement orders share a lineage and can be compared
   (see [Seq_spec.equal_frontier]). *)

let blocks_of h =
  List.map
    (fun a ->
      let ops =
        List.filter_map
          (fun e ->
            match (e : Event.t) with
            | Invoke (a', x, op) when Activity.equal a a' -> Some (`I (x, op))
            | Respond (a', x, res) when Activity.equal a a' ->
              Some (`R (x, res))
            | _ -> None)
          (History.to_list (History.project_activity a h))
      in
      (* Pair invocations with their responses (a trailing pending
         invocation has no effect on any serial frontier). *)
      let rec pair = function
        | `I (x, op) :: `R (x', res) :: rest when Object_id.equal x x' ->
          (x, op, res) :: pair rest
        | `I (_, _) :: rest -> pair rest
        | `R (_, _) :: rest -> pair rest (* unmatched: ignore *)
        | [] -> []
      in
      (a, pair ops))
    (History.activities h)

let starts_of env h =
  List.fold_left
    (fun m x ->
      match Spec_env.find env x with
      | Some spec -> Object_id.Map.add x (Seq_spec.start spec) m
      | None -> m)
    Object_id.Map.empty (History.objects h)

let apply_block ~starts frontiers ops =
  List.fold_left
    (fun frontiers (x, op, res) ->
      match frontiers with
      | None -> None
      | Some fs -> (
        let frontier =
          match Object_id.Map.find_opt x fs with
          | Some f -> Some f
          | None -> Object_id.Map.find_opt x starts
        in
        match frontier with
        | None ->
          invalid_arg
            (Fmt.str "Serializability: no specification for object %a"
               Object_id.pp x)
        | Some f -> (
          match Seq_spec.advance f op res with
          | None -> None
          | Some f' -> Some (Object_id.Map.add x f' fs))))
    (Some frontiers) ops

(* Fold a whole candidate order through the blocks; [Some _] iff every
   activity's block is accepted in that order.  Activities in [order]
   without a block are skipped. *)
let apply_order ~starts blocks order =
  List.fold_left
    (fun frontiers a ->
      match frontiers with
      | None -> None
      | Some fs -> (
        match List.find_opt (fun (b, _) -> Activity.equal a b) blocks with
        | None -> Some fs
        | Some (_, ops) -> apply_block ~starts fs ops))
    (Some Object_id.Map.empty) order

(* Backtracking with prefix pruning: an activity can extend the serial
   prefix only if every object accepts its whole block.  Rejected
   prefixes cut the entire subtree, and a memo of already-failed
   (placed-activity-set, frontier-map) states prunes permutations of
   the same prefix that lead to a frontier state known to be a dead
   end — when blocks commute, factorially many placement orders
   collapse onto one frontier state. *)
let serializable env h =
  let blocks = blocks_of h in
  let starts = starts_of env h in
  let frontier_maps_equal = Object_id.Map.equal Seq_spec.equal_frontier in
  let failed : (string, Seq_spec.frontier Object_id.Map.t list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let key_of chosen =
    String.concat "\x00"
      (List.sort String.compare (List.map Activity.name chosen))
  in
  let seen_failed key fs =
    match Hashtbl.find_opt failed key with
    | None -> false
    | Some l -> List.exists (frontier_maps_equal fs) !l
  in
  let record_failed key fs =
    match Hashtbl.find_opt failed key with
    | Some l -> l := fs :: !l
    | None -> Hashtbl.add failed key (ref [ fs ])
  in
  let rec search frontiers chosen remaining =
    match remaining with
    | [] -> Some (List.rev chosen)
    | _ ->
      let key = key_of chosen in
      if seen_failed key frontiers then None
      else
        let result =
          List.find_map
            (fun (a, ops) ->
              match apply_block ~starts frontiers ops with
              | None -> None
              | Some frontiers' ->
                search frontiers' (a :: chosen)
                  (List.filter
                     (fun (b, _) -> not (Activity.equal a b))
                     remaining))
            remaining
        in
        (match result with
        | None -> record_failed key frontiers
        | Some _ -> ());
        result
  in
  search Object_id.Map.empty [] blocks

let in_every_order_consistent_with env h pairs =
  let acts = History.activities h in
  let exts = Orders.linear_extensions ~equal:Activity.equal pairs acts in
  (* An empty enumeration (cyclic constraints) yields false: there is
     no consistent order to serialize in. *)
  (not (Seq.is_empty exts))
  && Seq.for_all (fun order -> in_order env h order) exts

(* --- incremental re-checking --------------------------------------

   Checking a growing history after every event repeats nearly all of
   the previous check's work: a witness order for the longer history is
   almost always the previous witness with the new activities appended.
   [Incremental] caches the last witness and validates that candidate
   with one O(events) block fold before falling back to the full
   search.  Soundness: the fast path only ever answers [Some order]
   after the block fold has verified [order] end-to-end, so its answers
   are genuine witnesses — exactly the orders [serializable] itself
   would accept. *)
module Incremental = struct
  type t = { env : Spec_env.t; mutable witness : Activity.t list }

  let create env = { env; witness = [] }

  let check t h =
    let acts = History.activities h in
    let mem a l = List.exists (Activity.equal a) l in
    let kept = List.filter (fun a -> mem a acts) t.witness in
    let candidate =
      kept @ List.filter (fun a -> not (mem a kept)) acts
    in
    let blocks = blocks_of h in
    let starts = starts_of t.env h in
    match apply_order ~starts blocks candidate with
    | Some _ ->
      t.witness <- candidate;
      Some candidate
    | None -> (
      match serializable t.env h with
      | Some w ->
        t.witness <- w;
        Some w
      | None -> None)
end
