(** Sequential specifications of objects.

    The paper assumes "an explicit description of the acceptable
    sequences for each object" (Section 3).  We represent such a
    description by a possibly non-deterministic state machine: [step s
    op] returns every permissible (next-state, result) outcome of
    invoking [op] in state [s].  An empty list means no outcome is
    permissible, i.e. any serial sequence reaching that invocation is
    unacceptable.

    Non-determinism matters: the paper stresses that requiring
    operations to be functions (as prior work did) precludes
    non-deterministic operations, which are "needed to achieve a
    reasonable level of concurrency" (Section 1).  The semiqueue object
    in [Weihl_adt] exercises this generality.

    Because specifications may be non-deterministic, executing a serial
    sequence against one tracks a {e set} of possible states (a
    {!frontier}) rather than a single state. *)

open Weihl_event

module type S = sig
  type state

  val type_name : string
  (** The name of the abstract type, e.g. ["intset"]. *)

  val initial : state

  val step : state -> Operation.t -> (state * Value.t) list
  (** All permissible outcomes of the operation in the given state. *)

  val equal_state : state -> state -> bool
  val pp_state : Format.formatter -> state -> unit
end

type t = (module S)
(** A packed sequential specification. *)

val type_name : t -> string

(** {1 Executing specifications} *)

type frontier
(** The set of states a specification may be in after some sequence of
    (operation, result) observations. *)

val start : t -> frontier
(** The singleton frontier holding the initial state. *)

val spec_of : frontier -> t
(** The specification a frontier executes. *)

val advance : frontier -> Operation.t -> Value.t -> frontier option
(** [advance f op res] is the frontier after observing invocation [op]
    terminate with result [res]; [None] if no state in [f] permits that
    outcome — i.e. the observed sequence is unacceptable. *)

val outcomes : frontier -> Operation.t -> (Value.t * frontier) list
(** [outcomes f op] groups the permissible results of invoking [op]
    from [f], pairing each distinct result with the frontier it leads
    to.  An empty list means [op] has no permissible outcome. *)

val advance_changes : frontier -> Operation.t -> Value.t -> bool option
(** [advance_changes f op res] is [None] when the outcome is not
    permissible; otherwise [Some changed], where [changed] says whether
    observing the outcome altered the state set.  Protocols use this to
    distinguish mutators from pure queries. *)

val determined : frontier -> Operation.t -> Value.t option
(** [determined f op] is [Some res] when exactly one result is
    permissible for [op] from [f].  Used by online protocols that must
    return a definite answer. *)

val frontier_size : frontier -> int
(** The number of distinct states the frontier holds.  Cheap; used as a
    pre-filter before the set comparisons of {!equal_frontier} (equal
    frontiers necessarily have equal sizes). *)

val equal_frontier : frontier -> frontier -> bool
(** State-set equality of two frontiers descending from the {e same}
    [start] call.  Frontiers from different [start] calls compare
    unequal even if their states coincide — the conservative answer,
    which is what memoizers pruning repeated frontier states need. *)

val pp_frontier : Format.formatter -> frontier -> unit
