(** Serializability of histories (Section 3).

    A sequence is {e serializable} if it is equivalent to an acceptable
    serial sequence; {e serializable in order T} if that serial
    sequence lists the activities in order [T].  Because equivalence
    preserves each activity's view ([h|a]), the only candidate serial
    sequence for a given order is the concatenation of per-activity
    projections in that order — which makes both notions decidable. *)

open Weihl_event

val in_order : Spec_env.t -> History.t -> Activity.t list -> bool
(** [in_order env h order] iff [h] is serializable in the order
    [order].  [order] must enumerate exactly the activities of [h]
    (any order of activities not in [h] is ignored; activities of [h]
    missing from [order] make the answer [false]). *)

val serializable : Spec_env.t -> History.t -> Activity.t list option
(** Some witness order in which [h] is serializable, if one exists.
    Implemented as a backtracking search that extends a serial prefix
    one whole activity at a time and prunes as soon as some object
    rejects the prefix — still factorial in the worst case, but far
    faster than enumerating permutations on typical histories.  The
    per-activity operation blocks are computed once per call, and a
    memo of already-rejected (placed-set, frontier-state) pairs prunes
    placement orders that reconverge onto a known dead end. *)

val serializable_naive : Spec_env.t -> History.t -> Activity.t list option
(** The specification of {!serializable}: try every permutation.
    Exposed for differential testing. *)

val in_every_order_consistent_with :
  Spec_env.t -> History.t -> (Activity.t * Activity.t) list -> bool
(** [in_every_order_consistent_with env h pairs] iff [h] is
    serializable in {e every} total order of its activities consistent
    with [pairs].  This is the quantifier at the heart of dynamic
    atomicity.  Vacuously [false] when [pairs] is cyclic over the
    activities of [h] (no consistent order exists; the paper's
    histories never produce this since [precedes] of a well-formed
    history is a partial order). *)

(** Incremental serializability for growing histories.

    Re-checking after each appended event repeats nearly all of the
    previous check's work; [Incremental] caches the last witness order
    and first validates the cheap candidate "previous witness, then any
    new activities in appearance order" with a single linear block
    fold, falling back to the full {!serializable} search only when the
    candidate fails.  Answers agree with {!serializable}: [check]
    returns [Some order] iff [serializable] would return a witness
    (though possibly a different one). *)
module Incremental : sig
  type t

  val create : Spec_env.t -> t

  val check : t -> History.t -> Activity.t list option
  (** [check t h] is a witness order in which [h] is serializable, or
      [None].  Histories passed to successive [check]s on the same [t]
      should grow monotonically for the cache to help; correctness does
      not depend on it. *)
end
