open Weihl_event

module type S = sig
  type state

  val type_name : string
  val initial : state
  val step : state -> Operation.t -> (state * Value.t) list
  val equal_state : state -> state -> bool
  val pp_state : Format.formatter -> state -> unit
end

type t = (module S)

let type_name (module S : S) = S.type_name

(* The [Type.Id.t] is minted per [start] call and carried through every
   [advance]/[outcomes]: it both witnesses the state type (so
   [equal_frontier] can compare the existentially typed state lists)
   and scopes equality to one lineage — frontiers descending from
   different [start]s are never considered equal, which is the
   conservative answer memoizers need. *)
type frontier =
  | Frontier :
      (module S with type state = 's) * 's Type.Id.t * 's list
      -> frontier

let start ((module S : S) as _spec : t) =
  Frontier ((module S), Type.Id.make (), [ S.initial ])

let spec_of (Frontier ((module S), _, _)) : t = (module S)

let dedup equal states =
  List.fold_left
    (fun acc s -> if List.exists (equal s) acc then acc else s :: acc)
    [] states
  |> List.rev

let advance (Frontier ((module S), id, states)) op res =
  let next =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (s', r) -> if Value.equal r res then Some s' else None)
          (S.step s op))
      states
    |> dedup S.equal_state
  in
  match next with [] -> None | _ -> Some (Frontier ((module S), id, next))

let outcomes (Frontier ((module S), id, states)) op =
  (* Gather every (result, next-state), then group by result. *)
  let all = List.concat_map (fun s -> S.step s op) states in
  let results =
    dedup Value.equal (List.map snd all)
  in
  List.map
    (fun res ->
      let next =
        List.filter_map
          (fun (s', r) -> if Value.equal r res then Some s' else None)
          all
        |> dedup S.equal_state
      in
      (res, Frontier ((module S), id, next)))
    results

let advance_changes (Frontier ((module S), _, states)) op res =
  let next =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (s', r) -> if Value.equal r res then Some s' else None)
          (S.step s op))
      states
    |> dedup S.equal_state
  in
  match next with
  | [] -> None
  | _ ->
    let same =
      List.length next = List.length states
      && List.for_all (fun s -> List.exists (S.equal_state s) next) states
    in
    Some (not same)

let determined f op =
  match outcomes f op with [ (res, _) ] -> Some res | _ -> None

let frontier_size (Frontier (_, _, states)) = List.length states

let equal_frontier (Frontier ((module S), id1, s1)) (Frontier (_, id2, s2)) =
  match Type.Id.provably_equal id1 id2 with
  | None -> false
  | Some Type.Equal ->
    (* Same lineage, hence same state type: compare as sets (frontiers
       are deduplicated, so mutual inclusion plus equal length works). *)
    List.length s1 = List.length s2
    && List.for_all (fun s -> List.exists (S.equal_state s) s2) s1

let pp_frontier ppf (Frontier ((module S), _, states)) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any " | ") S.pp_state) states
