(** The discrete-event simulator.

    A fixed population of clients repeatedly draws transaction scripts
    from a workload and executes them against a {!Weihl_cc.System.t}
    (closed system).  Operations cost [op_cost] virtual ticks; clients
    think [think_time] ticks between transactions.  A blocked client
    sleeps until some transaction completes; deadlocks are broken by
    aborting the youngest transaction in the cycle; refused operations
    abort and restart their transaction after [restart_backoff] ticks,
    giving up after [max_restarts] attempts.

    The simulation is deterministic given the seed. *)

type crash_spec =
  | Crash_after_events of int
      (** halt once the shared event log holds at least [n] events —
          lands after an arbitrary event kind *)
  | Crash_before_commit of int
      (** halt immediately before the [k]-th commit (1-based): that
          transaction's operations are in the durable log but its
          commit record is not *)
  | Crash_after_commit of int
      (** halt immediately after the [k]-th commit is logged *)

type config = {
  clients : int;
  duration : int; (** virtual ticks *)
  op_cost : int;
  think_time : int;
  restart_backoff : int;
  max_restarts : int;
  crash : crash_spec option;
      (** halt the whole system abruptly at the given point, leaving
          in-flight transactions unfinished in the log — the crash half
          of a crash-recovery cycle (default [None]) *)
  activity_base : int;
      (** first activity number; a run resuming traffic on a recovered
          system passes a base past the replayed names so activities
          stay unique across the crash (default 0) *)
  seed : int;
}

val default_config : config
(** 8 clients, 2000 ticks, unit op cost, zero think time, backoff 5,
    3 restarts, no crash, activity base 0, seed 42. *)

type outcome = {
  committed : int;
  committed_read_only : int;
  aborted_deadlock : int;
  aborted_refused : int;
  gave_up : int;
  waits : int; (** blocked invocation attempts *)
  waits_read_only : int;
  restarts : int;
  update_latencies : Weihl_obs.Metrics.Histogram.t;
      (** begin-to-commit, in ticks *)
  read_only_latencies : Weihl_obs.Metrics.Histogram.t;
  committed_by_label : (string * int) list;
  crashed : bool; (** the run was halted by the configured {!crash_spec} *)
  ticks : int; (** virtual time when the run ended *)
}

val throughput : outcome -> float
(** Committed transactions per 1000 ticks. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?config:config ->
  ?probe:Weihl_obs.Probe.sink ->
  Weihl_cc.System.t ->
  Workload.t ->
  outcome
(** The system must already contain the workload's objects.

    When [probe] is given it is installed on the system for the
    duration of the run with virtual time (ticks) as the clock, so the
    sink sees every transaction and operation event, deadlock-victim
    events, and [clients.blocked] / [clients.active] gauge samples at
    each tick boundary.  The probe is removed before [run] returns. *)
