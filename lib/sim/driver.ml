open Weihl_event
module Cc = Weihl_cc
module Obs = Weihl_obs

type crash_spec =
  | Crash_after_events of int
  | Crash_before_commit of int
  | Crash_after_commit of int

type config = {
  clients : int;
  duration : int;
  op_cost : int;
  think_time : int;
  restart_backoff : int;
  max_restarts : int;
  crash : crash_spec option;
  activity_base : int;
  seed : int;
}

let default_config =
  {
    clients = 8;
    duration = 2000;
    op_cost = 1;
    think_time = 0;
    restart_backoff = 5;
    max_restarts = 3;
    crash = None;
    activity_base = 0;
    seed = 42;
  }

type outcome = {
  committed : int;
  committed_read_only : int;
  aborted_deadlock : int;
  aborted_refused : int;
  gave_up : int;
  waits : int;
  waits_read_only : int;
  restarts : int;
  update_latencies : Obs.Metrics.Histogram.t;
  read_only_latencies : Obs.Metrics.Histogram.t;
  committed_by_label : (string * int) list;
  crashed : bool;
  ticks : int;
}

let throughput o =
  if o.ticks = 0 then 0.
  else 1000. *. float_of_int o.committed /. float_of_int o.ticks

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>committed: %d (read-only %d)@,\
     aborted: %d deadlock, %d refused; gave up: %d@,\
     waits: %d (read-only %d); restarts: %d@,\
     throughput: %.2f txn/1000 ticks@,\
     update latency: mean %.1f p95 %.1f@,\
     read-only latency: mean %.1f p95 %.1f@]"
    o.committed o.committed_read_only o.aborted_deadlock o.aborted_refused
    o.gave_up o.waits o.waits_read_only o.restarts (throughput o)
    (Obs.Metrics.Histogram.mean o.update_latencies)
    (Obs.Metrics.Histogram.percentile o.update_latencies 95.)
    (Obs.Metrics.Histogram.mean o.read_only_latencies)
    (Obs.Metrics.Histogram.percentile o.read_only_latencies 95.)

type client = {
  cid : int;
  mutable script : Workload.script option;
  mutable step_idx : int;
  mutable txn : Cc.Txn.t option;
  mutable first_start : int;
  mutable restarts_left : int;
  mutable blocked : bool;
  mutable retry_scheduled : bool;
}

type metrics = {
  mutable m_committed : int;
  mutable m_committed_ro : int;
  mutable m_deadlock : int;
  mutable m_refused : int;
  mutable m_gave_up : int;
  mutable m_waits : int;
  mutable m_waits_ro : int;
  mutable m_restarts : int;
  m_upd_lat : Obs.Metrics.Histogram.t;
  m_ro_lat : Obs.Metrics.Histogram.t;
  mutable m_labels : (string * int) list;
}

let bump_label m label =
  let n = Option.value ~default:0 (List.assoc_opt label m.m_labels) in
  m.m_labels <- (label, n + 1) :: List.remove_assoc label m.m_labels

let run ?(config = default_config) ?probe system workload =
  let rng = Rng.create config.seed in
  let sim_now = ref 0 in
  (match probe with
  | Some sink ->
    Cc.System.set_probe system
      ~now:(fun () -> float_of_int !sim_now)
      sink
  | None -> ());
  let pq : int Pqueue.t = Pqueue.create () in
  let clients =
    Array.init config.clients (fun cid ->
        {
          cid;
          script = None;
          step_idx = 0;
          txn = None;
          first_start = 0;
          restarts_left = config.max_restarts;
          blocked = false;
          retry_scheduled = false;
        })
  in
  let txn_owner : (int, client) Hashtbl.t = Hashtbl.create 64 in
  let m =
    {
      m_committed = 0;
      m_committed_ro = 0;
      m_deadlock = 0;
      m_refused = 0;
      m_gave_up = 0;
      m_waits = 0;
      m_waits_ro = 0;
      m_restarts = 0;
      m_upd_lat = Obs.Metrics.Histogram.create ();
      m_ro_lat = Obs.Metrics.Histogram.create ();
      m_labels = [];
    }
  in
  let activity_counter = ref config.activity_base in
  let fresh_activity kind =
    incr activity_counter;
    match kind with
    | `Update -> Activity.update (Fmt.str "u%d" !activity_counter)
    | `Read_only -> Activity.read_only (Fmt.str "r%d" !activity_counter)
  in
  let schedule c ~time =
    if not c.retry_scheduled then begin
      c.retry_scheduled <- true;
      Pqueue.push pq ~time c.cid
    end
  in
  let wake_blocked ~time =
    Array.iter (fun c -> if c.blocked then schedule c ~time) clients
  in
  (* Tear down the client's current transaction after an abort decided
     by the manager (deadlock victim or refused operation). *)
  let restart_after_abort c ~time =
    (match c.txn with
    | Some txn -> Hashtbl.remove txn_owner (Cc.Txn.id txn)
    | None -> ());
    c.txn <- None;
    c.step_idx <- 0;
    c.blocked <- false;
    if c.restarts_left <= 0 then begin
      m.m_gave_up <- m.m_gave_up + 1;
      c.script <- None
    end
    else begin
      c.restarts_left <- c.restarts_left - 1;
      m.m_restarts <- m.m_restarts + 1
    end;
    schedule c ~time:(time + config.restart_backoff + Rng.int rng 3)
  in
  let break_deadlock ~time =
    match Cc.System.find_deadlock system with
    | None -> ()
    | Some cycle ->
      let victim = Cc.Waits_for.victim cycle in
      if Cc.System.probe_installed system then
        Cc.System.emit_probe system
          (Obs.Probe.Deadlock_victim
             {
               victim = Cc.Txn.id victim;
               cycle = List.map Cc.Txn.id cycle;
             });
      (match Hashtbl.find_opt txn_owner (Cc.Txn.id victim) with
      | Some vc ->
        Cc.System.abort ~reason:"deadlock" system victim;
        m.m_deadlock <- m.m_deadlock + 1;
        restart_after_abort vc ~time;
        wake_blocked ~time
      | None ->
        (* The victim is not one of our clients (cannot happen in this
           driver); leave it to its owner. *)
        ())
  in
  let halted = ref false in
  let commits_done = ref 0 in
  let finish_commit c txn ~time =
    let script = Option.get c.script in
    (match config.crash with
    | Some (Crash_before_commit k) when !commits_done + 1 = k ->
      (* The crash lands between the operations and the commit record:
         the transaction is in flight in the durable log and recovery
         must discard it. *)
      halted := true;
      raise Exit
    | _ -> ());
    Cc.System.commit system txn;
    incr commits_done;
    (match config.crash with
    | Some (Crash_after_commit k) when !commits_done = k ->
      halted := true
    | _ -> ());
    Hashtbl.remove txn_owner (Cc.Txn.id txn);
    m.m_committed <- m.m_committed + 1;
    bump_label m script.Workload.label;
    let latency = float_of_int (time + config.op_cost - c.first_start) in
    (match script.Workload.kind with
    | `Read_only ->
      m.m_committed_ro <- m.m_committed_ro + 1;
      Obs.Metrics.Histogram.observe m.m_ro_lat latency
    | `Update -> Obs.Metrics.Histogram.observe m.m_upd_lat latency);
    c.script <- None;
    c.step_idx <- 0;
    c.txn <- None;
    wake_blocked ~time;
    schedule c ~time:(time + config.op_cost + config.think_time)
  in
  let proceed c ~time =
    c.retry_scheduled <- false;
    if time > config.duration then ()
    else begin
      c.blocked <- false;
      (* Draw a script and open a transaction if needed. *)
      let script =
        match c.script with
        | Some s -> s
        | None ->
          let s = workload.Workload.generate rng in
          c.script <- Some s;
          c.step_idx <- 0;
          c.first_start <- time;
          c.restarts_left <- config.max_restarts;
          s
      in
      let txn =
        match c.txn with
        | Some txn -> txn
        | None ->
          let txn =
            Cc.System.begin_txn system (fresh_activity script.Workload.kind)
          in
          c.txn <- Some txn;
          Hashtbl.replace txn_owner (Cc.Txn.id txn) c;
          txn
      in
      match List.nth_opt script.Workload.steps c.step_idx with
      | None -> finish_commit c txn ~time
      | Some step -> (
        match
          Cc.System.invoke system txn step.Workload.obj step.Workload.op
        with
        | Cc.Atomic_object.Granted v ->
          let continue =
            match step.Workload.continue_if with
            | None -> true
            | Some pred -> pred v
          in
          if continue then begin
            c.step_idx <- c.step_idx + 1;
            if c.step_idx >= List.length script.Workload.steps then
              finish_commit c txn ~time:(time + config.op_cost)
            else schedule c ~time:(time + config.op_cost)
          end
          else finish_commit c txn ~time:(time + config.op_cost)
        | Cc.Atomic_object.Wait _ ->
          m.m_waits <- m.m_waits + 1;
          if script.Workload.kind = `Read_only then
            m.m_waits_ro <- m.m_waits_ro + 1;
          c.blocked <- true;
          break_deadlock ~time
        | Cc.Atomic_object.Refused _ ->
          Cc.System.abort ~reason:"refused" system txn;
          m.m_refused <- m.m_refused + 1;
          restart_after_abort c ~time;
          wake_blocked ~time)
    end
  in
  Array.iter
    (fun c -> schedule c ~time:(Rng.int rng (config.think_time + 2)))
    clients;
  let last_time = ref 0 in
  (* With a probe installed, sample client occupancy whenever virtual
     time advances: how many clients sit blocked, how many hold an open
     transaction. *)
  let sample_clients () =
    if Cc.System.probe_installed system then begin
      let blocked = ref 0 and active = ref 0 in
      Array.iter
        (fun c ->
          if c.blocked then incr blocked;
          if c.txn <> None then incr active)
        clients;
      Cc.System.emit_probe system
        (Obs.Probe.Gauge_set
           { name = "clients.blocked"; value = float_of_int !blocked });
      Cc.System.emit_probe system
        (Obs.Probe.Gauge_set
           { name = "clients.active"; value = float_of_int !active })
    end
  in
  let guard = ref 0 in
  let max_events = 200 * config.duration * config.clients in
  let rec loop () =
    incr guard;
    if !guard > max_events || !halted then ()
    else
      match Pqueue.pop pq with
      | Some (time, cid) when time <= config.duration ->
        if time > !last_time then sample_clients ();
        last_time := max !last_time time;
        sim_now := time;
        (* A crash is an abrupt halt: Exit unwinds out of the middle of
           a step, leaving in-flight transactions exactly as the log
           last saw them. *)
        (try proceed clients.(cid) ~time with Exit -> ());
        (match config.crash with
        | Some (Crash_after_events n)
          when Weihl_event.History.length (Cc.System.history system) >= n ->
          halted := true
        | _ -> ());
        loop ()
      | Some _ | None -> ()
  in
  loop ();
  sample_clients ();
  if probe <> None then Cc.System.clear_probe system;
  {
    committed = m.m_committed;
    committed_read_only = m.m_committed_ro;
    aborted_deadlock = m.m_deadlock;
    aborted_refused = m.m_refused;
    gave_up = m.m_gave_up;
    waits = m.m_waits;
    waits_read_only = m.m_waits_ro;
    restarts = m.m_restarts;
    update_latencies = m.m_upd_lat;
    read_only_latencies = m.m_ro_lat;
    committed_by_label = m.m_labels;
    crashed = !halted;
    ticks = max 1 !last_time;
  }
