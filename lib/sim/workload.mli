(** Workload generators: parameterized streams of transaction scripts.

    A {e script} is the straight-line plan of one transaction: which
    operations to invoke on which objects, with an optional
    early-commit guard per step (e.g. a transfer stops after a
    withdrawal answers [insufficient_funds]).  Generators draw scripts
    deterministically from a {!Rng.t}. *)

open Weihl_event

type step = {
  obj : Object_id.t;
  op : Operation.t;
  continue_if : (Value.t -> bool) option;
      (** When set and the result fails the predicate, the transaction
          commits immediately after this step (it is not an error —
          e.g. a failed withdrawal still commits its answer). *)
}

type script = {
  kind : [ `Update | `Read_only ];
  label : string; (** workload class, e.g. ["transfer"]; used in metrics *)
  steps : step list;
}

type t = {
  name : string;
  objects : Object_id.t list; (** objects the scripts reference *)
  generate : Rng.t -> script;
}

val step : ?continue_if:(Value.t -> bool) -> Object_id.t -> Operation.t -> step

(** {1 Key distributions}

    Samplers return an index in [0 .. n-1]; feed them to {!banking}'s
    [key_dist] to skew which accounts the scripts touch.  Both are
    deterministic functions of the generator they are handed. *)

val zipf : theta:float -> n:int -> Rng.t -> int
(** Zipfian ranks: index [i] drawn with weight [1/(i+1)^theta].
    [theta = 0.] is uniform; [theta] near 1 gives the classic skew
    where a few keys absorb most of the traffic.
    @raise Invalid_argument if [n <= 0] or [theta < 0.]. *)

val hotspot : hot:float -> hot_keys:int -> n:int -> Rng.t -> int
(** With probability [hot], uniform over the first [hot_keys] indices
    (clamped to [1 .. n]); otherwise uniform over all [n].
    @raise Invalid_argument if [n <= 0] or [hot] is not in [0..1]. *)

(** {1 Banking (Sections 4.3.3 and 5.1)} *)

val account_ids : int -> Object_id.t list
(** [acct0 .. acct(n-1)]. *)

val banking :
  ?accounts:int ->
  ?transfer_max:int ->
  ?audit_fraction:float ->
  ?deposit_fraction:float ->
  ?key_dist:(Rng.t -> int) ->
  unit ->
  t
(** Lamport's banking mix: transfers move a random amount between two
    random accounts (withdraw then deposit, stopping on
    [insufficient_funds]); deposits seed money; audits read every
    account's balance (read-only).  Defaults: 8 accounts, transfers up
    to 50, 10% audits, 20% deposits.  [key_dist] (e.g. {!zipf} or
    {!hotspot} over [accounts]) skews which accounts are picked;
    omitting it keeps the historical uniform draw sequence, so
    existing seeded runs replay unchanged. *)

val hot_account : Object_id.t

val hot_withdrawals :
  ?withdraw_max:int -> ?deposit_fraction:float -> unit -> t
(** The Section 5.1 stress: every transaction hits one shared account;
    withdrawers make two withdrawal attempts (stopping on
    [insufficient_funds]), depositors two deposits.  Concurrency then
    hinges entirely on how the protocol treats withdraw/withdraw and
    withdraw/deposit pairs. *)

(** {1 Other object families} *)

val set_object : Object_id.t
(** The single shared set used by {!set_ops}. *)

val set_ops : ?keys:int -> ?size_fraction:float -> unit -> t
(** Random insert/delete/member (and occasional [size]) transactions of
    1-4 operations on one shared set. *)

val queue_object : Object_id.t
(** The single shared queue used by {!queue_producers_consumers}. *)

val queue_producers_consumers : ?producers_fraction:float -> unit -> t
(** Producers enqueue 1-3 values; consumers dequeue 1-2. *)

val kv_object : Object_id.t
(** The single shared map used by {!kv_ops}. *)

val kv_ops : ?keys:int -> ?read_fraction:float -> unit -> t
(** Random get/put/remove transactions of 1-3 operations on one shared
    key/value map. *)

val semiqueue_object : Object_id.t
(** The single shared semiqueue used by
    {!semiqueue_producers_consumers}. *)

val semiqueue_producers_consumers : ?producers_fraction:float -> unit -> t
(** Producers enqueue 1-2 values; consumers dequeue one — the workload
    where non-determinism lets consumers run in parallel. *)

val counter_object : Object_id.t
(** The single shared counter used by {!counter_increments}. *)

val counter_increments : unit -> t
(** Single-increment transactions on one shared counter. *)
