open Weihl_event

type step = {
  obj : Object_id.t;
  op : Operation.t;
  continue_if : (Value.t -> bool) option;
}

type script = {
  kind : [ `Update | `Read_only ];
  label : string;
  steps : step list;
}

type t = {
  name : string;
  objects : Object_id.t list;
  generate : Rng.t -> script;
}

let step ?continue_if obj op = { obj; op; continue_if }

(* Zipfian rank sampler: key i (0-based) drawn with weight
   1/(i+1)^theta.  theta = 0 is uniform; theta around 1 is the classic
   skew where a few keys soak up most of the traffic. *)
let zipf ~theta ~n =
  if n <= 0 then invalid_arg "Workload.zipf: n must be positive";
  if theta < 0. then invalid_arg "Workload.zipf: theta must be >= 0";
  let cum = Array.make n 0. in
  let total = ref 0. in
  for i = 0 to n - 1 do
    total := !total +. (1. /. (float_of_int (i + 1) ** theta));
    cum.(i) <- !total
  done;
  let total = !total in
  fun rng ->
    let u = Rng.float rng total in
    (* First index with cum.(i) >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

(* Hotspot sampler: probability [hot] of drawing uniformly from the
   first [hot_keys] keys, otherwise uniform over all [n]. *)
let hotspot ~hot ~hot_keys ~n =
  if n <= 0 then invalid_arg "Workload.hotspot: n must be positive";
  if hot < 0. || hot > 1. then
    invalid_arg "Workload.hotspot: hot not a probability";
  let hot_keys = max 1 (min hot_keys n) in
  fun rng ->
    if Rng.float rng 1.0 < hot then Rng.int rng hot_keys
    else Rng.int rng n

let account_ids n =
  List.init n (fun i -> Object_id.v (Fmt.str "acct%d" i))

let banking ?(accounts = 8) ?(transfer_max = 50) ?(audit_fraction = 0.1)
    ?(deposit_fraction = 0.2) ?key_dist () =
  let objects = account_ids accounts in
  let arr = Array.of_list objects in
  let pick rng =
    match key_dist with
    | None -> Rng.pick rng objects
    | Some dist -> arr.(dist rng)
  in
  let generate rng =
    let r = Rng.float rng 1.0 in
    if r < audit_fraction then
      {
        kind = `Read_only;
        label = "audit";
        steps = List.map (fun x -> step x Weihl_adt.Bank_account.balance) objects;
      }
    else if r < audit_fraction +. deposit_fraction then
      (* A salary split: deposits into two accounts.  Spanning two
         steps makes deposits hold their locks across simulated time,
         so protocols that let deposits commute genuinely interleave
         them while read/write locking serializes. *)
      let acct1 = pick rng in
      let acct2 = pick rng in
      let amount = Rng.int_range rng 1 transfer_max in
      {
        kind = `Update;
        label = "deposit";
        steps =
          [
            step acct1 (Weihl_adt.Bank_account.deposit amount);
            step acct2 (Weihl_adt.Bank_account.deposit amount);
          ];
      }
    else begin
      let src = pick rng in
      let rec pick_dst () =
        let dst = pick rng in
        if Object_id.equal dst src then pick_dst () else dst
      in
      let dst = pick_dst () in
      let amount = Rng.int_range rng 1 transfer_max in
      {
        kind = `Update;
        label = "transfer";
        steps =
          [
            step src
              (Weihl_adt.Bank_account.withdraw amount)
              ~continue_if:(Value.equal Value.ok);
            step dst (Weihl_adt.Bank_account.deposit amount);
          ];
      }
    end
  in
  { name = "banking"; objects; generate }

let set_object = Object_id.v "set"

let set_ops ?(keys = 16) ?(size_fraction = 0.05) () =
  let generate rng =
    if Rng.float rng 1.0 < size_fraction then
      { kind = `Read_only; label = "size";
        steps = [ step set_object Weihl_adt.Intset.size ] }
    else begin
      let n_ops = Rng.int_range rng 1 4 in
      let read_only = ref true in
      let steps =
        List.init n_ops (fun _ ->
            let k = Rng.int rng keys in
            match Rng.int rng 3 with
            | 0 ->
              read_only := false;
              step set_object (Weihl_adt.Intset.insert k)
            | 1 ->
              read_only := false;
              step set_object (Weihl_adt.Intset.delete k)
            | _ -> step set_object (Weihl_adt.Intset.member k))
      in
      {
        kind = (if !read_only then `Read_only else `Update);
        label = (if !read_only then "lookup" else "mixed");
        steps;
      }
    end
  in
  { name = "set_ops"; objects = [ set_object ]; generate }

let queue_object = Object_id.v "queue"

let queue_producers_consumers ?(producers_fraction = 0.6) () =
  let generate rng =
    if Rng.float rng 1.0 < producers_fraction then
      let n = Rng.int_range rng 1 3 in
      {
        kind = `Update;
        label = "producer";
        steps =
          List.init n (fun _ ->
              step queue_object
                (Weihl_adt.Fifo_queue.enqueue (Rng.int rng 100)));
      }
    else
      let n = Rng.int_range rng 1 2 in
      {
        kind = `Update;
        label = "consumer";
        steps = List.init n (fun _ -> step queue_object Weihl_adt.Fifo_queue.dequeue);
      }
  in
  { name = "queue"; objects = [ queue_object ]; generate }

let counter_object = Object_id.v "counter"

let counter_increments () =
  let generate _rng =
    {
      kind = `Update;
      label = "increment";
      steps = [ step counter_object Weihl_adt.Counter.increment ];
    }
  in
  { name = "counter"; objects = [ counter_object ]; generate }


let hot_account = Object_id.v "hot"

let hot_withdrawals ?(withdraw_max = 5) ?(deposit_fraction = 0.3) () =
  let generate rng =
    if Rng.float rng 1.0 < deposit_fraction then
      {
        kind = `Update;
        label = "deposit";
        steps =
          [
            step hot_account
              (Weihl_adt.Bank_account.deposit (Rng.int_range rng 1 withdraw_max));
            step hot_account
              (Weihl_adt.Bank_account.deposit (Rng.int_range rng 1 withdraw_max));
          ];
      }
    else
      let n1 = Rng.int_range rng 1 withdraw_max in
      let n2 = Rng.int_range rng 1 withdraw_max in
      {
        kind = `Update;
        label = "withdraw";
        steps =
          [
            step hot_account
              (Weihl_adt.Bank_account.withdraw n1)
              ~continue_if:(Value.equal Value.ok);
            step hot_account
              (Weihl_adt.Bank_account.withdraw n2)
              ~continue_if:(Value.equal Value.ok);
          ];
      }
  in
  { name = "hot_withdrawals"; objects = [ hot_account ]; generate }


let kv_object = Object_id.v "kv"

let kv_ops ?(keys = 12) ?(read_fraction = 0.5) () =
  let generate rng =
    let n_ops = Rng.int_range rng 1 3 in
    let read_only = ref true in
    let steps =
      List.init n_ops (fun _ ->
          let k = Rng.int rng keys in
          if Rng.float rng 1.0 < read_fraction then
            step kv_object (Weihl_adt.Kv_map.get k)
          else begin
            read_only := false;
            if Rng.int rng 4 = 0 then step kv_object (Weihl_adt.Kv_map.remove k)
            else step kv_object (Weihl_adt.Kv_map.put k (Rng.int rng 100))
          end)
    in
    {
      kind = (if !read_only then `Read_only else `Update);
      label = (if !read_only then "lookup" else "mutation");
      steps;
    }
  in
  { name = "kv_ops"; objects = [ kv_object ]; generate }

let semiqueue_object = Object_id.v "semiqueue"

let semiqueue_producers_consumers ?(producers_fraction = 0.5) () =
  let generate rng =
    if Rng.float rng 1.0 < producers_fraction then
      {
        kind = `Update;
        label = "producer";
        steps =
          List.init (Rng.int_range rng 1 2) (fun _ ->
              step semiqueue_object (Weihl_adt.Semiqueue.enq (Rng.int rng 50)));
      }
    else
      {
        kind = `Update;
        label = "consumer";
        steps = [ step semiqueue_object Weihl_adt.Semiqueue.deq ];
      }
  in
  { name = "semiqueue"; objects = [ semiqueue_object ]; generate }
