module Rng = Weihl_sim.Rng
module Msim = Weihl_dist.Msim

type crash =
  | No_crash
  | Before_commit of int
  | After_commit of int
  | After_events of int

type log_fault =
  | Pristine
  | Torn_tail of int
  | Truncate_at of int
  | Bit_flip of int

type t = {
  seed : int;
  crash : crash;
  log_fault : log_fault;
  msg : Msim.faults;
  clock_skew : int list;
}

let generate ~seed =
  let rng = Rng.create seed in
  let crash =
    match Rng.int rng 8 with
    | 0 -> No_crash
    | 1 | 2 -> Before_commit (1 + Rng.int rng 8)
    | 3 | 4 -> After_commit (1 + Rng.int rng 8)
    | _ -> After_events (6 + Rng.int rng 48)
  in
  let log_fault =
    match Rng.int rng 6 with
    | 0 | 1 -> Pristine
    | 2 | 3 -> Torn_tail (1 + Rng.int rng 160)
    | 4 -> Truncate_at (Rng.int rng 100_000)
    | _ -> Bit_flip (Rng.int rng 1_000_000)
  in
  let prob limit = if Rng.int rng 3 = 0 then 0. else Rng.float rng limit in
  let msg =
    { Msim.drop = prob 0.12; duplicate = prob 0.08; reorder = prob 0.15 }
  in
  let clock_skew = List.init 4 (fun _ -> Rng.int rng 40) in
  { seed; crash; log_fault; msg; clock_skew }

let corrupt_with log_fault text =
  let len = String.length text in
  if len = 0 then text
  else
    match log_fault with
    | Pristine -> text
    | Torn_tail k ->
      let cut = 1 + (k mod min len 160) in
      String.sub text 0 (len - cut)
    | Truncate_at k -> String.sub text 0 (k mod (len + 1))
    | Bit_flip k ->
      let pos = k mod len in
      let bit = (k lsr 17) land 7 in
      let b = Bytes.of_string text in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Bytes.to_string b

let corrupt t text = corrupt_with t.log_fault text

let pp_crash ppf = function
  | No_crash -> Fmt.string ppf "no crash"
  | Before_commit k -> Fmt.pf ppf "crash before commit %d" k
  | After_commit k -> Fmt.pf ppf "crash after commit %d" k
  | After_events n -> Fmt.pf ppf "crash after %d events" n

let pp_log_fault ppf = function
  | Pristine -> Fmt.string ppf "pristine log"
  | Torn_tail k -> Fmt.pf ppf "torn tail (%d)" k
  | Truncate_at k -> Fmt.pf ppf "truncate (%d)" k
  | Bit_flip k -> Fmt.pf ppf "bit flip (%d)" k

let pp ppf t =
  Fmt.pf ppf
    "@[<h>seed %d: %a; %a; msg drop %.3f dup %.3f reorder %.3f; skew %a@]"
    t.seed pp_crash t.crash pp_log_fault t.log_fault t.msg.Msim.drop
    t.msg.Msim.duplicate t.msg.Msim.reorder
    Fmt.(list ~sep:comma int)
    t.clock_skew
