(** Seeded fault plans for the sharded runtime's 2PC commit path.

    A sharded schedule injects its fault at the [fault_at_commit]-th
    multi-shard commit of a deterministic run: the 2PC round for that
    transaction executes under [tpc] and [msg], and if a participant
    crashes, its WAL is (optionally) damaged by [log_fault] before the
    shard recovers.  Like {!Plan}, everything derives from one seed. *)

module Msim = Weihl_dist.Msim
module Tpc = Weihl_dist.Tpc

type tpc_fault =
  | Clean
  | Coord_crash of Tpc.crash_point
  | Part_crash of int * [ `Before_vote | `After_vote ]
      (** participant index (mod the transaction's fan-out) and when it
          dies *)
  | Part_refuses of int  (** that participant votes no *)
  | Partition of int
      (** cut the coordinator<->participant link for the round *)

type ckpt_fault =
  | Ckpt_pristine
  | Ckpt_bit_flip of int  (** flip one bit in the checkpoint file *)
  | Ckpt_torn of int  (** chop bytes off its end — an interrupted write *)
  | Ckpt_race
      (** the checkpoint raced the crash: the file reached disk but its
          WAL [Checkpointed] marker never became durable, so recovery
          must treat the checkpoint as never having happened *)

type replica_fault =
  | Replica_healthy
  | Replica_lag of int * int
      (** replica index (mod the tier's size) skips that many shipping
          rounds — an apply-lag schedule *)
  | Replica_crash of int
      (** that replica crashes mid-run and restarts later; its durable
          applied log survives, its high-water mark does not *)
  | Replica_partition of int
      (** cut the feed<->replica channel link for a window *)
  | Replica_damage of int * int
      (** after the given traffic slice, corrupt that many shipped
          segments in flight — each must be detected and resynced,
          never applied *)

type t = {
  seed : int;
  fault_at_commit : int;
      (** inject at the k-th multi-shard (2PC) commit; earlier and
          later commits run clean *)
  tpc : tpc_fault;
  msg : Msim.faults;
  log_fault : Plan.log_fault;
      (** damage applied to a crashed participant's WAL before
          recovery *)
  ckpt : ckpt_fault;
      (** damage applied to the crashed shard's newest checkpoint file
          (the soak harness's crash→recover cycles) *)
  ship : Msim.faults;
      (** drop/duplicate/reorder on the WAL-shipping channel of a
          replica tier — the resend-from-acked protocol must absorb
          them *)
  replica : replica_fault;
      (** the replica-side fault a failover drill stages mid-run *)
}

val generate : seed:int -> t
(** Equal seeds give equal plans; a sweep over consecutive seeds covers
    every 2PC crash phase, no-votes, partitions, message faults and
    occasional WAL corruption. *)

val corrupt : t -> string -> string
(** Apply the plan's [log_fault] to a durable log text. *)

val corrupt_ckpt : t -> string -> string
(** Apply the plan's [ckpt] damage to a checkpoint file.  Identity for
    [Ckpt_pristine] and [Ckpt_race] — the race damages the WAL marker,
    not the file (see {!ckpt_fault}). *)

val pp : Format.formatter -> t -> unit
val pp_ckpt : Format.formatter -> ckpt_fault -> unit
val pp_replica : Format.formatter -> replica_fault -> unit
