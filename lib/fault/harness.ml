open Weihl_event
module Cc = Weihl_cc
module Adt = Weihl_adt
module Sim = Weihl_sim
module Rng = Weihl_sim.Rng
module Workload = Weihl_sim.Workload
module Driver = Weihl_sim.Driver
module Tpc = Weihl_dist.Tpc

type protocol = {
  name : string;
  policy : Cc.System.ts_policy;
  spec : Weihl_spec.Seq_spec.t;
  workload : unit -> Workload.t;
  make_object : Cc.Event_log.t -> Object_id.t -> Cc.Atomic_object.t;
}

(* A blind-counter workload for [Da_counter]; the stock workloads cover
   every other protocol. *)
let blind_counter_workload () =
  let obj = Object_id.v "tally" in
  let generate rng =
    if Rng.int rng 4 = 0 then
      {
        Workload.kind = `Read_only;
        label = "read";
        steps = [ Workload.step obj Adt.Blind_counter.read ];
      }
    else
      {
        Workload.kind = `Update;
        label = "bump";
        steps =
          List.init
            (1 + Rng.int rng 2)
            (fun _ -> Workload.step obj (Adt.Blind_counter.bump (1 + Rng.int rng 5)));
      }
  in
  { Workload.name = "blind_counter"; objects = [ obj ]; generate }

let banking () = Workload.banking ~accounts:4 ~transfer_max:10 ()
let hot () = Workload.hot_withdrawals ()

(* The synthesized account protocol, compiled here from the theory
   layer directly (the analysis layer's memoized synthesis sits above
   lib/shard, which depends on this library).  The workload draws from
   the synthesis alphabet so crash/recovery cycles exercise the
   compiled (op, result) cells, not just the conservative off-alphabet
   fallback. *)
let derived_account_alphabet =
  Adt.Bank_account.[ deposit 5; deposit 2; withdraw 3; withdraw 6; balance ]

let derived_account_table =
  lazy
    (Weihl_theory.Synthesize.synthesize Adt.Bank_account.spec
       ~alphabet:derived_account_alphabet ~depth:3 ~budget:6)

let derived_account_conflict a b =
  match Weihl_theory.Synthesize.conflict (Lazy.force derived_account_table) a b with
  | Some c -> c
  | None ->
    let read (op, _) = Adt.Bank_account.classify op = Adt.Adt_sig.Read in
    not (read a && read b)

let derived_account_workload () =
  let obj = Object_id.v "acct" in
  let ops = Adt.Bank_account.[| deposit 5; deposit 2; withdraw 3; withdraw 6 |] in
  let generate rng =
    if Rng.int rng 5 = 0 then
      {
        Workload.kind = `Read_only;
        label = "balance";
        steps = [ Workload.step obj Adt.Bank_account.balance ];
      }
    else
      {
        Workload.kind = `Update;
        label = "mix";
        steps =
          List.init
            (1 + Rng.int rng 2)
            (fun _ -> Workload.step obj ops.(Rng.int rng (Array.length ops)));
      }
  in
  { Workload.name = "derived_account"; objects = [ obj ]; generate }

let catalog =
  [
    {
      name = "rw";
      policy = `None_;
      spec = Adt.Bank_account.spec;
      workload = banking;
      make_object = (fun log id -> Cc.Op_locking.rw log id (module Adt.Bank_account));
    };
    {
      name = "commutativity";
      policy = `None_;
      spec = Adt.Bank_account.spec;
      workload = banking;
      make_object =
        (fun log id -> Cc.Op_locking.commutativity log id (module Adt.Bank_account));
    };
    {
      name = "escrow";
      policy = `None_;
      spec = Adt.Bank_account.spec;
      workload = banking;
      make_object = Cc.Escrow_account.make;
    };
    {
      name = "rw_undo";
      policy = `None_;
      spec = Adt.Bank_account.spec;
      workload = banking;
      make_object = (fun log id -> Cc.Rw_undo.make log id (module Adt.Bank_account));
    };
    {
      name = "multiversion";
      policy = `Static;
      spec = Adt.Bank_account.spec;
      workload = banking;
      make_object = (fun log id -> Cc.Multiversion.make log id Adt.Bank_account.spec);
    };
    {
      name = "hybrid";
      policy = `Hybrid;
      spec = Adt.Bank_account.spec;
      workload = banking;
      make_object = (fun log id -> Cc.Hybrid.of_adt log id (module Adt.Bank_account));
    };
    {
      name = "hybrid_account";
      policy = `Hybrid;
      spec = Adt.Bank_account.spec;
      workload = hot;
      make_object = Cc.Hybrid_account.make;
    };
    {
      name = "da_set";
      policy = `None_;
      spec = Adt.Intset.spec;
      workload = (fun () -> Workload.set_ops ());
      make_object = Cc.Da_set.make;
    };
    {
      name = "multiversion_set";
      policy = `Static;
      spec = Adt.Intset.spec;
      workload = (fun () -> Workload.set_ops ());
      make_object = (fun log id -> Cc.Multiversion.make log id Adt.Intset.spec);
    };
    {
      name = "da_generic_set";
      policy = `None_;
      spec = Adt.Intset.spec;
      workload = (fun () -> Workload.set_ops ());
      make_object = (fun log id -> Cc.Da_generic.make log id Adt.Intset.spec);
    };
    {
      name = "da_kv";
      policy = `None_;
      spec = Adt.Kv_map.spec;
      workload = (fun () -> Workload.kv_ops ());
      make_object = Cc.Da_kv.make;
    };
    {
      name = "da_semiqueue";
      policy = `None_;
      spec = Adt.Semiqueue.spec;
      workload = (fun () -> Workload.semiqueue_producers_consumers ());
      make_object = Cc.Da_semiqueue.make;
    };
    {
      name = "da_queue";
      policy = `None_;
      spec = Adt.Fifo_queue.spec;
      workload = (fun () -> Workload.queue_producers_consumers ());
      make_object = (fun log id -> Cc.Da_queue.make log id);
    };
    {
      name = "da_counter";
      policy = `None_;
      spec = Adt.Blind_counter.spec;
      workload = blind_counter_workload;
      make_object = Cc.Da_counter.make;
    };
    {
      name = "derived_account";
      policy = `None_;
      spec = Adt.Bank_account.spec;
      workload = derived_account_workload;
      make_object =
        (fun log id ->
          Cc.Derived_locking.make log id Adt.Bank_account.spec
            ~conflict:derived_account_conflict);
    };
  ]

let find_protocol name = List.find_opt (fun p -> p.name = name) catalog

type verdict = Converged | Corruption_detected | Diverged of string

type schedule_result = {
  plan : Plan.t;
  protocol : string;
  verdict : verdict;
  replayed : int;
  substituted : int;
  dropped_records : int;
  resumed_committed : int;
}

type summary = {
  schedules : int;
  converged : int;
  corruption_detected : int;
  diverged : int;
  results : schedule_result list;
}

let build proto =
  let sys = Cc.System.create ~policy:proto.policy () in
  let w = proto.workload () in
  List.iter
    (fun id -> Cc.System.add_object sys (proto.make_object (Cc.System.log sys) id))
    w.Workload.objects;
  (sys, w)

let recovery_order (policy : Cc.System.ts_policy) =
  match policy with
  | `None_ -> Cc.Recovery.Commit_order
  | `Static | `Hybrid -> Cc.Recovery.Timestamp_order

(* The exponential atomicity checkers only digest small histories; past
   the cap the schedule still validates replay against the
   specification frontiers, which is linear. *)
let atomicity_cap = 8

let check_atomicity proto h =
  let env =
    Weihl_spec.Spec_env.of_list
      (List.map (fun id -> (id, proto.spec)) ((proto.workload ()).Workload.objects))
  in
  if Activity.Set.cardinal (History.committed h) > atomicity_cap then true
  else
    match proto.policy with
    | `None_ -> Weihl_spec.Atomicity.dynamic_atomic env h
    | `Static -> Weihl_spec.Atomicity.static_atomic env h
    | `Hybrid -> Weihl_spec.Atomicity.hybrid_atomic env h

(* A distributed-commit round under the plan's message faults and clock
   skews; crashes and votes are drawn from the plan's seed. *)
let tpc_round (plan : Plan.t) =
  let rng = Rng.create ((plan.Plan.seed * 13) + 5) in
  let participants = 3 in
  let votes =
    List.init participants (fun _ ->
        if Rng.int rng 6 = 0 then Tpc.No else Tpc.Yes)
  in
  let coordinator_crash =
    match Rng.int rng 5 with
    | 0 -> Tpc.After_prepare
    | 1 -> Tpc.Mid_decision (Rng.int rng (participants + 1))
    | _ -> Tpc.No_crash
  in
  let participant_crash =
    if Rng.int rng 4 = 0 then
      Some
        ( Rng.int rng participants,
          if Rng.bool rng then `Before_vote else `After_vote )
    else None
  in
  let site_clocks =
    List.filteri (fun i _ -> i < participants) plan.Plan.clock_skew
  in
  let cfg =
    {
      Tpc.default_config with
      participants;
      site_clocks;
      votes;
      coordinator_crash;
      participant_crash;
      msg_faults = plan.Plan.msg;
      seed = plan.Plan.seed;
    }
  in
  Tpc.run cfg

let run_schedule ?(quick = false) (plan : Plan.t) proto =
  let result verdict ?(replayed = 0) ?(substituted = 0) ?(dropped = 0)
      ?(resumed = 0) () =
    {
      plan;
      protocol = proto.name;
      verdict;
      replayed;
      substituted;
      dropped_records = dropped;
      resumed_committed = resumed;
    }
  in
  (* Phase 1: seeded traffic up to the crash.  [No_crash] still halts
     early so the log stays within what replay validation and the
     atomicity cap can use. *)
  let crash =
    match plan.Plan.crash with
    | Plan.No_crash -> Driver.Crash_after_events 40
    | Plan.Before_commit k -> Driver.Crash_before_commit k
    | Plan.After_commit k -> Driver.Crash_after_commit k
    | Plan.After_events n -> Driver.Crash_after_events n
  in
  let sys, w = build proto in
  let config =
    {
      Driver.default_config with
      clients = 4;
      duration = (if quick then 150 else 300);
      crash = Some crash;
      seed = plan.Plan.seed;
    }
  in
  let (_ : Driver.outcome) = Driver.run ~config sys w in
  (* Phase 2: the durable log survives the crash, possibly damaged. *)
  let wal = Cc.System.durable sys in
  let damaged = Plan.corrupt plan wal in
  (* Phase 3: recover a fresh system from what survived. *)
  let order = recovery_order proto.policy in
  let sys2, w2 = build proto in
  match Cc.Recovery.restore_durable order sys2 damaged with
  | Error (Cc.Recovery.Corrupt e) ->
    if plan.Plan.log_fault = Plan.Pristine then
      result
        (Diverged (Fmt.str "pristine log rejected: %a" Cc.Wal.pp_error e))
        ()
    else result Corruption_detected ()
  | Error (Cc.Recovery.Divergent msg) -> result (Diverged msg) ()
  | Error (Cc.Recovery.Checkpoint_invalid msg) ->
    result (Diverged (Fmt.str "checkpoint invalid: %s" msg)) ()
  | Ok report -> (
    let replayed = report.Cc.Recovery.replayed
    and substituted = report.Cc.Recovery.substituted
    and dropped = report.Cc.Recovery.dropped_records in
    (* Cross-check: replay must cover exactly the committed projection
       of the surviving log. *)
    match Cc.Wal.decode damaged with
    | Error e ->
      result
        (Diverged (Fmt.str "decode disagreement: %a" Cc.Wal.pp_error e))
        ~replayed ~substituted ~dropped ()
    | Ok (surviving, _) ->
      let expected =
        List.length (Cc.Recovery.committed_in_order order surviving)
      in
      if replayed <> expected then
        result
          (Diverged
             (Fmt.str "replayed %d of %d committed transactions" replayed
                expected))
          ~replayed ~substituted ~dropped ()
      else begin
        (* Phase 4: resume traffic on the recovered system. *)
        let config2 =
          {
            Driver.default_config with
            clients = 2;
            duration = (if quick then 60 else 120);
            activity_base = 100_000;
            seed = (plan.Plan.seed * 31) + 7;
          }
        in
        let o2 = Driver.run ~config:config2 sys2 w2 in
        let resumed = o2.Driver.committed in
        let h = Cc.System.history sys2 in
        if not (check_atomicity proto h) then
          result
            (Diverged "post-recovery history lost the atomicity property")
            ~replayed ~substituted ~dropped ~resumed ()
        else if not (Tpc.atomic_commitment (tpc_round plan)) then
          result
            (Diverged "2PC lost atomic commitment under message faults")
            ~replayed ~substituted ~dropped ~resumed ()
        else
          result Converged ~replayed ~substituted ~dropped ~resumed ()
      end)

let run_many ?quick ~seeds () =
  let n_protocols = List.length catalog in
  let results =
    List.mapi
      (fun i seed ->
        let proto = List.nth catalog (i mod n_protocols) in
        run_schedule ?quick (Plan.generate ~seed) proto)
      seeds
  in
  let count p = List.length (List.filter p results) in
  {
    schedules = List.length results;
    converged = count (fun r -> r.verdict = Converged);
    corruption_detected = count (fun r -> r.verdict = Corruption_detected);
    diverged = count (fun r -> match r.verdict with Diverged _ -> true | _ -> false);
    results;
  }

let divergences s =
  List.filter
    (fun r -> match r.verdict with Diverged _ -> true | _ -> false)
    s.results

let pp_verdict ppf = function
  | Converged -> Fmt.string ppf "converged"
  | Corruption_detected -> Fmt.string ppf "corruption detected"
  | Diverged msg -> Fmt.pf ppf "DIVERGED: %s" msg

let pp_result ppf r =
  Fmt.pf ppf
    "@[<h>%-16s %a → %a (replayed %d, substituted %d, dropped %d, resumed \
     %d)@]"
    r.protocol Plan.pp r.plan pp_verdict r.verdict r.replayed r.substituted
    r.dropped_records r.resumed_committed

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>schedules: %d@,converged: %d@,corruption detected: %d@,diverged: %d@]"
    s.schedules s.converged s.corruption_detected s.diverged
