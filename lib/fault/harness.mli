(** The crash-recovery schedule runner.

    One schedule = one {!Plan.t} applied to one protocol from the
    {!catalog}:

    + drive seeded client traffic against a fresh system and halt it
      abruptly at the plan's crash point ({!Weihl_sim.Driver});
    + snapshot the durable log ({!Weihl_cc.Wal}) and damage it per the
      plan's log fault;
    + recover a second, fresh system from the damaged log with
      {!Weihl_cc.Recovery.restore_durable} — in commit order for
      dynamic-atomic protocols, timestamp order for static and hybrid;
    + resume seeded traffic on the recovered system and check the
      combined history still satisfies the protocol's atomicity
      property (when small enough for the exponential checker);
    + run a distributed commit round ({!Weihl_dist.Tpc}) under the
      plan's message faults and clock skews and check atomic
      commitment.

    The verdict is {!Converged} when recovery landed on exactly the
    committed projection of the surviving log and every check passed,
    {!Corruption_detected} when the damaged log was loudly rejected
    (legitimate for mid-log damage), and {!Diverged} — the one verdict
    that must never happen — otherwise. *)

type protocol = {
  name : string;
  policy : Weihl_cc.System.ts_policy;
  spec : Weihl_spec.Seq_spec.t;
  workload : unit -> Weihl_sim.Workload.t;
  make_object :
    Weihl_cc.Event_log.t -> Weihl_event.Object_id.t -> Weihl_cc.Atomic_object.t;
}

val catalog : protocol list
(** Every online protocol in the repository, each paired with the
    workload that exercises it, spanning all three timestamp
    policies. *)

val find_protocol : string -> protocol option

type verdict = Converged | Corruption_detected | Diverged of string

type schedule_result = {
  plan : Plan.t;
  protocol : string;
  verdict : verdict;
  replayed : int;  (** committed transactions recovery re-executed *)
  substituted : int;
      (** legally different replay choices (non-deterministic specs) *)
  dropped_records : int;  (** torn-tail records truncated *)
  resumed_committed : int;  (** transactions committed after recovery *)
}

type summary = {
  schedules : int;
  converged : int;
  corruption_detected : int;
  diverged : int;
  results : schedule_result list;  (** in run order *)
}

val run_schedule : ?quick:bool -> Plan.t -> protocol -> schedule_result
(** [quick] shortens both traffic phases (for smoke runs). *)

val run_many : ?quick:bool -> seeds:int list -> unit -> summary
(** One schedule per seed, protocols assigned round-robin from the
    {!catalog}. *)

val divergences : summary -> schedule_result list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_result : Format.formatter -> schedule_result -> unit
val pp_summary : Format.formatter -> summary -> unit
