(** Seeded, deterministic fault plans.

    A plan is a complete description of every fault one crash-recovery
    schedule injects: where the system halts, how the durable log is
    damaged between crash and recovery, how the network misbehaves, and
    how far the sites' clocks disagree.  {!generate} derives all of it
    from one seed, so a schedule that fails in a 200-plan sweep can be
    re-run in isolation from its seed alone. *)

type crash =
  | No_crash
  | Before_commit of int
      (** halt immediately before the [k]-th commit record is written *)
  | After_commit of int
  | After_events of int  (** halt once the log holds [n] events *)

type log_fault =
  | Pristine
  | Torn_tail of int  (** chop bytes off the end — an interrupted write *)
  | Truncate_at of int  (** keep only a prefix of the file *)
  | Bit_flip of int  (** flip one bit somewhere in the file *)

type t = {
  seed : int;
  crash : crash;
  log_fault : log_fault;
  msg : Weihl_dist.Msim.faults;
  clock_skew : int list;
      (** initial logical-clock readings for distributed-commit sites *)
}

val generate : seed:int -> t
(** The plan for a seed.  Crash points, log faults, message-fault
    probabilities and clock skews are all drawn from a generator seeded
    with [seed]; equal seeds give equal plans. *)

val corrupt : t -> string -> string
(** Apply the plan's [log_fault] to a durable log text.  The fault's
    integer parameter is folded into the text's actual length, so every
    generated fault lands inside the file. *)

val corrupt_with : log_fault -> string -> string
(** {!corrupt} for a bare fault — sharded plans damage one shard's WAL
    without carrying a full single-shard plan. *)

val pp : Format.formatter -> t -> unit
