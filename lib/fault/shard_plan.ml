module Rng = Weihl_sim.Rng
module Msim = Weihl_dist.Msim
module Tpc = Weihl_dist.Tpc

type tpc_fault =
  | Clean
  | Coord_crash of Tpc.crash_point
  | Part_crash of int * [ `Before_vote | `After_vote ]
  | Part_refuses of int
  | Partition of int

type ckpt_fault =
  | Ckpt_pristine
  | Ckpt_bit_flip of int
  | Ckpt_torn of int
  | Ckpt_race

type replica_fault =
  | Replica_healthy
  | Replica_lag of int * int
  | Replica_crash of int
  | Replica_partition of int
  | Replica_damage of int * int

type t = {
  seed : int;
  fault_at_commit : int;
  tpc : tpc_fault;
  msg : Msim.faults;
  log_fault : Plan.log_fault;
  ckpt : ckpt_fault;
  ship : Msim.faults;
  replica : replica_fault;
}

let generate ~seed =
  let rng = Rng.create (seed * 37 + 11) in
  let fault_at_commit = Rng.int_range rng 1 4 in
  (* Every 2PC phase gets steady coverage across a sweep: coordinator
     crashes before/after PREPARE and mid-decision, participant crashes
     before/after the vote, a no-vote, and a coordinator<->participant
     partition that heals late enough for presumed abort to fire. *)
  let tpc =
    match Rng.int rng 10 with
    | 0 | 1 -> Clean
    | 2 -> Coord_crash Tpc.Before_prepare
    | 3 -> Coord_crash Tpc.After_prepare
    | 4 -> Coord_crash (Tpc.Mid_decision (Rng.int rng 3))
    | 5 -> Part_crash (Rng.int rng 4, `Before_vote)
    | 6 -> Part_crash (Rng.int rng 4, `After_vote)
    | 7 -> Part_refuses (Rng.int rng 4)
    | 8 -> Partition (Rng.int rng 4)
    | _ -> Part_crash (Rng.int rng 4, `After_vote)
  in
  let msg =
    if Rng.bool rng then Msim.no_faults
    else
      {
        Msim.drop = Rng.float rng 0.15;
        duplicate = Rng.float rng 0.2;
        reorder = Rng.float rng 0.3;
      }
  in
  let log_fault =
    (* Corruption is rare enough that most schedules exercise the
       recovery path proper; when present it targets the crashed
       participant's WAL.  Only detectable damage (a CRC-caught bit
       flip) appears here: a participant syncs every record it
       acknowledges externally — the Prepared record before its
       yes-vote leaves the site, commits before they are answered — so
       a crash cannot tear acknowledged records off the tail, and
       silently losing synced data is a media failure no atomic
       commitment protocol survives. *)
    match Rng.int rng 12 with
    | 0 | 1 -> Plan.Bit_flip (Rng.int rng 10_000)
    | _ -> Plan.Pristine
  in
  (* Drawn last so every pre-checkpointing field keeps its value for a
     given seed.  Damage lands on the victim's newest checkpoint file —
     recovery must fall back to the older retained checkpoint (or a
     full replay) and say so.  [Ckpt_race] is the distinct crash
     window: the file reached disk but its WAL marker never synced. *)
  let ckpt =
    match Rng.int rng 10 with
    | 0 | 1 -> Ckpt_bit_flip (Rng.int rng 100_000)
    | 2 -> Ckpt_torn (1 + Rng.int rng 200)
    | 3 | 4 -> Ckpt_race
    | _ -> Ckpt_pristine
  in
  (* The replication fields are drawn after everything else, so every
     pre-replication field keeps its value for a given seed.  [ship]
     faults the WAL-shipping channel itself (the resend-from-acked
     protocol must absorb drop/duplicate/reorder); [replica] picks one
     replica-side fault for the drill to stage mid-run. *)
  let ship =
    if Rng.bool rng then Msim.no_faults
    else
      {
        Msim.drop = Rng.float rng 0.2;
        duplicate = Rng.float rng 0.25;
        reorder = Rng.float rng 0.3;
      }
  in
  let replica =
    match Rng.int rng 10 with
    | 0 | 1 -> Replica_lag (Rng.int rng 4, 2 + Rng.int rng 6)
    | 2 | 3 -> Replica_crash (Rng.int rng 4)
    | 4 | 5 -> Replica_partition (Rng.int rng 4)
    | 6 -> Replica_damage (Rng.int rng 4, 1 + Rng.int rng 3)
    | _ -> Replica_healthy
  in
  { seed; fault_at_commit; tpc; msg; log_fault; ckpt; ship; replica }

let corrupt t text = Plan.corrupt_with t.log_fault text

let corrupt_ckpt t text =
  match t.ckpt with
  | Ckpt_pristine | Ckpt_race -> text
  | Ckpt_bit_flip k -> Plan.corrupt_with (Plan.Bit_flip k) text
  | Ckpt_torn k -> Plan.corrupt_with (Plan.Torn_tail k) text

let pp_tpc ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Coord_crash Tpc.No_crash -> Fmt.string ppf "coord:none"
  | Coord_crash Tpc.Before_prepare -> Fmt.string ppf "coord:before-prepare"
  | Coord_crash Tpc.After_prepare -> Fmt.string ppf "coord:after-prepare"
  | Coord_crash (Tpc.Mid_decision k) -> Fmt.pf ppf "coord:mid-decision(%d)" k
  | Part_crash (i, `Before_vote) -> Fmt.pf ppf "part%d:crash-before-vote" i
  | Part_crash (i, `After_vote) -> Fmt.pf ppf "part%d:crash-after-vote" i
  | Part_refuses i -> Fmt.pf ppf "part%d:votes-no" i
  | Partition i -> Fmt.pf ppf "part%d:partitioned" i

let pp_ckpt ppf = function
  | Ckpt_pristine -> Fmt.string ppf "ckpt:pristine"
  | Ckpt_bit_flip k -> Fmt.pf ppf "ckpt:bit-flip(%d)" k
  | Ckpt_torn k -> Fmt.pf ppf "ckpt:torn(%d)" k
  | Ckpt_race -> Fmt.string ppf "ckpt:marker-race"

let pp_replica ppf = function
  | Replica_healthy -> Fmt.string ppf "replica:healthy"
  | Replica_lag (i, n) -> Fmt.pf ppf "replica%d:lag(%d)" i n
  | Replica_crash i -> Fmt.pf ppf "replica%d:crash" i
  | Replica_partition i -> Fmt.pf ppf "replica%d:partitioned" i
  | Replica_damage (i, n) -> Fmt.pf ppf "replica%d:damage(%d)" i n

let pp ppf t =
  Fmt.pf ppf
    "@[<h>seed %d: at-commit %d, 2pc %a, msg{d=%.2f,u=%.2f,r=%.2f}, %a@]"
    t.seed t.fault_at_commit pp_tpc t.tpc t.msg.Msim.drop t.msg.Msim.duplicate
    t.msg.Msim.reorder pp_replica t.replica
