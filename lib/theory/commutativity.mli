(** Deriving conflict relations from specifications by bounded
    exploration.

    The baseline locking protocols consume hand-written commutativity
    tables ([Adt_sig.S.commutes]).  Hand-written semantic tables are
    exactly the kind of artifact that silently rots; this module checks
    them against the specification itself.  The relation derived is
    {e result-aware forward commutativity} — the one that justifies
    intentions-list recovery: two operations commute iff, from every
    reachable frontier, whenever a result for each is individually
    permissible, both interleavings of the (operation, result) pairs
    are permissible and land on observationally equal frontiers.  This
    handles non-deterministic specifications: concurrent transactions
    may each be granted an individually-permissible answer against the
    same committed state, so a result pair that composes in neither
    order (semiqueue [deq]/[deq] both answering the same item) is a
    conflict, not a vacuous case.

    The derivation is sound and complete only for the explored bound
    (state depth, probe depth, state cap), which suffices to catch
    table errors on the small integer domains the tests and the lint
    pass use.  {!commute_on_reachable} reports a bound overrun as
    {!Unknown} rather than guessing, and {!stats} now reports whether
    the frontier count {e stabilized} — reached a closed set — within
    the explored depth, so a bound that silently under-explores is
    visible to the lint layer instead of being truncated quietly. *)

open Weihl_event

type stats = {
  enumerated : int;  (** frontiers generated, duplicates included *)
  distinct : int;  (** frontiers kept after deduplication *)
  truncated : bool;  (** the [max_states] cap stopped the exploration *)
  depth_used : int;  (** generator levels actually expanded *)
  stabilized : bool;
      (** the reachable set closed within [depth_used]: some level added
          no new distinct frontier, so deeper search cannot either *)
}
(** Exploration size, surfaced so depth/bound choices are visible in
    lint reports. *)

val pp_stats : Format.formatter -> stats -> unit

type verdict =
  | Commute  (** proved compatible everywhere on the explored space *)
  | Conflict of string  (** a counterexample, described *)
  | Unknown of string  (** the bound was too small to decide *)

val equal_verdict : verdict -> verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val observationally_equal :
  probes:Operation.t list ->
  depth:int ->
  Weihl_spec.Seq_spec.frontier ->
  Weihl_spec.Seq_spec.frontier ->
  bool
(** Bounded bisimulation: both frontiers give the same result sets for
    every probe, and the successors along each common (probe, result)
    edge are themselves observationally equal to [depth - 1]. *)

val reachable_frontiers :
  ?probe_depth:int ->
  ?max_states:int ->
  ?grow_until:int ->
  Weihl_spec.Seq_spec.t ->
  gen_ops:Operation.t list ->
  depth:int ->
  Weihl_spec.Seq_spec.frontier list * stats
(** All frontiers reachable by applying up to [depth] generator
    operations — following {e every} outcome of each, so
    non-deterministic specifications are explored in full —
    deduplicated by observational equality at [probe_depth] (default
    [depth]) with exact state-set equality as a fast path.  The
    exploration stops enumerating once [max_states] (default 4096)
    distinct frontiers are kept and reports [truncated] in the stats.

    [grow_until] turns the fixed depth into a budgeted search: levels
    keep expanding past [depth], up to [grow_until], until one level
    adds no new distinct frontier (the set stabilized).  Either way a
    level that adds nothing stops the search early — closure is closure
    — and [stats.depth_used]/[stats.stabilized] report what happened.

    Results are memoized on the spec's physical identity plus all
    bounds, so repeated probe/lint passes over the same domain replay
    each exploration once; the cache is safe under parallel lint
    domains.  Frontiers are returned in discovery order, initial
    frontier first. *)

val commute_on_reachable :
  Weihl_spec.Seq_spec.t ->
  gen_ops:Operation.t list ->
  ?probe_depth:int ->
  ?state_depth:int ->
  ?max_states:int ->
  ?grow_until:int ->
  Operation.t ->
  Operation.t ->
  verdict
(** Result-aware forward commutativity of two operations over the
    reachable space: from every frontier reachable within
    [state_depth] (default 3) generator applications — budgeted up to
    [grow_until] until stabilization, when given — for every result
    pair individually permissible for the two operations, both
    execution orders must be permissible and yield frontiers that are
    observationally equal at [probe_depth] (default 2, probing with
    [gen_ops]).  [Conflict] carries the first counterexample found;
    [Unknown] is returned only when the [max_states] cap truncated the
    exploration with no counterexample found. *)

val commute_results :
  gen_ops:Operation.t list ->
  probe_depth:int ->
  frontiers:Weihl_spec.Seq_spec.frontier list ->
  Operation.t * Value.t ->
  Operation.t * Value.t ->
  verdict
(** Fixed-result forward commutativity, the cell relation of a
    synthesized lock table: [(p, rp)] and [(q, rq)] commute iff from
    every frontier in [frontiers] where {e both} specific results are
    individually permissible, the two interleavings compose and land
    observationally equal (at [probe_depth], probing with [gen_ops]).
    A pair with no co-permitting frontier is vacuously [Commute]: the
    runtime grants a result only after validating it against the
    committed frontier plus the transaction's own intentions, so such
    pairs never meet.  Symmetric in its two arguments by
    construction. *)
