open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type stats = { enumerated : int; distinct : int; truncated : bool }

let pp_stats ppf s =
  Fmt.pf ppf "%d frontiers (%d enumerated%s)" s.distinct s.enumerated
    (if s.truncated then ", truncated" else "")

type verdict = Commute | Conflict of string | Unknown of string

let equal_verdict a b =
  match (a, b) with
  | Commute, Commute -> true
  | Conflict x, Conflict y | Unknown x, Unknown y -> String.equal x y
  | _ -> false

let pp_verdict ppf = function
  | Commute -> Fmt.string ppf "commute"
  | Conflict why -> Fmt.pf ppf "conflict (%s)" why
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

let rec observationally_equal ~probes ~depth f g =
  depth = 0
  || List.for_all
       (fun probe ->
         let outcomes_f = Seq_spec.outcomes f probe in
         let outcomes_g = Seq_spec.outcomes g probe in
         let results l = List.sort Value.compare (List.map fst l) in
         List.equal Value.equal (results outcomes_f) (results outcomes_g)
         && List.for_all
              (fun (r, f') ->
                match
                  List.find_opt (fun (r', _) -> Value.equal r r') outcomes_g
                with
                | Some (_, g') ->
                  observationally_equal ~probes ~depth:(depth - 1) f' g'
                | None -> false)
              outcomes_f)
       probes

let reachable_frontiers ?probe_depth ?(max_states = 4096) spec ~gen_ops
    ~depth =
  let probe_depth = Option.value probe_depth ~default:depth in
  let enumerated = ref 0 in
  let truncated = ref false in
  (* Distinct frontiers in reverse discovery order.  Every frontier
     descends from the single [start] below, so [equal_frontier] is a
     sound (exact state-set) fast path before the bisimulation. *)
  let seen : Seq_spec.frontier list ref = ref [] in
  let known f =
    let size = Seq_spec.frontier_size f in
    List.exists
      (fun g ->
        Seq_spec.frontier_size g = size
        && (Seq_spec.equal_frontier g f
           || observationally_equal ~probes:gen_ops ~depth:probe_depth g f))
      !seen
  in
  let queue = Queue.create () in
  let add f d =
    incr enumerated;
    if List.length !seen >= max_states then truncated := true
    else if not (known f) then begin
      seen := f :: !seen;
      if d > 0 then Queue.add (f, d) queue
    end
  in
  add (Seq_spec.start spec) depth;
  while not (Queue.is_empty queue) do
    let f, d = Queue.pop queue in
    List.iter
      (fun op ->
        List.iter (fun (_, f') -> add f' (d - 1)) (Seq_spec.outcomes f op))
      gen_ops
  done;
  let distinct = List.rev !seen in
  ( distinct,
    {
      enumerated = !enumerated;
      distinct = List.length distinct;
      truncated = !truncated;
    } )

let commute_on_reachable spec ~gen_ops ?(probe_depth = 2) ?(state_depth = 3)
    ?max_states p q =
  (* Deduplicating exploration probes deeper than the final-state
     comparison below: a conflict shows up after two [advance]s plus
     [probe_depth] levels of probing, so merging frontiers that are
     indistinguishable at [probe_depth + 2] cannot hide one. *)
  let frontiers, stats =
    reachable_frontiers spec ~gen_ops ~depth:state_depth
      ~probe_depth:(probe_depth + 2) ?max_states
  in
  let describe frontier rp rq what =
    Fmt.str "from %a with %a->%a and %a->%a: %s" Seq_spec.pp_frontier
      frontier Operation.pp p Value.pp rp Operation.pp q Value.pp rq what
  in
  (* Result-aware forward commutativity: whenever results [rp] for [p]
     and [rq] for [q] are each individually permissible from a reachable
     frontier, both interleavings [p/rp; q/rq] and [q/rq; p/rp] must be
     permissible and land on observationally equal frontiers.  Two
     concurrent transactions may each be granted its result against the
     same committed state, and either commit order may then be forced by
     other objects — so an individually-permissible result pair whose
     sequential composition is impossible is a conflict, not a vacuous
     case.  (Semiqueue deq/deq: both may be granted item 1 from {1,2},
     yet deq->1; deq->1 replays against no state.) *)
  let check_frontier frontier =
    let ps = Seq_spec.outcomes frontier p in
    let qs = Seq_spec.outcomes frontier q in
    List.fold_left
      (fun acc (rp, f_p) ->
        match acc with
        | Some _ -> acc
        | None ->
          List.fold_left
            (fun acc (rq, f_q) ->
              match acc with
              | Some _ -> acc
              | None -> (
                match
                  (Seq_spec.advance f_p q rq, Seq_spec.advance f_q p rp)
                with
                | None, None ->
                  Some
                    (describe frontier rp rq
                       "results are concurrently grantable but compose in \
                        neither order")
                | Some _, None ->
                  Some
                    (describe frontier rp rq
                       (Fmt.str "order %a-first is impossible" Operation.pp q))
                | None, Some _ ->
                  Some
                    (describe frontier rp rq
                       (Fmt.str "order %a-first is impossible" Operation.pp p))
                | Some f_pq, Some f_qp ->
                  if
                    observationally_equal ~probes:gen_ops ~depth:probe_depth
                      f_pq f_qp
                  then None
                  else
                    Some
                      (describe frontier rp rq
                         "final states are distinguishable")))
            acc qs)
      None ps
  in
  let counterexample =
    List.fold_left
      (fun acc frontier ->
        match acc with Some _ -> acc | None -> check_frontier frontier)
      None frontiers
  in
  match counterexample with
  | Some why -> Conflict why
  | None ->
    if stats.truncated then
      Unknown
        (Fmt.str "state bound exceeded (%d frontiers enumerated)"
           stats.enumerated)
    else Commute
