open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type stats = {
  enumerated : int;
  distinct : int;
  truncated : bool;
  depth_used : int;
  stabilized : bool;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d frontiers (%d enumerated%s, depth %d%s)" s.distinct
    s.enumerated
    (if s.truncated then ", truncated" else "")
    s.depth_used
    (if s.stabilized then ", stabilized" else ", NOT stabilized")

type verdict = Commute | Conflict of string | Unknown of string

let equal_verdict a b =
  match (a, b) with
  | Commute, Commute -> true
  | Conflict x, Conflict y | Unknown x, Unknown y -> String.equal x y
  | _ -> false

let pp_verdict ppf = function
  | Commute -> Fmt.string ppf "commute"
  | Conflict why -> Fmt.pf ppf "conflict (%s)" why
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

let rec observationally_equal ~probes ~depth f g =
  depth = 0
  || List.for_all
       (fun probe ->
         let outcomes_f = Seq_spec.outcomes f probe in
         let outcomes_g = Seq_spec.outcomes g probe in
         let results l = List.sort Value.compare (List.map fst l) in
         List.equal Value.equal (results outcomes_f) (results outcomes_g)
         && List.for_all
              (fun (r, f') ->
                match
                  List.find_opt (fun (r', _) -> Value.equal r r') outcomes_g
                with
                | Some (_, g') ->
                  observationally_equal ~probes ~depth:(depth - 1) f' g'
                | None -> false)
              outcomes_f)
       probes

(* Frontier exploration is the hot inner loop of both the table
   certifier (one call per alphabet pair) and protocol synthesis (one
   call per result pair), always over the same handful of specs.  The
   cache keys on the spec's physical identity — domain specs are
   allocated once per [Domain.t] — so repeated probe/lint runs replay
   each exploration exactly once.  Guarded for multi-domain lint
   runs. *)
type memo_entry = {
  key_spec : Seq_spec.t;
  key_ops : Operation.t list;
  key_depth : int;
  key_probe : int;
  key_max : int;
  key_grow : int option;
  value : Seq_spec.frontier list * stats;
}

let memo : memo_entry list ref = ref []
let memo_lock = Mutex.create ()

let memo_find spec ops depth probe max grow =
  Mutex.protect memo_lock (fun () ->
      List.find_opt
        (fun e ->
          e.key_spec == spec
          && e.key_depth = depth && e.key_probe = probe && e.key_max = max
          && e.key_grow = grow
          && List.length e.key_ops = List.length ops
          && List.for_all2 Operation.equal e.key_ops ops)
        !memo)

let memo_add spec ops depth probe max grow value =
  Mutex.protect memo_lock (fun () ->
      memo :=
        {
          key_spec = spec;
          key_ops = ops;
          key_depth = depth;
          key_probe = probe;
          key_max = max;
          key_grow = grow;
          value;
        }
        :: !memo)

let explore ~probe_depth ~max_states ~grow_until spec ~gen_ops ~depth =
  let enumerated = ref 0 in
  let truncated = ref false in
  (* Distinct frontiers in reverse discovery order.  Every frontier
     descends from the single [start] below, so [equal_frontier] is a
     sound (exact state-set) fast path before the bisimulation. *)
  let seen : Seq_spec.frontier list ref = ref [] in
  let kept = ref 0 in
  let known f =
    let size = Seq_spec.frontier_size f in
    List.exists
      (fun g ->
        Seq_spec.frontier_size g = size
        && (Seq_spec.equal_frontier g f
           || observationally_equal ~probes:gen_ops ~depth:probe_depth g f))
      !seen
  in
  let add f =
    incr enumerated;
    if !kept >= max_states then begin
      truncated := true;
      None
    end
    else if known f then None
    else begin
      seen := f :: !seen;
      incr kept;
      Some f
    end
  in
  let start = Seq_spec.start spec in
  ignore (add start);
  (* Level-by-level: expanding only the frontiers first seen at the
     previous level is exact BFS, and a level that contributes nothing
     new proves the reachable set is closed — deeper search cannot add
     states, so the exploration has stabilized and may stop early even
     under a growth budget. *)
  let limit = match grow_until with Some b -> max depth b | None -> depth in
  let level = ref [ start ] in
  let depth_used = ref 0 in
  let stabilized = ref false in
  let d = ref 0 in
  while (not !stabilized) && (not !truncated) && !d < limit do
    incr d;
    let next =
      List.concat_map
        (fun f ->
          List.concat_map
            (fun op ->
              List.filter_map (fun (_, f') -> add f') (Seq_spec.outcomes f op))
            gen_ops)
        !level
    in
    depth_used := !d;
    if next = [] && not !truncated then stabilized := true else level := next
  done;
  let distinct = List.rev !seen in
  ( distinct,
    {
      enumerated = !enumerated;
      distinct = List.length distinct;
      truncated = !truncated;
      depth_used = !depth_used;
      stabilized = !stabilized;
    } )

let reachable_frontiers ?probe_depth ?(max_states = 4096) ?grow_until spec
    ~gen_ops ~depth =
  let probe_depth = Option.value probe_depth ~default:depth in
  match memo_find spec gen_ops depth probe_depth max_states grow_until with
  | Some e -> e.value
  | None ->
    let value =
      explore ~probe_depth ~max_states ~grow_until spec ~gen_ops ~depth
    in
    memo_add spec gen_ops depth probe_depth max_states grow_until value;
    value

let commute_on_reachable spec ~gen_ops ?(probe_depth = 2) ?(state_depth = 3)
    ?max_states ?grow_until p q =
  (* Deduplicating exploration probes deeper than the final-state
     comparison below: a conflict shows up after two [advance]s plus
     [probe_depth] levels of probing, so merging frontiers that are
     indistinguishable at [probe_depth + 2] cannot hide one. *)
  let frontiers, stats =
    reachable_frontiers spec ~gen_ops ~depth:state_depth
      ~probe_depth:(probe_depth + 2) ?max_states ?grow_until
  in
  let describe frontier rp rq what =
    Fmt.str "from %a with %a->%a and %a->%a: %s" Seq_spec.pp_frontier
      frontier Operation.pp p Value.pp rp Operation.pp q Value.pp rq what
  in
  (* Result-aware forward commutativity: whenever results [rp] for [p]
     and [rq] for [q] are each individually permissible from a reachable
     frontier, both interleavings [p/rp; q/rq] and [q/rq; p/rp] must be
     permissible and land on observationally equal frontiers.  Two
     concurrent transactions may each be granted its result against the
     same committed state, and either commit order may then be forced by
     other objects — so an individually-permissible result pair whose
     sequential composition is impossible is a conflict, not a vacuous
     case.  (Semiqueue deq/deq: both may be granted item 1 from {1,2},
     yet deq->1; deq->1 replays against no state.) *)
  let check_frontier frontier =
    let ps = Seq_spec.outcomes frontier p in
    let qs = Seq_spec.outcomes frontier q in
    List.fold_left
      (fun acc (rp, f_p) ->
        match acc with
        | Some _ -> acc
        | None ->
          List.fold_left
            (fun acc (rq, f_q) ->
              match acc with
              | Some _ -> acc
              | None -> (
                match
                  (Seq_spec.advance f_p q rq, Seq_spec.advance f_q p rp)
                with
                | None, None ->
                  Some
                    (describe frontier rp rq
                       "results are concurrently grantable but compose in \
                        neither order")
                | Some _, None ->
                  Some
                    (describe frontier rp rq
                       (Fmt.str "order %a-first is impossible" Operation.pp q))
                | None, Some _ ->
                  Some
                    (describe frontier rp rq
                       (Fmt.str "order %a-first is impossible" Operation.pp p))
                | Some f_pq, Some f_qp ->
                  if
                    observationally_equal ~probes:gen_ops ~depth:probe_depth
                      f_pq f_qp
                  then None
                  else
                    Some
                      (describe frontier rp rq
                         "final states are distinguishable")))
            acc qs)
      None ps
  in
  let counterexample =
    List.fold_left
      (fun acc frontier ->
        match acc with Some _ -> acc | None -> check_frontier frontier)
      None frontiers
  in
  match counterexample with
  | Some why -> Conflict why
  | None ->
    if stats.truncated then
      Unknown
        (Fmt.str "state bound exceeded (%d frontiers enumerated)"
           stats.enumerated)
    else Commute

let commute_results ~gen_ops ~probe_depth ~frontiers (p, rp) (q, rq) =
  (* Fixed-result forward commutativity for synthesized tables: quantify
     over every explored frontier where {e these specific} results are
     each individually permissible.  If no frontier co-permits them the
     pair is vacuously compatible — the runtime validates each granted
     result against its transaction's own intentions view, so two
     results that can never be granted from a common state never meet.
     Non-composing or distinguishable interleavings are conflicts
     exactly as in {!commute_on_reachable}. *)
  let witness frontier =
    let find outs r =
      List.find_opt (fun (r', _) -> Value.equal r r') outs
    in
    match
      ( find (Seq_spec.outcomes frontier p) rp,
        find (Seq_spec.outcomes frontier q) rq )
    with
    | Some (_, f_p), Some (_, f_q) -> (
      match (Seq_spec.advance f_p q rq, Seq_spec.advance f_q p rp) with
      | None, None -> Some "composes in neither order"
      | Some _, None ->
        Some (Fmt.str "order %a-first is impossible" Operation.pp q)
      | None, Some _ ->
        Some (Fmt.str "order %a-first is impossible" Operation.pp p)
      | Some f_pq, Some f_qp ->
        if observationally_equal ~probes:gen_ops ~depth:probe_depth f_pq f_qp
        then None
        else Some "final states are distinguishable")
    | _ -> None
  in
  let counterexample =
    List.fold_left
      (fun acc frontier ->
        match acc with
        | Some _ -> acc
        | None -> (
          match witness frontier with
          | Some what ->
            Some
              (Fmt.str "from %a with %a->%a and %a->%a: %s"
                 Seq_spec.pp_frontier frontier Operation.pp p Value.pp rp
                 Operation.pp q Value.pp rq what)
          | None -> None))
      None frontiers
  in
  match counterexample with Some why -> Conflict why | None -> Commute
