(** Protocol synthesis: compiling the certifier's derived relation into
    a data-dependent lock table.

    Weihl's thesis is that concurrency control should key on the
    {e data-dependent} semantics of each type — which results an
    operation returned, not just which operation ran.  The certifier
    ({!Commutativity}) already derives result-aware forward
    commutativity by bounded exploration; this module quantifies that
    relation once per (operation, result class) pair and freezes it
    into a symmetric conflict matrix.  The matrix is the whole
    protocol: a runtime scheduler grants an invocation a specific
    result exactly when that (op, result) cell commutes with every
    (op, result) pair held by other active transactions
    ([Weihl_cc.Derived_locking]).

    Soundness inherits from the bounded derivation: every cell verdict
    is exact on the explored frontier space (state depth grown under a
    budget until the reachable set stabilizes where possible), and a
    truncated exploration downgrades would-be [Commute] cells to
    [Unknown], which the lookup treats as conflict.  Result pairs that
    are never co-permissible from any explored frontier are vacuously
    compatible — the runtime validates every granted result against the
    committed frontier plus the transaction's own intentions, so such
    pairs never coexist from a common state. *)

open Weihl_event

type key = Operation.t * Value.t
(** One lock mode: an operation together with its result class. *)

type t
(** A compiled table for one ADT. *)

val synthesize :
  ?probe_depth:int ->
  ?max_states:int ->
  Weihl_spec.Seq_spec.t ->
  alphabet:Operation.t list ->
  depth:int ->
  budget:int ->
  t
(** Explore the spec under [alphabet] to [depth] generator levels —
    budgeted up to [budget] until the frontier count stabilizes — then
    decide {!Commutativity.commute_results} for every pair of
    (operation, observed result) keys.  Deterministic: key order is
    alphabet order with results sorted by [Value.compare], and the
    exploration itself is depth-first-free leveled search. *)

val adt : t -> string
val alphabet : t -> Operation.t list

val stats : t -> Commutativity.stats
(** The exploration backing every cell, including [depth_used] and
    [stabilized] for the lint budget report. *)

val classes : t -> (Operation.t * Value.t list) list
(** The observed result classes per alphabet operation. *)

val verdict : t -> key -> key -> Commutativity.verdict option
(** The cell for two keys; [None] when either key is off the table. *)

val op_verdict : t -> Operation.t -> Operation.t -> Commutativity.verdict option
(** Operation-level projection: [Conflict] iff some result pair
    conflicts, [Unknown] iff some is undecided and none refuted, else
    [Commute].  [None] when either operation is outside the alphabet.
    Used as the first fallback for results outside every class. *)

val conflict : t -> key -> key -> bool option
(** The runtime question: must these two granted (op, result) pairs be
    serialized?  [Some false] when the cell (or, for an off-class
    result, the op-level projection) commutes; [Some true] on conflict
    or unknown; [None] when an operation is outside the alphabet
    entirely and the caller must fall back to a conservative
    relation. *)

val cells : t -> (key * key * Commutativity.verdict) list
(** Upper-triangle listing in deterministic key order, for dumps and
    the JSON report. *)

val counts : t -> int * int * int
(** [(commute, conflict, unknown)] cell counts over {!cells}. *)

val refinements : t -> (Operation.t * Operation.t) list
(** Operation pairs that op-level locking must serialize but where some
    result pair commutes — the concurrency the data-dependent table
    recovers. *)

val equal : t -> t -> bool
(** Structural equality of adt, alphabet, key order, and every cell
    verdict: the determinism property the qcheck suite asserts. *)

val force_commute : t -> key -> key -> t
(** A copy with one cell (symmetrically) forced to [Commute] — the
    seeded corruption the mutation self-test must catch.  Raises
    [Invalid_argument] if either key is off the table. *)

val pp : Format.formatter -> t -> unit
val pp_key : Format.formatter -> key -> unit

val pp_matrix : Format.formatter -> t -> unit
(** The full upper-triangle matrix, one cell per line. *)
