open Weihl_event
module Seq_spec = Weihl_spec.Seq_spec

type key = Operation.t * Value.t

type t = {
  adt : string;
  alphabet : Operation.t list;
  keys : key array;
  matrix : Commutativity.verdict array array;
  stats : Commutativity.stats;
}

let adt t = t.adt
let alphabet t = t.alphabet
let stats t = t.stats

let pp_key ppf (op, r) = Fmt.pf ppf "%a->%a" Operation.pp op Value.pp r

let classes t =
  List.map
    (fun op ->
      ( op,
        Array.to_list t.keys
        |> List.filter_map (fun (op', r) ->
               if Operation.equal op op' then Some r else None) ))
    t.alphabet

let index_of t (op, r) =
  let n = Array.length t.keys in
  let rec go i =
    if i >= n then None
    else
      let op', r' = t.keys.(i) in
      if Operation.equal op op' && Value.equal r r' then Some i
      else go (i + 1)
  in
  go 0

let synthesize ?(probe_depth = 2) ?max_states spec ~alphabet ~depth ~budget =
  (* The same dedup-depth rule as [commute_on_reachable]: a cell
     counterexample appears after two advances plus [probe_depth] levels
     of probing, so merging frontiers indistinguishable at
     [probe_depth + 2] cannot hide one. *)
  let frontiers, stats =
    Commutativity.reachable_frontiers spec ~gen_ops:alphabet ~depth
      ~grow_until:budget
      ~probe_depth:(probe_depth + 2) ?max_states
  in
  (* Result classes: every result the specification can return for an
     alphabet operation anywhere on the explored space, in a
     deterministic order (alphabet order, then [Value.compare]) so two
     syntheses of the same domain produce identical tables. *)
  let keys =
    List.concat_map
      (fun op ->
        let results =
          List.concat_map
            (fun f -> List.map fst (Seq_spec.outcomes f op))
            frontiers
          |> List.sort_uniq Value.compare
        in
        List.map (fun r -> (op, r)) results)
      alphabet
    |> Array.of_list
  in
  let n = Array.length keys in
  let matrix = Array.make_matrix n n Commutativity.Commute in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v =
        match
          Commutativity.commute_results ~gen_ops:alphabet ~probe_depth
            ~frontiers keys.(i) keys.(j)
        with
        | Commutativity.Commute when stats.Commutativity.truncated ->
          (* Mirror [commute_on_reachable]: a truncated exploration
             cannot promise absence of counterexamples. *)
          Commutativity.Unknown
            (Fmt.str "state bound exceeded (%d frontiers enumerated)"
               stats.Commutativity.enumerated)
        | v -> v
      in
      matrix.(i).(j) <- v;
      matrix.(j).(i) <- v
    done
  done;
  { adt = Seq_spec.type_name spec; alphabet; keys; matrix; stats }

let verdict t kp kq =
  match (index_of t kp, index_of t kq) with
  | Some i, Some j -> Some t.matrix.(i).(j)
  | _ -> None

let op_verdict t p q =
  (* The operation-level projection of the table: conflict iff any
     result pair conflicts, unknown iff undecided but never refuted.
     Equivalent to [commute_on_reachable] over the same frontier set. *)
  let in_alphabet op = List.exists (Operation.equal op) t.alphabet in
  if not (in_alphabet p && in_alphabet q) then None
  else begin
    let n = Array.length t.keys in
    let acc = ref Commutativity.Commute in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let opi, _ = t.keys.(i) and opj, _ = t.keys.(j) in
        if Operation.equal opi p && Operation.equal opj q then
          match (t.matrix.(i).(j), !acc) with
          | Commutativity.Conflict _, _ -> acc := t.matrix.(i).(j)
          | Commutativity.Unknown _, Commutativity.Commute ->
            acc := t.matrix.(i).(j)
          | _ -> ()
      done
    done;
    Some !acc
  end

let conflict t kp kq =
  match verdict t kp kq with
  | Some Commutativity.Commute -> Some false
  | Some (Commutativity.Conflict _) | Some (Commutativity.Unknown _) ->
    Some true
  | None -> (
    (* An off-class result (or an op outside the alphabet): fall back to
       the operation-level projection, and past that let the caller pick
       a conservative relation. *)
    match op_verdict t (fst kp) (fst kq) with
    | Some Commutativity.Commute -> Some false
    | Some _ -> Some true
    | None -> None)

let cells t =
  let out = ref [] in
  let n = Array.length t.keys in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      out := (t.keys.(i), t.keys.(j), t.matrix.(i).(j)) :: !out
    done
  done;
  !out

let counts t =
  List.fold_left
    (fun (c, x, u) (_, _, v) ->
      match v with
      | Commutativity.Commute -> (c + 1, x, u)
      | Commutativity.Conflict _ -> (c, x + 1, u)
      | Commutativity.Unknown _ -> (c, x, u + 1))
    (0, 0, 0) (cells t)

let refinements t =
  (* Operation pairs where the op-level relation must conflict but some
     result pair commutes: exactly the data-dependent concurrency the
     synthesized table recovers over an operation-keyed lock table. *)
  let pairs = ref [] in
  let rec ops_from = function
    | [] -> ()
    | p :: rest ->
      List.iter
        (fun q ->
          match op_verdict t p q with
          | Some (Commutativity.Conflict _) ->
            let some_commute =
              List.exists
                (fun ((opi, _), (opj, _), v) ->
                  ((Operation.equal opi p && Operation.equal opj q)
                  || (Operation.equal opi q && Operation.equal opj p))
                  && Commutativity.equal_verdict v Commutativity.Commute)
                (cells t)
            in
            if some_commute then pairs := (p, q) :: !pairs
          | _ -> ())
        (p :: rest);
      ops_from rest
  in
  ops_from t.alphabet;
  List.rev !pairs

let equal a b =
  String.equal a.adt b.adt
  && List.equal Operation.equal a.alphabet b.alphabet
  && Array.length a.keys = Array.length b.keys
  && Array.for_all2
       (fun (op, r) (op', r') -> Operation.equal op op' && Value.equal r r')
       a.keys b.keys
  && Array.for_all2
       (Array.for_all2 Commutativity.equal_verdict)
       a.matrix b.matrix

let force_commute t kp kq =
  match (index_of t kp, index_of t kq) with
  | Some i, Some j ->
    let matrix = Array.map Array.copy t.matrix in
    matrix.(i).(j) <- Commutativity.Commute;
    matrix.(j).(i) <- Commutativity.Commute;
    { t with matrix }
  | _ ->
    invalid_arg
      (Fmt.str "Synthesize.force_commute: %a / %a not in the %s table" pp_key
         kp pp_key kq t.adt)

let pp ppf t =
  let commute, conflicts, unknown = counts t in
  Fmt.pf ppf "@[<v>%s: %d result classes over %d operations (%a)@,"
    t.adt (Array.length t.keys)
    (List.length t.alphabet)
    Commutativity.pp_stats t.stats;
  Fmt.pf ppf "cells: %d commute, %d conflict, %d unknown@," commute conflicts
    unknown;
  (match refinements t with
  | [] -> Fmt.pf ppf "no data-dependent refinements over op-level locking"
  | rs ->
    Fmt.pf ppf "data-dependent refinements: %a"
      (Fmt.list ~sep:Fmt.comma (fun ppf (p, q) ->
           Fmt.pf ppf "%a/%a" Operation.pp p Operation.pp q))
      rs);
  Fmt.pf ppf "@]"

let pp_matrix ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (kp, kq, v) ->
      Fmt.pf ppf "%a | %a : %a@," pp_key kp pp_key kq Commutativity.pp_verdict
        v)
    (cells t);
  Fmt.pf ppf "@]"
