(** Wall-clock saturation driver for the multicore runtime.

    Where {!Sharded_driver} schedules clients on a virtual clock, this
    driver runs {e rounds} of batched work and measures real time: an
    in-flight window of transactions drawn from a {!Weihl_sim.Workload}
    advances one operation per round via {!Group.invoke_batch} (one
    mailbox job per shard, executed in parallel on the shard domains),
    cross-shard deadlocks are broken between rounds, and every
    transaction whose program completed commits in the round's single
    {!Group.commit_batch} — so one WAL sync per shard covers the whole
    commit wave.

    The committed history is a function of the config seed alone:
    batch order is start order, and per-shard execution order equals
    batch order at any domain count, so running the same config with
    [~domains:1] and [~domains:8] yields identical outcomes — only
    [elapsed] (and hence [throughput]) changes.  That determinism is
    what lets the scaling curve claim "same work, less wall clock". *)

type config = {
  jobs : int;  (** transactions to run to completion *)
  inflight : int;  (** open-transaction window (saturation depth) *)
  commit_every : int;
      (** rounds between commit waves: [1] commits finished programs
          immediately; [> 1] lets them pile up so each wave spans more
          shards (wider syncs, more overlap), at the cost of holding
          their locks a little longer *)
  max_restarts : int;  (** per-job abort/retry budget *)
  max_waits : int;
      (** blocked rounds before a transaction aborts as starved *)
  seed : int;
}

val default_config : config
(** 400 jobs, window 32, commit every round, 8 restarts, 64 waits,
    seed 42. *)

type outcome = {
  committed : int;
  committed_multi : int;  (** committed with fanout >= 2 (2PC path) *)
  aborted_deadlock : int;
  aborted_starved : int;
  aborted_refused : int;
  aborted_lost : int;
      (** lost to an injected crash-before-sync — appended but never
          acknowledged *)
  gave_up : int;  (** jobs that exhausted their restart budget *)
  waits : int;
  restarts : int;
  rounds : int;
  elapsed : float;  (** wall-clock seconds, as measured by [now] *)
  throughput : float;  (** committed / elapsed (0 when untimed) *)
}

val run :
  ?config:config ->
  ?now:(unit -> float) ->
  Group.t ->
  Weihl_sim.Workload.t ->
  outcome
(** Drive [workload] against the group until [config.jobs] transactions
    have finished (committed or given up).  The caller owns the group:
    create it with the desired [domains] / [group_commit] / [sync_cost]
    and {!Group.shutdown} it afterwards; the workload's objects must
    already be registered ({!Group.add_object}).

    [now] supplies wall-clock seconds — pass [Unix.gettimeofday] for
    real measurements (this library does not link unix; the default
    clock always reads 0, leaving [elapsed] and [throughput] at 0). *)

val pp : Format.formatter -> outcome -> unit
