(** The sharded crash-recovery schedule runner.

    One schedule = one {!Weihl_fault.Shard_plan.t} applied to one
    banking protocol over a fresh shard {!Group}:

    + drive seeded multi-client traffic through the group
      ({!Sharded_driver}), injecting the plan's fault — coordinator or
      participant crash at any 2PC phase, a no-vote, a coordinator
      partition, message drop/duplication/reordering — into the
      [fault_at_commit]-th multi-shard commit round;
    + recover every shard the fault took down from its WAL (the first
      victim's WAL damaged per the plan), reinstating prepared
      in-doubt legs;
    + resolve the blocking window from the coordinator's decision log
      (presumed abort where it has no record) and check: no
      transaction committed at one shard and aborted at another, all
      shards agree on every committed transaction's timestamp, zero
      transactions stuck in-doubt, and the merged committed projection
      replays cleanly against one combined system;
    + resume clean traffic and re-validate everything.

    {!Diverged} is the verdict that must never happen; a damaged WAL
    being loudly rejected is {!Corruption_detected}. *)

module Shard_plan = Weihl_fault.Shard_plan

type verdict = Converged | Corruption_detected | Diverged of string

type schedule_result = {
  plan : Shard_plan.t;
  protocol : string;
  shards : int;
  verdict : verdict;
  committed : int;  (** across both traffic phases *)
  tpc_commits : int;
  fault_injected : bool;
      (** whether traffic reached the plan's faulty commit at all *)
  crashed_shards : int;
  reinstated : int;  (** prepared legs rebuilt from WALs *)
  resolved_in_doubt : int;
  resumed_committed : int;
}

type summary = {
  schedules : int;
  converged : int;
  corruption_detected : int;
  diverged : int;
  results : schedule_result list;  (** in run order *)
}

val protocols : Weihl_fault.Harness.protocol list
(** The banking protocols of the fault catalog — the ones whose
    transfers scatter transactions across shards. *)

val run_schedule :
  ?quick:bool ->
  ?shards:int ->
  Shard_plan.t ->
  Weihl_fault.Harness.protocol ->
  schedule_result
(** [quick] shortens both traffic phases; default 3 shards. *)

val run_many :
  ?quick:bool -> ?shards:int -> seeds:int list -> unit -> summary
(** One schedule per seed, protocols assigned round-robin. *)

val divergences : summary -> schedule_result list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_result : Format.formatter -> schedule_result -> unit
val pp_summary : Format.formatter -> summary -> unit
