(** The sharded crash-recovery schedule runner.

    One schedule = one {!Weihl_fault.Shard_plan.t} applied to one
    banking protocol over a fresh shard {!Group}:

    + drive seeded multi-client traffic through the group
      ({!Sharded_driver}), injecting the plan's fault — coordinator or
      participant crash at any 2PC phase, a no-vote, a coordinator
      partition, message drop/duplication/reordering — into the
      [fault_at_commit]-th multi-shard commit round;
    + recover every shard the fault took down from its WAL (the first
      victim's WAL damaged per the plan), reinstating prepared
      in-doubt legs;
    + resolve the blocking window from the coordinator's decision log
      (presumed abort where it has no record) and check: no
      transaction committed at one shard and aborted at another, all
      shards agree on every committed transaction's timestamp, zero
      transactions stuck in-doubt, and the merged committed projection
      replays cleanly against one combined system;
    + resume clean traffic and re-validate everything.

    {!Diverged} is the verdict that must never happen; a damaged WAL
    being loudly rejected is {!Corruption_detected}.

    {!run_soak} is the long-soak variant: compressed hours of one
    group's life under fuzzy checkpointing, with a crash→recover cycle
    (and seeded checkpoint damage) at the end of every traffic round. *)

module Shard_plan = Weihl_fault.Shard_plan
module Cc = Weihl_cc

type verdict = Converged | Corruption_detected | Diverged of string

type schedule_result = {
  plan : Shard_plan.t;
  protocol : string;
  shards : int;
  verdict : verdict;
  committed : int;  (** across both traffic phases *)
  tpc_commits : int;
  fault_injected : bool;
      (** whether traffic reached the plan's faulty commit at all *)
  crashed_shards : int;
  reinstated : int;  (** prepared legs rebuilt from WALs *)
  resolved_in_doubt : int;
  resumed_committed : int;
}

type summary = {
  schedules : int;
  converged : int;
  corruption_detected : int;
  diverged : int;
  results : schedule_result list;  (** in run order *)
}

val protocols : Weihl_fault.Harness.protocol list
(** The banking protocols of the fault catalog — the ones whose
    transfers scatter transactions across shards. *)

(** {1 Global-atomicity checks}

    Shared with the replica tier's failover drill, which adds its own
    replication checks on top. *)

val check_atomic_commitment : Group.t -> string option
(** No activity committed at one shard and aborted at another. *)

val check_ts_agreement : Group.t -> string option
(** Every shard answers the same timestamp for a committed activity. *)

val check_merged_replay :
  Weihl_fault.Harness.protocol -> Group.t -> string option
(** The merged committed projection replays cleanly against one
    combined fresh system. *)

val run_checks : Weihl_fault.Harness.protocol -> Group.t -> string option
(** All of the above plus zero-stuck-in-doubt, first failure wins. *)

val tpc_fault_of :
  Shard_plan.t -> fanout:int -> Weihl_dist.Tpc.fault * int list
(** Translate a plan's abstract 2PC fault into a concrete {!Weihl_dist.Tpc.fault}
    and forced no-votes for a transaction of the given fan-out. *)

val run_schedule :
  ?quick:bool ->
  ?shards:int ->
  Shard_plan.t ->
  Weihl_fault.Harness.protocol ->
  schedule_result
(** [quick] shortens both traffic phases; default 3 shards. *)

val run_many :
  ?quick:bool -> ?shards:int -> seeds:int list -> unit -> summary
(** One schedule per seed, protocols assigned round-robin. *)

val divergences : summary -> schedule_result list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_result : Format.formatter -> schedule_result -> unit
val pp_summary : Format.formatter -> summary -> unit

(** {1 Long-soak crash→recover cycles} *)

type soak_config = {
  soak_seed : int;  (** picks the protocol and derives every cycle's plan *)
  cycles : int;
  cycle_duration : int;  (** driver ticks of traffic per cycle *)
  soak_shards : int;
  checkpoint_every : int;  (** the group's auto-checkpoint period *)
  check_merged_every : int;
      (** merged-replay cadence — the full-projection replay is
          quadratic over a long soak; the atomicity, timestamp and
          in-doubt checks still run every cycle, and the merged replay
          always runs on the final cycle *)
}

val default_soak : soak_config
(** Seed 1, 20 cycles of 400 ticks over 3 shards, checkpoint every 25
    commits, merged replay every 5 cycles. *)

type cycle_report = {
  cycle : int;
  victim : int;  (** the shard this cycle crashed *)
  ckpt_fault : Shard_plan.ckpt_fault;
  cycle_committed : int;  (** commits this cycle's traffic added *)
  source : Cc.Recovery.source;
  fallbacks : string list;
  wal_records : int;  (** records in the victim's (truncated) WAL *)
  replayed : int;  (** records recovery actually replayed *)
  replay_bound : int;  (** the tail length it was allowed *)
  cycle_verdict : verdict;
}

type soak_report = {
  soak_protocol : string;
  cycles_run : int;
  soak_committed : int;
  soak_diverged : int;
  bound_violations : int;  (** cycles where [replayed > replay_bound] *)
  checkpoint_recoveries : int;  (** cycles restored from a checkpoint *)
  full_replays : int;
  loud_fallbacks : int;  (** cycles whose recovery reported fallbacks *)
  cycle_reports : cycle_report list;  (** in cycle order *)
}

val run_soak : ?config:soak_config -> unit -> soak_report
(** Run one long soak: per cycle, seeded traffic over the same group
    (activities offset so cycles never collide), then a crash of a
    seeded victim shard with its newest checkpoint damaged per the
    cycle's {!Shard_plan.ckpt_fault} ([Ckpt_race] instead loses the
    marker of a checkpoint taken just before the crash), then
    checkpoint-aware recovery and the global-atomicity checks.  A cycle
    diverges if recovery fails, a structural check fails, recovery
    replays more than the tail behind its checkpoint, or a damaged
    checkpoint was consumed without a fallback note. *)

val soak_divergences : soak_report -> cycle_report list
val pp_cycle : Format.formatter -> cycle_report -> unit
val pp_soak : Format.formatter -> soak_report -> unit
