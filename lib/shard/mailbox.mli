(** A bounded multi-producer/multi-consumer queue (Mutex/Condition),
    the per-shard request channel of the multicore runtime.

    {!push} blocks while the mailbox is at capacity (back-pressure on
    the coordinator), {!pop} blocks while it is empty.  {!close} wakes
    every waiter: blocked pushes raise {!Closed}, and pops drain what
    remains then return [None] — the worker's signal to exit. *)

type 'a t

exception Closed

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 1024.  @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** Enqueue, blocking while full.  @raise Closed if closed. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while empty; [None] once closed and drained. *)

val close : 'a t -> unit
(** Idempotent; wakes all blocked producers and consumers. *)

val depth : 'a t -> int
(** Requests currently queued. *)

val max_depth : 'a t -> int
(** High-water mark of {!depth} since creation. *)
