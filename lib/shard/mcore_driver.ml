(* The multicore saturation driver: rounds of batched work against a
   shard group, built entirely from [Group.invoke_batch] and
   [Group.commit_batch].

   Unlike [Sharded_driver] — which schedules clients on a virtual
   clock and measures simulated time — this driver measures wall
   clock.  Each round it gathers one pending operation from every
   in-flight transaction, executes them as a single [invoke_batch]
   (one mailbox job per shard), resolves any cross-shard deadlocks,
   then commits every finished transaction as one [commit_batch] (one
   WAL sync per shard per wave).  The saturation comes from the
   in-flight window: with more open transactions than shards, every
   round keeps every shard domain busy and every sync covers a batch.

   Determinism: jobs are drawn from the workload generator in refill
   order and iterated in start order, so the per-shard batch order —
   and therefore every grant/wait/commit decision — is a function of
   the seed alone.  Running the same config at different domain counts
   produces the identical outcome record; only [elapsed] differs.
   This is the property the multicore tests pin down.

   The driver does not own the group: callers create it (choosing
   domains / group_commit / sync_cost) and must [Group.shutdown] it.
   Wall-clock timing comes from the [now] parameter (this library does
   not link unix); pass [Unix.gettimeofday] for real measurements. *)

open Weihl_event
module Rng = Weihl_sim.Rng
module Workload = Weihl_sim.Workload

type config = {
  jobs : int;  (** transactions to run to completion *)
  inflight : int;  (** open-transaction window *)
  commit_every : int;
      (** rounds between commit waves: > 1 trades commit latency for
          wider waves (more transactions per WAL sync) *)
  max_restarts : int;
  max_waits : int;
      (** blocked rounds before a transaction aborts as starved *)
  seed : int;
}

let default_config =
  {
    jobs = 400;
    inflight = 32;
    commit_every = 1;
    max_restarts = 8;
    max_waits = 64;
    seed = 42;
  }

type outcome = {
  committed : int;
  committed_multi : int;
  aborted_deadlock : int;
  aborted_starved : int;
  aborted_refused : int;
  aborted_lost : int;
  gave_up : int;
  waits : int;
  restarts : int;
  rounds : int;
  elapsed : float;
  throughput : float;
}

type job_state = Running | Ready | Finished

type job = {
  script : Workload.script;
  mutable steps : Workload.step list;  (* remaining program *)
  mutable txn : Gtxn.t;
  mutable state : job_state;
  mutable restarts_left : int;
  mutable waits_left : int;
}

let run ?(config = default_config) ?(now = fun () -> 0.) group workload =
  if config.jobs < 0 then invalid_arg "Mcore_driver.run: jobs must be >= 0";
  if config.inflight <= 0 then
    invalid_arg "Mcore_driver.run: inflight must be positive";
  if config.commit_every <= 0 then
    invalid_arg "Mcore_driver.run: commit_every must be positive";
  let rng = Rng.create config.seed in
  let committed = ref 0
  and committed_multi = ref 0
  and deadlocks = ref 0
  and starved = ref 0
  and refused = ref 0
  and lost = ref 0
  and gave_up = ref 0
  and waits = ref 0
  and restarts = ref 0
  and rounds = ref 0
  and started = ref 0
  and finished = ref 0 in
  let names = ref 0 in
  let fresh_activity = function
    | `Update ->
      incr names;
      Activity.update (Fmt.str "m%d" !names)
    | `Read_only ->
      incr names;
      Activity.read_only (Fmt.str "q%d" !names)
  in
  (* gid -> job, so a deadlock victim maps back to its driver state *)
  let by_gid : (int, job) Hashtbl.t = Hashtbl.create 64 in
  let new_job () =
    let script = workload.Workload.generate rng in
    let txn = Group.begin_txn group (fresh_activity script.Workload.kind) in
    let j =
      {
        script;
        steps = script.Workload.steps;
        txn;
        state = Running;
        restarts_left = config.max_restarts;
        waits_left = config.max_waits;
      }
    in
    Hashtbl.replace by_gid (Gtxn.gid txn) j;
    j
  in
  let finish j = j.state <- Finished; incr finished in
  (* the aborted transaction is already gone; rerun the same script
     under a fresh gtxn, or give the job up when the budget is spent *)
  let restart j =
    Hashtbl.remove by_gid (Gtxn.gid j.txn);
    if j.restarts_left > 0 then begin
      j.restarts_left <- j.restarts_left - 1;
      incr restarts;
      j.steps <- j.script.Workload.steps;
      j.waits_left <- config.max_waits;
      j.txn <- Group.begin_txn group (fresh_activity j.script.Workload.kind);
      j.state <- Running;
      Hashtbl.replace by_gid (Gtxn.gid j.txn) j
    end
    else begin
      incr gave_up;
      finish j
    end
  in
  let t0 = now () in
  let live = ref [] in
  while !finished < config.jobs do
    incr rounds;
    (* refill the window, in generator order *)
    let room = ref (config.inflight - List.length !live) in
    let fresh = ref [] in
    while !room > 0 && !started < config.jobs do
      decr room;
      incr started;
      fresh := new_job () :: !fresh
    done;
    live := !live @ List.rev !fresh;
    (* one pending operation per running job, batched across shards *)
    let entries =
      List.filter_map
        (fun j ->
          if j.state <> Running then None
          else
            match j.steps with
            | st :: _ -> Some (j, st)
            | [] ->
              j.state <- Ready;
              None)
        !live
    in
    let results =
      Group.invoke_batch group
        (List.map (fun (j, st) -> (j.txn, st.Workload.obj, st.Workload.op)) entries)
    in
    let blocked = ref false in
    List.iter2
      (fun (j, st) r ->
        match r with
        | Group.Granted v ->
          j.steps <- List.tl j.steps;
          let stop =
            match st.Workload.continue_if with
            | Some keep -> not (keep v)
            | None -> false
          in
          if stop || j.steps = [] then j.state <- Ready
        | Group.Wait _ ->
          blocked := true;
          incr waits;
          j.waits_left <- j.waits_left - 1;
          if j.waits_left <= 0 then begin
            incr starved;
            Group.abort ~reason:"starved" group j.txn;
            restart j
          end
        | Group.Refused _ ->
          incr refused;
          if Gtxn.is_active j.txn then Group.abort ~reason:"refused" group j.txn;
          restart j)
      entries results;
    (* cross-shard cycles can only involve waiters, and every waiter
       just surfaced in this round's results *)
    if !blocked then begin
      let rec break () =
        match Group.find_deadlock group with
        | None -> ()
        | Some cycle ->
          let v = Group.victim cycle in
          incr deadlocks;
          Group.abort ~reason:"deadlock" group v;
          (match Hashtbl.find_opt by_gid (Gtxn.gid v) with
          | Some j -> restart j
          | None -> ());
          break ()
      in
      break ()
    end;
    (* commit every finished program as one batch — one sync per shard
       covers all of them.  [commit_every > 1] lets finished programs
       pile up for a few rounds so each wave spans more shards; a
       round where nothing could run flushes immediately (everything
       left may be blocked behind the held locks). *)
    let ready = List.filter (fun j -> j.state = Ready) !live in
    let flush = !rounds mod config.commit_every = 0 || entries = [] in
    if ready <> [] && flush then begin
      let fanouts = List.map (fun j -> (j, Gtxn.fanout j.txn)) ready in
      Group.commit_batch group (List.map (fun j -> j.txn) ready);
      List.iter
        (fun (j, fanout) ->
          match Gtxn.status j.txn with
          | Gtxn.Committed ->
            incr committed;
            if fanout >= 2 then incr committed_multi;
            Hashtbl.remove by_gid (Gtxn.gid j.txn);
            finish j
          | Gtxn.Aborted ->
            (* group-commit fault: appended but never synced, so never
               acknowledged *)
            incr lost;
            restart j
          | Gtxn.Active | Gtxn.In_doubt ->
            (* batched 2PC always reaches a decision; only an injected
               fault could leave doubt, and then the job is spent *)
            incr lost;
            finish j)
        fanouts
    end;
    live := List.filter (fun j -> j.state <> Finished) !live
  done;
  let elapsed = now () -. t0 in
  {
    committed = !committed;
    committed_multi = !committed_multi;
    aborted_deadlock = !deadlocks;
    aborted_starved = !starved;
    aborted_refused = !refused;
    aborted_lost = !lost;
    gave_up = !gave_up;
    waits = !waits;
    restarts = !restarts;
    rounds = !rounds;
    elapsed;
    throughput = (if elapsed > 0. then float_of_int !committed /. elapsed else 0.);
  }

let pp ppf o =
  Fmt.pf ppf
    "@[<v>committed        %d (multi %d)@,\
     aborted          deadlock %d  starved %d  refused %d  lost %d@,\
     gave up          %d@,\
     waits/restarts   %d/%d@,\
     rounds           %d@,\
     elapsed          %.3fs@,\
     throughput       %.0f txn/s@]"
    o.committed o.committed_multi o.aborted_deadlock o.aborted_starved
    o.aborted_refused o.aborted_lost o.gave_up o.waits o.restarts o.rounds
    o.elapsed o.throughput
