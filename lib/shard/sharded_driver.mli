(** A deterministic closed-loop client driver over a shard {!Group}.

    The sharded twin of {!Weihl_sim.Driver}: N clients draw transaction
    scripts from a {!Weihl_sim.Workload}, execute them against the
    group facade — legs opening on whichever shards the router picks —
    and commit through the group's fast path or 2PC.  Virtual time,
    conflicts and retries are all driven from one seeded RNG, so a
    [(seed, workload, group)] triple replays the same schedule exactly.

    Cross-shard deadlocks are broken by victimizing the youngest
    transaction of a cycle found in the merged waits-for graph.  A
    client blocked with no cycle to break — typically behind an
    in-doubt prepared leg that only recovery can resolve — aborts as
    {e starved} after [max_waits] retries, so the run always
    terminates.  The [on_commit] hook lets a fault harness swap in a
    faulty 2PC round at a chosen multi-shard commit. *)

type config = {
  clients : int;
  duration : int;  (** virtual ticks *)
  op_cost : int;
  think_time : int;
  restart_backoff : int;
  max_restarts : int;  (** per script, before the client gives up *)
  wait_backoff : int;
  max_waits : int;
      (** blocked retries before the transaction aborts as starved *)
  activity_base : int;
      (** offset for generated activity names — keeps phases of a
          crash/recovery schedule from colliding *)
  seed : int;
}

val default_config : config
(** 6 clients, 1500 ticks, 3 restarts, 50 blocked retries, seed 42. *)

type outcome = {
  committed : int;
  committed_read_only : int;
  committed_multi : int;  (** commits that ran a 2PC round (fanout >= 2) *)
  committed_single : int;  (** fast-path commits (fanout <= 1) *)
  aborted_deadlock : int;
  aborted_refused : int;
  aborted_tpc : int;  (** 2PC rounds that decided abort *)
  aborted_starved : int;
  left_in_doubt : int;  (** transactions whose 2PC round ended in-doubt *)
  gave_up : int;
  waits : int;
  restarts : int;
  multi_attempts : int;  (** multi-shard commit attempts, incl. faulty ones *)
  ticks : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?config:config ->
  ?on_commit:(Group.t -> Gtxn.t -> nth_multi:int -> Group.commit_outcome) ->
  Group.t ->
  Weihl_sim.Workload.t ->
  outcome
(** Drive the workload against the group.  [on_commit] intercepts every
    commit; [nth_multi] counts multi-shard attempts (1-based), so a
    harness can inject a fault into exactly the k-th 2PC round.  The
    default commits cleanly. *)
