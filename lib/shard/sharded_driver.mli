(** A deterministic closed-loop client driver over a shard {!Group}.

    The sharded twin of {!Weihl_sim.Driver}: N clients draw transaction
    scripts from a {!Weihl_sim.Workload}, execute them against the
    group facade — legs opening on whichever shards the router picks —
    and commit through the group's fast path or 2PC.  Virtual time,
    conflicts and retries are all driven from one seeded RNG, so a
    [(seed, workload, group)] triple replays the same schedule exactly.

    Cross-shard deadlocks are broken by victimizing the youngest
    transaction of a cycle found in the merged waits-for graph.  A
    client blocked with no cycle to break — typically behind an
    in-doubt prepared leg that only recovery can resolve — aborts as
    {e starved} after [max_waits] retries, so the run always
    terminates.  The [on_commit] hook lets a fault harness swap in a
    faulty 2PC round at a chosen multi-shard commit. *)

type config = {
  clients : int;
  duration : int;  (** virtual ticks *)
  op_cost : int;
  think_time : int;
  restart_backoff : int;
  max_restarts : int;  (** per script, before the client gives up *)
  wait_backoff : int;
  max_waits : int;
      (** blocked retries before the transaction aborts as starved *)
  activity_base : int;
      (** offset for generated activity names — keeps phases of a
          crash/recovery schedule from colliding *)
  seed : int;
}

val default_config : config
(** 6 clients, 1500 ticks, 3 restarts, 50 blocked retries, seed 42. *)

type outcome = {
  committed : int;
  committed_read_only : int;
  committed_multi : int;  (** commits that ran a 2PC round (fanout >= 2) *)
  committed_single : int;  (** fast-path commits (fanout <= 1) *)
  aborted_deadlock : int;
  aborted_refused : int;
  aborted_tpc : int;  (** 2PC rounds that decided abort *)
  aborted_starved : int;
  left_in_doubt : int;  (** transactions whose 2PC round ended in-doubt *)
  gave_up : int;
  waits : int;
  restarts : int;
  multi_attempts : int;  (** multi-shard commit attempts, incl. faulty ones *)
  ticks : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?config:config ->
  ?tracer:Weihl_obs.Shard_trace.t ->
  ?on_commit:(Group.t -> Gtxn.t -> nth_multi:int -> Group.commit_outcome) ->
  Group.t ->
  Weihl_sim.Workload.t ->
  outcome
(** Drive the workload against the group.  [on_commit] intercepts every
    commit; [nth_multi] counts multi-shard attempts (1-based), so a
    harness can inject a fault into exactly the k-th 2PC round.  The
    default commits cleanly.  With [tracer], the driver points its
    virtual clock at the trace and installs it on the group
    ({!Group.set_tracer}), so the run yields a merged cross-shard
    Chrome trace. *)

(** {1 Open-loop mode}

    Arrivals are a seeded Poisson process at a fixed offered rate,
    independent of completions — the closed loop above self-throttles
    behind contention, so it can never show where the group saturates.
    Each arrival runs its script to completion (with bounded blocked
    retries and restarts), however many are already in flight. *)

type open_config = {
  rate : float;  (** mean arrivals per tick (Poisson) *)
  o_duration : int;
  o_op_cost : int;
  o_wait_backoff : int;
  o_max_waits : int;
  o_max_restarts : int;
  window : int;  (** ticks per time-series window *)
  o_seed : int;
  o_activity_base : int;
}

val default_open_config : open_config
(** rate 0.2/tick, 2000 ticks, window 250, seed 42. *)

type window = {
  w_start : int;
  w_arrivals : int;
  w_committed : int;
  w_aborted : int;
  w_p50 : float;  (** exact, over latencies completing in the window *)
  w_p99 : float;
}

type open_outcome = {
  offered : float;  (** offered load, arrivals per 1000 ticks *)
  arrivals : int;
  o_committed : int;
  o_committed_multi : int;
  o_aborted : int;
  abort_causes : (string * int) list;  (** cause -> count, sorted *)
  o_in_doubt : int;
  in_flight_end : int;  (** jobs still open when the clock ran out *)
  windows : window list;
  shard_latency : Weihl_obs.Metrics.Histogram.t array;
      (** commit latency (commit tick - arrival tick) by home shard —
          the shard of the script's first object *)
  latency : Weihl_obs.Metrics.Histogram.t;
      (** group-wide, {!Weihl_obs.Metrics.Histogram.merge} over the
          per-shard histograms *)
  o_ticks : int;
}

val run_open :
  ?config:open_config ->
  ?tracer:Weihl_obs.Shard_trace.t ->
  Group.t ->
  Weihl_sim.Workload.t ->
  open_outcome
(** Drive the open-loop workload.  Deterministic per seed: arrivals,
    scripts and retries all draw from one generator, so a
    [(config, group, workload)] triple replays the same windowed
    series exactly.
    @raise Invalid_argument unless [rate] and [window] are positive. *)

val pp_window : Format.formatter -> window -> unit
val pp_open_outcome : Format.formatter -> open_outcome -> unit
